"""``reproc`` — the extensible-translator command line.

The paper's workflow (§II): pick extensions, get a custom translator,
feed it extended C, get plain parallel C (or a compiled/running program).

Examples::

    reproc program.xc --extensions matrix            # -> program.c
    reproc program.xc -x matrix,transform -o out.c
    reproc program.xc -x matrix --run --threads 4    # gcc-compile and run
    reproc program.xc -x matrix --check              # errors only
    reproc --list-extensions

Static analysis (S25) runs the dataflow passes — definite assignment,
matrix shape/bounds, refcount balance — and the explainable
parallel-safety analysis over one or more programs::

    reproc check program.xc -x matrix                # all passes
    reproc check *.xc --explain-parallel             # why (not) parallel
    reproc check program.xc --werror                 # warnings fail the run

Batch mode (S21 compilation service) compiles many programs through one
shared translator, fanning requests across a worker pool::

    reproc batch a.xc b.xc c.xc -x matrix            # -> a.c b.c c.c
    reproc batch *.xc -j 4 --stats                   # pool of 4 + counters
    reproc batch *.xc --check --out-dir build/

``--stats`` prints the service counters (translator-cache hits/misses,
persistent-artifact hits, per-stage wall time).  The translator cache
persists generated LALR tables and scanner DFAs under ``~/.cache/repro``
(override with ``REPRO_CACHE_DIR``; ``REPRO_CACHE_DIR=off`` disables).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def batch_main(argv: list[str]) -> int:
    """``reproc batch`` — compile many .xc files via the compile service."""
    ap = argparse.ArgumentParser(
        prog="reproc batch",
        description="Batch-compile extended-C programs through the "
        "compilation service (shared cached translator, worker pool)",
    )
    ap.add_argument("sources", nargs="+", help="extended-C source files (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("-j", "--jobs", type=int, default=4,
                    help="worker threads for the batch pool (default 4)")
    ap.add_argument("--out-dir", help="directory for generated .c files "
                    "(default: next to each source)")
    ap.add_argument("--check", action="store_true",
                    help="semantic analysis only, print errors")
    ap.add_argument("--threads", type=int, default=4,
                    help="thread count baked into generated code (default 4)")
    ap.add_argument("--stats", action="store_true",
                    help="print service counters after the batch")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable assignment fusion")
    ap.add_argument("--no-slice-elim", action="store_true",
                    help="disable fold slice elimination")
    ap.add_argument("--sequential", action="store_true",
                    help="disable automatic parallelization")
    args = ap.parse_args(argv)

    from repro.api import Optimizations
    from repro.service import CompileRequest, CompileService
    from repro.service.cache import shared_cache

    paths = [Path(s) for s in args.sources]
    missing = [p for p in paths if not p.exists()]
    for p in missing:
        print(f"reproc: {p}: no such file", file=sys.stderr)
    if missing:
        return 1

    extensions = tuple(e for e in args.extensions.split(",") if e)
    options = Optimizations(
        fuse_assignment=not args.no_fusion,
        eliminate_slices=not args.no_slice_elim,
        parallelize=not args.sequential,
    )
    service = CompileService(shared_cache(), max_workers=args.jobs)
    requests = [
        CompileRequest(
            p.read_text(), extensions=extensions, filename=str(p),
            options=options, nthreads=args.threads, check_only=args.check,
        )
        for p in paths
    ]
    responses = service.compile_batch(requests)

    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    failed = 0
    for path, resp in zip(paths, responses):
        if not resp.ok:
            failed += 1
            for e in resp.errors:
                print(e, file=sys.stderr)
            continue
        if args.check:
            print(f"{path}: no errors")
            continue
        out = (out_dir / path.with_suffix(".c").name
               if out_dir is not None else path.with_suffix(".c"))
        out.write_text(resp.c_source)
        print(f"wrote {out} ({resp.timings.total * 1e3:.1f} ms)")

    if args.stats:
        print(service.stats().pretty())
    return 1 if failed else 0


def check_main(argv: list[str]) -> int:
    """``reproc check`` — run the S25 static-analysis passes."""
    ap = argparse.ArgumentParser(
        prog="reproc check",
        description="Statically analyze extended-C programs: definite "
        "assignment, matrix shape/bounds, refcount balance, and "
        "explainable parallel safety",
    )
    ap.add_argument("sources", nargs="+", help="extended-C source files (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("--explain-parallel", action="store_true",
                    help="print a verdict per parallel construct, with "
                    "the reason chain for every refusal")
    ap.add_argument("--werror", action="store_true",
                    help="treat analysis warnings as errors (exit 1)")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker threads for multi-file checks (default 1)")
    ap.add_argument("--threads", type=int, default=4,
                    help="thread count assumed by the compiled form "
                    "(default 4)")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable assignment fusion")
    ap.add_argument("--no-slice-elim", action="store_true",
                    help="disable fold slice elimination")
    ap.add_argument("--sequential", action="store_true",
                    help="disable automatic parallelization")
    ap.add_argument("--stats", action="store_true",
                    help="print service counters after the run")
    args = ap.parse_args(argv)

    from repro.api import Optimizations
    from repro.service import CompileRequest, CompileService
    from repro.service.cache import shared_cache

    paths = [Path(s) for s in args.sources]
    missing = [p for p in paths if not p.exists()]
    for p in missing:
        print(f"reproc: {p}: no such file", file=sys.stderr)
    if missing:
        return 1

    extensions = tuple(e for e in args.extensions.split(",") if e)
    options = Optimizations(
        fuse_assignment=not args.no_fusion,
        eliminate_slices=not args.no_slice_elim,
        parallelize=not args.sequential,
    )
    service = CompileService(shared_cache(), max_workers=args.jobs)
    requests = [
        CompileRequest(p.read_text(), extensions=extensions,
                       filename=str(p), options=options,
                       nthreads=args.threads)
        for p in paths
    ]
    responses = service.check_batch(requests)

    failed = 0
    for path, resp in zip(paths, responses):
        if not resp.ok:
            failed += 1
            for e in resp.errors:
                print(e, file=sys.stderr)
            continue
        report = resp.report
        print(report.format(explain_parallel=args.explain_parallel))
        if report.error_count or (args.werror and report.warning_count):
            failed += 1
    if args.stats:
        print(service.stats().pretty())
    return 1 if failed else 0


def _print_interp_stats(stats) -> None:
    """Mirror the C runtime's RT_STATS line, plus the S25 bail ledger."""
    print(f"allocs={stats.allocs} frees={stats.frees} "
          f"copies={stats.copies} "
          f"parallel_regions={stats.parallel_regions} "
          f"tasks_spawned={stats.tasks_spawned}")
    if stats.region_sizes:
        print("region_sizes=" +
              ",".join(str(n) for n in stats.region_sizes))
    for label, bails in (("fastloop bail", stats.fastloop_bails),
                         ("shard bail", stats.shard_bails)):
        for reason in sorted(bails):
            print(f"{label}: {reason} x{bails[reason]}")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "check":
        return check_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="reproc",
        description="Extensible CMINUS translator (ICPP 2014 reproduction)",
    )
    ap.add_argument("source", nargs="?", help="extended-C source file (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("-o", "--output", help="output C file (default: <source>.c)")
    ap.add_argument("--check", action="store_true",
                    help="run semantic analysis only, print errors")
    ap.add_argument("--run", action="store_true",
                    help="execute the program in place (see --engine)")
    ap.add_argument("--engine", choices=("vm", "tree", "native"), default="vm",
                    help="--run engine: register-bytecode VM with numpy-"
                    "batched loops (default), the tree-walking reference "
                    "interpreter, or gcc-compiled native code")
    ap.add_argument("--threads", type=int, default=None,
                    help="worker threads for --run: the VM fork-join pool "
                    "or the native RT_THREADS pool (default: the "
                    "REPRO_THREADS environment variable, else 4)")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable assignment fusion (§III-A.4 ablation)")
    ap.add_argument("--no-slice-elim", action="store_true",
                    help="disable fold slice elimination (ablation)")
    ap.add_argument("--sequential", action="store_true",
                    help="disable automatic parallelization")
    ap.add_argument("--stats", action="store_true",
                    help="with --run: print interpreter counters "
                    "(allocs/frees/regions) and the fast-path/shard "
                    "bail reasons after the program exits")
    ap.add_argument("--list-extensions", action="store_true",
                    help="list available language extensions")
    args = ap.parse_args(argv)

    from repro.api import Optimizations, compile_source, module_registry

    if args.list_extensions:
        for name, mod in sorted(module_registry().items()):
            kind = "host" if name in ("cminus", "tuples") else "extension"
            req = f" (requires {', '.join(mod.requires)})" if mod.requires else ""
            print(f"  {name:12s} {kind}{req}")
        return 0

    if not args.source:
        ap.error("a source file is required (or --list-extensions)")
    src_path = Path(args.source)
    if not src_path.exists():
        print(f"reproc: {src_path}: no such file", file=sys.stderr)
        return 1

    from repro.cexec.parallel import resolve_nthreads

    nthreads = resolve_nthreads(args.threads, default=4)
    extensions = [e for e in args.extensions.split(",") if e]
    options = Optimizations(
        fuse_assignment=not args.no_fusion,
        eliminate_slices=not args.no_slice_elim,
        parallelize=not args.sequential,
    )
    result = compile_source(
        src_path.read_text(), extensions, options=options,
        nthreads=nthreads, filename=str(src_path),
    )
    if result.errors:
        for e in result.errors:
            print(e, file=sys.stderr)
        return 1
    if args.check:
        print(f"{src_path}: no errors")
        return 0

    out_path = Path(args.output) if args.output else src_path.with_suffix(".c")
    out_path.write_text(result.c_source)
    print(f"wrote {out_path}")

    if args.run:
        if args.engine == "native":
            from repro.cexec.gcc_backend import CompiledProgram, gcc_available

            if not gcc_available():
                print("reproc: --engine native requires gcc", file=sys.stderr)
                return 1
            prog = CompiledProgram(
                result.c_source,
                keep_dir=str(src_path.parent / ".reproc-build"))
            run = prog.run(nthreads=nthreads, collect_stats=args.stats,
                           cwd=src_path.parent)
            sys.stdout.write(run.stdout)
            sys.stderr.write(run.stderr)
            return run.returncode
        from repro.cexec.interp import RuntimeTrap

        if args.engine == "tree" and nthreads > 1:
            print("reproc: tree engine is sequential; ignoring "
                  f"--threads {nthreads}", file=sys.stderr)
        executor = result.make_engine(engine=args.engine,
                                      workdir=src_path.parent,
                                      nthreads=nthreads)
        try:
            rc = executor.run_main()
        except RuntimeTrap as trap:
            for line in executor.stdout:
                print(line)
            print(f"reproc: runtime error: {trap}", file=sys.stderr)
            return 2  # what the C runtime's exit(2) reports
        finally:
            executor.close()
        for line in executor.stdout:
            print(line)
        if args.stats:
            _print_interp_stats(executor.stats)
        return rc
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
