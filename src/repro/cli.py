"""``reproc`` — the extensible-translator command line.

The paper's workflow (§II): pick extensions, get a custom translator,
feed it extended C, get plain parallel C (or a compiled/running program).

Examples::

    reproc program.xc --extensions matrix            # -> program.c
    reproc program.xc -x matrix,transform -o out.c
    reproc program.xc -x matrix --run --threads 4    # gcc-compile and run
    reproc program.xc -x matrix --check              # errors only
    reproc disasm program.xc --ir                    # bytecode + IR stages
    reproc --list-extensions

Static analysis (S25) runs the dataflow passes — definite assignment,
matrix shape/bounds, refcount balance — and the explainable
parallel-safety analysis over one or more programs::

    reproc check program.xc -x matrix                # all passes
    reproc check *.xc --explain-parallel             # why (not) parallel
    reproc check program.xc --werror                 # warnings fail the run

Batch mode (S21 compilation service) compiles many programs through one
shared translator, fanning requests across a worker pool::

    reproc batch a.xc b.xc c.xc -x matrix            # -> a.c b.c c.c
    reproc batch *.xc -j 4 --stats                   # pool of 4 + counters
    reproc batch *.xc --check --out-dir build/

Serving mode (S26) keeps one daemon resident — hot translators, a
supervised worker pool for execution — and scripts against it::

    reproc serve --port 7378 --workers 4             # the daemon
    reproc client run program.xc -x matrix           # execute remotely
    reproc client compile program.xc -o program.c
    reproc client load program.xc -n 64 -c 8         # smoke load
    reproc client stats                              # counters
    reproc client shutdown                           # graceful drain

``--stats`` prints the service counters (translator-cache hits/misses,
persistent-artifact hits, per-stage wall time, serve-daemon request/
coalescing/worker counters).  The translator cache persists generated
LALR tables and scanner DFAs under ``~/.cache/repro`` (override with
``REPRO_CACHE_DIR``; ``REPRO_CACHE_DIR=off`` disables).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def batch_main(argv: list[str]) -> int:
    """``reproc batch`` — compile many .xc files via the compile service."""
    ap = argparse.ArgumentParser(
        prog="reproc batch",
        description="Batch-compile extended-C programs through the "
        "compilation service (shared cached translator, worker pool)",
    )
    ap.add_argument("sources", nargs="+", help="extended-C source files (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("-j", "--jobs", type=int, default=4,
                    help="worker threads for the batch pool (default 4)")
    ap.add_argument("--out-dir", help="directory for generated .c files "
                    "(default: next to each source)")
    ap.add_argument("--check", action="store_true",
                    help="semantic analysis only, print errors")
    ap.add_argument("--threads", type=int, default=4,
                    help="thread count baked into generated code (default 4)")
    ap.add_argument("--stats", action="store_true",
                    help="print service counters after the batch")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable assignment fusion")
    ap.add_argument("--no-slice-elim", action="store_true",
                    help="disable fold slice elimination")
    ap.add_argument("--sequential", action="store_true",
                    help="disable automatic parallelization")
    ap.add_argument("-O", "--opt-level", type=int, choices=(0, 1, 2),
                    default=2,
                    help="mid-level IR optimization level (default 2)")
    args = ap.parse_args(argv)

    from repro.api import Optimizations
    from repro.service import CompileRequest, CompileService
    from repro.service.cache import shared_cache

    paths = [Path(s) for s in args.sources]
    missing = [p for p in paths if not p.exists()]
    for p in missing:
        print(f"reproc: {p}: no such file", file=sys.stderr)
    if missing:
        return 1

    extensions = tuple(e for e in args.extensions.split(",") if e)
    options = Optimizations(
        fuse_assignment=not args.no_fusion,
        eliminate_slices=not args.no_slice_elim,
        parallelize=not args.sequential,
        opt_level=args.opt_level,
    )
    service = CompileService(shared_cache(), max_workers=args.jobs)
    requests = [
        CompileRequest(
            p.read_text(), extensions=extensions, filename=str(p),
            options=options, nthreads=args.threads, check_only=args.check,
        )
        for p in paths
    ]
    responses = service.compile_batch(requests)

    out_dir = Path(args.out_dir) if args.out_dir else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    failed = 0
    for path, resp in zip(paths, responses):
        if not resp.ok:
            failed += 1
            for e in resp.errors:
                print(e, file=sys.stderr)
            continue
        if args.check:
            print(f"{path}: no errors")
            continue
        out = (out_dir / path.with_suffix(".c").name
               if out_dir is not None else path.with_suffix(".c"))
        out.write_text(resp.c_source)
        print(f"wrote {out} ({resp.timings.total * 1e3:.1f} ms)")

    if args.stats:
        print(service.stats().pretty())
    return 1 if failed else 0


def disasm_main(argv: list[str]) -> int:
    """``reproc disasm`` — dump bytecode (and optionally TAC/SSA IR)."""
    ap = argparse.ArgumentParser(
        prog="reproc disasm",
        description="Disassemble the register bytecode of every function "
        "in a program; --ir additionally dumps the S28 mid-level IR "
        "stages (TAC, SSA, optimized SSA) and per-pass rewrite counts",
    )
    ap.add_argument("source", help="extended-C source file (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("--ir", action="store_true",
                    help="show all IR stages, not just final bytecode")
    ap.add_argument("--spec", action="store_true",
                    help="show the dispatch-specialized stream the VM "
                    "executes (S29): fused superinstructions rendered as "
                    "si [part] groups (* marks an elided intermediate "
                    "write), quickening candidates marked ~q")
    ap.add_argument("-O", "--opt-level", type=int, choices=(0, 1, 2),
                    default=2, help="optimization level (default 2)")
    args = ap.parse_args(argv)

    src_path = Path(args.source)
    if not src_path.exists():
        print(f"reproc: {src_path}: no such file", file=sys.stderr)
        return 1

    from repro.api import Optimizations, compile_source
    from repro.cexec.bytecode import BytecodeProgram, compile_function
    from repro.ir import dump_stages

    extensions = [e for e in args.extensions.split(",") if e]
    options = Optimizations(opt_level=args.opt_level)
    result = compile_source(src_path.read_text(), extensions,
                            options=options, filename=str(src_path))
    if result.errors:
        for e in result.errors:
            print(e, file=sys.stderr)
        return 1
    prog = BytecodeProgram(result.lowered, result.ctx)
    names = [(n, False) for n in sorted(prog.functions)] + \
        [(n, True) for n in sorted(prog.lifted_trees)]
    for name, lifted in names:
        params, body = (prog.lifted_trees if lifted else prog.functions)[name]
        tag = " [lifted]" if lifted else ""
        print(f"== {name}{tag} -O{args.opt_level} ==")
        if args.ir:
            stages = dump_stages(compile_function(name, params, body),
                                 args.opt_level)
            for key in ("tac", "ssa", "opt"):
                print(f"-- {key} --")
                print(stages[key])
            if stages["counts"]:
                print(f"-- counts: {stages['counts']} --")
            print("-- bytecode --")
            print(stages["bytecode"])
        elif args.spec:
            from repro.cexec.superinstr import QUICKEN_OPS

            code = (prog.spec_lifted_code_for(name) if lifted
                    else prog.spec_code_for(name))
            print(code.dis(quicken=QUICKEN_OPS))
        else:
            code = (prog.lifted_code_for(name) if lifted
                    else prog.code_for(name))
            print(code.dis())
        print()
    return 0


def check_main(argv: list[str]) -> int:
    """``reproc check`` — run the S25 static-analysis passes."""
    ap = argparse.ArgumentParser(
        prog="reproc check",
        description="Statically analyze extended-C programs: definite "
        "assignment, matrix shape/bounds, refcount balance, and "
        "explainable parallel safety",
    )
    ap.add_argument("sources", nargs="+", help="extended-C source files (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("--explain-parallel", action="store_true",
                    help="print a verdict per parallel construct, with "
                    "the reason chain for every refusal")
    ap.add_argument("--races", action="store_true",
                    help="print the S30 race analysis: findings with "
                    "witness chains, task clearance, and shard "
                    "disjointness certificates")
    ap.add_argument("--json", action="store_true",
                    help="emit one machine-readable JSON report per "
                    "file instead of text")
    ap.add_argument("--werror", action="store_true",
                    help="treat analysis warnings as errors (exit 1)")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker threads for multi-file checks (default 1)")
    ap.add_argument("--threads", type=int, default=4,
                    help="thread count assumed by the compiled form "
                    "(default 4)")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable assignment fusion")
    ap.add_argument("--no-slice-elim", action="store_true",
                    help="disable fold slice elimination")
    ap.add_argument("--sequential", action="store_true",
                    help="disable automatic parallelization")
    ap.add_argument("--stats", action="store_true",
                    help="print service counters after the run")
    ap.add_argument("-O", "--opt-level", type=int, choices=(0, 1, 2),
                    default=2,
                    help="mid-level IR optimization level (default 2)")
    args = ap.parse_args(argv)

    from repro.api import Optimizations
    from repro.service import CompileRequest, CompileService
    from repro.service.cache import shared_cache

    paths = [Path(s) for s in args.sources]
    missing = [p for p in paths if not p.exists()]
    for p in missing:
        print(f"reproc: {p}: no such file", file=sys.stderr)
    if missing:
        return 1

    extensions = tuple(e for e in args.extensions.split(",") if e)
    options = Optimizations(
        fuse_assignment=not args.no_fusion,
        eliminate_slices=not args.no_slice_elim,
        parallelize=not args.sequential,
        opt_level=args.opt_level,
    )
    service = CompileService(shared_cache(), max_workers=args.jobs)
    requests = [
        CompileRequest(p.read_text(), extensions=extensions,
                       filename=str(p), options=options,
                       nthreads=args.threads)
        for p in paths
    ]
    responses = service.check_batch(requests)

    failed = 0
    for path, resp in zip(paths, responses):
        if not resp.ok:
            failed += 1
            for e in resp.errors:
                print(e, file=sys.stderr)
            continue
        report = resp.report
        if args.json:
            print(report.to_json())
        else:
            print(report.format(explain_parallel=args.explain_parallel,
                                races=args.races))
        if report.error_count or (args.werror and report.warning_count):
            failed += 1
        if args.races and report.race_count:
            failed += 1
    if args.stats:
        print(service.stats().pretty())
    return 1 if failed else 0


def serve_main(argv: list[str]) -> int:
    """``reproc serve`` — run the persistent compile-and-execute daemon."""
    ap = argparse.ArgumentParser(
        prog="reproc serve",
        description="Serve compile/check/run/stats requests over "
        "HTTP/1.1-framed JSON, keeping translators hot and executing "
        "programs in a supervised worker pool",
    )
    ap.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    ap.add_argument("--port", type=int, default=7378,
                    help="TCP port (default 7378; 0 picks a free port)")
    ap.add_argument("--socket", help="serve on this AF_UNIX socket path "
                    "instead of TCP")
    ap.add_argument("--workers", type=int, default=2,
                    help="executor worker processes (default 2)")
    ap.add_argument("--queue-depth", type=int, default=8,
                    help="admitted requests beyond which new ones get "
                    "429 busy (default 8)")
    ap.add_argument("--timeout", type=float, default=30.0,
                    help="default per-run wall-clock timeout in seconds "
                    "(default 30)")
    ap.add_argument("--max-requests-per-worker", type=int, default=64,
                    help="recycle a worker after this many requests "
                    "(default 64)")
    ap.add_argument("--output-cap", type=int, default=1 << 20,
                    help="per-run stdout cap in bytes (default 1MiB)")
    ap.add_argument("--max-memory-mb", type=int, default=0,
                    help="per-worker address-space cap in MiB "
                    "(default 0 = unlimited)")
    args = ap.parse_args(argv)

    import signal

    from repro.serve.server import ReproServer, ServeConfig

    config = ServeConfig(
        host=args.host, port=args.port, socket_path=args.socket,
        pool_size=args.workers, queue_depth=args.queue_depth,
        default_timeout_s=args.timeout,
        max_requests_per_worker=args.max_requests_per_worker,
        output_cap=args.output_cap,
        max_memory_bytes=args.max_memory_mb << 20,
    )
    server = ReproServer(config)

    def _stop(signum, frame):
        # serve_forever unblocks; its finally-clause drains and closes.
        import threading

        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    server.start()  # binds; resolves port 0 before we announce
    print(f"reproc serve: listening on {server.address} "
          f"({args.workers} workers, queue depth {args.queue_depth})",
          flush=True)
    try:
        server._thread.join()
    finally:
        server.stop()
    print("reproc serve: shut down cleanly", flush=True)
    return 0


def client_main(argv: list[str]) -> int:
    """``reproc client`` — script against a running serve daemon."""
    ap = argparse.ArgumentParser(
        prog="reproc client",
        description="Send compile/check/run/stats/shutdown requests to a "
        "running `reproc serve` daemon; `load` fires a synthetic "
        "multi-client smoke load",
    )
    ap.add_argument("action",
                    choices=("compile", "check", "run", "stats",
                             "shutdown", "load"))
    ap.add_argument("source", nargs="?",
                    help="extended-C source file (.xc); required for "
                    "compile/check/run/load")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7378)
    ap.add_argument("--socket", help="connect to an AF_UNIX socket path")
    ap.add_argument("-o", "--output",
                    help="compile: write generated C here (default stdout)")
    ap.add_argument("--threads", type=int, default=1,
                    help="run: interpreter thread count (default 1)")
    ap.add_argument("--timeout", type=float, default=None,
                    help="run: per-request wall-clock timeout in seconds")
    ap.add_argument("--explain-parallel", action="store_true",
                    help="check: include the parallel-safety verdicts")
    ap.add_argument("-n", "--requests", type=int, default=32,
                    help="load: total requests (default 32)")
    ap.add_argument("-c", "--clients", type=int, default=8,
                    help="load: concurrent client threads (default 8)")
    ap.add_argument("--distinct", type=int, default=1,
                    help="load: distinct source variants (default 1 = "
                    "maximal coalescing)")
    ap.add_argument("--load-type", default="compile",
                    choices=("compile", "check", "run"),
                    help="load: request type to fire (default compile)")
    args = ap.parse_args(argv)

    import json

    from repro.serve.client import ServeClient, ServeUnavailable

    client = ServeClient(args.host, args.port, socket_path=args.socket)
    extensions = [e for e in args.extensions.split(",") if e]

    needs_source = args.action in ("compile", "check", "run", "load")
    if needs_source and not args.source:
        ap.error(f"'{args.action}' requires a source file")
    source = Path(args.source).read_text() if needs_source else ""

    try:
        if args.action == "stats":
            body = client.stats()
            print(body["pretty"])
            print(f"uptime: {body['uptime_s']:.1f}s, "
                  f"workers alive: {body['workers_alive']}")
            return 0
        if args.action == "shutdown":
            body = client.shutdown()
            print(body["kind"])
            return 0 if body.get("ok") else 1
        if args.action == "load":
            report = client.load(
                source, extensions, requests=args.requests,
                clients=args.clients, rtype=args.load_type,
                distinct=args.distinct)
            print(json.dumps(report, indent=2))
            return 0 if report["failed"] == 0 else 1
        if args.action == "compile":
            body = client.compile(source, extensions,
                                  filename=args.source)
            if not body.get("ok"):
                for e in body.get("errors", [body.get("error", "?")]):
                    print(e, file=sys.stderr)
                return 1
            if args.output:
                Path(args.output).write_text(body["c_source"])
                print(f"wrote {args.output} "
                      f"({body['elapsed_s'] * 1e3:.1f} ms"
                      f"{', coalesced' if body.get('coalesced') else ''})")
            else:
                sys.stdout.write(body["c_source"])
            return 0
        if args.action == "check":
            body = client.check(source, extensions, filename=args.source,
                                explain_parallel=args.explain_parallel)
            if not body.get("ok"):
                for e in body.get("errors", [body.get("error", "?")]):
                    print(e, file=sys.stderr)
                return 1
            print(body["report"])
            return 1 if body.get("error_count") else 0
        # run
        body = client.run(source, extensions, filename=args.source,
                          nthreads=args.threads, timeout_s=args.timeout)
        for line in body.get("stdout", []):
            print(line)
        if not body.get("ok"):
            msg = body.get("error") or "; ".join(body.get("errors", []))
            print(f"reproc client: {body.get('kind')}: {msg}",
                  file=sys.stderr)
            return 2
        return int(body.get("returncode", 0))
    except ServeUnavailable as e:
        print(f"reproc client: {e}", file=sys.stderr)
        return 1


def _print_interp_stats(stats) -> None:
    """Mirror the C runtime's RT_STATS line, plus the S25 bail ledger."""
    print(f"allocs={stats.allocs} frees={stats.frees} "
          f"copies={stats.copies} "
          f"parallel_regions={stats.parallel_regions} "
          f"tasks_spawned={stats.tasks_spawned}"
          + (f" tasks_pooled={stats.tasks_pooled}"
             if getattr(stats, "tasks_pooled", 0) else ""))
    if stats.region_sizes:
        print("region_sizes=" +
              ",".join(str(n) for n in stats.region_sizes))
    for label, bails in (("fastloop bail", stats.fastloop_bails),
                         ("shard bail", stats.shard_bails)):
        for reason in sorted(bails):
            print(f"{label}: {reason} x{bails[reason]}")
    for region in sorted(getattr(stats, "certs", ())):
        print(f"shard cert: {region}: {stats.certs[region]}")
    if stats.instrs:
        print(f"instrs={stats.instrs}")
    if (stats.quickened or stats.deopts or stats.ic_hits
            or stats.ic_misses or stats.guards_elided):
        print(f"spec: quickened={stats.quickened} deopts={stats.deopts} "
              f"ic_hits={stats.ic_hits} ic_misses={stats.ic_misses} "
              f"guards_elided={stats.guards_elided}")
    if stats.opt_counts:
        print("opt: " + " ".join(f"{k}={stats.opt_counts[k]}"
                                 for k in sorted(stats.opt_counts)))


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "check":
        return check_main(argv[1:])
    if argv and argv[0] == "disasm":
        return disasm_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="reproc",
        description="Extensible CMINUS translator (ICPP 2014 reproduction)",
    )
    ap.add_argument("source", nargs="?", help="extended-C source file (.xc)")
    ap.add_argument("-x", "--extensions", default="matrix",
                    help="comma-separated extension list (default: matrix)")
    ap.add_argument("-o", "--output", help="output C file (default: <source>.c)")
    ap.add_argument("--check", action="store_true",
                    help="run semantic analysis only, print errors")
    ap.add_argument("--run", action="store_true",
                    help="execute the program in place (see --engine)")
    ap.add_argument("--engine", choices=("vm", "tree", "native"), default="vm",
                    help="--run engine: register-bytecode VM with numpy-"
                    "batched loops (default), the tree-walking reference "
                    "interpreter, or gcc-compiled native code")
    ap.add_argument("--threads", type=int, default=None,
                    help="worker threads for --run: the VM fork-join pool "
                    "or the native RT_THREADS pool (default: the "
                    "REPRO_THREADS environment variable, else 4)")
    ap.add_argument("--parallel-backend", choices=("thread", "process",
                    "auto"), default=None,
                    help="--run shard backend: the in-process thread pool, "
                    "the shared-memory process pool (S27, safety-gated "
                    "with thread fallback), or auto per-region selection "
                    "(default: REPRO_PARALLEL_BACKEND, else thread)")
    ap.add_argument("--no-fusion", action="store_true",
                    help="disable assignment fusion (§III-A.4 ablation)")
    ap.add_argument("--no-slice-elim", action="store_true",
                    help="disable fold slice elimination (ablation)")
    ap.add_argument("--sequential", action="store_true",
                    help="disable automatic parallelization")
    ap.add_argument("-O", "--opt-level", type=int, choices=(0, 1, 2),
                    default=2,
                    help="mid-level IR optimization level for --run "
                    "(S28): 0 = off, 1 = fold/copy-prop/CSE/DCE, "
                    "2 = + LICM and strength reduction (default 2)")
    ap.add_argument("--stats", action="store_true",
                    help="with --run: print interpreter counters "
                    "(allocs/frees/regions) and the fast-path/shard "
                    "bail reasons after the program exits; with no "
                    "source: print the shared service counters")
    ap.add_argument("--profile", metavar="FILE",
                    help="with --run (vm engine): execute generically — "
                    "no superinstructions or quickening — recording the "
                    "executed opcode pair/triple histograms, and write "
                    "them to FILE as JSON; feed the files to `python -m "
                    "repro.cexec.superinstr` to (re)select the "
                    "superinstruction table")
    ap.add_argument("--list-extensions", action="store_true",
                    help="list available language extensions")
    args = ap.parse_args(argv)

    from repro.api import Optimizations, compile_source, module_registry

    if args.list_extensions:
        for name, mod in sorted(module_registry().items()):
            kind = "host" if name in ("cminus", "tuples") else "extension"
            req = f" (requires {', '.join(mod.requires)})" if mod.requires else ""
            print(f"  {name:12s} {kind}{req}")
        return 0

    if not args.source:
        if args.stats:
            from repro.service import CompileService
            from repro.service.cache import shared_cache

            print(CompileService(shared_cache()).stats().pretty())
            return 0
        ap.error("a source file is required (or --list-extensions)")
    src_path = Path(args.source)
    if not src_path.exists():
        print(f"reproc: {src_path}: no such file", file=sys.stderr)
        return 1

    from repro.cexec.parallel import resolve_nthreads

    nthreads = resolve_nthreads(args.threads, default=4)
    extensions = [e for e in args.extensions.split(",") if e]
    options = Optimizations(
        fuse_assignment=not args.no_fusion,
        eliminate_slices=not args.no_slice_elim,
        parallelize=not args.sequential,
        opt_level=args.opt_level,
    )
    result = compile_source(
        src_path.read_text(), extensions, options=options,
        nthreads=nthreads, filename=str(src_path),
    )
    if result.errors:
        for e in result.errors:
            print(e, file=sys.stderr)
        return 1
    if args.check:
        print(f"{src_path}: no errors")
        return 0

    out_path = Path(args.output) if args.output else src_path.with_suffix(".c")
    out_path.write_text(result.c_source)
    print(f"wrote {out_path}")

    if args.run:
        if args.engine == "native":
            from repro.cexec.gcc_backend import CompiledProgram, gcc_available

            if not gcc_available():
                print("reproc: --engine native requires gcc", file=sys.stderr)
                return 1
            prog = CompiledProgram(
                result.c_source,
                keep_dir=str(src_path.parent / ".reproc-build"))
            run = prog.run(nthreads=nthreads, collect_stats=args.stats,
                           cwd=src_path.parent)
            sys.stdout.write(run.stdout)
            sys.stderr.write(run.stderr)
            return run.returncode
        from repro.cexec.interp import RuntimeTrap

        if args.engine == "tree" and nthreads > 1:
            print("reproc: tree engine is sequential; ignoring "
                  f"--threads {nthreads}", file=sys.stderr)
        if args.profile and args.engine != "vm":
            print("reproc: --profile requires --engine vm", file=sys.stderr)
            return 1
        if args.profile:
            # Profiling is sequential: shard workers would interleave
            # their dispatch streams into one histogram.
            nthreads = 1
        executor = result.make_engine(engine=args.engine,
                                      workdir=src_path.parent,
                                      nthreads=nthreads,
                                      parallel_backend=args.parallel_backend,
                                      profile=bool(args.profile))
        try:
            rc = executor.run_main()
        except RuntimeTrap as trap:
            for line in executor.stdout:
                print(line)
            print(f"reproc: runtime error: {trap}", file=sys.stderr)
            return 2  # what the C runtime's exit(2) reports
        finally:
            executor.close()
        for line in executor.stdout:
            print(line)
        if args.profile:
            import json

            dump = executor.profile_dump()
            Path(args.profile).write_text(
                json.dumps(dump, indent=2) + "\n")
            print(f"wrote {args.profile} "
                  f"({dump['dispatches']} dispatches)")
        if args.stats:
            _print_interp_stats(executor.stats)
        return rc
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
