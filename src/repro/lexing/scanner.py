"""Context-aware scanning (Van Wyk & Schwerdfeger, GPCE'07 — the paper's [9]).

A conventional scanner resolves "which terminal is this?" globally; a
context-aware scanner asks the *parser* which terminals are valid in the
current LR state and only matches those.  This is what lets independently
developed extensions reuse keywords (e.g. ``with``) without clashing with
host identifiers, and is the mechanism §VI-A relies on.

The scan algorithm at each point:

1. Run the combined DFA for the longest prefix whose accept-set intersects
   ``valid ∪ layout`` (maximal munch, restricted to context).
2. Intersect the accept-set with the valid set; apply lexical precedence
   (``dominates``) to shrink it.
3. One survivor -> token.  Several -> :class:`LexicalAmbiguityError`.
   None at any length -> :class:`ScanError`.

Two interchangeable engines implement that algorithm (S24):

* the **interpreted** engine walks the charset-labeled
  :class:`~repro.lexing.dfa.DFA` and works on frozensets of terminal
  names — the executable specification, kept as the differential
  reference;
* the **compiled** engine (default) runs the same DFA lowered to dense
  integer tables (:class:`~repro.lexing.compiled.CompiledDFA`): one
  forward pass over character equivalence classes, accept sets as int
  bitmasks, and lexical-precedence resolution memoized per candidate
  mask.  Tokens, trees and error diagnostics are identical by
  construction (both engines share the disambiguation-outcome and
  error-raising code) and by test (``tests/lexing/test_compiled_scanner``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lexing.compiled import CompiledDFA, TerminalUniverse
from repro.lexing.dfa import DFA, build_scanner_dfa
from repro.lexing.nfa import build_combined_nfa
from repro.lexing.terminals import TerminalSet
from repro.util.diagnostics import SourceLocation, SourceSpan

EOF = "$EOF"


@dataclass(slots=True)
class Token:
    """Immutable by convention; not ``frozen=True`` because the scanner
    builds one per token and frozen slotted construction is ~3.5x slower
    (see :class:`~repro.util.diagnostics.SourceLocation`)."""

    terminal: str
    lexeme: str
    span: SourceSpan

    def __hash__(self) -> int:
        return hash((self.terminal, self.lexeme, self.span))

    def __repr__(self) -> str:
        return f"Token({self.terminal}, {self.lexeme!r})"


class ScanError(Exception):
    def __init__(self, message: str, location: SourceLocation):
        self.location = location
        super().__init__(f"{location}: {message}")


class LexicalAmbiguityError(ScanError):
    pass


class ContextAwareScanner:
    """Scanner over a :class:`TerminalSet`, driven by valid-lookahead sets.

    ``backend="compiled"`` (default) lowers the DFA to dense tables at
    construction; ``backend="interpreted"`` keeps the charset-walking
    reference engine.  A pre-lowered :class:`CompiledDFA` (restored from
    the artifact cache) may be supplied via ``compiled``.
    """

    def __init__(
        self,
        terminal_set: TerminalSet,
        *,
        minimize_dfa: bool = True,
        dfa: DFA | None = None,
        backend: str = "compiled",
        compiled: CompiledDFA | None = None,
    ):
        if backend not in ("compiled", "interpreted"):
            raise ValueError(f"unknown scanner backend {backend!r}")
        self.terminals = terminal_set
        self.layout = terminal_set.layout_names()
        if dfa is None:
            nfa = build_combined_nfa(terminal_set.regexes())
            dfa = build_scanner_dfa(nfa, do_minimize=minimize_dfa)
        self.dfa: DFA = dfa
        if compiled is not None:
            self.compiled: CompiledDFA | None = compiled
        elif backend == "compiled":
            universe = TerminalUniverse.for_terminals(terminal_set)
            self.compiled = CompiledDFA.from_dfa(dfa, universe, self.layout)
        else:
            self.compiled = None
        self.universe: TerminalUniverse | None = (
            self.compiled.universe if self.compiled is not None else None
        )
        # valid-set -> valid | layout.  The parser hands over one of a
        # small number of per-state valid sets, but every token of every
        # parse calls scan(); memoizing the union beats rebuilding the
        # frozenset per token.
        self._interesting: dict[frozenset[str], frozenset[str]] = {}
        # Compiled-engine memos: valid frozenset -> bitmask, and
        # surviving-candidate bitmask -> disambiguation outcome.
        self._valid_masks: dict[frozenset[str], int] = {}
        self._outcomes: dict[int, tuple] = {}
        # Last text's equivalence-class sequence (identity-keyed; the
        # parser hands the same str object to every scan of a parse).
        self._cls_cache: tuple[str, object] | None = None
        # tokenize_all's all-terminals-valid set, built once per scanner.
        self._all_valid: frozenset[str] | None = None
        # Batch-tokenization scan memos: valid mask -> {best_mask -> res}.
        self._batch_memos: dict[int, dict] = {}

    # -- disambiguation -------------------------------------------------------

    def _disambiguate(self, candidates: frozenset[str]) -> set[str]:
        """Apply lexical precedence: drop any terminal dominated by another
        candidate (keywords dominate Identifier)."""
        survivors = set(candidates)
        for name in candidates:
            term = self.terminals[name]
            for other in candidates:
                if other != name and other in term.dominates:
                    survivors.discard(other)
        return survivors

    def _outcome_for(self, valid_hit: frozenset[str]) -> tuple:
        """Resolve lexical precedence over ``valid_hit`` to one of
        ``("tok", name)``, ``("amb", names)`` or ``("dead", names)`` —
        the single source of truth for both scan engines."""
        chosen = self._disambiguate(valid_hit)
        if len(chosen) > 1:
            return ("amb", frozenset(chosen))
        if chosen:
            return ("tok", next(iter(chosen)))
        return ("dead", valid_hit)

    def _raise_for_outcome(self, outcome: tuple, lexeme: str,
                           location: SourceLocation) -> None:
        if outcome[0] == "amb":
            raise LexicalAmbiguityError(
                f"lexical ambiguity between {_fmt(outcome[1])} "
                f"on {lexeme!r} — add a disambiguation annotation",
                location,
            )
        # Mutual dominance ate every candidate: previously a silent dead
        # end (fell through to layout or "internal scanner error"); name
        # the cycle so the extension author can fix the declarations.
        names = outcome[1]
        edges = ", ".join(
            f"{a} dominates {b}"
            for a in sorted(names)
            for b in sorted(names)
            if b != a and b in self.terminals[a].dominates
        )
        raise ScanError(
            f"no terminal survives lexical disambiguation on {lexeme!r}: "
            f"mutual dominance among {_fmt(names)} eliminates every "
            f"candidate ({edges}) — break the dominance cycle",
            location,
        )

    # -- scanning --------------------------------------------------------------

    def scan(
        self,
        text: str,
        location: SourceLocation,
        valid: frozenset[str],
    ) -> Token:
        """Return the next non-layout token at ``location`` given the parser's
        valid terminal set.  EOF is reported as a token named ``$EOF`` when
        (and only when) it is in ``valid``."""
        if self.compiled is not None:
            mask = self._valid_masks.get(valid)
            if mask is None:
                mask = self._valid_masks[valid] = (
                    self.compiled.universe.mask_of(valid)
                )
            return self.scan_compiled(text, location, mask, valid)[0]
        return self.scan_interpreted(text, location, valid)

    def scan_interpreted(
        self,
        text: str,
        location: SourceLocation,
        valid: frozenset[str],
    ) -> Token:
        """The reference engine: charset-walking DFA over name frozensets."""
        pos = location.offset
        interesting = self._interesting.get(valid)
        if interesting is None:
            interesting = self._interesting[valid] = valid | self.layout

        while True:
            if pos >= len(text):
                if EOF in valid:
                    return Token(EOF, "", SourceSpan.at(location))
                raise ScanError(
                    f"unexpected end of input; expected one of {_fmt(valid)}",
                    location,
                )

            best_end = None
            best_names: frozenset[str] = frozenset()
            for end, names in self.dfa.match_prefixes(text, pos):
                if end == pos:
                    continue  # never emit empty tokens
                hit = names & interesting
                if hit:
                    best_end, best_names = end, frozenset(hit)
            if best_end is None:
                raise ScanError(
                    f"no valid token at {text[pos:pos + 20]!r}; "
                    f"expected one of {_fmt(valid)}",
                    location,
                )

            lexeme = text[pos:best_end]
            end_loc = location.advanced_by(lexeme)

            valid_hit = best_names & valid
            if valid_hit:
                outcome = self._outcome_for(frozenset(valid_hit))
                if outcome[0] == "tok":
                    return Token(outcome[1], lexeme, SourceSpan(location, end_loc))
                self._raise_for_outcome(outcome, lexeme, location)
            if best_names & self.layout:
                pos = best_end
                location = end_loc
                continue
            raise ScanError(  # pragma: no cover - guarded by best_names & interesting
                f"internal scanner error on {lexeme!r}", location
            )

    def scan_compiled(
        self,
        text: str,
        location: SourceLocation,
        valid_mask: int,
        valid: frozenset[str],
    ) -> tuple[Token, int]:
        """The table-driven engine: one forward pass per token over dense
        ``state x class`` tables, returning ``(token, terminal_index)`` so
        the compiled parser never touches terminal names.  ``valid`` is
        only consulted to format diagnostics identical to the reference
        engine's."""
        cd = self.compiled
        cached = self._cls_cache
        if cached is not None and cached[0] is text:
            cls = cached[1]
        else:
            cls = cd.classes_of_text(text)
            self._cls_cache = (text, cls)
        trans = cd.trans_off
        accepts = cd.accept_off
        start_off = cd.start_off
        layout_mask = cd.layout_mask
        interesting = valid_mask | layout_mask
        text_len = len(text)
        pos = location.offset
        filename = location.filename
        line = location.line
        column = location.column
        outcomes = self._outcomes
        _Loc = SourceLocation
        # The token-start location: the caller's object while no layout
        # has been skipped, rebuilt lazily (ints -> object) afterwards so
        # layout skips construct no location objects at all.
        start_loc: SourceLocation | None = location

        while True:
            if pos >= text_len:
                if start_loc is None:
                    start_loc = _Loc(line, column, pos, filename)
                if valid_mask & cd.eof_bit:
                    return Token(EOF, "", SourceSpan.at(start_loc)), cd.eof_index
                raise ScanError(
                    f"unexpected end of input; expected one of {_fmt(valid)}",
                    start_loc,
                )

            off = start_off
            i = pos
            best_end = -1
            best_mask = 0
            while i < text_len:
                off = trans[off + cls[i]]
                if off < 0:
                    break
                i += 1
                hit = accepts[off] & interesting
                if hit:
                    best_end = i
                    best_mask = hit
            if best_end < 0:
                if start_loc is None:
                    start_loc = _Loc(line, column, pos, filename)
                raise ScanError(
                    f"no valid token at {text[pos:pos + 20]!r}; "
                    f"expected one of {_fmt(valid)}",
                    start_loc,
                )

            lexeme = text[pos:best_end]
            # location.advanced_by(lexeme), inlined on ints.
            nl = lexeme.count("\n")
            if nl:
                end_line = line + nl
                end_col = best_end - pos - lexeme.rfind("\n") - 1
            else:
                end_line = line
                end_col = column + best_end - pos

            hit_mask = best_mask & valid_mask
            if hit_mask:
                outcome = outcomes.get(hit_mask)
                if outcome is None:
                    names = cd.universe.names_of(hit_mask)
                    outcome = self._outcome_for(names)
                    if outcome[0] == "tok":
                        outcome = (*outcome, cd.universe.index[outcome[1]])
                    outcomes[hit_mask] = outcome
                if start_loc is None:
                    start_loc = _Loc(line, column, pos, filename)
                if outcome[0] == "tok":
                    return (
                        Token(
                            outcome[1],
                            lexeme,
                            SourceSpan(
                                start_loc,
                                _Loc(end_line, end_col, best_end, filename),
                            ),
                        ),
                        outcome[2],
                    )
                self._raise_for_outcome(outcome, lexeme, start_loc)
            if best_mask & layout_mask:
                pos = best_end
                line = end_line
                column = end_col
                start_loc = None
                continue
            raise ScanError(  # pragma: no cover - guarded by accepts & interesting
                f"internal scanner error on {lexeme!r}",
                start_loc or _Loc(line, column, pos, filename),
            )

    def tokenize_all(self, text: str, filename: str = "<input>") -> list[Token]:
        """Context-free tokenization (all terminals valid) — for tests/tools."""
        valid = self._all_valid
        if valid is None:
            valid = self._all_valid = frozenset(
                t.name for t in self.terminals if not t.layout
            ) | {EOF}
        if self.compiled is not None:
            return self._tokenize_compiled(text, filename, valid)
        loc = SourceLocation(filename=filename)
        out: list[Token] = []
        while True:
            tok = self.scan_interpreted(text, loc, valid)
            out.append(tok)
            if tok.terminal == EOF:
                return out
            loc = tok.span.end

    def _tokenize_compiled(
        self, text: str, filename: str, valid: frozenset[str]
    ) -> list[Token]:
        """Batch tokenization over the dense tables: the fused scan loop
        of :meth:`~repro.parsing.parser.Parser._parse_compiled` without a
        parser — one pass, locations advanced as ints, every edge case
        (EOF, errors, unmemoized masks) delegated to
        :meth:`scan_compiled` for reference-identical behavior."""
        cd = self.compiled
        mask = self._valid_masks.get(valid)
        if mask is None:
            mask = self._valid_masks[valid] = cd.universe.mask_of(valid)
        cached = self._cls_cache
        if cached is not None and cached[0] is text:
            cls = cached[1]
        else:
            cls = cd.classes_of_text(text)
            self._cls_cache = (text, cls)
        trans = cd.trans_off
        start_off = cd.start_off
        layout_mask = cd.layout_mask
        accepts = cd.premasked_accepts(mask | layout_mask)
        outcomes = self._outcomes
        memo = self._batch_memos.get(mask)
        if memo is None:
            memo = self._batch_memos[mask] = {}
        text_len = len(text)
        _Loc = SourceLocation
        _Span = SourceSpan
        _Tok = Token

        out: list[Token] = []
        line = 1
        column = 0
        pos = 0
        start_loc: SourceLocation | None = _Loc(filename=filename)
        while True:
            res = None
            if pos < text_len:
                off = start_off
                i = pos
                best_end = -1
                best_mask = 0
                while i < text_len:
                    off = trans[off + cls[i]]
                    if off < 0:
                        break
                    i += 1
                    hit = accepts[off]
                    if hit:
                        best_end = i
                        best_mask = hit
                if best_end >= 0:
                    res = memo.get(best_mask)
                    if res is None:
                        hm = best_mask & mask
                        if hm:
                            outcome = outcomes.get(hm)
                            if outcome is None:
                                outcome = self._outcome_for(
                                    cd.universe.names_of(hm)
                                )
                                if outcome[0] == "tok":
                                    outcome = (
                                        *outcome,
                                        cd.universe.index[outcome[1]],
                                    )
                                outcomes[hm] = outcome
                            if outcome[0] == "tok":
                                res = memo[best_mask] = (
                                    1, outcome[1], outcome[2],
                                )
                        elif best_mask & layout_mask:
                            res = memo[best_mask] = (0,)
            if res is None:
                # EOF, scan error, ambiguity, over-long lexeme: delegate.
                if start_loc is None:
                    start_loc = _Loc(line, column, pos, filename)
                tok = self.scan_compiled(text, start_loc, mask, valid)[0]
                out.append(tok)
                if tok.terminal == EOF:
                    return out
                end_loc = tok.span.end
                line = end_loc.line
                column = end_loc.column
                pos = end_loc.offset
                start_loc = end_loc
                continue
            if res[0]:
                lexeme = text[pos:best_end]
                nl = lexeme.count("\n")
                if nl:
                    end_line = line + nl
                    end_col = best_end - pos - lexeme.rfind("\n") - 1
                else:
                    end_line = line
                    end_col = column + best_end - pos
                if start_loc is None:
                    start_loc = _Loc(line, column, pos, filename)
                end_loc = _Loc(end_line, end_col, best_end, filename)
                out.append(_Tok(res[1], lexeme, _Span(start_loc, end_loc)))
                line = end_line
                column = end_col
                pos = best_end
                start_loc = end_loc
            else:  # layout
                nl = text.count("\n", pos, best_end)
                if nl:
                    line += nl
                    column = best_end - 1 - text.rfind("\n", pos, best_end)
                else:
                    column += best_end - pos
                pos = best_end
                start_loc = None


def _fmt(names: frozenset[str]) -> str:
    listed = sorted(names)
    if len(listed) > 8:
        listed = listed[:8] + ["..."]
    return "{" + ", ".join(listed) + "}"
