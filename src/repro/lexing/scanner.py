"""Context-aware scanning (Van Wyk & Schwerdfeger, GPCE'07 — the paper's [9]).

A conventional scanner resolves "which terminal is this?" globally; a
context-aware scanner asks the *parser* which terminals are valid in the
current LR state and only matches those.  This is what lets independently
developed extensions reuse keywords (e.g. ``with``) without clashing with
host identifiers, and is the mechanism §VI-A relies on.

The scan algorithm at each point:

1. Run the combined DFA for the longest prefix whose accept-set intersects
   ``valid ∪ layout`` (maximal munch, restricted to context).
2. Intersect the accept-set with the valid set; apply lexical precedence
   (``dominates``) to shrink it.
3. One survivor -> token.  Several -> :class:`LexicalAmbiguityError`.
   None at any length -> :class:`ScanError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lexing.dfa import DFA, build_scanner_dfa
from repro.lexing.nfa import build_combined_nfa
from repro.lexing.terminals import TerminalSet
from repro.util.diagnostics import SourceLocation, SourceSpan

EOF = "$EOF"


@dataclass(frozen=True, slots=True)
class Token:
    terminal: str
    lexeme: str
    span: SourceSpan

    def __repr__(self) -> str:
        return f"Token({self.terminal}, {self.lexeme!r})"


class ScanError(Exception):
    def __init__(self, message: str, location: SourceLocation):
        self.location = location
        super().__init__(f"{location}: {message}")


class LexicalAmbiguityError(ScanError):
    pass


class ContextAwareScanner:
    """Scanner over a :class:`TerminalSet`, driven by valid-lookahead sets."""

    def __init__(
        self,
        terminal_set: TerminalSet,
        *,
        minimize_dfa: bool = True,
        dfa: DFA | None = None,
    ):
        self.terminals = terminal_set
        self.layout = terminal_set.layout_names()
        if dfa is None:
            nfa = build_combined_nfa(terminal_set.regexes())
            dfa = build_scanner_dfa(nfa, do_minimize=minimize_dfa)
        self.dfa: DFA = dfa
        # valid-set -> valid | layout.  The parser hands over one of a
        # small number of per-state valid sets, but every token of every
        # parse calls scan(); memoizing the union beats rebuilding the
        # frozenset per token.
        self._interesting: dict[frozenset[str], frozenset[str]] = {}

    # -- disambiguation -------------------------------------------------------

    def _disambiguate(self, candidates: frozenset[str]) -> set[str]:
        """Apply lexical precedence: drop any terminal dominated by another
        candidate (keywords dominate Identifier)."""
        survivors = set(candidates)
        for name in candidates:
            term = self.terminals[name]
            for other in candidates:
                if other != name and other in term.dominates:
                    survivors.discard(other)
        return survivors

    # -- scanning --------------------------------------------------------------

    def scan(
        self,
        text: str,
        location: SourceLocation,
        valid: frozenset[str],
    ) -> Token:
        """Return the next non-layout token at ``location`` given the parser's
        valid terminal set.  EOF is reported as a token named ``$EOF`` when
        (and only when) it is in ``valid``."""
        pos = location.offset
        interesting = self._interesting.get(valid)
        if interesting is None:
            interesting = self._interesting[valid] = valid | self.layout

        while True:
            if pos >= len(text):
                if EOF in valid:
                    return Token(EOF, "", SourceSpan.at(location))
                raise ScanError(
                    f"unexpected end of input; expected one of {_fmt(valid)}",
                    location,
                )

            best_end = None
            best_names: frozenset[str] = frozenset()
            for end, names in self.dfa.match_prefixes(text, pos):
                if end == pos:
                    continue  # never emit empty tokens
                hit = names & interesting
                if hit:
                    best_end, best_names = end, frozenset(hit)
            if best_end is None:
                raise ScanError(
                    f"no valid token at {text[pos:pos + 20]!r}; "
                    f"expected one of {_fmt(valid)}",
                    location,
                )

            lexeme = text[pos:best_end]
            end_loc = location.advanced_by(lexeme)

            layout_hit = best_names & self.layout
            valid_hit = best_names & valid
            if valid_hit:
                chosen = self._disambiguate(frozenset(valid_hit))
                if len(chosen) > 1:
                    raise LexicalAmbiguityError(
                        f"lexical ambiguity between {_fmt(frozenset(chosen))} "
                        f"on {lexeme!r} — add a disambiguation annotation",
                        location,
                    )
                if chosen:
                    return Token(next(iter(chosen)), lexeme, SourceSpan(location, end_loc))
            if layout_hit:
                pos = best_end
                location = end_loc
                continue
            raise ScanError(  # pragma: no cover - guarded by best_names & interesting
                f"internal scanner error on {lexeme!r}", location
            )

    def tokenize_all(self, text: str, filename: str = "<input>") -> list[Token]:
        """Context-free tokenization (all terminals valid) — for tests/tools."""
        valid = frozenset(t.name for t in self.terminals if not t.layout) | {EOF}
        loc = SourceLocation(filename=filename)
        out: list[Token] = []
        while True:
            tok = self.scan(text, loc, valid)
            out.append(tok)
            if tok.terminal == EOF:
                return out
            loc = tok.span.end


def _fmt(names: frozenset[str]) -> str:
    listed = sorted(names)
    if len(listed) > 8:
        listed = listed[:8] + ["..."]
    return "{" + ", ".join(listed) + "}"
