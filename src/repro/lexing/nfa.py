"""Thompson construction: regex AST -> nondeterministic finite automaton.

States are small integers; transitions are labeled with :class:`CharSet`
values (``None`` label = epsilon).  A combined NFA for a whole terminal
set is built by :func:`build_combined_nfa`, whose accepting states are
tagged with the terminal they recognize — the shape Copper feeds into its
subset construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lexing.charset import CharSet
from repro.lexing.regex import Alt, Chars, Concat, Epsilon, Regex, Star


@dataclass
class NFA:
    """An NFA under construction.  ``accepts`` maps state -> terminal name."""

    transitions: list[list[tuple[CharSet | None, int]]] = field(default_factory=list)
    start: int = 0
    accepts: dict[int, str] = field(default_factory=dict)

    def new_state(self) -> int:
        self.transitions.append([])
        return len(self.transitions) - 1

    def add_edge(self, src: int, label: CharSet | None, dst: int) -> None:
        self.transitions[src].append((label, dst))

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    # -- simulation (reference semantics, used by property tests) ------------

    def epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            s = stack.pop()
            for label, dst in self.transitions[s]:
                if label is None and dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def step(self, states: frozenset[int], ch: str) -> frozenset[int]:
        out = set()
        for s in states:
            for label, dst in self.transitions[s]:
                if label is not None and ch in label:
                    out.add(dst)
        return self.epsilon_closure(frozenset(out))

    def matches(self, text: str) -> set[str]:
        """Terminals accepting exactly ``text`` (reference simulation)."""
        current = self.epsilon_closure(frozenset({self.start}))
        for ch in text:
            current = self.step(current, ch)
            if not current:
                return set()
        return {self.accepts[s] for s in current if s in self.accepts}


def _compile(nfa: NFA, node: Regex, entry: int, exit_: int) -> None:
    """Wire ``node`` between the existing states ``entry`` and ``exit_``."""
    if isinstance(node, Epsilon):
        nfa.add_edge(entry, None, exit_)
    elif isinstance(node, Chars):
        nfa.add_edge(entry, node.charset, exit_)
    elif isinstance(node, Concat):
        mid = nfa.new_state()
        _compile(nfa, node.left, entry, mid)
        _compile(nfa, node.right, mid, exit_)
    elif isinstance(node, Alt):
        _compile(nfa, node.left, entry, exit_)
        _compile(nfa, node.right, entry, exit_)
    elif isinstance(node, Star):
        hub = nfa.new_state()
        nfa.add_edge(entry, None, hub)
        _compile(nfa, node.body, hub, hub)
        nfa.add_edge(hub, None, exit_)
    else:  # pragma: no cover - exhaustive over Regex subclasses
        raise TypeError(f"unknown regex node {node!r}")


def build_nfa(node: Regex, terminal: str = "<accept>") -> NFA:
    """Compile a single regex into an NFA accepting ``terminal``."""
    nfa = NFA()
    start = nfa.new_state()
    end = nfa.new_state()
    nfa.start = start
    _compile(nfa, node, start, end)
    nfa.accepts[end] = terminal
    return nfa


def build_combined_nfa(terminals: dict[str, Regex]) -> NFA:
    """One NFA whose accepting states are tagged per terminal.

    A fresh start state has an epsilon edge into each terminal's sub-NFA, so
    the later subset construction yields a single scanner DFA that reports,
    at each accepting DFA state, the *set* of terminals matched — the input
    the context-aware scanner disambiguates with parser context.
    """
    nfa = NFA()
    start = nfa.new_state()
    nfa.start = start
    for name, node in terminals.items():
        entry = nfa.new_state()
        end = nfa.new_state()
        nfa.add_edge(start, None, entry)
        _compile(nfa, node, entry, end)
        nfa.accepts[end] = name
    return nfa
