"""Character sets represented as sorted disjoint codepoint intervals.

NFA/DFA transitions are labeled with :class:`CharSet` values rather than
individual characters so that classes like ``[^"\\n]`` or ``.`` need not
enumerate the alphabet.  All set algebra needed by the subset construction
(union, intersection, difference, complement, atom partitioning) lives here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

MAX_CODEPOINT = 0x10FFFF


@dataclass(frozen=True, slots=True)
class CharSet:
    """An immutable set of codepoints stored as disjoint inclusive intervals."""

    intervals: tuple[tuple[int, int], ...] = ()

    # -- constructors -------------------------------------------------------

    @staticmethod
    def empty() -> "CharSet":
        return _EMPTY

    @staticmethod
    def single(ch: str) -> "CharSet":
        cp = ord(ch)
        return CharSet(((cp, cp),))

    @staticmethod
    def of(chars: Iterable[str]) -> "CharSet":
        return CharSet.from_intervals((ord(c), ord(c)) for c in chars)

    @staticmethod
    def range(lo: str, hi: str) -> "CharSet":
        a, b = ord(lo), ord(hi)
        if a > b:
            raise ValueError(f"invalid character range {lo!r}-{hi!r}")
        return CharSet(((a, b),))

    @staticmethod
    def any_char() -> "CharSet":
        return CharSet(((0, MAX_CODEPOINT),))

    @staticmethod
    def from_intervals(pairs: Iterable[tuple[int, int]]) -> "CharSet":
        """Normalize arbitrary (possibly overlapping, unsorted) intervals."""
        items = sorted(pairs)
        merged: list[tuple[int, int]] = []
        for lo, hi in items:
            if lo > hi:
                continue
            if merged and lo <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return CharSet(tuple(merged))

    # -- queries -------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __contains__(self, ch: str) -> bool:
        return self.contains_cp(ord(ch))

    def contains_cp(self, cp: int) -> bool:
        lo, hi = 0, len(self.intervals) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            a, b = self.intervals[mid]
            if cp < a:
                hi = mid - 1
            elif cp > b:
                lo = mid + 1
            else:
                return True
        return False

    def size(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def sample(self) -> str:
        """An arbitrary member character (for error messages and tests)."""
        if not self.intervals:
            raise ValueError("sample() of empty CharSet")
        return chr(self.intervals[0][0])

    def chars(self) -> Iterator[str]:
        for lo, hi in self.intervals:
            for cp in range(lo, hi + 1):
                yield chr(cp)

    # -- algebra --------------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        return CharSet.from_intervals((*self.intervals, *other.intervals))

    def intersect(self, other: "CharSet") -> "CharSet":
        out: list[tuple[int, int]] = []
        i = j = 0
        a, b = self.intervals, other.intervals
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return CharSet(tuple(out))

    def subtract(self, other: "CharSet") -> "CharSet":
        return self.intersect(other.complement())

    def complement(self) -> "CharSet":
        out: list[tuple[int, int]] = []
        prev = 0
        for lo, hi in self.intervals:
            if lo > prev:
                out.append((prev, lo - 1))
            prev = hi + 1
        if prev <= MAX_CODEPOINT:
            out.append((prev, MAX_CODEPOINT))
        return CharSet(tuple(out))

    def __repr__(self) -> str:
        parts = []
        for lo, hi in self.intervals[:8]:
            if lo == hi:
                parts.append(repr(chr(lo)))
            else:
                parts.append(f"{chr(lo)!r}-{chr(hi)!r}")
        if len(self.intervals) > 8:
            parts.append("...")
        return f"CharSet({', '.join(parts)})"


_EMPTY = CharSet(())


def partition_atoms(sets: Iterable[CharSet]) -> list[CharSet]:
    """Split a collection of charsets into disjoint *atoms*.

    Every input set is expressible as a union of returned atoms, and the
    atoms are pairwise disjoint.  Used by the subset construction so a DFA
    state's outgoing edges are deterministic by construction.
    """
    # Boundary method: collect all interval endpoints, sweep once.
    boundaries: set[int] = set()
    live = [s for s in sets if s]
    for s in live:
        for lo, hi in s.intervals:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    if not boundaries:
        return []
    points = sorted(boundaries)
    atoms: list[CharSet] = []
    for lo, nxt in zip(points, points[1:]):
        piece = CharSet(((lo, nxt - 1),))
        if any(s.intersect(piece) for s in live):
            atoms.append(piece)
    return atoms
