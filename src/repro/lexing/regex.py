"""Regular-expression abstract syntax and a parser for a practical subset.

Terminals of the host language and of extensions declare their lexical
syntax with these regexes (the paper's Copper does the same).  Supported
syntax: literal characters, escapes (``\\n \\t \\r \\\\ \\d \\w \\s`` and
escaped metacharacters), ``.``, character classes ``[a-z]`` / ``[^...]``,
grouping ``( )``, alternation ``|``, and the quantifiers ``* + ?`` and
``{n}`` / ``{n,m}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lexing.charset import CharSet


class RegexError(ValueError):
    """Malformed regular expression."""


class Regex:
    """Base class of regex AST nodes."""

    __slots__ = ()

    def nullable(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    def nullable(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Chars(Regex):
    """Match one character drawn from a :class:`CharSet`."""

    charset: CharSet

    def nullable(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()


@dataclass(frozen=True, slots=True)
class Alt(Regex):
    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()


@dataclass(frozen=True, slots=True)
class Star(Regex):
    body: Regex

    def nullable(self) -> bool:
        return True


def concat_all(parts: list[Regex]) -> Regex:
    if not parts:
        return Epsilon()
    out = parts[0]
    for p in parts[1:]:
        out = Concat(out, p)
    return out


def alt_all(parts: list[Regex]) -> Regex:
    if not parts:
        raise RegexError("empty alternation")
    out = parts[0]
    for p in parts[1:]:
        out = Alt(out, p)
    return out


def plus(body: Regex) -> Regex:
    return Concat(body, Star(body))


def opt(body: Regex) -> Regex:
    return Alt(body, Epsilon())


def literal(text: str) -> Regex:
    """A regex matching exactly ``text``."""
    return concat_all([Chars(CharSet.single(c)) for c in text])


_ESCAPE_CLASSES = {
    "d": CharSet.range("0", "9"),
    "w": (
        CharSet.range("a", "z")
        .union(CharSet.range("A", "Z"))
        .union(CharSet.range("0", "9"))
        .union(CharSet.single("_"))
    ),
    "s": CharSet.of(" \t\n\r\f\v"),
}

_ESCAPE_CHARS = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
}

_METACHARS = set("|*+?()[]{}.\\^$-")


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def error(self, msg: str) -> RegexError:
        return RegexError(f"{msg} at position {self.pos} in regex {self.pattern!r}")

    def peek(self) -> str | None:
        return self.pattern[self.pos] if self.pos < len(self.pattern) else None

    def next(self) -> str:
        if self.pos >= len(self.pattern):
            raise self.error("unexpected end of pattern")
        ch = self.pattern[self.pos]
        self.pos += 1
        return ch

    def parse(self) -> Regex:
        node = self.alternation()
        if self.pos != len(self.pattern):
            raise self.error(f"unexpected {self.pattern[self.pos]!r}")
        return node

    def alternation(self) -> Regex:
        parts = [self.concatenation()]
        while self.peek() == "|":
            self.next()
            parts.append(self.concatenation())
        return alt_all(parts)

    def concatenation(self) -> Regex:
        parts: list[Regex] = []
        while (c := self.peek()) is not None and c not in "|)":
            parts.append(self.repetition())
        return concat_all(parts)

    def repetition(self) -> Regex:
        node = self.atom()
        while (c := self.peek()) is not None and c in "*+?{":
            if c == "*":
                self.next()
                node = Star(node)
            elif c == "+":
                self.next()
                node = plus(node)
            elif c == "?":
                self.next()
                node = opt(node)
            else:
                node = self._bounded(node)
        return node

    def _bounded(self, node: Regex) -> Regex:
        start = self.pos
        self.next()  # '{'
        digits = ""
        while (c := self.peek()) is not None and c.isdigit():
            digits += self.next()
        if not digits:
            raise self.error("expected count in {n} quantifier")
        lo = int(digits)
        hi = lo
        if self.peek() == ",":
            self.next()
            digits = ""
            while (c := self.peek()) is not None and c.isdigit():
                digits += self.next()
            if not digits:
                raise self.error("expected upper bound in {n,m} quantifier")
            hi = int(digits)
        if self.peek() != "}":
            self.pos = start
            raise self.error("unterminated {n,m} quantifier")
        self.next()
        if hi < lo:
            raise self.error(f"quantifier bounds reversed: {{{lo},{hi}}}")
        required = [node] * lo
        optional = [opt(node)] * (hi - lo)
        return concat_all(required + optional) if (required or optional) else Epsilon()

    def atom(self) -> Regex:
        c = self.next()
        if c == "(":
            node = self.alternation()
            if self.peek() != ")":
                raise self.error("unterminated group")
            self.next()
            return node
        if c == ".":
            return Chars(CharSet.single("\n").complement())
        if c == "[":
            return Chars(self.char_class())
        if c == "\\":
            return Chars(self.escape())
        if c in "*+?{":
            raise self.error(f"quantifier {c!r} with nothing to repeat")
        if c in ")]":
            raise self.error(f"unbalanced {c!r}")
        return Chars(CharSet.single(c))

    def escape(self) -> CharSet:
        c = self.next()
        if c in _ESCAPE_CLASSES:
            return _ESCAPE_CLASSES[c]
        if c.upper() in _ESCAPE_CLASSES:  # \D \W \S
            return _ESCAPE_CLASSES[c.lower()].complement()
        if c in _ESCAPE_CHARS:
            return CharSet.single(_ESCAPE_CHARS[c])
        if c in _METACHARS or c in "\"'/ ":
            return CharSet.single(c)
        raise self.error(f"unknown escape \\{c}")

    def char_class(self) -> CharSet:
        negate = False
        if self.peek() == "^":
            self.next()
            negate = True
        out = CharSet.empty()
        first = True
        while True:
            c = self.peek()
            if c is None:
                raise self.error("unterminated character class")
            if c == "]" and not first:
                self.next()
                break
            first = False
            lo = self._class_char()
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.next()
                hi = self._class_char()
                if isinstance(lo, CharSet) or isinstance(hi, CharSet):
                    raise self.error("character range endpoint cannot be a class escape")
                out = out.union(CharSet.range(lo, hi))
            else:
                out = out.union(lo if isinstance(lo, CharSet) else CharSet.single(lo))
        return out.complement() if negate else out

    def _class_char(self) -> "str | CharSet":
        c = self.next()
        if c == "\\":
            nxt = self.peek()
            if nxt is not None and (nxt in _ESCAPE_CLASSES or nxt.lower() in _ESCAPE_CLASSES):
                return self.escape()
            cs = self.escape()
            return cs.sample()
        return c


def parse_regex(pattern: str) -> Regex:
    """Parse ``pattern`` into a :class:`Regex` AST."""
    return _Parser(pattern).parse()
