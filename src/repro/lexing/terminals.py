"""Terminal symbol declarations with lexical precedence.

A terminal couples a name with a regex and Copper-style disambiguation
metadata: a terminal may *dominate* others (keywords dominate identifiers),
may be *layout* (whitespace/comments, skipped between tokens), and may be
declared a *marking terminal* — the unique terminal that introduces an
extension's syntax, which the modular determinism analysis (§VI-A)
requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lexing.regex import Regex, literal, parse_regex


@dataclass(frozen=True)
class Terminal:
    name: str
    regex: Regex
    dominates: frozenset[str] = frozenset()
    layout: bool = False
    marking: bool = False
    origin: str = "host"  # which grammar module declared it

    def __repr__(self) -> str:
        return f"Terminal({self.name})"


@dataclass
class TerminalSet:
    """An ordered collection of terminal declarations."""

    terminals: dict[str, Terminal] = field(default_factory=dict)

    def declare(
        self,
        name: str,
        pattern: str,
        *,
        keyword: bool = False,
        dominates: tuple[str, ...] = (),
        layout: bool = False,
        marking: bool = False,
        origin: str = "host",
        regex: Regex | None = None,
    ) -> Terminal:
        """Declare a terminal.

        ``keyword=True`` means ``pattern`` is a literal string and the
        terminal dominates ``Identifier`` — the common case for ``with``,
        ``genarray`` etc.  Otherwise ``pattern`` is regex syntax.
        """
        if name in self.terminals:
            raise ValueError(f"duplicate terminal {name!r}")
        if regex is None:
            regex = literal(pattern) if keyword else parse_regex(pattern)
        doms = set(dominates)
        if keyword:
            doms.add("Identifier")
        term = Terminal(
            name=name,
            regex=regex,
            dominates=frozenset(doms),
            layout=layout,
            marking=marking,
            origin=origin,
        )
        self.terminals[name] = term
        return term

    def merge(self, other: "TerminalSet") -> "TerminalSet":
        """Compose terminal sets (host ∪ extension); names must not clash
        unless the declarations are identical (shared host terminals)."""
        out = TerminalSet(dict(self.terminals))
        for name, term in other.terminals.items():
            if name in out.terminals and out.terminals[name] != term:
                raise ValueError(
                    f"terminal {name!r} declared incompatibly by "
                    f"{out.terminals[name].origin!r} and {term.origin!r}"
                )
            out.terminals.setdefault(name, term)
        return out

    def __iter__(self):
        return iter(self.terminals.values())

    def __contains__(self, name: str) -> bool:
        return name in self.terminals

    def __getitem__(self, name: str) -> Terminal:
        return self.terminals[name]

    def layout_names(self) -> frozenset[str]:
        return frozenset(t.name for t in self if t.layout)

    def regexes(self) -> dict[str, Regex]:
        return {t.name: t.regex for t in self}
