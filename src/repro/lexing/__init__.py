"""Lexical substrate: regexes, NFA/DFA construction, context-aware scanning.

This is the reproduction of the scanning half of Copper (paper §VI-A):
terminals are declared with regexes, compiled through Thompson NFAs and a
subset-construction DFA, and scanned *context-aware* — restricted at each
point to the terminals the LR parser considers valid.
"""

from repro.lexing.charset import CharSet
from repro.lexing.regex import Regex, literal, parse_regex
from repro.lexing.scanner import (
    EOF,
    ContextAwareScanner,
    LexicalAmbiguityError,
    ScanError,
    Token,
)
from repro.lexing.terminals import Terminal, TerminalSet

__all__ = [
    "CharSet",
    "ContextAwareScanner",
    "EOF",
    "LexicalAmbiguityError",
    "Regex",
    "ScanError",
    "Terminal",
    "TerminalSet",
    "Token",
    "literal",
    "parse_regex",
]
