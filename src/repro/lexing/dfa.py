"""Subset construction and Hopcroft minimization for scanner DFAs.

The DFA's transition labels are disjoint :class:`CharSet` atoms, so lookup
walks a short list of interval sets per state (terminal alphabets here are
tiny after atom partitioning).  Accepting states carry the *set* of
terminal names matched; the context-aware scanner intersects that set with
the parser's valid-lookahead set at match time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lexing.charset import CharSet, partition_atoms
from repro.lexing.nfa import NFA


@dataclass
class DFA:
    """Deterministic scanner automaton.

    ``transitions[s]`` is a list of ``(CharSet, target)`` pairs with pairwise
    disjoint charsets.  ``accepts[s]`` is the frozenset of terminal names
    accepted in state ``s`` (empty frozenset = non-accepting).
    """

    transitions: list[list[tuple[CharSet, int]]] = field(default_factory=list)
    accepts: list[frozenset[str]] = field(default_factory=list)
    start: int = 0

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, ch: str) -> int | None:
        cp = ord(ch)
        for cs, dst in self.transitions[state]:
            if cs.contains_cp(cp):
                return dst
        return None

    def match_prefixes(self, text: str, pos: int = 0):
        """Yield ``(end_pos, accept_set)`` for every accepting prefix of
        ``text[pos:]``, in increasing length order."""
        state = self.start
        if self.accepts[state]:
            yield pos, self.accepts[state]
        i = pos
        n = len(text)
        while i < n:
            nxt = self.step(state, text[i])
            if nxt is None:
                return
            state = nxt
            i += 1
            if self.accepts[state]:
                yield i, self.accepts[state]

    def longest_match(self, text: str, pos: int = 0) -> tuple[int, frozenset[str]] | None:
        """Longest accepting prefix starting at ``pos`` (unrestricted)."""
        best = None
        for end, names in self.match_prefixes(text, pos):
            best = (end, names)
        return best


def subset_construct(nfa: NFA) -> DFA:
    """Classic subset construction over charset atoms."""
    start_set = nfa.epsilon_closure(frozenset({nfa.start}))
    index: dict[frozenset[int], int] = {start_set: 0}
    order: list[frozenset[int]] = [start_set]
    dfa = DFA()
    dfa.transitions.append([])
    dfa.accepts.append(frozenset(nfa.accepts[s] for s in start_set if s in nfa.accepts))

    work = [start_set]
    while work:
        current = work.pop()
        src = index[current]
        labels = [
            label
            for s in current
            for (label, _dst) in nfa.transitions[s]
            if label is not None
        ]
        for atom in partition_atoms(labels):
            targets = set()
            for s in current:
                for label, dst in nfa.transitions[s]:
                    if label is not None and label.intersect(atom):
                        targets.add(dst)
            closure = nfa.epsilon_closure(frozenset(targets))
            if closure not in index:
                index[closure] = len(order)
                order.append(closure)
                dfa.transitions.append([])
                dfa.accepts.append(
                    frozenset(nfa.accepts[s] for s in closure if s in nfa.accepts)
                )
                work.append(closure)
            dfa.transitions[src].append((atom, index[closure]))
    return dfa


def minimize(dfa: DFA) -> DFA:
    """Hopcroft's algorithm: worklist refinement over inverse transitions.

    The previous implementation recomputed every state's full transition
    signature (``dfa.step`` per atom, a charset scan per call) on every
    refinement pass — quadratic in practice and the dominant cost of a
    cold translator build.  This version precomputes, once, the inverse
    transition relation per charset atom (with an explicit dead state so
    "missing transition" is an ordinary target) and then runs the
    classic worklist: a splitter ``(block, atom)`` only re-examines the
    states that can actually reach it.
    """
    n = dfa.num_states
    # Global atom alphabet: atoms refine every edge charset, so an edge
    # (cs, dst) covers exactly the atoms whose first codepoint lies in cs.
    atoms = partition_atoms(
        [cs for row in dfa.transitions for (cs, _t) in row]
    )
    na = len(atoms)
    dead = n  # explicit dead state: self-loop on every atom
    inv: list[list[list[int]]] = [
        [[] for _ in range(n + 1)] for _ in range(na)
    ]
    for s in range(n):
        seen = [False] * na
        for cs, dst in dfa.transitions[s]:
            for ai in range(na):
                if not seen[ai] and cs.contains_cp(atoms[ai].intervals[0][0]):
                    seen[ai] = True
                    inv[ai][dst].append(s)
        for ai in range(na):
            if not seen[ai]:
                inv[ai][dead].append(s)
    for ai in range(na):
        inv[ai][dead].append(dead)

    # Initial partition: group by accept-set (dead joins the non-accepting
    # group; any state equivalent to it is genuinely dead).
    groups: dict[frozenset[str], list[int]] = {}
    for s in range(n):
        groups.setdefault(dfa.accepts[s], []).append(s)
    groups.setdefault(frozenset(), []).append(dead)
    blocks: list[set[int]] = [set(members) for members in groups.values()]
    block_of = [0] * (n + 1)
    for b, members in enumerate(blocks):
        for s in members:
            block_of[s] = b

    work: set[tuple[int, int]] = {
        (b, ai) for b in range(len(blocks)) for ai in range(na)
    }
    while work:
        b, ai = work.pop()
        rows = inv[ai]
        x: set[int] = set()
        for t in blocks[b]:
            x.update(rows[t])
        affected: dict[int, set[int]] = {}
        for s in x:
            affected.setdefault(block_of[s], set()).add(s)
        for ab, hit in affected.items():
            members = blocks[ab]
            if len(hit) == len(members):
                continue
            rest = members - hit
            nb = len(blocks)
            # Keep the larger part in place; the smaller becomes a new
            # block (the "process the smaller half" bound).
            small, large = (hit, rest) if len(hit) <= len(rest) else (rest, hit)
            blocks[ab] = large
            blocks.append(small)
            for s in small:
                block_of[s] = nb
            # If (ab, c) is pending it still covers the large part; the
            # small part always needs its own splitter entry — which is
            # also the "smaller half" choice when (ab, c) is not pending.
            for ci in range(na):
                work.add((nb, ci))

    # Rebuild, dropping the dead block (unless, degenerately, it is the
    # start block) and any edge leading into it.
    dead_block = block_of[dead]
    keep = sorted(
        b for b in range(len(blocks))
        if blocks[b] - {dead} and (b != dead_block or b == block_of[dfa.start])
    )
    renum = {b: i for i, b in enumerate(keep)}
    out = DFA()
    out.transitions = [[] for _ in keep]
    out.accepts = [frozenset() for _ in keep]
    out.start = renum[block_of[dfa.start]]
    for b in keep:
        rep = min(s for s in blocks[b] if s != dead)
        out.accepts[renum[b]] = dfa.accepts[rep]
        # Merge the representative's edges by (live) target block.
        merged: dict[int, CharSet] = {}
        for cs, dst in dfa.transitions[rep]:
            tb = block_of[dst]
            if tb == dead_block and tb not in renum:
                continue
            merged[tb] = merged.get(tb, CharSet.empty()).union(cs)
        out.transitions[renum[b]] = [
            (cs, renum[tb]) for tb, cs in merged.items()
        ]
    return out


def build_scanner_dfa(nfa: NFA, do_minimize: bool = True) -> DFA:
    dfa = subset_construct(nfa)
    return minimize(dfa) if do_minimize else dfa
