"""Subset construction and Hopcroft minimization for scanner DFAs.

The DFA's transition labels are disjoint :class:`CharSet` atoms, so lookup
walks a short list of interval sets per state (terminal alphabets here are
tiny after atom partitioning).  Accepting states carry the *set* of
terminal names matched; the context-aware scanner intersects that set with
the parser's valid-lookahead set at match time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lexing.charset import CharSet, partition_atoms
from repro.lexing.nfa import NFA


@dataclass
class DFA:
    """Deterministic scanner automaton.

    ``transitions[s]`` is a list of ``(CharSet, target)`` pairs with pairwise
    disjoint charsets.  ``accepts[s]`` is the frozenset of terminal names
    accepted in state ``s`` (empty frozenset = non-accepting).
    """

    transitions: list[list[tuple[CharSet, int]]] = field(default_factory=list)
    accepts: list[frozenset[str]] = field(default_factory=list)
    start: int = 0

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    def step(self, state: int, ch: str) -> int | None:
        cp = ord(ch)
        for cs, dst in self.transitions[state]:
            if cs.contains_cp(cp):
                return dst
        return None

    def match_prefixes(self, text: str, pos: int = 0):
        """Yield ``(end_pos, accept_set)`` for every accepting prefix of
        ``text[pos:]``, in increasing length order."""
        state = self.start
        if self.accepts[state]:
            yield pos, self.accepts[state]
        i = pos
        n = len(text)
        while i < n:
            nxt = self.step(state, text[i])
            if nxt is None:
                return
            state = nxt
            i += 1
            if self.accepts[state]:
                yield i, self.accepts[state]

    def longest_match(self, text: str, pos: int = 0) -> tuple[int, frozenset[str]] | None:
        """Longest accepting prefix starting at ``pos`` (unrestricted)."""
        best = None
        for end, names in self.match_prefixes(text, pos):
            best = (end, names)
        return best


def subset_construct(nfa: NFA) -> DFA:
    """Classic subset construction over charset atoms."""
    start_set = nfa.epsilon_closure(frozenset({nfa.start}))
    index: dict[frozenset[int], int] = {start_set: 0}
    order: list[frozenset[int]] = [start_set]
    dfa = DFA()
    dfa.transitions.append([])
    dfa.accepts.append(frozenset(nfa.accepts[s] for s in start_set if s in nfa.accepts))

    work = [start_set]
    while work:
        current = work.pop()
        src = index[current]
        labels = [
            label
            for s in current
            for (label, _dst) in nfa.transitions[s]
            if label is not None
        ]
        for atom in partition_atoms(labels):
            targets = set()
            for s in current:
                for label, dst in nfa.transitions[s]:
                    if label is not None and label.intersect(atom):
                        targets.add(dst)
            closure = nfa.epsilon_closure(frozenset(targets))
            if closure not in index:
                index[closure] = len(order)
                order.append(closure)
                dfa.transitions.append([])
                dfa.accepts.append(
                    frozenset(nfa.accepts[s] for s in closure if s in nfa.accepts)
                )
                work.append(closure)
            dfa.transitions[src].append((atom, index[closure]))
    return dfa


def minimize(dfa: DFA) -> DFA:
    """Hopcroft-style partition refinement.

    Initial partition groups states by accept-set; refinement splits blocks
    whose members disagree on which block an atom leads to.  (A dead state
    is modeled implicitly: missing transition = dead.)
    """
    n = dfa.num_states
    # Global atom alphabet so signatures are comparable across states.
    atoms = partition_atoms(
        [cs for row in dfa.transitions for (cs, _t) in row]
    )
    block_of = {}
    blocks: dict[frozenset[str], list[int]] = {}
    for s in range(n):
        blocks.setdefault(dfa.accepts[s], []).append(s)
    for i, members in enumerate(blocks.values()):
        for s in members:
            block_of[s] = i

    changed = True
    while changed:
        changed = False
        new_block_of: dict[int, int] = {}
        signature_index: dict[tuple, int] = {}
        for s in range(n):
            sig_parts = [block_of[s]]
            for atom in atoms:
                target = dfa.step(s, atom.sample())
                sig_parts.append(-1 if target is None else block_of[target])
            sig = tuple(sig_parts)
            if sig not in signature_index:
                signature_index[sig] = len(signature_index)
            new_block_of[s] = signature_index[sig]
        if len(set(new_block_of.values())) != len(set(block_of.values())):
            changed = True
        block_of = new_block_of

    num_blocks = len(set(block_of.values()))
    out = DFA()
    out.transitions = [[] for _ in range(num_blocks)]
    out.accepts = [frozenset() for _ in range(num_blocks)]
    out.start = block_of[dfa.start]
    seen_rep: set[int] = set()
    for s in range(n):
        b = block_of[s]
        out.accepts[b] = dfa.accepts[s]
        if b in seen_rep:
            continue
        seen_rep.add(b)
        # Merge this representative's edges by target block.
        merged: dict[int, CharSet] = {}
        for cs, dst in dfa.transitions[s]:
            tb = block_of[dst]
            merged[tb] = merged.get(tb, CharSet.empty()).union(cs)
        out.transitions[b] = [(cs, tb) for tb, cs in merged.items()]
    return out


def build_scanner_dfa(nfa: NFA, do_minimize: bool = True) -> DFA:
    dfa = subset_construct(nfa)
    return minimize(dfa) if do_minimize else dfa
