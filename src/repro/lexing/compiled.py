"""Dense compiled scanner tables (S24).

The interpreted :class:`~repro.lexing.dfa.DFA` walks a list of
``(CharSet, target)`` pairs per character and hands the context-aware
scanner a ``frozenset`` of terminal names per accepting prefix.  That is
the right shape for *construction* — charset atoms keep the subset
construction tiny — but the wrong shape for the scan hot loop.  This
module lowers a constructed DFA to the form a generated scanner would be
compiled to:

* a **terminal universe**: every terminal name (plus ``$EOF``) mapped to a
  fixed bit index, so any set of terminals is one Python int bitmask;
* a **character equivalence-class map**: a dense 256-entry table for
  ASCII plus a sorted interval overflow map for non-ASCII codepoints,
  mapping each codepoint to a small class index (class 0 = "no
  transition anywhere");
* an ``array``-backed ``state x class -> state`` **transition table**
  (row-major, ``-1`` = dead); and
* per-state **accept bitmasks** over the terminal universe.

Context-aware maximal munch then becomes a single forward pass recording
the last position whose ``accept_mask & interesting_mask`` is non-zero —
no prefix enumeration, no per-prefix frozensets.  The scanner memoizes
lexical-precedence resolution per surviving-candidate mask, so the steady
state does pure integer work per character and per token.

Everything here is pure data; :meth:`CompiledDFA.to_payload` /
:meth:`CompiledDFA.from_payload` round-trip it through the persistent
artifact cache (:mod:`repro.service.artifacts`) so warm service starts
restore the dense tables directly instead of re-lowering.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass

from repro.lexing.charset import partition_atoms
from repro.lexing.dfa import DFA
from repro.lexing.terminals import TerminalSet

_ASCII_LIMIT = 256


@dataclass(frozen=True)
class TerminalUniverse:
    """A fixed terminal-name <-> bit-index assignment (including ``$EOF``)."""

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "index", {name: i for i, name in enumerate(self.names)}
        )

    @staticmethod
    def for_terminals(terminal_set: TerminalSet) -> "TerminalUniverse":
        from repro.lexing.scanner import EOF

        return TerminalUniverse((*(t.name for t in terminal_set), EOF))

    def mask_of(self, names) -> int:
        """Bitmask for a set of names; names outside the universe are
        dropped (they can never be matched by this scanner anyway)."""
        index = self.index
        mask = 0
        for name in names:
            i = index.get(name)
            if i is not None:
                mask |= 1 << i
        return mask

    def names_of(self, mask: int) -> frozenset[str]:
        names = self.names
        out = []
        i = 0
        while mask:
            if mask & 1:
                out.append(names[i])
            mask >>= 1
            i += 1
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.names)


class CompiledDFA:
    """A scanner DFA lowered to dense integer tables."""

    __slots__ = (
        "universe",
        "classmap",
        "overflow_bounds",
        "overflow_classes",
        "nclasses",
        "trans",
        "accept_masks",
        "start",
        "layout_mask",
        "eof_bit",
        "eof_index",
        "trans_off",
        "accept_off",
        "start_off",
        "ascii_table",
        "_np_tables",
        "_premasked",
    )

    def __init__(
        self,
        universe: TerminalUniverse,
        classmap: array,
        overflow_bounds: array,
        overflow_classes: array,
        nclasses: int,
        trans: array,
        accept_masks: tuple[int, ...],
        start: int,
        layout_mask: int,
    ):
        self.universe = universe
        self.classmap = classmap
        self.overflow_bounds = overflow_bounds
        self.overflow_classes = overflow_classes
        self.nclasses = nclasses
        self.trans = trans
        self.accept_masks = accept_masks
        self.start = start
        self.layout_mask = layout_mask
        from repro.lexing.scanner import EOF

        self.eof_index = universe.index[EOF]
        self.eof_bit = 1 << self.eof_index
        # Derived hot-loop tables (not serialized — rebuilt on restore):
        # row-offset-premultiplied transitions so the scan loop does one
        # add + one index per character, accept masks indexed by row
        # offset, and a 256-byte class table for bytes.translate.
        nstates = len(accept_masks)
        self.trans_off = array(
            "l", (t * nclasses if t >= 0 else -1 for t in trans)
        )
        accept_off = [0] * (nstates * nclasses)
        for s, mask in enumerate(accept_masks):
            accept_off[s * nclasses] = mask
        self.accept_off = accept_off
        self.start_off = start * nclasses
        self.ascii_table = (
            bytes(classmap.tolist()) if nclasses <= 256 else None
        )
        self._np_tables = None  # lazy numpy aux tables for non-ASCII text
        self._premasked: dict[int, list[int]] = {}

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_dfa(
        dfa: DFA, universe: TerminalUniverse, layout_names
    ) -> "CompiledDFA":
        """Lower ``dfa`` to dense tables over ``universe``."""
        atoms = partition_atoms(
            [cs for row in dfa.transitions for (cs, _t) in row]
        )
        nclasses = len(atoms) + 1  # class 0: codepoints with no transition

        classmap = array("i", [0]) * _ASCII_LIMIT
        # Non-ASCII: sorted half-open boundaries with the class valid up to
        # each boundary.  bisect_right(bounds, cp) lands on the segment
        # containing cp; segments outside every atom carry class 0.
        overflow: list[tuple[int, int, int]] = []  # (lo, hi, class)
        for ci, atom in enumerate(atoms, start=1):
            for lo, hi in atom.intervals:
                if lo < _ASCII_LIMIT:
                    for cp in range(lo, min(hi, _ASCII_LIMIT - 1) + 1):
                        classmap[cp] = ci
                if hi >= _ASCII_LIMIT:
                    overflow.append((max(lo, _ASCII_LIMIT), hi, ci))
        overflow.sort()
        bounds = array("l")
        classes = array("i")
        prev_end = _ASCII_LIMIT - 1
        for lo, hi, ci in overflow:
            if lo > prev_end + 1:  # gap: dead class
                bounds.append(lo - 1)
                classes.append(0)
            bounds.append(hi)
            classes.append(ci)
            prev_end = hi

        n = dfa.num_states
        trans = array("i", [-1]) * (n * nclasses)
        for s in range(n):
            base = s * nclasses
            for cs, dst in dfa.transitions[s]:
                # Atoms refine every edge charset, so membership of an
                # atom's first codepoint decides whole-atom containment.
                for ci, atom in enumerate(atoms, start=1):
                    if cs.contains_cp(atom.intervals[0][0]):
                        trans[base + ci] = dst

        accept_masks = tuple(universe.mask_of(names) for names in dfa.accepts)
        layout_mask = universe.mask_of(layout_names)
        return CompiledDFA(
            universe,
            classmap,
            bounds,
            classes,
            nclasses,
            trans,
            accept_masks,
            dfa.start,
            layout_mask,
        )

    # -- queries --------------------------------------------------------------

    def premasked_accepts(self, interesting: int) -> list[int]:
        """``accept_off`` with every mask pre-ANDed against
        ``interesting`` — the scan hot loops index it directly, dropping
        the per-character AND.  Cached per mask; scan contexts sharing a
        valid-lookahead set share one list."""
        pm = self._premasked.get(interesting)
        if pm is None:
            pm = self._premasked[interesting] = [
                a & interesting for a in self.accept_off
            ]
        return pm

    def class_of(self, cp: int) -> int:
        """Equivalence class of a codepoint (any codepoint, not just ASCII)."""
        if cp < _ASCII_LIMIT:
            return self.classmap[cp]
        i = bisect_right(self.overflow_bounds, cp - 1)
        if i < len(self.overflow_classes):
            return self.overflow_classes[i]
        return 0

    def classes_of_text(self, text: str):
        """The whole text mapped to equivalence classes, indexable by
        position.  ASCII text translates in one C pass; non-ASCII text
        goes through a vectorized numpy pass over the overflow map (one
        ``searchsorted`` replaces the per-codepoint bisect), falling
        back to a per-codepoint walk when numpy is unavailable."""
        if self.ascii_table is not None and text.isascii():
            return text.encode("ascii").translate(self.ascii_table)
        np_tables = self._np_tables
        if np_tables is None:
            np_tables = self._np_tables = _build_np_tables(
                self.classmap, self.overflow_bounds, self.overflow_classes
            )
        if np_tables is not False:
            np, np_classmap, np_bounds, np_classes_ext = np_tables
            cps = np.frombuffer(text.encode("utf-32-le"), dtype="<u4")
            out = np.zeros(len(cps), dtype=np.uint32)
            ascii_sel = cps < _ASCII_LIMIT
            out[ascii_sel] = np_classmap[cps[ascii_sel]]
            rest = cps[~ascii_sel]
            if rest.size:
                # bisect_right(bounds, cp - 1); out-of-range -> class 0
                # (np_classes_ext carries a trailing 0 for that).
                idx = np.searchsorted(np_bounds, rest - 1, side="right")
                out[~ascii_sel] = np_classes_ext[
                    np.minimum(idx, len(np_classes_ext) - 1)
                ]
            if self.nclasses <= 256:
                return out.astype(np.uint8).tobytes()
            return array("H", out.astype(np.uint16).tobytes())
        classmap = self.classmap
        class_of = self.class_of
        return array(
            "H" if self.nclasses > 256 else "B",
            (
                classmap[cp] if cp < _ASCII_LIMIT else class_of(cp)
                for cp in map(ord, text)
            ),
        )

    @property
    def num_states(self) -> int:
        return len(self.accept_masks)

    # -- serialization --------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "names": list(self.universe.names),
            "classmap": self.classmap.tobytes(),
            "overflow_bounds": self.overflow_bounds.tobytes(),
            "overflow_classes": self.overflow_classes.tobytes(),
            "nclasses": self.nclasses,
            "trans": self.trans.tobytes(),
            "accepts": list(self.accept_masks),
            "start": self.start,
            "layout_mask": self.layout_mask,
        }

    @staticmethod
    def from_payload(data: dict) -> "CompiledDFA":
        universe = TerminalUniverse(tuple(data["names"]))
        classmap = array("i")
        classmap.frombytes(data["classmap"])
        if len(classmap) != _ASCII_LIMIT:
            raise ValueError("compiled classmap has wrong length")
        bounds = array("l")
        bounds.frombytes(data["overflow_bounds"])
        classes = array("i")
        classes.frombytes(data["overflow_classes"])
        if len(bounds) != len(classes):
            raise ValueError("compiled overflow map length mismatch")
        nclasses = int(data["nclasses"])
        trans = array("i")
        trans.frombytes(data["trans"])
        accepts = tuple(int(m) for m in data["accepts"])
        if nclasses <= 0 or len(trans) != len(accepts) * nclasses:
            raise ValueError("compiled transition table shape mismatch")
        start = int(data["start"])
        if not 0 <= start < len(accepts):
            raise ValueError("compiled start state out of range")
        return CompiledDFA(
            universe,
            classmap,
            bounds,
            classes,
            nclasses,
            trans,
            accepts,
            start,
            int(data["layout_mask"]),
        )


def _build_np_tables(classmap: array, bounds: array, classes: array):
    """Numpy views of the class maps for vectorized non-ASCII lowering,
    or ``False`` when numpy is unavailable (pure-Python fallback)."""
    try:
        import numpy as np
    except Exception:  # pragma: no cover - numpy ships with the repo env
        return False
    np_classmap = np.array(list(classmap), dtype=np.uint32)
    np_bounds = np.array(list(bounds), dtype=np.int64)
    np_classes_ext = np.array(list(classes) + [0], dtype=np.uint32)
    return (np, np_classmap, np_bounds, np_classes_ext)
