"""Reference-counting pointers (paper §III-B) — automatic memory management.

"We attach an extra 4 bytes to every piece of memory that gets allocated
... if another variable also becomes a reference ... increment ... anytime
a variable goes out of scope, or gets assigned a new piece of data ...
decrement ... if a reference counter ever reaches zero, then we free."

The extension is generic over *managed* types (``Type.managed``); the
matrix extension builds its matrices on top of it (§III-C).  The
:class:`RefcountHooks` object installed on the compile context implements
the ownership discipline:

* every expression of managed type evaluates to an **owned** reference,
  except a bare variable read, which is **borrowed**;
* assignments/declarations take ownership (incrementing borrowed values,
  decrementing the overwritten referent);
* owned temporaries not consumed by the end of their statement are
  decremented then (``drain_stmt_temps``);
* scope exit decrements every managed local of the scope; ``return``
  decrements all function-scope locals after securing the return value;
  ``break``/``continue`` decrement scopes down to the loop boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.ag.core import AGSpec
from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.grammar import mk
from repro.cminus.types import Type
from repro.driver import LanguageModule
from repro.grammar.cfg import GrammarSpec

__all__ = ["RefcountHooks", "refcount_module"]


@dataclass
class _Frame:
    kind: str  # "func" | "block" | "loop"
    names: list[str] = field(default_factory=list)


class RefcountHooks:
    """Installed as ``ctx.rc``; consulted by host and matrix lowerings."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.frames: list[_Frame] = []
        self.stmt_temps: list[str] = []
        ctx.need("refcount")

    # -- classification ------------------------------------------------------

    def is_managed(self, t: Type | None) -> bool:
        return t is not None and t.managed

    # -- primitive statements ---------------------------------------------------

    def inc_stmt(self, expr: Node) -> Node:
        return mk.exprStmt(mk.call("rc_inc", mk.expr_list([expr])))

    def dec_stmt(self, expr: Node) -> Node:
        return mk.exprStmt(mk.call("rc_dec", mk.expr_list([expr])))

    # -- owned temporaries --------------------------------------------------------

    def note_temp(self, name: str) -> None:
        self.stmt_temps.append(name)

    def forget_temp(self, node_or_name) -> None:
        name = node_or_name.children[0] if isinstance(node_or_name, Node) else node_or_name
        if name in self.stmt_temps:
            self.stmt_temps.remove(name)

    def drain_stmt_temps(self) -> list[Node]:
        out = [self.dec_stmt(mk.var(t)) for t in self.stmt_temps]
        self.stmt_temps.clear()
        return out

    def owned(self, dn: DecoratedNode) -> tuple[list[Node], Node]:
        """Lower ``dn`` to an owned reference: (hoisted_stmts, expr)."""
        hs, low = dn.att("lowpair")
        hs = list(hs)
        if low.prod == "var":
            if low.children[0] in self.stmt_temps:
                self.forget_temp(low)  # transfer ownership of the temp
            else:
                hs.append(self.inc_stmt(low))  # borrowed -> owned
        return hs, low

    # -- scopes ---------------------------------------------------------------------

    def push_frame(self, kind: str) -> _Frame:
        f = _Frame(kind)
        self.frames.append(f)
        return f

    def pop_frame(self) -> _Frame:
        return self.frames.pop()

    def track_local(self, name: str) -> None:
        if self.frames:
            self.frames[-1].names.append(name)

    def _dec_frames(self, frames: list[_Frame]) -> list[Node]:
        out = []
        for f in reversed(frames):
            for name in reversed(f.names):
                out.append(self.dec_stmt(mk.var(name)))
        return out

    def scope_exit_decs(self, *, upto: str) -> list[Node]:
        """Decrements for frames from innermost up to (and including, for
        "func") the nearest frame of the given kind."""
        selected: list[_Frame] = []
        for f in reversed(self.frames):
            selected.append(f)
            if upto == "func" and f.kind == "func":
                break
            if upto == "loop" and f.kind == "loop":
                break
        return self._dec_frames(list(reversed(selected)))

    # -- statement-level lowerings called from the host ---------------------------------

    def lower_funcdef(self, n: DecoratedNode) -> Node:
        from repro.cminus.lower import rebuild_generic

        self.push_frame("func")
        try:
            return rebuild_generic(n)
        finally:
            self.pop_frame()

    def lower_block(self, n: DecoratedNode) -> Node:
        """Lower a block, tracking managed locals and freeing them at the
        end of the scope."""
        parent = n.parent
        is_loop_body = parent is not None and (
            (parent.prod == "whileStmt" and n.child_index == 1)
            or (parent.prod == "doWhile" and n.child_index == 0)
            or (parent.prod == "forStmt" and n.child_index == 3)
        )
        frame = self.push_frame("loop" if is_loop_body else "block")
        try:
            stmts = []
            sl = n.child(0)
            while len(sl.node.children) == 2:
                stmt = sl.child(0)
                stmts.append(stmt.att("lowered"))
                if stmt.prod in ("decl", "declInit"):
                    if self.is_managed(stmt.child(0).att("typerep")):
                        self.track_local(stmt.node.children[1])
                sl = sl.child(1)
            stmts.extend(self._dec_frames([frame]))
            return mk.block(mk.stmt_list(stmts))
        finally:
            self.pop_frame()

    def lower_breakish(self, n: DecoratedNode) -> Node:
        decs = self.scope_exit_decs(upto="loop")
        terminal = Node(n.prod, [], n.span)
        if not decs:
            return terminal
        return mk.seqStmt(mk.stmt_list(decs + [terminal]))

    def lower_return(self, n: DecoratedNode) -> Node:
        from repro.codegen.ctypemap import ctype_of

        ctx = self.ctx
        rett = n.inh("fun_ret")
        hs, val = n.child(0).att("lowpair")
        stmts: list[Node] = list(hs)

        needs_temp = bool(self.frames and any(f.names for f in self.frames)) \
            or bool(self.stmt_temps) or self.is_managed(rett)
        if needs_temp and val.prod != "var":
            tmp = ctx.gensym("ret")
            stmts.append(mk.declInit(mk.tRaw(ctype_of(rett, ctx)), tmp, val))
            val = mk.var(tmp)
        if self.is_managed(rett):
            name = val.children[0]
            if name in self.stmt_temps:
                self.forget_temp(name)  # call result: already owned
            else:
                stmts.append(self.inc_stmt(val))  # returning a local/param
        stmts.extend(self.drain_stmt_temps())
        stmts.extend(self.scope_exit_decs(upto="func"))
        stmts.append(mk.returnStmt(val))
        if len(stmts) == 1:
            return stmts[0]
        return mk.seqStmt(mk.stmt_list(stmts))

    def lower_return_void(self, n: DecoratedNode) -> Node:
        stmts = self.drain_stmt_temps() + self.scope_exit_decs(upto="func")
        if not stmts:
            return mk.returnVoid()
        return mk.seqStmt(mk.stmt_list(stmts + [mk.returnVoid()]))


def _install_hooks(ctx) -> None:
    ctx.rc = RefcountHooks(ctx)


@lru_cache(maxsize=1)
def refcount_module() -> LanguageModule:
    """The refcount extension adds no syntax — it contributes the runtime
    and the ownership lowering hooks (general-purpose extension, §III-B)."""
    return LanguageModule(
        name="refcount",
        grammar=GrammarSpec("refcount"),
        ag=AGSpec("refcount"),
        context_hooks=[_install_hooks],
        runtime_features=("refcount",),
    )
