"""Unroll-and-jam as an *independently developed* transformation spec.

The paper's §V closes: "An important feature here is that new
transformation specifications can be easily added, in the same way in
which new independently-developed language extensions are added to the
host language."  This module is the demonstration: a third party (this
file knows nothing the transform extension's internals don't export)
contributes

    unrolljam I J by F

— unroll the outer loop ``I`` by ``F`` and jam the copies into the inner
loop ``J``'s body — by (a) adding a bridge production on the transform
extension's ``Clause`` nonterminal, marked by its own ``unrolljam``
keyword (so it passes the determinism analysis layered on
host+matrix+transform), and (b) registering a clause applier built from
the transform extension's exported primitives (split + reorder + unroll,
like the paper builds tile from "two splits and a reorder").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ag.core import AGSpec
from repro.ag.tree import Node
from repro.driver import LanguageModule
from repro.exts.transform import register_clause
from repro.exts.transform.loopxf import apply_reorder, apply_split
from repro.grammar.cfg import GrammarSpec

UNROLLJAM = "unrolljam"


@dataclass(frozen=True)
class UnrollJam:
    outer: str
    inner: str
    factor: int

    def check_indices(self, known: set[str]) -> list[str]:
        """Static index validation; mutates ``known`` with the derived
        loop names (the protocol the transform extension's checker uses)."""
        out = []
        for t in (self.outer, self.inner):
            if t not in known:
                out.append(f"unrolljam of unknown loop index {t!r}")
        known.discard(self.outer)
        known.add(self.outer + "_jin")
        known.add(self.outer + "_jout")
        return out


def apply_unrolljam(nest: Node, clause: UnrollJam, ctx) -> Node:
    """unroll-and-jam = split the outer loop by F, then sink the F-wide
    inner part *inside* the jam target: reorder (outer_out, inner,
    outer_in).  Composed purely from the transform extension's exported
    split/reorder, exactly the tile recipe's style."""
    from repro.exts.transform.grammar import Split

    o_in, o_out = clause.outer + "_jin", clause.outer + "_jout"
    nest = apply_split(nest, Split(clause.outer, clause.factor, o_in, o_out), ctx)
    return apply_reorder(nest, (o_out, clause.inner, o_in), ctx)


_registered = False


def _register() -> None:
    global _registered
    if _registered:
        return
    _registered = True
    register_clause(UnrollJam, apply_unrolljam)


def build_unrolljam_grammar() -> GrammarSpec:
    g = GrammarSpec(UNROLLJAM)
    g.terminal("UnrollJam", "unrolljam", keyword=True, marking=True)
    g.production(
        "Clause ::= UnrollJam Identifier Identifier By IntLit",
        lambda c: UnrollJam(c[1].lexeme, c[2].lexeme, int(c[4].lexeme)),
    )
    return g


@lru_cache(maxsize=1)
def unrolljam_module() -> LanguageModule:
    _register()
    return LanguageModule(
        name=UNROLLJAM,
        grammar=build_unrolljam_grammar(),
        ag=AGSpec(UNROLLJAM),  # no new tree shapes: clauses are plain values
        requires=("transform",),
    )
