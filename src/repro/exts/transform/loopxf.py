"""Loop-nest transformations (paper §V, Figs 9-11).

These operate on the *generated host trees* the matrix extension's
with-loop lowering produces — exactly the paper's design, where the
transformation extension manipulates code fragments via higher-order
attributes: "The split transformation, for example, uses these to extract
the body of the loop, modify the appropriate index variables, and
generate the two nested loops that replace the one being split."

Canonical loop shape (produced by with-loop expansion)::

    for (long i = <lo>; i < <hi>; i = i + 1) { ... }

* split i by F, iin, iout — two nested loops; occurrences of ``i`` are
  replaced by ``lo + iout*F + iin`` (just ``iout*F + iin`` when lo is 0,
  matching Fig 10); the trip count must be divisible by F (the paper
  "assume[s] that the dimension n is a multiple of 4"; we check at
  runtime instead).
* reorder / interchange — permute a perfect nest.
* vectorize iin — widen the loop body to 128-bit 4-lane float vectors
  (Fig 11): unit-stride accesses become vector load/store, other strides
  become gathers, loop-invariant scalars become hoisted splats
  ("floated above the outermost for loop").
* parallelize i — an OpenMP ``parallel for`` pragma on the loop (Fig 11);
  the generated C compiles with or without -fopenmp.
* unroll i by F — body replicated F times.
* tile i j by Fi Fj — the paper's derived transformation: "two splits and
  a reorder".
"""

from __future__ import annotations

from repro.ag.tree import Node
from repro.cminus.grammar import mk
from repro.cminus.lower import LoweringError
from repro.exts.transform.grammar import (
    Interchange, Parallelize, Split, Tile, Unroll,
)


class TransformError(LoweringError):
    pass


def ilit(v: int) -> Node:
    return mk.intLit(v)


# ---------------------------------------------------------------------------
# loop nest access
# ---------------------------------------------------------------------------

def is_canonical_loop(node: Node) -> bool:
    return (
        node.prod == "forStmt"
        and node.children[0].prod == "forDecl"
        and node.children[1].prod == "binop"
        and node.children[1].children[0] == "<"
    )


def loop_var(node: Node) -> str:
    return node.children[0].children[1]


def loop_bounds(node: Node) -> tuple[Node, Node]:
    return node.children[0].children[2], node.children[1].children[2]


def loop_body(node: Node) -> Node:
    return node.children[3]


def find_loop(tree: Node, name: str) -> Node | None:
    for n in tree.walk():
        if is_canonical_loop(n) and loop_var(n) == name:
            return n
    return None


def substitute_var(tree: Node, name: str, replacement: Node) -> Node:
    if tree.prod == "var" and tree.children[0] == name:
        return replacement
    kids = []
    changed = False
    for c in tree.children:
        if isinstance(c, Node):
            r = substitute_var(c, name, replacement)
            changed = changed or r is not c
            kids.append(r)
        else:
            kids.append(c)
    return Node(tree.prod, kids, tree.span) if changed else tree


def mentions_var(tree: Node, name: str) -> bool:
    return any(
        n.prod == "var" and n.children[0] == name for n in tree.walk()
    )


# ---------------------------------------------------------------------------
# split
# ---------------------------------------------------------------------------

def apply_split(nest: Node, clause: Split, ctx) -> Node:
    loop = find_loop(nest, clause.target)
    if loop is None:
        raise TransformError(f"split: no loop indexed by {clause.target!r}")
    lo, hi = loop_bounds(loop)
    factor = clause.factor
    if factor < 2:
        raise TransformError(f"split factor must be >= 2, got {factor}")

    trip = mk.binop("-", hi, lo) if not _is_zero(lo) else hi
    check = mk.exprStmt(mk.call("rt_require_divisible", mk.expr_list([
        trip, ilit(factor), mk.strLit(f"split {clause.target}"),
    ])))

    # i := lo + iout*F + iin   (just iout*F + iin when lo == 0, as Fig 10)
    recon = mk.binop("+", mk.binop("*", mk.var(clause.outer), ilit(factor)),
                     mk.var(clause.inner))
    if not _is_zero(lo):
        recon = mk.binop("+", lo, recon)
    body = substitute_var(loop_body(loop), clause.target, recon)

    inner = Node("forStmt", [
        Node("forDecl", [mk.tRaw("long"), clause.inner, ilit(0)]),
        mk.binop("<", mk.var(clause.inner), ilit(factor)),
        mk.assign(mk.var(clause.inner), mk.binop("+", mk.var(clause.inner), ilit(1))),
        body,
    ])
    outer_hi = mk.binop("/", trip, ilit(factor))
    outer = Node("forStmt", [
        Node("forDecl", [mk.tRaw("long"), clause.outer, ilit(0)]),
        mk.binop("<", mk.var(clause.outer), outer_hi),
        mk.assign(mk.var(clause.outer), mk.binop("+", mk.var(clause.outer), ilit(1))),
        mk.block(mk.stmt_list([inner])),
    ])
    replacement = mk.seqStmt(mk.stmt_list([check, outer]))
    return nest.replace(loop, replacement)


def _is_zero(node: Node) -> bool:
    return node.prod == "intLit" and node.children[0] == 0


# ---------------------------------------------------------------------------
# reorder / interchange / tile
# ---------------------------------------------------------------------------

def _collect_perfect_nest(nest: Node, names: list[str]) -> tuple[list[Node], list[Node]]:
    """The loops named in ``names`` must form a perfect prefix nest in
    their current order somewhere inside ``nest`` (runtime-check
    statements produced by earlier splits may sit between levels; they
    are peeled off and returned as a loop-invariant prelude)."""
    loops: list[Node] = []
    prelude: list[Node] = []
    current = find_loop(nest, _outermost_of(nest, names))
    remaining = set(names)
    while current is not None and loop_var(current) in remaining:
        loops.append(current)
        remaining.discard(loop_var(current))
        if not remaining:
            break
        pre, inner = _peel_sole_loop(loop_body(current))
        prelude.extend(pre)
        current = inner
    if remaining:
        raise TransformError(
            f"reorder: loops {sorted(remaining)} do not form a perfect nest"
        )
    return loops, prelude


def _outermost_of(nest: Node, names: list[str]) -> str:
    for n in nest.walk():
        if is_canonical_loop(n) and loop_var(n) in names:
            return loop_var(n)
    raise TransformError(f"reorder: no loop named among {names}")


def _flatten_stmts(body: Node) -> list[Node]:
    if body.prod in ("block", "seqStmt"):
        out: list[Node] = []
        node = body.children[0]
        while len(node.children) == 2:
            out.extend(_flatten_stmts(node.children[0])
                       if node.children[0].prod == "seqStmt"
                       else [node.children[0]])
            node = node.children[1]
        return out
    return [body]


def _peel_sole_loop(body: Node) -> tuple[list[Node], Node | None]:
    """If the body is a single loop possibly preceded by loop-invariant
    runtime checks (from earlier splits), return (checks, loop)."""
    stmts = _flatten_stmts(body)
    loops = [s for s in stmts if is_canonical_loop(s)]
    others = [s for s in stmts if not is_canonical_loop(s)]
    hoistable = all(
        s.prod == "exprStmt" and s.children[0].prod == "call" for s in others
    )
    if len(loops) == 1 and hoistable:
        return others, loops[0]
    return [], None


def apply_reorder(nest: Node, order: tuple[str, ...], ctx) -> Node:
    loops, prelude = _collect_perfect_nest(nest, list(order))
    current_order = [loop_var(l) for l in loops]
    if set(current_order) != set(order):
        raise TransformError(
            f"reorder: nest is {current_order}, requested {list(order)}"
        )
    by_name = {loop_var(l): l for l in loops}
    innermost_body = loop_body(loops[-1])
    rebuilt = innermost_body
    for name in reversed(order):
        src = by_name[name]
        rebuilt = Node("forStmt", [
            src.children[0], src.children[1], src.children[2],
            rebuilt if rebuilt.prod in ("block", "seqStmt")
            else mk.block(mk.stmt_list([rebuilt])),
        ])
    if prelude:
        rebuilt = mk.seqStmt(mk.stmt_list(prelude + [rebuilt]))
    return nest.replace(loops[0], rebuilt)


def apply_interchange(nest: Node, clause: Interchange, ctx) -> Node:
    loops, _prelude = _collect_perfect_nest(nest, [clause.a, clause.b])
    names = [loop_var(l) for l in loops]
    return apply_reorder(nest, tuple(reversed(names)), ctx)


def apply_tile(nest: Node, clause: Tile, ctx) -> Node:
    """Tiling as the paper specifies: two splits and a reorder into
    (a_out, b_out, a_in, b_in)."""
    a_in, a_out = clause.a + "_in", clause.a + "_out"
    b_in, b_out = clause.b + "_in", clause.b + "_out"
    nest = apply_split(nest, Split(clause.a, clause.fa, a_in, a_out), ctx)
    nest = apply_split(nest, Split(clause.b, clause.fb, b_in, b_out), ctx)
    # The splits leave: a_out { a_in { b_out { b_in ... } } } plus the
    # divisibility checks in seqStmts; reorder the four loops.
    return apply_reorder(nest, (a_out, b_out, a_in, b_in), ctx)


# ---------------------------------------------------------------------------
# unroll
# ---------------------------------------------------------------------------

def apply_unroll(nest: Node, clause: Unroll, ctx) -> Node:
    loop = find_loop(nest, clause.target)
    if loop is None:
        raise TransformError(f"unroll: no loop indexed by {clause.target!r}")
    lo, hi = loop_bounds(loop)
    f = clause.factor
    if f < 2:
        raise TransformError(f"unroll factor must be >= 2, got {f}")
    var = loop_var(loop)
    trip = mk.binop("-", hi, lo) if not _is_zero(lo) else hi
    check = mk.exprStmt(mk.call("rt_require_divisible", mk.expr_list([
        trip, ilit(f), mk.strLit(f"unroll {var}"),
    ])))
    bodies = []
    for k in range(f):
        shifted = (
            loop_body(loop) if k == 0
            else substitute_var(loop_body(loop), var,
                                mk.binop("+", mk.var(var), ilit(k)))
        )
        bodies.append(shifted)
    new_loop = Node("forStmt", [
        loop.children[0],
        loop.children[1],
        mk.assign(mk.var(var), mk.binop("+", mk.var(var), ilit(f))),
        mk.block(mk.stmt_list(bodies)),
    ])
    return nest.replace(loop, mk.seqStmt(mk.stmt_list([check, new_loop])))


# ---------------------------------------------------------------------------
# parallelize (OpenMP pragma, Fig 11)
# ---------------------------------------------------------------------------

def apply_parallelize(nest: Node, clause: Parallelize, ctx) -> Node:
    loop = find_loop(nest, clause.target)
    if loop is None:
        raise TransformError(f"parallelize: no loop indexed by {clause.target!r}")
    ctx.need("pool")  # stats/observability; OpenMP supplies the threads
    pragma = Node("rawStmt", ["#pragma omp parallel for"])
    return nest.replace(loop, mk.seqStmt(mk.stmt_list([pragma, loop])))
