"""The vectorize transformation (paper §V, Fig 10 -> Fig 11).

Widens the body of a (typically split-produced) inner loop to 128-bit
4-lane float vectors:

* float temporaries become ``rt_v4f`` accumulators (the fold accumulator
  in Fig 11);
* loads with unit stride in the vectorized index become ``rt_vloadf``;
  other strides become 4-element gathers (``rt_vgatherf``);
* stores become ``rt_vstoref`` / ``rt_vscatterf``;
* loop-invariant scalars become splats, hoisted above the loop nest when
  they depend on no loop index at all ("floated above the outermost for
  loop ... because they are unchanged by the loops", Fig 11).

Stride analysis is a small symbolic derivative over the generated index
expressions.  Anything outside the widenable fragment (conditionals on
lanes, int computations that vary by lane) raises a diagnosable
:class:`TransformError` — the paper's extension performs the analogous
"basic semantic analysis for error checking".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ag.tree import Node
from repro.cminus.grammar import mk
from repro.exts.transform.loopxf import (
    TransformError, find_loop, ilit, is_canonical_loop, loop_body,
    loop_bounds, loop_var, mentions_var,
)

_VOP = {"+": "rt_vaddf", "-": "rt_vsubf", "*": "rt_vmulf", "/": "rt_vdivf"}

LANES = 4


@dataclass
class _Widen:
    var: str                       # the vectorized loop index
    nest_vars: set[str]            # all loop indexes in the nest
    ctx: object
    widened: dict[str, str] = field(default_factory=dict)  # scalar -> vec var
    hoisted: list[Node] = field(default_factory=list)      # splats above nest

    # -- helpers ---------------------------------------------------------------

    def lane_invariant(self, tree: Node) -> bool:
        if mentions_var(tree, self.var):
            return False
        return not any(
            n.prod == "var" and n.children[0] in self.widened
            for n in tree.walk()
        )

    def splat(self, tree: Node) -> Node:
        call = mk.call("rt_vsplatf", mk.expr_list([tree]))
        if not any(mentions_var(tree, v) for v in self.nest_vars):
            name = self.ctx.gensym("vs")
            self.hoisted.append(mk.declInit(mk.tRaw("rt_v4f"), name, call))
            return mk.var(name)
        return call

    # -- expressions ------------------------------------------------------------

    def vec(self, tree: Node) -> Node:
        if self.lane_invariant(tree):
            return self.splat(tree)
        if tree.prod == "var":
            name = tree.children[0]
            if name in self.widened:
                return mk.var(self.widened[name])
            if name == self.var:
                return mk.call("rt_viotaf", mk.expr_list([tree]))
            raise TransformError(
                f"vectorize: lane-varying scalar {name!r}"
            )  # pragma: no cover - lane_invariant covers other vars
        if tree.prod == "binop":
            op = tree.children[0]
            if op not in _VOP:
                raise TransformError(f"vectorize: cannot widen operator {op!r}")
            return mk.call(_VOP[op], mk.expr_list([
                self.vec(tree.children[1]), self.vec(tree.children[2]),
            ]))
        if tree.prod == "unop" and tree.children[0] == "-":
            zero = self.splat(mk.floatLit(0.0))
            return mk.call("rt_vsubf", mk.expr_list([zero, self.vec(tree.children[1])]))
        if tree.prod == "call" and tree.children[0] in ("rt_getf", "rt_geti"):
            args = _args(tree)
            m, idx = args[0], args[1]
            stride = diff(idx, self.var, self.widened)
            if stride is None:
                raise TransformError(
                    "vectorize: load index is not affine in the vectorized "
                    "loop variable"
                )
            if _is_lit(stride, 0):
                return self.splat(tree)
            if _is_lit(stride, 1):
                return mk.call("rt_vloadf", mk.expr_list([m, idx]))
            return mk.call("rt_vgatherf", mk.expr_list([m, idx, stride]))
        if tree.prod == "castE":
            return self.vec(tree.children[1])
        raise TransformError(
            f"vectorize: cannot widen expression node {tree.prod!r}"
        )

    # -- statements -----------------------------------------------------------------

    def stmt(self, tree: Node) -> Node:
        p = tree.prod
        if p in ("block", "seqStmt"):
            items = []
            node = tree.children[0]
            while len(node.children) == 2:
                items.append(self.stmt(node.children[0]))
                node = node.children[1]
            return Node(p, [mk.stmt_list(items)], tree.span)
        if p == "declInit":
            ctype = tree.children[0]
            name = tree.children[1]
            init = tree.children[2]
            if ctype.prod == "tRaw" and ctype.children[0] == "float":
                vname = self.ctx.gensym(f"v_{name}")
                self.widened[name] = vname
                return mk.declInit(mk.tRaw("rt_v4f"), vname, self.vec(init))
            if not self.lane_invariant(init):
                raise TransformError(
                    f"vectorize: lane-varying non-float temporary {name!r}"
                )
            return tree
        if p == "exprStmt":
            inner = tree.children[0]
            if inner.prod == "assign" and inner.children[0].prod == "var":
                name = inner.children[0].children[0]
                if name in self.widened:
                    return mk.exprStmt(mk.assign(
                        mk.var(self.widened[name]), self.vec(inner.children[1])
                    ))
                if not self.lane_invariant(inner.children[1]):
                    raise TransformError(
                        f"vectorize: lane-varying assignment to scalar {name!r}"
                    )
                return tree
            if inner.prod == "call" and inner.children[0] in ("rt_setf", "rt_seti"):
                m, idx, val = _args(inner)
                stride = diff(idx, self.var, self.widened)
                if stride is None:
                    raise TransformError(
                        "vectorize: store index is not affine in the "
                        "vectorized loop variable"
                    )
                if _is_lit(stride, 0):
                    raise TransformError(
                        "vectorize: store does not vary with the vectorized "
                        "loop (lane write race)"
                    )
                if _is_lit(stride, 1):
                    return mk.exprStmt(mk.call("rt_vstoref", mk.expr_list([
                        m, idx, self.vec(val)])))
                return mk.exprStmt(mk.call("rt_vscatterf", mk.expr_list([
                    m, idx, stride, self.vec(val)])))
            if inner.prod == "call":
                if self.lane_invariant(inner):
                    return tree
                raise TransformError(
                    f"vectorize: cannot widen call to {inner.children[0]!r}"
                )
            raise TransformError(
                f"vectorize: cannot widen statement expression {inner.prod!r}"
            )
        if p == "forStmt":
            # inner sequential loop (the fold's k loop in Fig 11)
            if mentions_var(tree.children[0], self.var) or mentions_var(
                tree.children[1], self.var
            ):
                raise TransformError(
                    "vectorize: inner loop bounds vary with the vectorized index"
                )
            return Node("forStmt", [
                tree.children[0], tree.children[1], tree.children[2],
                self.stmt(tree.children[3]),
            ], tree.span)
        if p in ("decl", "rawStmt"):
            return tree
        raise TransformError(f"vectorize: cannot widen statement {p!r}")


def _args(call: Node) -> list[Node]:
    out = []
    node = call.children[1]
    while len(node.children) == 2:
        out.append(node.children[0])
        node = node.children[1]
    return out


def _is_lit(node: Node, v: int) -> bool:
    return node.prod == "intLit" and node.children[0] == v


# ---------------------------------------------------------------------------
# symbolic stride: d(expr)/d(var)
# ---------------------------------------------------------------------------

def diff(tree: Node, var: str, widened: dict[str, str]) -> Node | None:
    """Derivative of an integer index expression w.r.t. ``var``;
    None = not affine."""
    p = tree.prod
    if p == "var":
        if tree.children[0] == var:
            return ilit(1)
        if tree.children[0] in widened:
            return None
        return ilit(0)
    if p in ("intLit", "floatLit", "boolLit", "strLit", "endE", "rawExpr"):
        return ilit(0)
    if p == "call":
        # runtime geometry queries are loop-invariant
        if tree.children[0] in ("rt_dim", "rt_size"):
            return ilit(0)
        return None if mentions_var(tree, var) else ilit(0)
    if p == "binop":
        op, a, b = tree.children
        da, db = diff(a, var, widened), diff(b, var, widened)
        if da is None or db is None:
            return None
        if op == "+":
            return _add(da, db)
        if op == "-":
            return _sub(da, db)
        if op == "*":
            if _is_lit(da, 0):
                return _mul(a, db)
            if _is_lit(db, 0):
                return _mul(da, b)
            return None
        if op in ("/", "%"):
            return ilit(0) if _is_lit(da, 0) and not mentions_var(b, var) else None
        return None
    if p == "castE":
        return diff(tree.children[1], var, widened)
    if p == "unop" and tree.children[0] == "-":
        d = diff(tree.children[1], var, widened)
        return None if d is None else _sub(ilit(0), d)
    return None if mentions_var(tree, var) else ilit(0)


def _add(a: Node, b: Node) -> Node:
    if _is_lit(a, 0):
        return b
    if _is_lit(b, 0):
        return a
    if a.prod == "intLit" and b.prod == "intLit":
        return ilit(a.children[0] + b.children[0])
    return mk.binop("+", a, b)


def _sub(a: Node, b: Node) -> Node:
    if _is_lit(b, 0):
        return a
    if a.prod == "intLit" and b.prod == "intLit":
        return ilit(a.children[0] - b.children[0])
    return mk.binop("-", a, b)


def _mul(a: Node, b: Node) -> Node:
    if _is_lit(a, 0) or _is_lit(b, 0):
        return ilit(0)
    if _is_lit(a, 1):
        return b
    if _is_lit(b, 1):
        return a
    if a.prod == "intLit" and b.prod == "intLit":
        return ilit(a.children[0] * b.children[0])
    return mk.binop("*", a, b)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def apply_vectorize(nest: Node, target: str, ctx) -> tuple[Node, list[Node]]:
    """Vectorize the loop indexed by ``target``; returns the transformed
    nest plus splat declarations to hoist above it."""
    loop = find_loop(nest, target)
    if loop is None:
        raise TransformError(f"vectorize: no loop indexed by {target!r}")
    lo, hi = loop_bounds(loop)

    nest_vars = {loop_var(n) for n in nest.walk() if is_canonical_loop(n)}
    w = _Widen(var=target, nest_vars=nest_vars, ctx=ctx)
    body = w.stmt(loop_body(loop))
    ctx.need("vector")

    trip = hi if _is_lit(lo, 0) else mk.binop("-", hi, lo)
    check = mk.exprStmt(mk.call("rt_require_divisible", mk.expr_list([
        trip, ilit(LANES), mk.strLit(f"vectorize {target}"),
    ])))
    var = loop_var(loop)
    new_loop = Node("forStmt", [
        loop.children[0],
        loop.children[1],
        mk.assign(mk.var(var), mk.binop("+", mk.var(var), ilit(LANES))),
        body,
    ], loop.span)
    replacement = mk.seqStmt(mk.stmt_list([check, new_loop]))
    return nest.replace(loop, replacement), w.hoisted
