"""The explicit program transformation and optimization extension (§V).

Gives the programmer Halide/CHiLL-style control over the for-loops
generated from with-loops: split, vectorize, parallelize, reorder,
interchange, unroll, and tile (the paper's "two splits and a reorder").
Layered on the matrix extension (its bridge production extends the matrix
extension's ``TransformOpt`` nonterminal).
"""

from __future__ import annotations

from functools import lru_cache

from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.grammar import mk
from repro.driver import LanguageModule
from repro.exts.transform.grammar import (
    TRANSFORM_AG, Clause, Interchange, Parallelize, Reorder, Split, Tile,
    Unroll, Vectorize, build_transform_grammar, declare_transform_absyn,
)
from repro.exts.transform.loopxf import (
    TransformError, apply_interchange, apply_parallelize, apply_reorder,
    apply_split, apply_tile, apply_unroll,
)
from repro.exts.transform.vectorize import apply_vectorize

__all__ = [
    "Clause", "Interchange", "Parallelize", "Reorder", "Split", "Tile",
    "TransformError", "Unroll", "Vectorize", "transform_module",
]

_installed = False


# Clause-application registry.  §V: "new transformation specifications can
# be easily added, in the same way in which new independently-developed
# language extensions are added to the host language" — an independent
# module registers its clause type here and its concrete syntax on the
# Clause nonterminal (see repro.exts.unrolljam for a worked example).
#
# An applier takes (nest, clause, ctx) and returns either the transformed
# nest or a (nest, hoisted_stmts) pair.
ClauseApplier = "Callable[[Node, Clause, object], Node | tuple[Node, list[Node]]]"

_APPLIERS: dict[type, object] = {}


def register_clause(clause_type: type, applier) -> None:
    """Register the applier for a clause dataclass (extension hook)."""
    if clause_type in _APPLIERS:
        raise TransformError(f"clause type {clause_type.__name__} already registered")
    _APPLIERS[clause_type] = applier


register_clause(Split, apply_split)
register_clause(Parallelize, apply_parallelize)
register_clause(Reorder, lambda nest, c, ctx: apply_reorder(nest, c.order, ctx))
register_clause(Interchange, apply_interchange)
register_clause(Unroll, apply_unroll)
register_clause(Tile, apply_tile)
register_clause(Vectorize,
                lambda nest, c, ctx: apply_vectorize(nest, c.target, ctx))


def apply_clauses(nest: Node, clauses: tuple[Clause, ...], ctx) -> Node:
    """Apply clauses in program order (§V: "applying the transformations
    in the order in which they appear")."""
    hoisted: list[Node] = []
    for clause in clauses:
        applier = _APPLIERS.get(type(clause))
        if applier is None:
            raise TransformError(f"no applier registered for clause "
                                 f"{type(clause).__name__}")
        result = applier(nest, clause, ctx)
        if isinstance(result, tuple):
            nest, splats = result
            hoisted.extend(splats)
        else:
            nest = result
    if hoisted:
        return mk.seqStmt(mk.stmt_list(hoisted + [nest]))
    return nest


def _loop_transformer(loop: Node, xform_dn: DecoratedNode, with_dn: DecoratedNode, ctx) -> Node:
    clauses: tuple[Clause, ...] = xform_dn.node.children[0]
    try:
        return apply_clauses(loop, clauses, ctx)
    except TransformError as e:
        raise TransformError(f"{with_dn.span.start}: {e}") from e


def _install_equations() -> None:
    global _installed
    if _installed:
        return
    _installed = True
    declare_transform_absyn()
    ag = TRANSFORM_AG

    def transforms_errors(n: DecoratedNode):
        """Static check (§V): "the loop indices in the transformations
        correspond to loops in the code being transformed"."""
        out: list[str] = []
        with_node = n.parent
        if with_node is None or with_node.prod != "withE":
            return out
        known = set(with_node.child(0).node.children[2])  # generator ids
        clauses: tuple[Clause, ...] = n.node.children[0]
        loc = n.span.start
        for clause in clauses:
            if isinstance(clause, Split):
                if clause.target not in known:
                    out.append(f"{loc}: error: split of unknown loop index "
                               f"{clause.target!r}")
                known.discard(clause.target)
                known |= {clause.inner, clause.outer}
            elif isinstance(clause, Tile):
                for t in (clause.a, clause.b):
                    if t not in known:
                        out.append(f"{loc}: error: tile of unknown loop index {t!r}")
                known |= {clause.a + "_in", clause.a + "_out",
                          clause.b + "_in", clause.b + "_out"}
                known -= {clause.a, clause.b}
            elif isinstance(clause, Reorder):
                for t in clause.order:
                    if t not in known:
                        out.append(f"{loc}: error: reorder of unknown loop index {t!r}")
            elif isinstance(clause, Interchange):
                for t in (clause.a, clause.b):
                    if t not in known:
                        out.append(f"{loc}: error: interchange of unknown loop "
                                   f"index {t!r}")
            elif hasattr(clause, "check_indices"):
                # extension-supplied clauses (§V extensibility) validate
                # themselves against the known index set
                for msg in clause.check_indices(known):
                    out.append(f"{loc}: error: {msg}")
            else:
                target = clause.target
                if target not in known:
                    out.append(f"{loc}: error: {type(clause).__name__.lower()} "
                               f"of unknown loop index {target!r}")
        return out

    ag.equation("transforms", "errors", transforms_errors)


def _context_hook(ctx) -> None:
    ctx.loop_transformer = _loop_transformer


@lru_cache(maxsize=1)
def transform_module() -> LanguageModule:
    _install_equations()
    return LanguageModule(
        name="transform",
        grammar=build_transform_grammar(),
        ag=TRANSFORM_AG,
        context_hooks=[_context_hook],
        requires=("matrix",),
        runtime_features=("vector",),
    )
