"""Concrete syntax of the explicit-transformation extension (paper §V).

Layered on the matrix extension: its bridge production extends the matrix
extension's ``TransformOpt`` nonterminal, marked by the ``transform``
keyword (Fig 9)::

    means = with([0,0] <= [i,j] < [m,n])
            genarray([m,n], ...)
            transform split j by 4, jin, jout.
                      vectorize jin.
                      parallelize i;

Clauses: ``split I by N, Iin, Iout`` / ``vectorize I`` / ``parallelize I``
/ ``reorder I, J, ...`` / ``unroll I by N`` / ``interchange I J`` /
``tile I J by N M`` (the paper's "two splits and a reorder", packaged).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ag.core import AGSpec
from repro.grammar.cfg import GrammarSpec

TRANSFORM = "transform"

TRANSFORM_AG = AGSpec(TRANSFORM)

_declared = False


@dataclass(frozen=True)
class Split:
    target: str
    factor: int
    inner: str
    outer: str


@dataclass(frozen=True)
class Vectorize:
    target: str


@dataclass(frozen=True)
class Parallelize:
    target: str


@dataclass(frozen=True)
class Reorder:
    order: tuple[str, ...]


@dataclass(frozen=True)
class Unroll:
    target: str
    factor: int


@dataclass(frozen=True)
class Interchange:
    a: str
    b: str


@dataclass(frozen=True)
class Tile:
    a: str
    b: str
    fa: int
    fb: int


Clause = Split | Vectorize | Parallelize | Reorder | Unroll | Interchange | Tile


def declare_transform_absyn() -> None:
    global _declared
    if _declared:
        return
    _declared = True
    TRANSFORM_AG.abstract_production(
        "transforms", "TransformOpt", ["#clauses"], origin=TRANSFORM
    )


def build_transform_grammar() -> GrammarSpec:
    declare_transform_absyn()
    g = GrammarSpec(TRANSFORM)
    t = g.terminal
    t("Transform", "transform", keyword=True, marking=True)
    t("Split", "split", keyword=True)
    t("By", "by", keyword=True)
    t("Vectorize", "vectorize", keyword=True)
    t("Parallelize", "parallelize", keyword=True)
    t("Reorder", "reorder", keyword=True)
    t("Unroll", "unroll", keyword=True)
    t("Interchange", "interchange", keyword=True)
    t("Tile", "tile", keyword=True)
    t("Dot", r"\.")

    p = g.production
    ag = TRANSFORM_AG

    p("TransformOpt ::= Transform ClauseList",
      lambda c: ag.make("transforms", [tuple(c[1])]))
    p("ClauseList ::= Clause", lambda c: [c[0]])
    p("ClauseList ::= Clause Dot ClauseList", lambda c: [c[0]] + c[2])

    p("Clause ::= Split Identifier By IntLit Comma Identifier Comma Identifier",
      lambda c: Split(c[1].lexeme, int(c[3].lexeme), c[5].lexeme, c[7].lexeme))
    p("Clause ::= Vectorize Identifier", lambda c: Vectorize(c[1].lexeme))
    p("Clause ::= Parallelize Identifier", lambda c: Parallelize(c[1].lexeme))
    # reorder takes a parenthesized index list: a bare comma-separated list
    # would be ambiguous with the host's argument-list comma when a
    # with-expression appears as a call argument (found by the LALR check).
    p("Clause ::= Reorder LParen ReorderIds RParen", lambda c: Reorder(tuple(c[2])))
    p("ReorderIds ::= Identifier Comma Identifier",
      lambda c: [c[0].lexeme, c[2].lexeme])
    p("ReorderIds ::= ReorderIds Comma Identifier",
      lambda c: c[0] + [c[2].lexeme])
    p("Clause ::= Unroll Identifier By IntLit",
      lambda c: Unroll(c[1].lexeme, int(c[3].lexeme)))
    p("Clause ::= Interchange Identifier Identifier",
      lambda c: Interchange(c[1].lexeme, c[2].lexeme))
    p("Clause ::= Tile Identifier Identifier By IntLit IntLit",
      lambda c: Tile(c[1].lexeme, c[2].lexeme, int(c[4].lexeme), int(c[5].lexeme)))

    return g
