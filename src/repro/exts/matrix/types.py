"""Matrix type representations (paper §III-A.1).

``Matrix (int|bool|float) <rank>`` — elements restricted to int, bool and
float exactly as the paper states.  ``TAnyMatrix`` is the wildcard return
type of ``readMatrix`` (rank and element kind are carried in the file and
checked at runtime against the declared type).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cminus.types import FLOAT, INT, TBool, TFloat, TInt, Type


@dataclass(frozen=True, slots=True)
class TMatrix(Type):
    elem: Type
    rank: int

    managed = True

    def __str__(self) -> str:
        return f"Matrix {self.elem} <{self.rank}>"

    def is_float(self) -> bool:
        return isinstance(self.elem, TFloat)


@dataclass(frozen=True, slots=True)
class TAnyMatrix(Type):
    """Wildcard matrix type (readMatrix's return); rank checked at runtime."""

    managed = True

    def __str__(self) -> str:
        return "Matrix ? <?>"


ANY_MATRIX = TAnyMatrix()

VALID_ELEMS = (TInt, TFloat, TBool)


def matrix_of(elem: Type, rank: int) -> TMatrix:
    return TMatrix(elem, rank)


def is_matrix(t: Type) -> bool:
    return isinstance(t, (TMatrix, TAnyMatrix))


def elem_unify(a: Type, b: Type) -> Type:
    """Element type of mixed arithmetic (int⊕float→float, bool→int)."""
    if isinstance(a, TFloat) or isinstance(b, TFloat):
        return FLOAT
    return INT


def getter(elem: Type) -> str:
    return "rt_getf" if isinstance(elem, TFloat) else "rt_geti"


def setter(elem: Type) -> str:
    return "rt_setf" if isinstance(elem, TFloat) else "rt_seti"


def allocator(elem: Type) -> str:
    return "rt_allocf" if isinstance(elem, TFloat) else "rt_alloci"
