"""Translation of matrix constructs down to plain (parallel) C (§III).

The shapes produced here mirror the paper's figures:

* Fig 1 -> Fig 3: a genarray with-loop becomes one for-loop per generator
  dimension writing elements in place; a nested fold becomes an
  accumulator loop; with assignment fusion on, the genarray writes
  straight into the assignment target (no temporary, no copy), and with
  slice elimination on, ``mat[i,j,:][k]`` collapses to ``mat[i,j,k]`` so
  no slice is materialized.
* §III-A.5 / §III-C: matrixMap (and auto-parallelized genarray loops)
  lift their bodies into new functions so pool worker threads "can get
  direct access" to them; the launch goes through the enhanced fork-join
  runtime (rt_pool_run).

All temps of matrix type are *owned* and registered with the refcount
hooks; statement-level drains keep the rc balance (tested in E-RC).
"""

from __future__ import annotations

from typing import Any

from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.absyn import cons_to_list, node_cons_to_list
from repro.cminus.grammar import mk
from repro.cminus.lower import LoweringError
from repro.cminus.types import TBool, TInt, Type
from repro.codegen.ctypemap import ctype_of
from repro.codegen.emit import LiftedFunc
from repro.exts.matrix.grammar import MATRIX_AG
from repro.exts.matrix.sema import index_selector_kinds
from repro.exts.matrix.types import TMatrix, allocator, getter, is_matrix, setter

ag = MATRIX_AG

LONG = "long"


# ---------------------------------------------------------------------------
# small node builders
# ---------------------------------------------------------------------------

def ilit(v: int) -> Node:
    return mk.intLit(v)


def lvar(name: str) -> Node:
    return mk.var(name)


def call_n(name: str, args: list[Node]) -> Node:
    return mk.call(name, mk.expr_list(args))


def ldecl(ctx, hint: str, init: Node, ctype: str = LONG) -> tuple[str, Node]:
    name = ctx.gensym(hint)
    _note_gensym_type(ctx, name, ctype)
    return name, mk.declInit(mk.tRaw(ctype), name, init)


def _note_gensym_type(ctx, name: str, ctype: str) -> None:
    if not hasattr(ctx, "gensym_types"):
        ctx.gensym_types = {}
    ctx.gensym_types[name] = ctype


def for_loop(var: str, lo: Node, hi: Node, body: list[Node]) -> Node:
    """``for (long var = lo; var < hi; var = var + 1) { body }``"""
    return mk.forStmt(
        Node("forDecl", [mk.tRaw(LONG), var, lo]),
        mk.binop("<", lvar(var), hi),
        mk.assign(lvar(var), mk.binop("+", lvar(var), ilit(1))),
        mk.block(mk.stmt_list(body)),
    )


def nest_loops(vars_lo_hi: list[tuple[str, Node, Node]], innermost: list[Node]) -> Node:
    """Build a loop nest, innermost statements at the core."""
    body = innermost
    for var, lo, hi in reversed(vars_lo_hi):
        body = [for_loop(var, lo, hi, body)]
    return body[0]


def rt_dim_n(m: Node, d: Node | int) -> Node:
    return call_n("rt_dim", [m, d if isinstance(d, Node) else ilit(d)])


def linear_index(m: Node, coords: list[Node], rank: int) -> Node:
    """Row-major linearization: ((c0*d1 + c1)*d2 + c2)..."""
    out = coords[0]
    for k in range(1, rank):
        out = mk.binop("+", mk.binop("*", out, rt_dim_n(m, k)), coords[k])
    return out


def get_elem(elem: Type, m: Node, idx: Node) -> Node:
    return call_n(getter(elem), [m, idx])


def set_elem(elem: Type, m: Node, idx: Node, v: Node) -> Node:
    return mk.exprStmt(call_n(setter(elem), [m, idx, v]))


def alloc_node(elem: Type, rank: int, dims: list[Node]) -> Node:
    padded = dims + [ilit(0)] * (4 - len(dims))
    if rank > 4:
        raise LoweringError("ranks above 4 not supported by the allocator shim")
    return call_n(allocator(elem), [ilit(rank)] + padded)


def as_var(ctx, hoisted: list[Node], expr: Node, hint: str, ctype: str) -> Node:
    """Bind ``expr`` to a fresh temp unless it already is a variable."""
    if expr.prod == "var":
        return expr
    name, decl = ldecl(ctx, hint, expr, ctype)
    hoisted.append(decl)
    return lvar(name)


def lower_owned(ctx, dn: DecoratedNode) -> tuple[list[Node], Node]:
    rc = getattr(ctx, "rc", None)
    if rc is not None:
        return rc.owned(dn)
    return dn.att("lowpair")


def note_matrix_temp(ctx, name: str) -> None:
    rc = getattr(ctx, "rc", None)
    if rc is not None:
        rc.note_temp(name)


def drain_marker(ctx) -> int:
    rc = getattr(ctx, "rc", None)
    return len(rc.stmt_temps) if rc is not None else 0


def drain_since(ctx, mark: int) -> list[Node]:
    """Per-iteration cleanup: decrement matrix temps created since mark."""
    rc = getattr(ctx, "rc", None)
    if rc is None:
        return []
    fresh = rc.stmt_temps[mark:]
    del rc.stmt_temps[mark:]
    return [rc.dec_stmt(lvar(t)) for t in fresh]


# ---------------------------------------------------------------------------
# `end` substitution (higher-order attribute use)
# ---------------------------------------------------------------------------

def substitute_end(tree: Node, base: Node, dim: int) -> Node:
    """Replace every ``endE`` in ``tree`` with ``rt_dim(base, dim) - 1``."""
    if tree.prod == "endE":
        return mk.binop("-", rt_dim_n(base, dim), ilit(1))
    changed = False
    kids: list[Any] = []
    for c in tree.children:
        if isinstance(c, Node):
            r = substitute_end(c, base, dim)
            changed = changed or r is not c
            kids.append(r)
        else:
            kids.append(c)
    return Node(tree.prod, kids, tree.span) if changed else tree


# ---------------------------------------------------------------------------
# free variables (for lifting loop bodies into pool functions)
# ---------------------------------------------------------------------------

def free_vars(tree: Node, bound: set[str] | None = None) -> list[str]:
    """Variables read by ``tree`` that it does not itself declare."""
    bound = set(bound or ())
    out: list[str] = []
    seen: set[str] = set()

    def walk(node: Node, local: set[str]) -> None:
        if node.prod == "var":
            name = node.children[0]
            if name not in local and name not in seen:
                seen.add(name)
                out.append(name)
            return
        if node.prod in ("decl", "declInit", "forDecl"):
            # children first (init may read), then the name becomes bound
            for c in node.children:
                if isinstance(c, Node):
                    walk(c, local)
            local.add(node.children[1])
            return
        if node.prod in ("block", "seqStmt", "forStmt"):
            inner = set(local)
            for c in node.children:
                if isinstance(c, Node):
                    walk(c, inner)
            return
        for c in node.children:
            if isinstance(c, Node):
                walk(c, local)

    walk(tree, set(bound))
    return out


def ctype_for_name(name: str, n: DecoratedNode, ctx) -> str:
    gt = getattr(ctx, "gensym_types", {})
    if name in gt:
        return gt[name]
    b = n.inh("env").lookup(name)
    if b is None:
        raise LoweringError(f"cannot determine C type of captured {name!r}")
    return ctype_of(b.type, ctx)


def parallelize_loop(loop: Node, n: DecoratedNode, ctx, hint: str = "wl") -> Node:
    """Lift ``loop`` (a canonical for-loop over [lo,hi)) into a pool-run
    worker function (paper §III-A.5/§III-C)."""
    init, cond, _step, body = loop.children
    var = init.children[1]
    lo = init.children[2]
    hi = cond.children[2]

    fname = ctx.gensym(f"{hint}_body")
    # chunk [lo+__lo, lo+__hi)
    chunk = for_loop(
        var,
        mk.binop("+", lo, lvar("__lo")),
        mk.binop("+", lo, lvar("__hi")),
        [body],
    )
    captures = []
    for name in free_vars(chunk, bound={var, "__lo", "__hi"}):
        captures.append((ctype_for_name(name, n, ctx), name))
    ctx.lift_function(LiftedFunc(fname, mk.block(mk.stmt_list([chunk])), captures))
    ctx.need("pool")
    total = mk.binop("-", hi, lo)
    args = [mk.strLit(fname), total] + [lvar(name) for _t, name in captures]
    return mk.exprStmt(call_n("__rt_pool_run", args))


# ---------------------------------------------------------------------------
# with-loops
# ---------------------------------------------------------------------------

def lower_generator(n: DecoratedNode, ctx) -> tuple[list[Node], list[str], list[Node], list[Node]]:
    """Lower a generator to (hoisted, ids, lo_temps, hi_temps) with the
    relational operators folded into half-open [lo, hi) bounds."""
    gen = n.child(0)
    hoisted: list[Node] = []
    los = cons_to_list(gen.child(0))
    his = cons_to_list(gen.child(4))
    rel1: str = gen.node.children[1]
    rel2: str = gen.node.children[3]
    ids: list[str] = gen.node.children[2]

    lo_vars: list[Node] = []
    hi_vars: list[Node] = []
    for lo in los:
        hs, low = lo.att("lowpair")
        hoisted.extend(hs)
        if rel1 == "<":  # lo < i  =>  start at lo+1
            low = mk.binop("+", low, ilit(1))
        lo_vars.append(as_var(ctx, hoisted, low, "lo", LONG))
    for hi in his:
        hs, low = hi.att("lowpair")
        hoisted.extend(hs)
        if rel2 == "<=":  # i <= hi  =>  stop before hi+1
            low = mk.binop("+", low, ilit(1))
        hi_vars.append(as_var(ctx, hoisted, low, "hi", LONG))
    return hoisted, ids, lo_vars, hi_vars


def with_lowpair(n: DecoratedNode):
    """Expression-position with-loop: hoist the loop nest, yield a temp."""
    op = n.child(1)
    if op.prod == "genarrayOp":
        return genarray_lowpair(n, target=None)
    return fold_lowpair(n)


def genarray_lowpair(n: DecoratedNode, target: Node | None):
    """Lower ``with (gen) genarray(shape, body)``.

    ``target``: write into this existing matrix variable (assignment
    fusion, §III-A.4) instead of allocating a temp.
    """
    ctx = n.inh("ctx")
    ctx.need("matrix")
    op = n.child(1)
    t: TMatrix = n.att("typerep")
    hoisted, ids, lo_vars, hi_vars = lower_generator(n, ctx)

    shape_vars: list[Node] = []
    for s in cons_to_list(op.child(0)):
        hs, low = s.att("lowpair")
        hoisted.extend(hs)
        shape_vars.append(as_var(ctx, hoisted, low, "dim", LONG))

    if target is None:
        result_name = ctx.gensym("wl")
        _note_gensym_type(ctx, result_name, "rt_mat *")
        hoisted.append(
            mk.declInit(mk.tRaw("rt_mat *"), result_name,
                        alloc_node(t.elem, t.rank, shape_vars))
        )
        result = lvar(result_name)
    else:
        result = target
        # Fused writes require the target to already have this shape.
        for k, s in enumerate(shape_vars):
            hoisted.append(mk.exprStmt(call_n(
                "rt_require_dim", [result, ilit(k), s])))

    # Runtime check: the generator must lie inside the shape (§III-A.4:
    # "the shape in the operation must be a superset of the indexes in the
    # generator, which is something that can be checked at runtime").
    for k in range(len(ids)):
        hoisted.append(mk.exprStmt(call_n(
            "rt_bounds_check",
            [lo_vars[k], hi_vars[k], rt_dim_n(result, k), mk.strLit("genarray")],
        )))

    mark = drain_marker(ctx)
    bhs, blow = op.child(1).att("lowpair")
    inner = list(bhs)
    inner.append(set_elem(
        t.elem, result,
        linear_index(result, [lvar(i) for i in ids], t.rank),
        blow,
    ))
    inner.extend(drain_since(ctx, mark))

    loop = nest_loops(
        [(ids[k], lo_vars[k], hi_vars[k]) for k in range(len(ids))], inner
    )
    loop = apply_transforms_or_parallel(n, loop, ctx, hint="genarray")
    hoisted.append(loop)

    if target is None:
        note_matrix_temp(ctx, result_name)
        return hoisted, lvar(result_name)
    return hoisted, result


def fold_lowpair(n: DecoratedNode):
    ctx = n.inh("ctx")
    ctx.need("matrix")
    op = n.child(1)
    fold_op: str = op.node.children[0]
    result_t = n.att("typerep")
    ctype = ctype_of(result_t, ctx)

    hoisted, ids, lo_vars, hi_vars = lower_generator(n, ctx)

    nhs, nlow = op.child(1).att("lowpair")
    hoisted.extend(nhs)
    acc, acc_decl = ldecl(ctx, "acc", nlow, ctype)
    hoisted.append(acc_decl)

    mark = drain_marker(ctx)
    bhs, blow = op.child(2).att("lowpair")
    inner = list(bhs)
    if fold_op in ("+", "*"):
        inner.append(mk.exprStmt(mk.assign(lvar(acc), mk.binop(fold_op, lvar(acc), blow))))
    else:  # max / min
        tmp, tmp_decl = ldecl(ctx, "v", blow, ctype)
        cmp_op = ">" if fold_op == "max" else "<"
        inner.append(tmp_decl)
        inner.append(mk.ifStmt(
            mk.binop(cmp_op, lvar(tmp), lvar(acc)),
            mk.exprStmt(mk.assign(lvar(acc), lvar(tmp))),
        ))
    inner.extend(drain_since(ctx, mark))

    loop = nest_loops(
        [(ids[k], lo_vars[k], hi_vars[k]) for k in range(len(ids))], inner
    )
    # Folds stay sequential (the reduction across chunks is not emitted by
    # this prototype — matching the paper's automatic path, which
    # parallelizes the data-parallel constructs).
    loop = apply_transforms_or_parallel(n, loop, ctx, hint="fold", allow_parallel=False)
    hoisted.append(loop)
    return hoisted, lvar(acc)


def apply_transforms_or_parallel(
    n: DecoratedNode, loop: Node, ctx, *, hint: str, allow_parallel: bool = True
) -> Node:
    """Apply an explicit transform clause list (§V) if present; otherwise
    auto-parallelize the outer loop when the option is on (§III-C)."""
    xform = n.child(2)
    if xform.prod != "noTransform":
        transformer = getattr(ctx, "loop_transformer", None)
        if transformer is None:
            raise LoweringError(
                f"{n.span.start}: transform clauses used but the transform "
                f"extension is not composed into this translator"
            )
        return transformer(loop, xform, n, ctx)
    if allow_parallel and ctx.options.parallelize:
        return parallelize_loop(loop, n, ctx, hint=hint)
    return loop


# ---------------------------------------------------------------------------
# indexing
# ---------------------------------------------------------------------------

def compose_index_chain(n: DecoratedNode) -> Node | None:
    """Slice elimination (§III-A.4): rewrite ``m[i,j,:][k]`` so the outer
    scalar indexes replace the inner kept dimensions — no slice temp.

    Applies when the base is itself an index over a matrix and every
    *outer* selector is a scalar or a range landing on an inner "all"
    or "range" selector.
    """
    base = n.node.children[0]
    if base.prod != "index":
        return None
    inner_base_t = n.child(0).child(0).att("typerep")
    if not isinstance(inner_base_t, TMatrix):
        return None
    inner_sels = node_cons_to_list(base.children[1])
    outer_sels = node_cons_to_list(n.node.children[1])

    composed: list[Node] = []
    oi = 0
    for sel in inner_sels:
        if sel.prod == "idxExpr" and _is_scalar_sel(n, sel):
            composed.append(sel)
            continue
        if oi >= len(outer_sels):
            return None
        outer = outer_sels[oi]
        oi += 1
        if sel.prod == "idxAll":
            composed.append(outer)
        elif sel.prod == "idxRange":
            # inner a:b with outer scalar k -> a+k ; outer c:d -> a+c : a+d
            a = sel.children[0]
            if outer.prod == "idxExpr" and _is_scalar_sel(n, outer):
                composed.append(Node("idxExpr", [mk.binop("+", a, outer.children[0])]))
            elif outer.prod == "idxRange":
                composed.append(Node("idxRange", [
                    mk.binop("+", a, outer.children[0]),
                    mk.binop("+", a, outer.children[1]),
                ]))
            else:
                return None
        else:
            return None  # logical/gather inner dims: materialize
    if oi != len(outer_sels):
        return None
    idx_list = mk.idx_list(composed)
    return Node("index", [base.children[0], idx_list], n.span)


def _is_scalar_sel(n: DecoratedNode, sel: Node) -> bool:
    # Structural check is enough here: ranges/alls/logical selectors are
    # distinct productions; an idxExpr of matrix type is a gather.
    if sel.prod != "idxExpr":
        return False
    inner = sel.children[0]
    return inner.prod not in ("rangeE",) and not _looks_matrix(n, inner)


def _looks_matrix(n: DecoratedNode, tree: Node) -> bool:
    # Decorate the candidate selector to ask its type (higher-order attr).
    try:
        return is_matrix(n.decorate(tree).att("typerep"))
    except Exception:
        return False


def index_lowpair(n: DecoratedNode):
    base_t = n.child(0).att("typerep")
    if not isinstance(base_t, TMatrix):
        return None  # host / other extension handles it
    ctx = n.inh("ctx")
    ctx.need("matrix")

    if ctx.options.eliminate_slices:
        composed = compose_index_chain(n)
        if composed is not None:
            return n.decorate(composed).att("lowpair")

    hoisted: list[Node] = []
    bhs, blow = n.child(0).att("lowpair")
    hoisted.extend(bhs)
    bvar = as_var(ctx, hoisted, blow, "m", "rt_mat *")

    kinds = index_selector_kinds(n)
    assert kinds is not None  # sema verified
    sels = _lower_selectors(n, kinds, bvar, ctx, hoisted)

    if all(s["kind"] == "scalar" for s in sels):
        coords = [s["expr"] for s in sels]
        return hoisted, get_elem(base_t.elem, bvar, linear_index(bvar, coords, base_t.rank))

    # Materialize the selected submatrix.
    result_t: TMatrix = n.att("typerep")
    kept = [s for s in sels if s["kind"] != "scalar"]
    result_name = ctx.gensym("sub")
    _note_gensym_type(ctx, result_name, "rt_mat *")
    hoisted.append(mk.declInit(
        mk.tRaw("rt_mat *"), result_name,
        alloc_node(result_t.elem, result_t.rank, [s["size"] for s in kept]),
    ))
    result = lvar(result_name)

    rvars = [ctx.gensym("r") for _ in kept]
    src_coords = []
    ri = 0
    for s in sels:
        if s["kind"] == "scalar":
            src_coords.append(s["expr"])
        else:
            src_coords.append(s["source"](lvar(rvars[ri])))
            ri += 1
    inner = [set_elem(
        result_t.elem, result,
        linear_index(result, [lvar(r) for r in rvars], result_t.rank),
        get_elem(base_t.elem, bvar, linear_index(bvar, src_coords, base_t.rank)),
    )]
    loop = nest_loops(
        [(rvars[k], ilit(0), kept[k]["size"]) for k in range(len(kept))], inner
    )
    hoisted.append(loop)
    note_matrix_temp(ctx, result_name)
    return hoisted, result


def _lower_selectors(n, kinds, bvar, ctx, hoisted):
    """Lower each index selector to {kind, expr/size/source} descriptors."""
    sels = []
    for dim, (kind, idx) in enumerate(kinds):
        if kind == "scalar":
            tree = substitute_end(idx.node.children[0], bvar, dim)
            hs, low = n.decorate(tree).att("lowpair")
            hoisted.extend(hs)
            sels.append({"kind": "scalar", "expr": low})
        elif kind == "range":
            a_tree = substitute_end(idx.node.children[0], bvar, dim)
            b_tree = substitute_end(idx.node.children[1], bvar, dim)
            ahs, alow = n.decorate(a_tree).att("lowpair")
            bhs, blow2 = n.decorate(b_tree).att("lowpair")
            hoisted.extend(ahs)
            hoisted.extend(bhs)
            avar = as_var(ctx, hoisted, alow, "a", LONG)
            # inclusive: size = b - a + 1   (paper §III-A.3: 0:4 -> 5)
            size = mk.binop("+", mk.binop("-", blow2, avar), ilit(1))
            svar = as_var(ctx, hoisted, size, "n", LONG)
            hoisted.append(mk.exprStmt(call_n(
                "rt_bounds_check",
                [avar, mk.binop("+", avar, svar), rt_dim_n(bvar, dim),
                 mk.strLit("range index")])))
            sels.append({
                "kind": "range", "size": svar,
                "source": (lambda r, a=avar: mk.binop("+", a, r)),
            })
        elif kind == "all":
            dvar = as_var(ctx, hoisted, rt_dim_n(bvar, dim), "d", LONG)
            sels.append({
                "kind": "all", "size": dvar, "source": (lambda r: r),
            })
        elif kind == "gather":
            sels.append(_lower_gather(n, idx, bvar, dim, ctx, hoisted))
        else:  # logical
            sels.append(_lower_logical(n, idx, bvar, dim, ctx, hoisted))
    return sels


def _lower_gather(n, idx, bvar, dim, ctx, hoisted):
    """Integer-vector selector: m[v, ...] picks rows v[0], v[1], ..."""
    inner = idx.node.children[0]
    # `a :: b` used directly as an index: iterate the range, never
    # materializing the index vector (structural shortcut).
    if inner.prod == "rangeE":
        a_tree = substitute_end(inner.children[0], bvar, dim)
        b_tree = substitute_end(inner.children[1], bvar, dim)
        ahs, alow = n.decorate(a_tree).att("lowpair")
        bhs, blow2 = n.decorate(b_tree).att("lowpair")
        hoisted.extend(ahs)
        hoisted.extend(bhs)
        avar = as_var(ctx, hoisted, alow, "a", LONG)
        size = mk.binop("+", mk.binop("-", blow2, avar), ilit(1))
        svar = as_var(ctx, hoisted, size, "n", LONG)
        hoisted.append(mk.exprStmt(call_n(
            "rt_bounds_check",
            [avar, mk.binop("+", avar, svar), rt_dim_n(bvar, dim),
             mk.strLit("range index")])))
        return {
            "kind": "range", "size": svar,
            "source": (lambda r, a=avar: mk.binop("+", a, r)),
        }
    mark = drain_marker(ctx)
    hs, vlow = idx.child(0).att("lowpair")
    hoisted.extend(hs)
    vvar = as_var(ctx, hoisted, vlow, "iv", "rt_mat *")
    svar = as_var(ctx, hoisted, call_n("rt_size", [vvar]), "n", LONG)
    sel = {
        "kind": "gather", "size": svar,
        "source": (lambda r, v=vvar: get_elem(TInt(), v, r)),
        "cleanup": drain_since(ctx, mark),
    }
    return sel


def _lower_logical(n, idx, bvar, dim, ctx, hoisted):
    """Boolean-vector selector: positions of true values (§III-A.3.d).

    Two passes over the mask: count the true entries (result dimension),
    then record their positions; the copy loop gathers through them.  The
    mask and position temps are owned and drained at statement end.
    """
    hs, vlow = idx.child(0).att("lowpair")
    hoisted.extend(hs)
    vvar = as_var(ctx, hoisted, vlow, "bv", "rt_mat *")
    # check the mask spans this dimension
    hoisted.append(mk.exprStmt(call_n(
        "rt_require_dim", [vvar, ilit(0), rt_dim_n(bvar, dim)])))

    cnt, cnt_decl = ldecl(ctx, "cnt", ilit(0))
    hoisted.append(cnt_decl)
    j = ctx.gensym("j")
    hoisted.append(for_loop(j, ilit(0), call_n("rt_size", [vvar]), [
        mk.ifStmt(
            get_elem(TBool(), vvar, lvar(j)),
            mk.exprStmt(mk.assign(lvar(cnt), mk.binop("+", lvar(cnt), ilit(1)))),
        ),
    ]))
    pos_name = ctx.gensym("pos")
    _note_gensym_type(ctx, pos_name, "rt_mat *")
    hoisted.append(mk.declInit(
        mk.tRaw("rt_mat *"), pos_name, alloc_node(TInt(), 1, [lvar(cnt)])
    ))
    k, k_decl = ldecl(ctx, "k", ilit(0))
    hoisted.append(k_decl)
    j2 = ctx.gensym("j")
    hoisted.append(for_loop(j2, ilit(0), call_n("rt_size", [vvar]), [
        mk.ifStmt(
            get_elem(TBool(), vvar, lvar(j2)),
            mk.block(mk.stmt_list([
                set_elem(TInt(), lvar(pos_name), lvar(k), lvar(j2)),
                mk.exprStmt(mk.assign(lvar(k), mk.binop("+", lvar(k), ilit(1)))),
            ])),
        ),
    ]))
    note_matrix_temp(ctx, pos_name)
    return {
        "kind": "logical", "size": lvar(cnt),
        "source": (lambda r, p=pos_name: get_elem(TInt(), lvar(p), r)),
    }
