"""Lowering of overloaded operators on matrices (§III-A.2).

Elementwise arithmetic/comparison (matrix⊕matrix and matrix⊕scalar),
``.*`` elementwise multiply, ``*`` as true matrix multiplication on
rank-2 matrices, unary elementwise ops, and materialization of the range
expression ``a :: b`` into a rank-1 int matrix.
"""

from __future__ import annotations

from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.grammar import mk
from repro.exts.matrix.lower import (
    LONG, alloc_node, as_var, call_n, for_loop, get_elem, ilit, ldecl, lvar,
    nest_loops, note_matrix_temp, rt_dim_n, set_elem, _note_gensym_type,
)
from repro.exts.matrix.types import TMatrix, is_matrix

_CMP = {"<", "<=", ">", ">=", "==", "!="}


def binop_lowpair(n: DecoratedNode):
    """Handler for host `binop` lowering when a matrix operand is involved."""
    lt = n.child(1).att("typerep")
    rt = n.child(2).att("typerep")
    if not (is_matrix(lt) or is_matrix(rt)):
        return None
    ctx = n.inh("ctx")
    ctx.need("matrix")
    op: str = n.node.children[0]
    result_t: TMatrix = n.att("typerep")

    if op == "*" and isinstance(lt, TMatrix) and isinstance(rt, TMatrix):
        return _matmul_lowpair(n, ctx, result_t)

    hoisted: list[Node] = []
    operands = []
    for i, t in ((1, lt), (2, rt)):
        hs, low = n.child(i).att("lowpair")
        hoisted.extend(hs)
        if is_matrix(t):
            low = as_var(ctx, hoisted, low, "m", "rt_mat *")
        else:
            low = as_var(ctx, hoisted, low,
                         "s", "float" if str(t) == "float" else "int")
        operands.append((low, t))

    (a, at), (b, bt) = operands
    if is_matrix(at) and is_matrix(bt):
        hoisted.append(mk.exprStmt(call_n(
            "rt_shape_check", [a, b, mk.strLit(f"elementwise {op}")])))
        model = a
    else:
        model = a if is_matrix(at) else b

    result = _alloc_like(ctx, hoisted, result_t, model)

    i = ctx.gensym("i")
    lhs_e = get_elem(at.elem, a, lvar(i)) if is_matrix(at) else a
    rhs_e = get_elem(bt.elem, b, lvar(i)) if is_matrix(bt) else b
    body_op = "*" if op == ".*" else op
    val = mk.binop(body_op, lhs_e, rhs_e)
    hoisted.append(for_loop(i, ilit(0), call_n("rt_size", [model]), [
        set_elem(result_t.elem, lvar(result), lvar(i), val),
    ]))
    note_matrix_temp(ctx, result)
    return hoisted, lvar(result)


def _alloc_like(ctx, hoisted, result_t: TMatrix, model: Node) -> str:
    dims = [rt_dim_n(model, k) for k in range(result_t.rank)]
    name = ctx.gensym("ew")
    _note_gensym_type(ctx, name, "rt_mat *")
    hoisted.append(mk.declInit(
        mk.tRaw("rt_mat *"), name, alloc_node(result_t.elem, result_t.rank, dims)
    ))
    return name


def _matmul_lowpair(n: DecoratedNode, ctx, result_t: TMatrix):
    """True rank-2 matrix multiplication (the paper's linear-algebra `*`)."""
    hoisted: list[Node] = []
    ahs, alow = n.child(1).att("lowpair")
    bhs, blow = n.child(2).att("lowpair")
    hoisted.extend(ahs)
    hoisted.extend(bhs)
    a = as_var(ctx, hoisted, alow, "ma", "rt_mat *")
    b = as_var(ctx, hoisted, blow, "mb", "rt_mat *")
    hoisted.append(mk.exprStmt(call_n(
        "rt_matmul_check", [a, b])))

    m_d = as_var(ctx, hoisted, rt_dim_n(a, 0), "m", LONG)
    k_d = as_var(ctx, hoisted, rt_dim_n(a, 1), "k", LONG)
    n_d = as_var(ctx, hoisted, rt_dim_n(b, 1), "n", LONG)
    result = ctx.gensym("mm")
    _note_gensym_type(ctx, result, "rt_mat *")
    hoisted.append(mk.declInit(
        mk.tRaw("rt_mat *"), result, alloc_node(result_t.elem, 2, [m_d, n_d])
    ))

    at: TMatrix = n.child(1).att("typerep")
    bt: TMatrix = n.child(2).att("typerep")
    i, j, k = ctx.gensym("i"), ctx.gensym("j"), ctx.gensym("k")
    ctype = "float" if str(result_t.elem) == "float" else "int"
    acc, acc_decl = ldecl(ctx, "acc", ilit(0), ctype)
    inner_update = mk.exprStmt(mk.assign(
        lvar(acc),
        mk.binop("+", lvar(acc), mk.binop(
            "*",
            get_elem(at.elem, a, mk.binop("+", mk.binop("*", lvar(i), k_d), lvar(k))),
            get_elem(bt.elem, b, mk.binop("+", mk.binop("*", lvar(k), n_d), lvar(j))),
        )),
    ))
    body = [
        acc_decl,
        for_loop(k, ilit(0), k_d, [inner_update]),
        set_elem(result_t.elem, lvar(result),
                 mk.binop("+", mk.binop("*", lvar(i), n_d), lvar(j)),
                 lvar(acc)),
    ]
    hoisted.append(nest_loops([(i, ilit(0), m_d), (j, ilit(0), n_d)], body))
    note_matrix_temp(ctx, result)
    return hoisted, lvar(result)


def unop_lowpair(n: DecoratedNode):
    t = n.child(1).att("typerep")
    if not is_matrix(t):
        return None
    ctx = n.inh("ctx")
    ctx.need("matrix")
    op: str = n.node.children[0]
    result_t: TMatrix = n.att("typerep")
    hoisted: list[Node] = []
    hs, low = n.child(1).att("lowpair")
    hoisted.extend(hs)
    a = as_var(ctx, hoisted, low, "m", "rt_mat *")
    result = _alloc_like(ctx, hoisted, result_t, a)
    i = ctx.gensym("i")
    val = mk.unop(op, get_elem(t.elem, a, lvar(i)))
    hoisted.append(for_loop(i, ilit(0), call_n("rt_size", [a]), [
        set_elem(result_t.elem, lvar(result), lvar(i), val),
    ]))
    note_matrix_temp(ctx, result)
    return hoisted, lvar(result)


def range_lowpair(n: DecoratedNode):
    """Materialize ``a :: b`` (inclusive) into a rank-1 int matrix —
    Fig 8 line 27: ``Matrix float <1> Line = (x1::x2) * m + b``."""
    ctx = n.inh("ctx")
    ctx.need("matrix")
    hoisted: list[Node] = []
    ahs, alow = n.child(0).att("lowpair")
    bhs, blow = n.child(1).att("lowpair")
    hoisted.extend(ahs)
    hoisted.extend(bhs)
    a = as_var(ctx, hoisted, alow, "a", LONG)
    b = as_var(ctx, hoisted, blow, "b", LONG)
    size = mk.binop("+", mk.binop("-", b, a), ilit(1))
    svar = as_var(ctx, hoisted, size, "n", LONG)
    from repro.cminus.types import INT

    result = ctx.gensym("rng")
    _note_gensym_type(ctx, result, "rt_mat *")
    hoisted.append(mk.declInit(
        mk.tRaw("rt_mat *"), result, alloc_node(INT, 1, [svar])
    ))
    i = ctx.gensym("i")
    hoisted.append(for_loop(i, ilit(0), svar, [
        set_elem(INT, lvar(result), lvar(i), mk.binop("+", a, lvar(i))),
    ]))
    note_matrix_temp(ctx, result)
    return hoisted, lvar(result)
