"""The matrix language extension (paper §III) — the domain-specific
extension adding MATLAB/SAC-style matrices to CMINUS.

Components:

* grammar.py — concrete syntax (with-loops, matrixMap, init, Matrix type),
  all bridge productions marked per the determinism analysis;
* sema.py — type checking and error reporting, plus the overload handlers
  giving host operators their matrix meanings;
* lower.py / ops.py / stmts.py — translation to plain parallel C;
* types.py — TMatrix / TAnyMatrix.

The extension *requires* the refcount extension: "we build the underlying
implementation of matrices on top of the reference counting pointers"
(§III-C).
"""

from __future__ import annotations

from functools import lru_cache

from repro.cminus.env import Binding
from repro.cminus.types import INT, STRING, TFunc, VOID, Type
from repro.driver import LanguageModule
from repro.exts.matrix import ops, stmts
from repro.exts.matrix.grammar import MATRIX_AG, build_matrix_grammar, declare_matrix_absyn
from repro.exts.matrix.lower import fold_lowpair, genarray_lowpair, with_lowpair, index_lowpair
from repro.exts.matrix.sema import install_sema, matrix_type_handler
from repro.exts.matrix.types import ANY_MATRIX, TAnyMatrix, TMatrix, is_matrix

__all__ = ["ANY_MATRIX", "TAnyMatrix", "TMatrix", "is_matrix", "matrix_module"]

_equations_installed = False


def _install_lowering_equations() -> None:
    global _equations_installed
    if _equations_installed:
        return
    _equations_installed = True
    ag = MATRIX_AG
    ag.equation("withE", "lowpair", with_lowpair)
    ag.equation("matrixMapE", "lowpair", stmts.matrixmap_lowpair)
    ag.equation("initE", "lowpair", stmts.init_lowpair)
    ag.equation("tMatrix", "lowered", lambda n: _traw())
    # Declare host-attribute occurrences on extension nonterminals so the
    # well-definedness analysis can reason about them.
    ag.synthesized("errors", on=["Generator", "WithOp", "TransformOpt"])
    ag.inherited("env", on=["Generator", "WithOp"], autocopy=True)
    ag.inherited("ctx", on=["Generator", "WithOp", "TransformOpt"], autocopy=True)
    ag.inherited("in_index", on=["Generator", "WithOp"], autocopy=True)


def _traw():
    from repro.cminus.grammar import mk

    return mk.tRaw("rt_mat *")


def _matrix_ctype_hook(t: Type, ctx) -> str | None:
    if isinstance(t, (TMatrix, TAnyMatrix)):
        return "rt_mat *"
    return None


def _lowering_dispatch(kind: str, n) -> object | None:
    if kind == "binop":
        return ops.binop_lowpair(n)
    if kind == "unop":
        return ops.unop_lowpair(n)
    if kind == "range":
        return ops.range_lowpair(n)
    if kind == "index":
        return index_lowpair(n)
    if kind == "exprStmt":
        return stmts.exprstmt_lowered(n)
    if kind == "declInit":
        return stmts.declinit_lowered(n)
    if kind == "call":
        return stmts.call_lowpair(n)
    return None


def _context_hook(ctx) -> None:
    ctx.overloads.register_types("matrix", matrix_type_handler)
    ctx.overloads.register_lowering("matrix", _lowering_dispatch)
    if not hasattr(ctx, "ctype_hooks"):
        ctx.ctype_hooks = []
    ctx.ctype_hooks.append(_matrix_ctype_hook)


@lru_cache(maxsize=1)
def matrix_module() -> LanguageModule:
    declare_matrix_absyn()
    install_sema()
    _install_lowering_equations()
    builtins = [
        Binding("readMatrix", TFunc((STRING,), ANY_MATRIX), "func"),
        Binding("writeMatrix", TFunc((STRING, ANY_MATRIX), VOID), "func"),
        Binding("dimSize", TFunc((ANY_MATRIX, INT), INT), "func"),
    ]
    return LanguageModule(
        name="matrix",
        grammar=build_matrix_grammar(),
        ag=MATRIX_AG,
        builtins=builtins,
        context_hooks=[_context_hook],
        requires=("refcount",),
        runtime_features=("matrix", "io"),
    )
