"""Concrete syntax of the matrix extension (paper §III-A).

Every bridge production starts with one of the extension's marking
terminals (``Matrix``, ``with``, ``matrixMap``, ``init``), which is what
lets the extension pass the modular determinism analysis (§VI-A) — see
``benchmarks/test_bench_composability.py``.

    TypeExpr  ::= Matrix (int|bool|float) < IntLit >
    Primary   ::= with ( Generator ) Operation TransformOpt
    Generator ::= [ ExprList ] (<=|<) [ IdList ] (<=|<) [ ExprList ]
    Operation ::= genarray ( [ ExprList ] , Expr )
                | fold ( (+|*|max|min) , Expr , Expr )
    Primary   ::= matrixMap ( Identifier , Expr , [ ExprList ] )
    Primary   ::= init ( TypeExpr , ExprList )

Ranges ``a : b`` (inclusive, per §III-A.3's 0:4 -> 5 elements), whole
dimensions ``:``, ``end``, logical indexing, the ``::`` range expression
and ``.*`` are host-packaged syntax whose *semantics* this extension
supplies through the overload table.
"""

from __future__ import annotations

from repro.ag.core import AGSpec
from repro.grammar.cfg import GrammarSpec

MATRIX = "matrix"

# The matrix extension's abstract syntax lives in its own AG spec.
MATRIX_AG = AGSpec(MATRIX)

_declared = False


def declare_matrix_absyn() -> None:
    global _declared
    if _declared:
        return
    _declared = True
    MATRIX_AG.nonterminal("Generator", origin=MATRIX)
    MATRIX_AG.nonterminal("WithOp", origin=MATRIX)
    MATRIX_AG.nonterminal("TransformOpt", origin=MATRIX)
    P = MATRIX_AG.abstract_production
    P("withE", "Expr", ["Generator", "WithOp", "TransformOpt"], origin=MATRIX)
    P("generator", "Generator",
      ["ExprList", "#rel", "#ids", "#rel2", "ExprList"], origin=MATRIX)
    P("genarrayOp", "WithOp", ["ExprList", "Expr"], origin=MATRIX)
    P("foldOp", "WithOp", ["#op", "Expr", "Expr"], origin=MATRIX)
    P("noTransform", "TransformOpt", [], origin=MATRIX)
    P("matrixMapE", "Expr", ["#fname", "Expr", "ExprList"], origin=MATRIX)
    P("initE", "Expr", ["TypeExpr", "ExprList"], origin=MATRIX)
    P("tMatrix", "TypeExpr", ["TypeExpr", "#rank"], origin=MATRIX)


def build_matrix_grammar() -> GrammarSpec:
    from repro.cminus.grammar import mk  # host node builders

    declare_matrix_absyn()
    g = GrammarSpec(MATRIX)
    t = g.terminal
    t("MatrixKw", "Matrix", keyword=True, marking=True)
    t("With", "with", keyword=True, marking=True)
    t("MatrixMapKw", "matrixMap", keyword=True, marking=True)
    t("InitKw", "init", keyword=True, marking=True)
    t("Genarray", "genarray", keyword=True)
    t("Fold", "fold", keyword=True)
    t("MaxKw", "max", keyword=True)
    t("MinKw", "min", keyword=True)

    p = g.production
    ag = MATRIX_AG

    # Matrix type: Matrix float <3>
    p("BaseType ::= MatrixKw BaseType Lt IntLit Gt",
      lambda c: ag.make("tMatrix", [c[1], int(c[3].lexeme)]))

    # With-loop (Fig 2).
    p("Primary ::= With LParen Generator RParen Operation TransformOpt",
      lambda c: ag.make("withE", [c[2], c[4], c[5]]))
    p("TransformOpt ::=", lambda c: ag.make("noTransform", []))

    p("Generator ::= LBracket Args RBracket Rel LBracket IdList RBracket Rel LBracket Args RBracket",
      lambda c: ag.make("generator", [
          mk.expr_list(c[1]), c[3], c[5], c[7], mk.expr_list(c[9]),
      ]))
    p("Rel ::= Le", lambda c: "<=")
    p("Rel ::= Lt", lambda c: "<")
    p("IdList ::= Identifier", lambda c: [c[0].lexeme])
    p("IdList ::= Identifier Comma IdList", lambda c: [c[0].lexeme] + c[2])

    p("Operation ::= Genarray LParen LBracket Args RBracket Comma Expr RParen",
      lambda c: ag.make("genarrayOp", [mk.expr_list(c[3]), c[6]]))
    p("Operation ::= Fold LParen FoldOpTok Comma Expr Comma Expr RParen",
      lambda c: ag.make("foldOp", [c[2], c[4], c[6]]))
    p("FoldOpTok ::= Plus", lambda c: "+")
    p("FoldOpTok ::= Times", lambda c: "*")
    p("FoldOpTok ::= MaxKw", lambda c: "max")
    p("FoldOpTok ::= MinKw", lambda c: "min")

    # matrixMap(scoreTS, data, [2])   (Fig 4 / Fig 8)
    p("Primary ::= MatrixMapKw LParen Identifier Comma Expr Comma LBracket Args RBracket RParen",
      lambda c: ag.make("matrixMapE", [c[2].lexeme, c[4], mk.expr_list(c[7])]))

    # init(Matrix int <2>, 721, 1440)   (Fig 4)
    p("Primary ::= InitKw LParen TypeExpr Comma Args RParen",
      lambda c: ag.make("initE", [c[2], mk.expr_list(c[4])]))

    return g
