"""Statement-level matrix lowerings: assignment (with with-loop fusion,
§III-A.4), slice writes, declarations, builtin calls, matrixMap and init.
"""

from __future__ import annotations

from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.absyn import cons_to_list
from repro.cminus.grammar import mk
from repro.cminus.lower import finish_stmt
from repro.exts.matrix.lower import (
    LONG, alloc_node, as_var, call_n, drain_marker, drain_since, for_loop,
    genarray_lowpair, get_elem, ilit, ldecl, linear_index, lower_owned, lvar,
    nest_loops, note_matrix_temp, parallelize_loop, rt_dim_n, set_elem,
    _lower_selectors, _note_gensym_type,
)
from repro.exts.matrix.sema import index_selector_kinds
from repro.exts.matrix.types import TAnyMatrix, TMatrix, is_matrix


def _is_genarray_with(dn: DecoratedNode) -> bool:
    return dn.prod == "withE" and dn.node.children[1].prod == "genarrayOp"


# ---------------------------------------------------------------------------
# exprStmt: assignment statements involving matrices
# ---------------------------------------------------------------------------

def exprstmt_lowered(n: DecoratedNode):
    """Handler for host exprStmt lowering; returns None to decline."""
    inner = n.child(0)
    if inner.prod != "assign":
        return None
    lhs, rhs = inner.child(0), inner.child(1)
    lhs_t = lhs.att("typerep")
    rhs_t = rhs.att("typerep")
    indexed_matrix_write = (
        lhs.prod == "index" and is_matrix(lhs.child(0).att("typerep"))
    )
    if not (is_matrix(lhs_t) or is_matrix(rhs_t) or indexed_matrix_write):
        return None
    ctx = n.inh("ctx")
    ctx.need("matrix")

    if lhs.prod == "var":
        name = lhs.node.children[0]
        if _is_genarray_with(rhs) and ctx.options.fuse_assignment:
            # Fusion (§III-A.4): the generated loops write straight into
            # the target's storage — "move the assignment and avoid an
            # extraneous copy".
            hoisted, _res = genarray_lowpair(rhs, target=lvar(name))
            return finish_stmt(n, mk.seqStmt(mk.stmt_list(hoisted)), [])
        if _is_genarray_with(rhs):
            # Library-style baseline: materialize a temp, then copy it
            # into the existing storage via rt_assign_copy.
            hoisted, temp = rhs.att("lowpair")
            rc = getattr(ctx, "rc", None)
            if rc is not None:
                rc.forget_temp(temp)  # consumed by rt_assign_copy
            stmt = mk.exprStmt(mk.assign(
                lvar(name), call_n("rt_assign_copy", [lvar(name), temp])))
            return finish_stmt(n, mk.seqStmt(mk.stmt_list(list(hoisted) + [stmt])), [])
        # General matrix assignment: reference semantics with refcounts —
        # take ownership of the rhs, drop the old referent.
        hoisted, owned = lower_owned(ctx, rhs)
        stmts = list(hoisted)
        rc = getattr(ctx, "rc", None)
        if rc is not None:
            rc.forget_temp(owned)
            stmts.append(rc.dec_stmt(lvar(name)))
        if isinstance(rhs_t, TAnyMatrix) and isinstance(lhs_t, TMatrix):
            owned_var = as_var(ctx, stmts, owned, "rm", "rt_mat *")
            stmts.append(_rank_check(owned_var, lhs_t))
            owned = owned_var
        stmts.append(mk.exprStmt(mk.assign(lvar(name), owned)))
        return finish_stmt(n, mk.seqStmt(mk.stmt_list(stmts)), [])

    if indexed_matrix_write:
        return _lower_slice_write(n, lhs, rhs, ctx)

    return None


def _rank_check(var: Node, t: TMatrix) -> Node:
    return mk.exprStmt(call_n(
        "rt_check_rank", [var, ilit(t.rank), ilit(1 if str(t.elem) == "float" else 0)]
    ))


def _lower_slice_write(n: DecoratedNode, lhs: DecoratedNode, rhs: DecoratedNode, ctx):
    """scores[beginning::i] = computeArea(trough);  /  m[i,j] = v;  /
    labels[mask, :] = 0;"""
    base_t: TMatrix = lhs.child(0).att("typerep")
    hoisted: list[Node] = []
    bhs, blow = lhs.child(0).att("lowpair")
    hoisted.extend(bhs)
    bvar = as_var(ctx, hoisted, blow, "m", "rt_mat *")

    kinds = index_selector_kinds(lhs)
    sels = _lower_selectors(lhs, kinds, bvar, ctx, hoisted)
    rhs_t = rhs.att("typerep")

    if all(s["kind"] == "scalar" for s in sels):
        # plain element write
        rhs_hs, rhs_low = rhs.att("lowpair")
        hoisted.extend(rhs_hs)
        coords = [s["expr"] for s in sels]
        stmt = set_elem(base_t.elem, bvar,
                        linear_index(bvar, coords, base_t.rank), rhs_low)
        return finish_stmt(n, mk.seqStmt(mk.stmt_list(hoisted + [stmt])), [])

    kept = [s for s in sels if s["kind"] != "scalar"]
    rvars = [ctx.gensym("r") for _ in kept]
    src_coords = []
    ri = 0
    for s in sels:
        if s["kind"] == "scalar":
            src_coords.append(s["expr"])
        else:
            src_coords.append(s["source"](lvar(rvars[ri])))
            ri += 1

    if is_matrix(rhs_t):
        mark = drain_marker(ctx)
        rhs_hs, rhs_low = rhs.att("lowpair")
        hoisted.extend(rhs_hs)
        rvar_m = as_var(ctx, hoisted, rhs_low, "src", "rt_mat *")
        # the selected block and the rhs must agree elementwise
        for k2, s in enumerate(kept):
            hoisted.append(mk.exprStmt(call_n(
                "rt_require_dim", [rvar_m, ilit(k2), s["size"]])))
        value = get_elem(rhs_t.elem, rvar_m,
                         linear_index(rvar_m, [lvar(r) for r in rvars], len(kept)))
        cleanup = drain_since(ctx, mark)
    else:
        rhs_hs, rhs_low = rhs.att("lowpair")
        hoisted.extend(rhs_hs)
        sv = as_var(ctx, hoisted, rhs_low, "sv",
                    "float" if str(base_t.elem) == "float" else "int")
        value = sv  # broadcast scalar
        cleanup = []

    inner = [set_elem(base_t.elem, bvar,
                      linear_index(bvar, src_coords, base_t.rank), value)]
    loop = nest_loops(
        [(rvars[k], ilit(0), kept[k]["size"]) for k in range(len(kept))], inner
    )
    stmts = hoisted + [loop] + cleanup
    return finish_stmt(n, mk.seqStmt(mk.stmt_list(stmts)), [])


# ---------------------------------------------------------------------------
# declInit of matrix type
# ---------------------------------------------------------------------------

def declinit_lowered(n: DecoratedNode):
    t = n.child(0).att("typerep")
    if not is_matrix(t):
        return None
    ctx = n.inh("ctx")
    ctx.need("matrix")
    name = n.node.children[1]
    rhs = n.child(2)
    rhs_t = rhs.att("typerep")

    hoisted, owned = lower_owned(ctx, rhs)
    stmts = list(hoisted)
    rc = getattr(ctx, "rc", None)
    if rc is not None:
        rc.forget_temp(owned)  # the declared variable takes ownership
    if isinstance(rhs_t, TAnyMatrix) and isinstance(t, TMatrix):
        owned = as_var(ctx, stmts, owned, "rm", "rt_mat *")
        stmts.append(_rank_check(owned, t))
    stmts.append(mk.declInit(mk.tRaw("rt_mat *"), name, owned))
    return finish_stmt(n, mk.seqStmt(mk.stmt_list(stmts)), [])


# ---------------------------------------------------------------------------
# calls: builtins + user functions returning matrices
# ---------------------------------------------------------------------------

_BUILTIN_RENAME = {"dimSize": "rt_dim"}
_IO_BUILTINS = {"readMatrix", "writeMatrix"}


def call_lowpair(n: DecoratedNode):
    name = n.node.children[0]
    ctx = n.inh("ctx")
    ret_t = n.att("typerep")
    interesting = (
        name in _BUILTIN_RENAME
        or name in _IO_BUILTINS
        or is_matrix(ret_t)
        or any(is_matrix(a.att("typerep")) for a in cons_to_list(n.child(1)))
    )
    if not interesting:
        return None
    ctx.need("matrix")
    if name in _IO_BUILTINS:
        ctx.need("io")

    hoisted: list[Node] = []
    args: list[Node] = []
    for a in cons_to_list(n.child(1)):
        hs, low = a.att("lowpair")
        hoisted.extend(hs)
        args.append(low)
    call = mk.call(_BUILTIN_RENAME.get(name, name), mk.expr_list(args))

    if is_matrix(ret_t):
        # call results are owned references: bind and register the temp
        tmp = ctx.gensym("call")
        _note_gensym_type(ctx, tmp, "rt_mat *")
        hoisted.append(mk.declInit(mk.tRaw("rt_mat *"), tmp, call))
        note_matrix_temp(ctx, tmp)
        return hoisted, lvar(tmp)
    return hoisted, call


# ---------------------------------------------------------------------------
# init(Matrix T <r>, dims...)
# ---------------------------------------------------------------------------

def init_lowpair(n: DecoratedNode):
    ctx = n.inh("ctx")
    ctx.need("matrix")
    t: TMatrix = n.att("typerep")
    hoisted: list[Node] = []
    dims = []
    for d in cons_to_list(n.child(1)):
        hs, low = d.att("lowpair")
        hoisted.extend(hs)
        dims.append(low)
    tmp = ctx.gensym("init")
    _note_gensym_type(ctx, tmp, "rt_mat *")
    hoisted.append(mk.declInit(mk.tRaw("rt_mat *"), tmp,
                               alloc_node(t.elem, t.rank, dims)))
    note_matrix_temp(ctx, tmp)
    return hoisted, lvar(tmp)


# ---------------------------------------------------------------------------
# matrixMap (§III-A.5)
# ---------------------------------------------------------------------------

def matrixmap_lowpair(n: DecoratedNode):
    """matrixMap(f, m, [d...]): apply f to every [d...]-slice of m.

    The per-outer-point body is lifted into a new function so the pool's
    worker threads "can get direct access to it" (paper), then launched
    over the linearized space of non-mapped dimensions.
    """
    ctx = n.inh("ctx")
    ctx.need("matrix")
    fname: str = n.node.children[0]
    mt: TMatrix = n.child(1).att("typerep")
    result_t: TMatrix = n.att("typerep")  # elem may differ (Fig 4)
    map_dims = [d.node.children[0] for d in cons_to_list(n.child(2))]
    outer_dims = [d for d in range(mt.rank) if d not in map_dims]

    hoisted: list[Node] = []
    mhs, mlow = n.child(1).att("lowpair")
    hoisted.extend(mhs)
    mvar = as_var(ctx, hoisted, mlow, "mm", "rt_mat *")

    result = ctx.gensym("map")
    _note_gensym_type(ctx, result, "rt_mat *")
    hoisted.append(mk.declInit(
        mk.tRaw("rt_mat *"), result,
        alloc_node(result_t.elem, mt.rank,
                   [rt_dim_n(mvar, k) for k in range(mt.rank)]),
    ))

    # total outer iterations
    total: Node = ilit(1)
    for d in outer_dims:
        total = mk.binop("*", total, rt_dim_n(mvar, d))
    tvar_name, tdecl = ldecl(ctx, "total", total, LONG)
    hoisted.append(tdecl)

    body_stmts = _matrixmap_body(ctx, fname, mvar, lvar(result), mt, result_t,
                                 map_dims, outer_dims)
    t = ctx.gensym("t")
    loop = for_loop(t, ilit(0), lvar(tvar_name), body_stmts(lvar(t)))
    if ctx.options.parallelize and outer_dims:
        loop = parallelize_loop(loop, n, ctx, hint="mmap")
    if not outer_dims:
        # mapping over every dimension: a single application
        loop = mk.block(mk.stmt_list(body_stmts(ilit(0))))
    hoisted.append(loop)
    note_matrix_temp(ctx, result)
    return hoisted, lvar(result)


def _matrixmap_body(ctx, fname, mvar, result, mt: TMatrix, result_t: TMatrix,
                    map_dims, outer_dims):
    """Build the per-outer-point statements as a function of the linear
    outer index expression (so it can sit inside a loop or stand alone)."""

    def build(t_expr: Node) -> list[Node]:
        stmts: list[Node] = []
        # decompose t into outer coordinates (row-major over outer dims)
        coord: dict[int, Node] = {}
        rem_name, rem_decl = ldecl(ctx, "rem", t_expr, LONG)
        stmts.append(rem_decl)
        rem: Node = lvar(rem_name)
        for idx, d in enumerate(outer_dims):
            if idx == len(outer_dims) - 1:
                coord[d] = rem
            else:
                # stride = product of later outer dims
                stride: Node = ilit(1)
                for d2 in outer_dims[idx + 1:]:
                    stride = mk.binop("*", stride, rt_dim_n(mvar, d2))
                s_name, s_decl = ldecl(ctx, "st", stride, LONG)
                stmts.append(s_decl)
                c_name, c_decl = ldecl(ctx, "c", mk.binop("/", rem, lvar(s_name)), LONG)
                stmts.append(c_decl)
                r_name, r_decl = ldecl(ctx, "rm2", mk.binop("%", rem, lvar(s_name)), LONG)
                stmts.append(r_decl)
                coord[d] = lvar(c_name)
                rem = lvar(r_name)

        # materialize the slice over the mapped dimensions
        slice_name = ctx.gensym("slice")
        _note_gensym_type(ctx, slice_name, "rt_mat *")
        stmts.append(mk.declInit(
            mk.tRaw("rt_mat *"), slice_name,
            alloc_node(mt.elem, len(map_dims),
                       [rt_dim_n(mvar, d) for d in map_dims]),
        ))
        svars = [ctx.gensym("s") for _ in map_dims]
        for i, d in enumerate(map_dims):
            coord[d] = lvar(svars[i])
        full = [coord[d] for d in range(mt.rank)]
        copy_in = [set_elem(
            mt.elem, lvar(slice_name),
            linear_index(lvar(slice_name), [lvar(s) for s in svars], len(map_dims)),
            get_elem(mt.elem, mvar, linear_index(mvar, full, mt.rank)),
        )]
        stmts.append(nest_loops(
            [(svars[i], ilit(0), rt_dim_n(mvar, map_dims[i]))
             for i in range(len(map_dims))],
            copy_in,
        ))

        # apply the function
        rslice_name = ctx.gensym("rs")
        _note_gensym_type(ctx, rslice_name, "rt_mat *")
        stmts.append(mk.declInit(
            mk.tRaw("rt_mat *"), rslice_name,
            call_n(fname, [lvar(slice_name)]),
        ))
        stmts.append(mk.exprStmt(call_n(
            "rt_shape_check",
            [lvar(rslice_name), lvar(slice_name), mk.strLit("matrixMap")])))

        # copy the result back (the function's element type, Fig 4)
        copy_out = [set_elem(
            result_t.elem, result,
            linear_index(result, full, mt.rank),
            get_elem(result_t.elem, lvar(rslice_name),
                     linear_index(lvar(rslice_name), [lvar(s) for s in svars],
                                  len(map_dims))),
        )]
        stmts.append(nest_loops(
            [(svars[i], ilit(0), rt_dim_n(mvar, map_dims[i]))
             for i in range(len(map_dims))],
            copy_out,
        ))
        # free the per-point temporaries
        stmts.append(mk.exprStmt(call_n("rc_dec", [lvar(slice_name)])))
        stmts.append(mk.exprStmt(call_n("rc_dec", [lvar(rslice_name)])))
        return stmts

    return build
