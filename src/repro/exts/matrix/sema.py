"""Semantic analysis of the matrix extension (paper §III-A).

Two kinds of contributions:

* attribute equations on the extension's own productions (with-loops,
  matrixMap, init, the Matrix type) — typerep/errors/defs;
* an :class:`~repro.cminus.types.OverloadTable` type handler giving host
  operators (arithmetic, comparison, ``*`` vs ``.*``, ``::``, indexing,
  assignment) their matrix meanings.
"""

from __future__ import annotations

from repro.ag.eval import DecoratedNode
from repro.cminus.absyn import cons_to_list
from repro.cminus.env import Binding
from repro.cminus.sema import child_errors, err
from repro.cminus.types import (
    BOOL, ERROR, FLOAT, INT, TBool, TFloat, TInt, Type, assignable, is_error,
)
from repro.exts.matrix.grammar import MATRIX_AG, declare_matrix_absyn
from repro.exts.matrix.types import (
    TAnyMatrix, TMatrix, VALID_ELEMS, elem_unify, is_matrix,
)

ag = MATRIX_AG

_installed = False

ARITH_OPS = {"+", "-", "/", "%", ".*"}
CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}


def generator_parts(gen: DecoratedNode):
    los = cons_to_list(gen.child(0))
    ids: list[str] = gen.node.children[2]
    his = cons_to_list(gen.child(4))
    return los, gen.node.children[1], ids, gen.node.children[3], his


def install_sema() -> None:
    global _installed
    if _installed:
        return
    _installed = True
    declare_matrix_absyn()
    eq = ag.equation
    inh = ag.inh_equation

    # -- Matrix type expressions ------------------------------------------------
    def tmatrix_typerep(n):
        elem = n[0].typerep
        rank = n.node.children[1]
        if not isinstance(elem, VALID_ELEMS):
            return ERROR
        return TMatrix(elem, rank)

    def tmatrix_errors(n):
        out = child_errors(n)
        elem = n[0].typerep
        rank = n.node.children[1]
        if not is_error(elem) and not isinstance(elem, VALID_ELEMS):
            out.append(err(n, f"matrix elements must be int, bool or float, "
                              f"not {elem}"))
        if rank < 1 or rank > 8:
            out.append(err(n, f"matrix rank must be between 1 and 8, got {rank}"))
        return out

    eq("tMatrix", "typerep", tmatrix_typerep)
    eq("tMatrix", "errors", tmatrix_errors)

    # -- with-loops ------------------------------------------------------------------
    def with_ids_env(p):
        """Generator index variables are in scope inside the Operation."""
        gen = p.child(0)
        ids = gen.node.children[2]
        return p.inh("env").new_scope([Binding(i, INT, "index") for i in ids])

    inh("withE", 1, "env", with_ids_env)

    def withE_typerep(n):
        op = n.child(1)
        if op.prod == "genarrayOp":
            shape = cons_to_list(op.child(0))
            body_t = op.child(1).att("typerep")
            if is_error(body_t):
                return ERROR
            if not isinstance(body_t, VALID_ELEMS):
                return ERROR
            return TMatrix(body_t, len(shape))
        # fold
        neutral_t = op.child(1).att("typerep")
        body_t = op.child(2).att("typerep")
        if is_error(neutral_t) or is_error(body_t):
            return ERROR
        if isinstance(neutral_t, TFloat) or isinstance(body_t, TFloat):
            return FLOAT
        if isinstance(neutral_t, TInt) or isinstance(body_t, TInt):
            return INT
        return ERROR

    def withE_errors(n):
        out = child_errors(n)
        gen = n.child(0)
        los, _r1, ids, _r2, his = generator_parts(gen)
        # Paper: "The number of expressions in both the upper bound and
        # lower bound should match the number of Id's provided, which
        # should also match the number of dimensions in the Operation."
        if len(los) != len(ids) or len(his) != len(ids):
            out.append(err(n, f"with-loop generator has {len(ids)} index "
                              f"variable(s) but bounds of length "
                              f"{len(los)} and {len(his)}"))
        if len(set(ids)) != len(ids):
            out.append(err(n, "duplicate index variable in with-loop generator"))
        for b in los + his:
            t = b.att("typerep")
            if not is_error(t) and not isinstance(t, (TInt, TBool)):
                out.append(err(b, f"with-loop bound has type {t}, expected int"))
        op = n.child(1)
        if op.prod == "genarrayOp":
            shape = cons_to_list(op.child(0))
            if len(shape) != len(ids):
                out.append(err(n, f"genarray shape has {len(shape)} dimension(s) "
                                  f"but the generator binds {len(ids)} index "
                                  f"variable(s)"))
            for s in shape:
                t = s.att("typerep")
                if not is_error(t) and not isinstance(t, (TInt, TBool)):
                    out.append(err(s, f"genarray shape entry has type {t}, "
                                      f"expected int"))
            body_t = op.child(1).att("typerep")
            if not is_error(body_t) and not isinstance(body_t, VALID_ELEMS):
                out.append(err(op, f"genarray element expression has type "
                                   f"{body_t}, expected a scalar"))
        else:
            fold_op = op.node.children[0]
            neutral_t = op.child(1).att("typerep")
            body_t = op.child(2).att("typerep")
            for t, what in [(neutral_t, "neutral element"), (body_t, "body")]:
                if not is_error(t) and not isinstance(t, (TInt, TFloat, TBool)):
                    out.append(err(op, f"fold {what} has type {t}, "
                                       f"expected a numeric scalar"))
            if fold_op in ("max", "min") and isinstance(neutral_t, TBool):
                out.append(err(op, f"fold operator {fold_op!r} needs numeric "
                                   f"operands"))
        return out

    eq("withE", "typerep", withE_typerep)
    eq("withE", "errors", withE_errors)

    # -- matrixMap ------------------------------------------------------------------------
    def mm_parts(n):
        fname = n.node.children[0]
        dims = cons_to_list(n.child(2))
        return fname, n.child(1), dims

    def matrixmap_typerep(n):
        fname, m, dims = mm_parts(n)
        t = m.att("typerep")
        # Result is "always the same size and rank as the matrix getting
        # mapped over" (§III-A.5); the element type follows the mapped
        # function's return type (Fig 4 maps float SSH to int labels).
        if not isinstance(t, TMatrix):
            return ERROR
        from repro.cminus.types import TFunc
        b = n.inh("env").lookup(fname)
        if b is not None and isinstance(b.type, TFunc) and isinstance(b.type.ret, TMatrix):
            return TMatrix(b.type.ret.elem, t.rank)
        return t

    def matrixmap_errors(n):
        out = child_errors(n)
        fname, m, dims = mm_parts(n)
        mt = m.att("typerep")
        if not isinstance(mt, TMatrix):
            if not is_error(mt):
                out.append(err(n, f"matrixMap over non-matrix type {mt}"))
            return out
        dim_vals = []
        for d in dims:
            if d.node.prod != "intLit":
                out.append(err(d, "matrixMap dimensions must be integer literals"))
                return out
            dim_vals.append(d.node.children[0])
        if sorted(dim_vals) != dim_vals or len(set(dim_vals)) != len(dim_vals):
            out.append(err(n, "matrixMap dimensions must be strictly increasing"))
        if any(d < 0 or d >= mt.rank for d in dim_vals):
            out.append(err(n, f"matrixMap dimension out of range for rank "
                              f"{mt.rank} matrix"))
        if not dim_vals:
            out.append(err(n, "matrixMap needs at least one dimension"))
            return out
        b = n.inh("env").lookup(fname)
        from repro.cminus.types import TFunc
        want = TMatrix(mt.elem, len(dim_vals))
        if b is None:
            out.append(err(n, f"matrixMap of undeclared function {fname!r}"))
        elif not isinstance(b.type, TFunc):
            out.append(err(n, f"matrixMap of non-function {fname!r}"))
        elif (
            len(b.type.params) != 1
            or not assignable(b.type.params[0], want)
            or not isinstance(b.type.ret, TMatrix)
            or b.type.ret.rank != len(dim_vals)
        ):
            out.append(err(n, f"matrixMap function {fname!r} has type "
                              f"{b.type}; expected {want} -> a rank-"
                              f"{len(dim_vals)} matrix"))
        return out

    eq("matrixMapE", "typerep", matrixmap_typerep)
    eq("matrixMapE", "errors", matrixmap_errors)

    # -- init -----------------------------------------------------------------------------
    def init_typerep(n):
        return n[0].typerep

    def init_errors(n):
        out = child_errors(n)
        t = n[0].typerep
        if not isinstance(t, TMatrix):
            if not is_error(t):
                out.append(err(n, f"init of non-matrix type {t}"))
            return out
        dims = cons_to_list(n.child(1))
        if len(dims) != t.rank:
            out.append(err(n, f"init of rank-{t.rank} matrix with "
                              f"{len(dims)} dimension(s)"))
        for d in dims:
            dt = d.att("typerep")
            if not is_error(dt) and not isinstance(dt, (TInt, TBool)):
                out.append(err(d, f"init dimension has type {dt}, expected int"))
        return out

    eq("initE", "typerep", init_typerep)
    eq("initE", "errors", init_errors)


# ---------------------------------------------------------------------------
# operator overloading: the matrix meanings of host operators
# ---------------------------------------------------------------------------

def index_selector_kinds(n: DecoratedNode) -> list[tuple[str, DecoratedNode]] | None:
    """Classify each index of an `index` node: ("scalar"|"range"|"all"|
    "logical"|"gather", decorated index node); None if some index is
    ill-typed."""
    out = []
    for idx in cons_to_list(n.child(1)):
        if idx.prod == "idxAll":
            out.append(("all", idx))
        elif idx.prod == "idxRange":
            out.append(("range", idx))
        else:  # idxExpr
            t = idx.child(0).att("typerep")
            if isinstance(t, (TInt, TBool)):
                out.append(("scalar", idx))
            elif isinstance(t, TMatrix) and t.rank == 1 and isinstance(t.elem, TBool):
                out.append(("logical", idx))
            elif isinstance(t, TMatrix) and t.rank == 1 and isinstance(t.elem, TInt):
                out.append(("gather", idx))
            else:
                return None
    return out


def matrix_type_handler(op: str, lhs: Type, rhs: Type | None, n: DecoratedNode) -> Type | None:
    """OverloadTable type handler registered by the matrix module."""
    # assignment compatibility, incl. the readMatrix wildcard
    if op == "assign":
        if isinstance(lhs, TAnyMatrix) and is_matrix(rhs):
            return rhs
        if isinstance(rhs, TAnyMatrix) and is_matrix(lhs):
            return lhs
        if isinstance(lhs, TMatrix) and isinstance(rhs, TMatrix):
            if lhs.rank == rhs.rank and type(lhs.elem) == type(rhs.elem):
                return lhs
        if isinstance(lhs, TMatrix) and rhs is not None and rhs.is_scalar():
            # slice broadcast: scores[a:b] = 0.0
            return lhs
        return None

    if op == "::":
        if isinstance(lhs, (TInt, TBool)) and isinstance(rhs, (TInt, TBool)):
            return TMatrix(INT, 1)
        return None

    if op == "index":
        if not isinstance(lhs, TMatrix):
            return None
        kinds = index_selector_kinds(n)
        if kinds is None or len(kinds) != lhs.rank:
            return None
        kept = sum(1 for k, _ in kinds if k != "scalar")
        return lhs.elem if kept == 0 else TMatrix(lhs.elem, kept)

    if op == "unop-":
        return None  # handled via "-" unary below

    mat_l = isinstance(lhs, TMatrix)
    mat_r = isinstance(rhs, TMatrix)
    if not mat_l and not mat_r:
        return None

    if op in ("-", "!") and rhs is None:  # unary
        if mat_l and op == "-" and not isinstance(lhs.elem, TBool):
            return lhs
        if mat_l and op == "!" and isinstance(lhs.elem, TBool):
            return lhs
        return None

    def scalar_ok(t):
        return t is not None and t.is_scalar()

    if op in ARITH_OPS or op == "*":
        def int_like(t):
            return isinstance(t, (TInt, TBool))

        if op == "%":
            # elementwise modulo is integer-only (C has no float %)
            l_elem = lhs.elem if mat_l else lhs
            r_elem = rhs.elem if mat_r else rhs
            if not (int_like(l_elem) and int_like(r_elem)):
                return None
        if mat_l and mat_r:
            if lhs.rank != rhs.rank:
                return None
            if op == "*":
                # true matrix multiplication: rank-2 only (§III-A.2)
                if lhs.rank != 2:
                    return None
                return TMatrix(elem_unify(lhs.elem, rhs.elem), 2)
            return TMatrix(elem_unify(lhs.elem, rhs.elem), lhs.rank)
        if mat_l and scalar_ok(rhs):
            return TMatrix(elem_unify(lhs.elem, rhs), lhs.rank)
        if mat_r and scalar_ok(lhs):
            return TMatrix(elem_unify(lhs, rhs.elem), rhs.rank)
        return None

    if op in CMP_OPS:
        if mat_l and mat_r and lhs.rank == rhs.rank:
            return TMatrix(BOOL, lhs.rank)
        if mat_l and scalar_ok(rhs):
            return TMatrix(BOOL, lhs.rank)
        if mat_r and scalar_ok(lhs):
            return TMatrix(BOOL, rhs.rank)
        return None

    return None
