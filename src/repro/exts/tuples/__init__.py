"""The tuples extension (§III-B) — packaged with the host (§VI-A).

The paper's punchline for tuples: their natural concrete syntax begins
with ``(``, which is not a unique marking terminal, so the extension
*fails* the modular determinism analysis and is therefore "packaged as
part of the host language".  This package holds:

* :func:`tuples_module` — the marker module (the working syntax and
  semantics live in the host; see ``cminus/grammar.py`` and
  ``cminus/lower.py``);
* :func:`standalone_tuples_grammar` — what the extension's grammar
  *would* look like as an independent extension; the composability
  benchmark runs ``isComposable`` on it to reproduce the FAIL verdict;
* :func:`marked_tuples_grammar` — the paper's suggested fix with
  distinguishable delimiters ``(| ... |)``, which passes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ag.core import AGSpec
from repro.cminus.types import TTuple
from repro.driver import LanguageModule
from repro.grammar.cfg import GrammarSpec

__all__ = [
    "TTuple",
    "marked_tuples_grammar",
    "standalone_tuples_grammar",
    "tuples_module",
]


@lru_cache(maxsize=1)
def tuples_module() -> LanguageModule:
    # Marker module: everything ships inside the host (the paper's own
    # resolution).  An empty grammar/AG composes neutrally.
    return LanguageModule(
        name="tuples",
        grammar=GrammarSpec("tuples"),
        ag=AGSpec("tuples"),
    )


def standalone_tuples_grammar() -> GrammarSpec:
    """The tuples extension as it would be written independently.

    Bridge production begins with the host's LParen — not a marking
    terminal — so ``isComposable`` must reject it (paper §VI-A).
    """
    e = GrammarSpec("tuples-standalone")
    e.production("Primary ::= LParen Expr Comma Args RParen")
    e.production("BaseType ::= LParen TypeExpr Comma TypeListTail RParen")
    return e


def marked_tuples_grammar() -> GrammarSpec:
    """The paper's fix: "modify the tuple terminals to be (| and |)"."""
    e = GrammarSpec("tuples-marked")
    e.terminal("LTup", r"\(\|", marking=True)
    e.terminal("RTup", r"\|\)")
    e.production("Primary ::= LTup Expr Comma Args RTup")
    return e
