"""Cilk-style task parallelism — the paper's stated future work (§VIII).

"To this end we are also developing a extension that adds Cilk [4] style
parallelism constructs to C.  The goal is to determine how sophisticated
run-times, like in Cilk, can be delivered as a pluggable language
extension."

This module delivers that extension under the same composability regime
as the others:

* syntax (both forms marked by the ``spawn`` / ``sync`` keywords, so the
  extension passes the modular determinism analysis)::

      spawn f(a, b);            // fire-and-forget task
      spawn x = f(a, b);        // task whose result lands in x
      sync;                     // wait for all outstanding tasks

* semantic analysis: the spawned callee must be a declared function with
  matching arguments; the assignment form checks result compatibility;

* lowering: each spawn lifts the call into a task function taking a
  heap-allocated environment (argument values + a pointer to the result
  slot); the C runtime runs tasks on detached pthreads up to a cap and
  inlines beyond it, and ``sync`` joins everything outstanding.  The
  Python interpreter uses Cilk's *sequential elision* — running the call
  inline at the spawn point — which is a valid Cilk schedule, so both
  backends agree on every data-race-free program.

The run-time here is deliberately simpler than Cilk's work-stealing
deques; what the extension demonstrates is the paper's point — that a
task-parallel runtime can be *packaged as a composable extension* — not
a competitive scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.ag.core import AGSpec
from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.absyn import cons_to_list
from repro.cminus.grammar import mk
from repro.cminus.sema import child_errors, err
from repro.cminus.types import TFunc, TVoid, assignable, is_error
from repro.codegen.ctypemap import ctype_of
from repro.driver import LanguageModule
from repro.grammar.cfg import GrammarSpec
from repro.lexing.scanner import Token

CILK = "cilk"

CILK_AG = AGSpec(CILK)

_declared = False


@dataclass
class SpawnedFunc:
    """A lifted task body; duck-types LiftedFunc's C rendering interface."""

    name: str
    call_name: str
    arg_ctypes: list[str]
    result_ctype: str | None  # None for the fire-and-forget form

    def c_env_struct(self) -> str:
        fields = "".join(
            f"    {t} a{i};\n" for i, t in enumerate(self.arg_ctypes)
        )
        if self.result_ctype is not None:
            fields += f"    {self.result_ctype} *r;\n"
        return f"struct {self.name}_env {{\n{fields}}};"

    def c_definition(self) -> str:
        unpack = ", ".join(f"__e->a{i}" for i in range(len(self.arg_ctypes)))
        call = f"{self.call_name}({unpack})"
        body = f"*(__e->r) = {call};" if self.result_ctype is not None else f"{call};"
        return (
            f"static void {self.name}(void *__env) {{\n"
            f"    struct {self.name}_env *__e = (struct {self.name}_env *)__env;\n"
            f"    {body}\n"
            f"    free(__e);\n"
            f"}}"
        )

    def c_wrapper(self) -> str:
        return ""  # tasks are launched through rt_spawn, no pool wrapper


def declare_cilk_absyn() -> None:
    global _declared
    if _declared:
        return
    _declared = True
    P = CILK_AG.abstract_production
    P("spawnStmt", "Stmt", ["#fname", "ExprList"], origin=CILK)
    P("spawnAssign", "Stmt", ["Expr", "#fname", "ExprList"], origin=CILK)
    P("syncStmt", "Stmt", [], origin=CILK)


def build_cilk_grammar() -> GrammarSpec:
    declare_cilk_absyn()
    g = GrammarSpec(CILK)
    g.terminal("Spawn", "spawn", keyword=True, marking=True)
    g.terminal("Sync", "sync", keyword=True, marking=True)
    p = g.production
    p("Stmt ::= Spawn Identifier LParen ArgsOpt RParen Semi",
      lambda c: CILK_AG.make("spawnStmt", [c[1].lexeme, mk.expr_list(c[3])]))
    p("Stmt ::= Spawn UnaryExpr Eq Identifier LParen ArgsOpt RParen Semi",
      lambda c: CILK_AG.make("spawnAssign", [c[1], c[3].lexeme, mk.expr_list(c[5])]))
    p("Stmt ::= Sync Semi", lambda c: CILK_AG.make("syncStmt", []))
    return g


# ---------------------------------------------------------------------------
# semantic analysis
# ---------------------------------------------------------------------------

def _check_call(n: DecoratedNode, fname: str, args_child: int) -> list[str]:
    out = child_errors(n)
    b = n.inh("env").lookup(fname)
    if b is None:
        out.append(err(n, f"spawn of undeclared function {fname!r}"))
        return out
    if not isinstance(b.type, TFunc):
        out.append(err(n, f"spawn of non-function {fname!r}"))
        return out
    args = cons_to_list(n.child(args_child))
    if len(args) != len(b.type.params):
        out.append(err(n, f"{fname!r} expects {len(b.type.params)} "
                          f"arguments, got {len(args)}"))
        return out
    for i, (a, pt) in enumerate(zip(args, b.type.params)):
        at = a.att("typerep")
        if not is_error(at) and not assignable(pt, at):
            out.append(err(n, f"argument {i + 1} of spawned {fname!r}: "
                              f"cannot pass {at} as {pt}"))
        if getattr(at, "managed", False) and a.node.prod != "var":
            # A matrix-valued temporary would be freed by the spawning
            # statement's refcount drain while the task still reads it
            # (the caller must keep spawn arguments alive until sync).
            out.append(err(n, f"argument {i + 1} of spawned {fname!r} is a "
                              f"matrix-valued expression; bind it to a "
                              f"variable that lives until the sync"))
    return out


def _spawn_ret_type(n: DecoratedNode, fname: str):
    b = n.inh("env").lookup(fname)
    if b is not None and isinstance(b.type, TFunc):
        return b.type.ret
    return None


def _install_sema() -> None:
    ag = CILK_AG
    ag.equation("spawnStmt", "errors",
                lambda n: _check_call(n, n.node.children[0], 1))

    def spawn_assign_errors(n: DecoratedNode):
        fname = n.node.children[1]
        out = _check_call(n, fname, 2)
        if n.node.children[0].prod != "var":
            out.append(err(n, "spawn result target must be a variable"))
            return out
        ret = _spawn_ret_type(n, fname)
        tgt = n.child(0).att("typerep")
        if ret is not None and not is_error(tgt):
            if isinstance(ret, TVoid):
                out.append(err(n, f"spawned {fname!r} returns void; "
                                  f"use the statement form"))
            elif not assignable(tgt, ret) or getattr(ret, "managed", False):
                # managed (matrix) spawn results would race with refcount
                # bookkeeping; the prototype restricts results to scalars,
                # as Cilk-5 restricted spawn receivers.
                out.append(err(n, f"cannot receive spawned {ret} into {tgt} "
                                  f"(spawn results must be scalars)"))
        return out

    ag.equation("spawnAssign", "errors", spawn_assign_errors)
    ag.equation("syncStmt", "errors", lambda n: [])
    # spawn/sync introduce no bindings
    ag.equation("spawnStmt", "defs", lambda n: [])
    ag.equation("spawnAssign", "defs", lambda n: [])
    ag.equation("syncStmt", "defs", lambda n: [])


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------

def _lower_spawn(n: DecoratedNode, *, fname: str, args_child: int,
                 target_var: str | None) -> Node:
    """Lower to a structured launch both backends understand:

    ``__rt_spawn(<taskfn>, <callee>, [<target-var>,] args...)``

    The C printer expands it to env-struct setup + ``rt_spawn``; the
    interpreter executes the call inline (sequential elision).
    """
    from repro.cminus.lower import finish_stmt

    ctx = n.inh("ctx")
    ctx.need("tasks")
    hoisted: list[Node] = []
    arg_nodes: list[Node] = []
    arg_ctypes: list[str] = []
    for a in cons_to_list(n.child(args_child)):
        hs, low = a.att("lowpair")
        hoisted.extend(hs)
        arg_nodes.append(low)
        arg_ctypes.append(ctype_of(a.att("typerep"), ctx))

    result_ctype = None
    if target_var is not None:
        result_ctype = ctype_of(n.child(0).att("typerep"), ctx)

    task_name = ctx.gensym("task")
    ctx.lift_function(SpawnedFunc(task_name, fname, arg_ctypes, result_ctype))

    launch_args = [mk.strLit(task_name), mk.strLit(fname)]
    launch_name = "__rt_spawn"
    if target_var is not None:
        launch_name = "__rt_spawn_into"
        launch_args.append(mk.strLit(target_var))
    launch = mk.exprStmt(mk.call(launch_name, mk.expr_list(launch_args + arg_nodes)))
    return finish_stmt(n, mk.seqStmt(mk.stmt_list(hoisted + [launch])), [])


def _install_lowering() -> None:
    ag = CILK_AG
    ag.equation(
        "spawnStmt", "lowered",
        lambda n: _lower_spawn(n, fname=n.node.children[0], args_child=1,
                               target_var=None),
    )
    ag.equation(
        "spawnAssign", "lowered",
        lambda n: _lower_spawn(n, fname=n.node.children[1], args_child=2,
                               target_var=n.node.children[0].children[0]),
    )

    def lower_sync(n: DecoratedNode):
        n.inh("ctx").need("tasks")
        return mk.exprStmt(mk.call("rt_sync", mk.expr_list([])))

    ag.equation("syncStmt", "lowered", lower_sync)


@lru_cache(maxsize=1)
def cilk_module() -> LanguageModule:
    declare_cilk_absyn()
    _install_sema()
    _install_lowering()
    return LanguageModule(
        name=CILK,
        grammar=build_cilk_grammar(),
        ag=CILK_AG,
        runtime_features=("tasks",),
    )
