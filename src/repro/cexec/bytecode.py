"""Compiler: lowered (plain-C) host trees -> flat register bytecode.

The tree-walking interpreter pays for its generality on every single
evaluation step: dict-chain ``Scope`` lookups per variable reference,
exception-based ``break``/``continue``/``return``, a fresh float32
narrowing per ``floatLit`` visit, and string dispatch on production
names.  This module pays all of those costs *once*, at compile time:

* variables are resolved to **frame slots** (plain list indices) — block
  scoping and shadowing are a compile-time affair, slots of dead blocks
  are reused;
* control flow becomes **jump offsets** into a flat instruction array;
* constants are **pooled**: float literals are narrowed through float32
  exactly once, at compile time;
* every ``rt_*`` / refcount / tuple / I/O intrinsic is resolved to a
  direct opcode (the hottest — ``rt_getf``/``rt_setf``/``rt_geti``/
  ``rt_seti``/``rt_dim``/``rt_size`` — get dedicated opcodes with no
  argument-list packing at all).

Instructions are symbolic tuples ``(op, operands...)`` — easy to test
and disassemble; the VM (:mod:`repro.cexec.vm`) binds them to closures
("threaded code") for dispatch.  Innermost loops additionally get a
guarded numpy fast path (:mod:`repro.cexec.loopfast`) attached as a
``fastloop`` instruction in front of the scalar loop they shadow.

Frame layout: slot 0 is the return value, parameters occupy slots
1..len(params), locals and expression temporaries follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ag.tree import Node
from repro.cexec.interp import InterpError, RTRuntime, _zero_of
from repro.cminus.absyn import node_cons_to_list

# Binary operators with a dedicated opcode (same spelling as the source
# operator); "&&"/"||" compile to jumps instead (short-circuit).
_BINOP_OPS = frozenset(
    ["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="])

# Hot intrinsics that get dedicated opcodes instead of generic "intr".
_HOT_INTRINSICS = frozenset(
    ["rt_getf", "rt_setf", "rt_geti", "rt_seti", "rt_dim", "rt_size"])

# Opcodes whose operand 1 is a synchronously-written destination slot —
# the producers ``emit_move`` may retarget when folding a move-chain.
# ``spawn`` is excluded (its target slot is written asynchronously);
# ``rt_setf``/``rt_seti`` operand 1 is a source, not a dest.
_DEST_OPS = frozenset(
    ["const", "move", "neg", "not", "bool", "cast_int", "cast_f32",
     "rt_getf", "rt_geti", "rt_dim", "rt_size", "intr", "call",
     "tuple", "tget"]) | _BINOP_OPS

# -- parallel-eligibility hazards (S23/S25) ----------------------------------
#
# The fork-join pool may only move code off the owning thread when doing
# so cannot change observable behavior.  Eligibility is decided at
# compile time by an interprocedural hazard fixpoint; since S25 that
# analysis lives in :mod:`repro.analysis.parsafety` (where `reproc
# check --explain-parallel` can also *explain* every refusal), and this
# module consumes its verdicts.  The hazard vocabulary is re-exported
# here for compatibility with S23-era callers.

from repro.analysis.hazards import (  # noqa: F401  (re-exported API)
    ALL_HAZARDS, H_IO, H_POOL, H_PRINT, H_RC, H_SPAWN, H_TRAP,
    PROCESS_BLOCKERS as _PROCESS_BLOCKERS,
    SHARD_BLOCKERS as _SHARD_BLOCKERS, TASK_BLOCKERS as _TASK_BLOCKERS,
    TRAP_OPS as _TRAP_OPS,
)


@dataclass
class Code:
    """One compiled function: a flat instruction array plus frame info."""

    name: str
    params: list[str]
    nregs: int = 0
    instrs: list[tuple] = field(default_factory=list)

    def dis(self, quicken=()) -> str:
        """Human-readable disassembly (tests, debugging).  ``quicken``
        names opcodes the VM will rewrite in place at run time; matching
        sites are marked with a trailing ``~q``."""
        lines = [f"{self.name}({', '.join(self.params)})  nregs={self.nregs}"]
        for i, ins in enumerate(self.instrs):
            op, *args = ins
            if op == "fastloop":
                args = [f"<plan:{len(args[0].steps)} steps>", args[1]]
            elif op == "si":
                # A fused superinstruction: render its constituents (and
                # which intermediate writes were elided) on one line.
                parts, dead = args
                shown = []
                for part, dd in zip(parts, dead):
                    text = "{} {}".format(
                        part[0], ", ".join(map(repr, part[1:])))
                    shown.append(f"[{text}]*" if dd else f"[{text}]")
                lines.append(f"  {i:4d}  {'si':10s} {' '.join(shown)}")
                continue
            mark = "  ~q" if op in quicken else ""
            lines.append(
                f"  {i:4d}  {op:10s} {', '.join(map(repr, args))}{mark}")
        return "\n".join(lines)


class _FnCompiler:
    """Compiles one function body to a :class:`Code`."""

    def __init__(self, name: str, params: list[str],
                 proven_guards: frozenset = frozenset()):
        # rt_bounds_check call nodes (by id) the S25 interval fixpoint
        # proved can never fire; they compile to the rt_bounds_ok
        # counter bump instead of the comparing intrinsic.
        self.proven_guards = proven_guards
        self.code = Code(name, params)
        self.instrs = self.code.instrs
        self.scopes: list[dict[str, int]] = [{}]
        self.top = 1  # slot 0 = return value
        self.max_top = 1
        self.loops: list[tuple[list[int], list[int]]] = []  # (breaks, continues)
        # Every position some jump may land on (recorded at patch time
        # and at loop-header capture).  ``emit_move`` may only fold a
        # move into its producer when no jump can enter between the two.
        self.jump_marks: set[int] = set()
        for p in params:
            self.declare(p)

    # -- slots ---------------------------------------------------------------

    def alloc(self) -> int:
        s = self.top
        self.top += 1
        if self.top > self.max_top:
            self.max_top = self.top
        return s

    def declare(self, name: str) -> int:
        s = self.alloc()
        self.scopes[-1][name] = s
        return s

    def lookup(self, name: str) -> int | None:
        for sc in reversed(self.scopes):
            if name in sc:
                return sc[name]
        return None

    def slot(self, name: str) -> int:
        s = self.lookup(name)
        if s is None:
            raise InterpError(f"undefined variable {name!r}")
        return s

    # -- emission ------------------------------------------------------------

    def emit(self, *ins) -> int:
        self.instrs.append(ins)
        return len(self.instrs) - 1

    def here(self) -> int:
        return len(self.instrs)

    def patch(self, at: int, target: int) -> None:
        ins = self.instrs[at]
        self.instrs[at] = ins[:-1] + (target,)
        self.jump_marks.add(target)

    def mark(self, at: int) -> int:
        """Record a position captured as a jump target (loop headers)."""
        self.jump_marks.add(at)
        return at

    def emit_move(self, dst: int, r: int, save: int) -> None:
        """Emit ``move dst, r`` — or fold it away by retargeting the
        producer (S28 follow-up: kills the compiler's redundant
        move-chains at generation time instead of in copyprop).

        The fold is legal when the producer of ``r`` is the immediately
        preceding instruction, ``r`` is an expression temp (``>= save``,
        so nothing else reads it later), and no jump can land between
        producer and move (a short-circuit join, say, would then skip
        the removed move and leave ``dst`` unwritten on one path)."""
        if dst == r:
            return
        if r >= save and self.instrs and self.here() not in self.jump_marks:
            last = self.instrs[-1]
            if last[0] in _DEST_OPS and last[1] == r:
                self.instrs[-1] = (last[0], dst) + last[2:]
                return
        self.emit("move", dst, r)

    # -- statements ----------------------------------------------------------

    def stmt(self, node: Node) -> None:
        p = node.prod
        ch = node.children
        if p == "block":
            self.scopes.append({})
            save = self.top
            for s in node_cons_to_list(ch[0]):
                self.stmt(s)
            self.top = save
            self.scopes.pop()
        elif p == "seqStmt":
            for s in node_cons_to_list(ch[0]):
                self.stmt(s)
        elif p == "decl":
            self.emit("const", self.declare(ch[1]), _zero_of(ch[0]))
        elif p == "declInit":
            save = self.top
            r = self.expr(ch[2])
            self.top = save
            dst = self.declare(ch[1])
            self.emit_move(dst, r, save)
        elif p == "exprStmt":
            save = self.top
            self.expr(ch[0])
            self.top = save
        elif p == "ifStmt":
            save = self.top
            c = self.expr(ch[0])
            self.top = save
            j = self.emit("jz", c, -1)
            self.stmt(ch[1])
            self.patch(j, self.here())
        elif p == "ifElse":
            save = self.top
            c = self.expr(ch[0])
            self.top = save
            j_else = self.emit("jz", c, -1)
            self.stmt(ch[1])
            j_end = self.emit("jmp", -1)
            self.patch(j_else, self.here())
            self.stmt(ch[2])
            self.patch(j_end, self.here())
        elif p == "whileStmt":
            top = self.mark(self.here())
            save = self.top
            c = self.expr(ch[0])
            self.top = save
            j_exit = self.emit("jz", c, -1)
            self.loops.append(([j_exit], []))
            self.stmt(ch[1])
            self.emit("jmp", top)
            breaks, continues = self.loops.pop()
            for at in continues:
                self.patch(at, top)
            end = self.here()
            for at in breaks:
                self.patch(at, end)
        elif p == "doWhile":
            top = self.mark(self.here())
            self.loops.append(([], []))
            self.stmt(ch[0])
            cond_at = self.here()
            save = self.top
            c = self.expr(ch[1])
            self.top = save
            self.emit("jnz", c, top)
            breaks, continues = self.loops.pop()
            for at in continues:
                self.patch(at, cond_at)
            end = self.here()
            for at in breaks:
                self.patch(at, end)
        elif p == "forStmt":
            self.stmt_for(node)
        elif p == "returnStmt":
            save = self.top
            r = self.expr(ch[0])
            self.top = save
            self.emit("ret", r)
        elif p == "returnVoid":
            self.emit("ret_none")
        elif p == "breakStmt":
            if not self.loops:
                raise InterpError("break outside loop in lowered code")
            self.loops[-1][0].append(self.emit("jmp", -1))
        elif p == "continueStmt":
            if not self.loops:
                raise InterpError("continue outside loop in lowered code")
            self.loops[-1][1].append(self.emit("jmp", -1))
        elif p == "rawStmt":
            text = ch[0].strip()
            if not text.startswith("#pragma"):
                raise InterpError(f"cannot interpret raw statement {text!r}")
        else:
            raise InterpError(f"cannot interpret statement {p!r}")

    def stmt_for(self, node: Node) -> None:
        ch = node.children
        # Guarded numpy fast path: analyzed against the *enclosing* scope
        # (the loop variable is not a frame slot on the fast path).  On a
        # guard failure at runtime the instruction falls through into the
        # scalar loop compiled right behind it.
        from repro.cexec.loopfast import try_fast_loop

        plan = try_fast_loop(self, node)
        fl_at = self.emit("fastloop", plan, -1) if plan is not None else None

        self.scopes.append({})
        outer_top = self.top
        init = ch[0]
        if init.prod == "forDecl":
            save = self.top
            r = self.expr(init.children[2])
            self.top = save
            dst = self.declare(init.children[1])
            self.emit_move(dst, r, save)
        else:
            save = self.top
            self.expr(init.children[0])
            self.top = save
        top = self.mark(self.here())
        save = self.top
        c = self.expr(ch[1])
        self.top = save
        j_exit = self.emit("jz", c, -1)
        self.loops.append(([j_exit], []))
        self.stmt(ch[3])
        step_at = self.here()
        save = self.top
        self.expr(ch[2])
        self.top = save
        self.emit("jmp", top)
        breaks, continues = self.loops.pop()
        for at in continues:
            self.patch(at, step_at)
        end = self.here()
        for at in breaks:
            self.patch(at, end)
        self.top = outer_top
        self.scopes.pop()
        if fl_at is not None:
            self.patch(fl_at, end)

    # -- expressions ---------------------------------------------------------

    def expr(self, node: Node) -> int:
        """Compile an expression; returns the register holding its value
        (a variable's own slot when no copy is needed)."""
        p = node.prod
        ch = node.children
        if p == "intLit":
            d = self.alloc()
            self.emit("const", d, ch[0])
            return d
        if p == "floatLit":
            d = self.alloc()
            self.emit("const", d, float(np.float32(ch[0])))  # pooled once
            return d
        if p == "boolLit":
            d = self.alloc()
            self.emit("const", d, int(ch[0]))
            return d
        if p == "strLit":
            d = self.alloc()
            self.emit("const", d, ch[0])
            return d
        if p == "var":
            return self.slot(ch[0])
        if p == "rawExpr":
            if ch[0] == "NULL":
                d = self.alloc()
                self.emit("const", d, None)
                return d
            raise InterpError(f"cannot interpret raw expression {ch[0]!r}")
        if p == "binop":
            op = ch[0]
            if op in ("&&", "||"):
                return self.expr_shortcircuit(op, ch[1], ch[2])
            a = self.expr(ch[1])
            a = self.shield(a, ch[2])
            b = self.expr(ch[2])
            if op not in _BINOP_OPS:
                raise InterpError(f"cannot interpret operator {op!r}")
            d = self.alloc()
            self.emit(op, d, a, b)
            return d
        if p == "unop":
            v = self.expr(ch[1])
            d = self.alloc()
            self.emit("neg" if ch[0] == "-" else "not", d, v)
            return d
        if p == "assign":
            if ch[0].prod != "var":
                raise InterpError(
                    f"assignment target {ch[0].prod!r} in lowered code")
            save = self.top
            r = self.expr(ch[1])
            dst = self.slot(ch[0].children[0])
            self.emit_move(dst, r, save)
            return dst
        if p == "castE":
            v = self.expr(ch[1])
            kind = cast_kind(ch[0])
            if kind is None:  # pointer/struct casts are value-preserving
                return v
            d = self.alloc()
            self.emit("cast_int" if kind == "int" else "cast_f32", d, v)
            return d
        if p == "call":
            return self.expr_call(node)
        raise InterpError(f"cannot interpret expression {p!r}")

    def expr_shortcircuit(self, op: str, left: Node, right: Node) -> int:
        d = self.alloc()
        a = self.expr(left)
        j = self.emit("jz" if op == "&&" else "jnz", a, -1)
        b = self.expr(right)
        self.emit("bool", d, b)
        j_end = self.emit("jmp", -1)
        self.patch(j, self.here())
        self.emit("const", d, 0 if op == "&&" else 1)
        self.patch(j_end, self.here())
        return d

    def shield(self, reg: int, *later: Node) -> int:
        """Copy a variable's slot to a temp if a later operand may write
        it (an embedded assignment); plain data flow costs no move."""
        if any(n.count("assign") for n in later):
            d = self.alloc()
            self.emit("move", d, reg)
            return d
        return reg

    def arg_regs(self, argnodes: list[Node]) -> list[int]:
        regs = []
        for i, a in enumerate(argnodes):
            r = self.expr(a)
            regs.append(self.shield(r, *argnodes[i + 1:]))
        return regs

    def expr_call(self, node: Node) -> int:
        name = node.children[0]
        argnodes = node_cons_to_list(node.children[1])

        if name == "__rt_pool_run":
            fname = argnodes[0].children[0]
            total = self.expr(argnodes[1])
            caps = self.arg_regs(argnodes[2:])
            self.emit("pool", fname, total, tuple(caps))
            return self.none_reg()
        if name in ("__rt_spawn", "__rt_spawn_into"):
            into = name == "__rt_spawn_into"
            callee = argnodes[1].children[0]
            target = self.slot(argnodes[2].children[0]) if into else None
            args = self.arg_regs(argnodes[3:] if into else argnodes[2:])
            self.emit("spawn", target, callee, tuple(args))
            return self.none_reg()
        if name == "rt_sync":
            # A real instruction since S23: the VM waits here for tasks
            # it scheduled on the worker pool (elided tasks are already
            # complete, so with nthreads=1 this is a no-op).
            self.emit("sync")
            return self.none_reg()
        if name.startswith("__tuple_"):
            regs = self.arg_regs(argnodes)
            d = self.alloc()
            self.emit("tuple", d, tuple(regs))
            return d
        if name.startswith("__tget_"):
            idx = int(name[len("__tget_"):])
            src = self.expr(argnodes[0])
            d = self.alloc()
            self.emit("tget", d, src, idx)
            return d

        regs = self.arg_regs(argnodes)
        if name in _HOT_INTRINSICS:
            if name in ("rt_setf", "rt_seti"):
                self.emit(name, regs[0], regs[1], regs[2])
                return self.none_reg()
            d = self.alloc()
            self.emit(name, d, *regs)
            return d
        if name == "rc_inc" or name == "rc_dec":
            self.emit(name, regs[0])
            return self.none_reg()
        method = _INTRINSIC_METHODS.get(name)
        if method is not None:
            if method == "rt_bounds_check" and id(node) in self.proven_guards:
                method = "rt_bounds_ok"
            d = self.alloc()
            self.emit("intr", d, method, tuple(regs))
            return d
        d = self.alloc()
        self.emit("call", d, name, tuple(regs))
        return d

    def none_reg(self) -> int:
        d = self.alloc()
        self.emit("const", d, None)
        return d

    # -- assembly ------------------------------------------------------------

    def finish(self, body: Node) -> Code:
        self.stmt(body)
        self.code.nregs = self.max_top
        return self.code


def cast_kind(type_node: Node) -> str | None:
    """Compile-time resolution of :func:`repro.cexec.interp.cast_value`:
    ``"int"`` (truncating), ``"f32"`` (narrowing through float32), or
    ``None`` for value-preserving casts."""
    ctype = (type_node.children[0] if type_node.prod == "tRaw"
             else type_node.prod)
    if isinstance(ctype, str):
        ctype = ctype.strip()
    if ctype in ("tInt", "int", "long", "tBool", "tChar"):
        return "int"
    if ctype in ("tFloat", "float", "double"):
        return "f32"
    return None


def _intrinsic_methods() -> dict[str, str]:
    """Call name -> RTRuntime method name, resolved once at import time
    (the same resolution the tree-walker does per call via getattr)."""
    table = {
        "readMatrix": "_read_matrix",
        "writeMatrix": "_write_matrix",
        "printInt": "_print_int",
        "printFloat": "_print_float",
    }
    for attr in dir(RTRuntime):
        if attr.startswith("rt_"):
            table[attr] = attr
    return table


_INTRINSIC_METHODS = _intrinsic_methods()


def _discharged_guards(name: str, params: list[str],
                       body: Node) -> frozenset:
    """Ids of ``rt_bounds_check`` call nodes in ``body`` whose guard the
    S25 interval fixpoint proves passes on every path (lo >= 0 and
    hi <= dim for all concretizations) — typically the genarray guards
    over a result the same function just allocated with the generator's
    own shape.  Best-effort: any analysis failure keeps every guard."""
    import os

    if os.environ.get("REPRO_NO_GUARD_ELIDE", "") not in ("", "0"):
        return frozenset()
    try:
        from repro.analysis.cfg import build_cfg
        from repro.analysis.shapes import proven_in_range

        return proven_in_range(build_cfg(name, params, body))
    except Exception:
        return frozenset()


def compile_function(name: str, params: list[str], body: Node) -> Code:
    proven = _discharged_guards(name, params, body)
    return _FnCompiler(name, params, proven).finish(body)


class BytecodeProgram:
    """All functions of a lowered program, compiled on demand.

    Compilation is per-function and lazy (mirroring the tree-walker,
    which only ever faults on constructs it actually executes); compiled
    :class:`Code` is cached, so a program compiled once may be executed
    by many VMs.
    """

    def __init__(self, lowered_root: Node, ctx):
        self.functions: dict[str, tuple[list[str], Node]] = {}
        for f in node_cons_to_list(lowered_root.children[0]):
            _rett, fname, params, body = f.children
            pnames = [p.children[1] for p in node_cons_to_list(params)]
            self.functions[fname] = (pnames, body)
        # Lifted pool workers run with their captures plus the chunk
        # bounds as ordinary parameters.  Cilk SpawnedFuncs carry no tree
        # body (spawned calls run inline) and are skipped.
        self.lifted_trees: dict[str, tuple[list[str], Node]] = {}
        self.lifted = list(getattr(ctx, "lifted", []))
        for lf in self.lifted:
            if hasattr(lf, "body"):
                names = [n for _t, n in lf.captures]
                self.lifted_trees[lf.name] = (names + ["__lo", "__hi"], lf.body)
        self._code: dict[str, Code] = {}
        self._lifted_code: dict[str, Code] = {}
        self._spec_code: dict[str, Code] = {}
        self._spec_lifted_code: dict[str, Code] = {}
        self._safety = None
        # Mid-level IR pipeline (S28): lowered trees are compiled to TAC
        # bytecode as before, then rewritten through SSA passes at the
        # context's opt level.  ``opt_counts`` accumulates per-pass
        # rewrite totals across all lazily-compiled functions; engines
        # copy it into InterpStats so ``--stats`` can show it.
        self.opt_level = int(getattr(
            getattr(ctx, "options", None), "opt_level", 2))
        self.opt_counts: dict[str, int] = {}

    def _optimize(self, code: Code) -> Code:
        if self.opt_level <= 0:
            return code
        from collections import defaultdict

        from repro.ir import optimize_code

        counts: dict[str, int] = defaultdict(int)
        out = optimize_code(code, self.opt_level, counts)
        for k, v in counts.items():
            self.opt_counts[k] = self.opt_counts.get(k, 0) + v
        return out

    def code_for(self, name: str) -> Code:
        code = self._code.get(name)
        if code is None:
            if name not in self.functions:
                raise InterpError(f"call to unknown function {name!r}")
            params, body = self.functions[name]
            code = self._optimize(compile_function(name, params, body))
            self._code[name] = code
        return code

    def lifted_code_for(self, name: str) -> Code:
        code = self._lifted_code.get(name)
        if code is None:
            params, body = self.lifted_trees[name]
            code = self._optimize(compile_function(name, params, body))
            self._lifted_code[name] = code
        return code

    # -- dispatch specialization (S29) ---------------------------------------
    #
    # The fused stream is a *separate* memoized view over the optimized
    # bytecode: execution (and disassembly) consume it, while the hazard
    # and call-graph analyses keep scanning ``code_for`` — a fused "si"
    # tuple would hide its constituent traps/calls from them.

    def _specialize(self, code: Code) -> Code:
        from repro.cexec import superinstr
        from repro.cexec.superinstr_table import PAIRS, TRIPLES

        out, fused = superinstr.fuse(code, PAIRS, TRIPLES)
        if fused:
            self.opt_counts["superinstr"] = \
                self.opt_counts.get("superinstr", 0) + fused
        return out

    def spec_code_for(self, name: str) -> Code:
        code = self._spec_code.get(name)
        if code is None:
            code = self._specialize(self.code_for(name))
            self._spec_code[name] = code
        return code

    def spec_lifted_code_for(self, name: str) -> Code:
        code = self._spec_lifted_code.get(name)
        if code is None:
            code = self._specialize(self.lifted_code_for(name))
            self._spec_lifted_code[name] = code
        return code

    # -- parallel eligibility (S23, shared analysis since S25) ---------------

    @property
    def safety(self):
        """The program's :class:`repro.analysis.parsafety.ParallelSafety`
        — the interprocedural hazard fixpoint over the shared call graph,
        built lazily and memoized so the VM's eligibility gate and the
        ``reproc check`` diagnostics consume one traversal."""
        if self._safety is None:
            from repro.analysis.parsafety import ParallelSafety

            self._safety = ParallelSafety(self)
        return self._safety

    def lifted_parallel_safe(self, name: str) -> bool:
        """May this lifted pool-worker body run sharded across the worker
        pool?  True unless it (transitively) performs file I/O — the only
        effect whose cross-shard interleaving the shard-ordered merge of
        stats/stdout/traps cannot hide."""
        return self.safety.shard_safe(name)

    def task_parallel_safe(self, name: str) -> bool:
        """May a Cilk spawn of this function run as an off-thread pooled
        task instead of being elided inline?  Requires the whole call
        graph under it to be trap-free and free of ordered effects."""
        return self.safety.task_safe(name)

    def lifted_process_safe(self, name: str) -> bool:
        """May this lifted pool-worker body run in a *process* worker
        against shared-memory matrix copies (S27)?  Shard-safe and free
        of refcount traffic (frees in a child would not free anything
        in the parent)."""
        return self.safety.process_safe(name)

    def hazards_for(self, name: str, *, lifted: bool = False) -> frozenset:
        """Transitive hazard set of a function (or lifted worker body):
        a fixpoint over the static call graph, memoized per program."""
        return self.safety.hazards(("lifted" if lifted else "fn", name))
