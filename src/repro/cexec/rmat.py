"""The RMAT binary matrix format, Python side.

Layout (little-endian): ``"RMAT" | int32 elemkind (0=int/bool, 1=float)
| int32 rank | int64 dims[rank] | payload`` — matching the C runtime's
readMatrix/writeMatrix (repro.codegen.runtime_c).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

MAGIC = b"RMAT"


class RMATError(ValueError):
    pass


def write_rmat(path: str | Path, arr: np.ndarray) -> None:
    arr = np.asarray(arr)
    if arr.dtype.kind == "b":
        arr = arr.astype(np.int32)
    if arr.dtype.kind == "f":
        kind, payload = 1, arr.astype("<f4")
    elif arr.dtype.kind in "iu":
        kind, payload = 0, arr.astype("<i4")
    else:
        raise RMATError(f"unsupported dtype {arr.dtype}")
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<ii", kind, arr.ndim))
        for d in arr.shape:
            f.write(struct.pack("<q", d))
        f.write(np.ascontiguousarray(payload).tobytes())


def read_rmat(path: str | Path) -> np.ndarray:
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != MAGIC:
            raise RMATError(f"{path}: not an RMAT file")
        head = f.read(8)
        if len(head) != 8:
            raise RMATError(f"{path}: truncated header")
        kind, rank = struct.unpack("<ii", head)
        if kind not in (0, 1):
            raise RMATError(f"{path}: bad element kind {kind}")
        if rank < 0:
            raise RMATError(f"{path}: negative rank {rank}")
        raw_dims = f.read(8 * rank)
        if len(raw_dims) != 8 * rank:
            raise RMATError(f"{path}: truncated dimension list")
        dims = list(struct.unpack(f"<{rank}q", raw_dims)) if rank else []
        dtype = "<f4" if kind == 1 else "<i4"
        payload = f.read()
        if len(payload) % 4:
            raise RMATError(f"{path}: corrupt payload ({len(payload)} bytes)")
        data = np.frombuffer(payload, dtype=dtype)
        # A rank-0 matrix is a scalar: one element, not zero (np.prod of
        # an empty list is 1 anyway; the old `else 0` broke round-trips).
        expected = int(np.prod(dims, dtype=np.int64)) if dims else 1
        if data.size != expected:
            raise RMATError(
                f"{path}: payload has {data.size} elements, header says {expected}"
            )
        return data.reshape(dims).copy()
