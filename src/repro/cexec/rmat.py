"""The RMAT binary matrix format, Python side.

Layout (little-endian): ``"RMAT" | int32 elemkind (0=int/bool, 1=float)
| int32 rank | int64 dims[rank] | payload`` — matching the C runtime's
readMatrix/writeMatrix (repro.codegen.runtime_c).
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

MAGIC = b"RMAT"


class RMATError(ValueError):
    pass


def write_rmat(path: str | Path, arr: np.ndarray) -> None:
    arr = np.asarray(arr)
    if arr.dtype.kind == "b":
        arr = arr.astype(np.int32)
    if arr.dtype.kind == "f":
        kind, payload = 1, arr.astype("<f4")
    elif arr.dtype.kind in "iu":
        kind, payload = 0, arr.astype("<i4")
    else:
        raise RMATError(f"unsupported dtype {arr.dtype}")
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<ii", kind, arr.ndim))
        for d in arr.shape:
            f.write(struct.pack("<q", d))
        f.write(np.ascontiguousarray(payload).tobytes())


def read_rmat(path: str | Path) -> np.ndarray:
    with open(path, "rb") as f:
        magic = f.read(4)
        if magic != MAGIC:
            raise RMATError(f"{path}: not an RMAT file")
        kind, rank = struct.unpack("<ii", f.read(8))
        dims = [struct.unpack("<q", f.read(8))[0] for _ in range(rank)]
        dtype = "<f4" if kind == 1 else "<i4"
        data = np.frombuffer(f.read(), dtype=dtype)
        expected = int(np.prod(dims)) if dims else 0
        if data.size != expected:
            raise RMATError(
                f"{path}: payload has {data.size} elements, header says {expected}"
            )
        return data.reshape(dims).copy()
