"""Resource-limited program execution — the serve daemon's run entry (S26).

:func:`run_limited` wraps :func:`repro.cexec.interp.run_program` with the
three caps a multi-tenant daemon needs before it can execute untrusted
matrix programs:

* a **wall-clock deadline** enforced in-process via ``signal.setitimer``
  (SIGALRM), which interrupts the scalar VM between instructions — the
  supervising parent still holds a hard kill as the backstop for code
  stuck inside a C-level call;
* an **output-size cap**: the executor's stdout list is replaced with a
  :class:`CappedStdout` that traps the program the moment accumulated
  output crosses the limit (a runaway print loop cannot OOM the worker);
* an optional **address-space cap** (``RLIMIT_AS``), applied once per
  process via :func:`apply_memory_limit` so an allocation bomb dies with
  ``MemoryError`` inside the worker instead of taking the host down.

Results come back as a plain JSON-able dict (``ok``/``kind``/``stdout``/
``returncode``/``outputs``/counters) because the caller is usually on the
far side of a process boundary (:mod:`repro.serve.workers`).  Every
failure mode is a *value*, never an exception: traps, compile errors,
timeouts and output overruns all produce a well-formed result dict.
"""

from __future__ import annotations

import signal
import threading
import time
from typing import Any

from repro.cexec.interp import InterpError, RuntimeTrap

#: Result ``kind`` values, in order of increasing severity.
KIND_OK = "ok"
KIND_COMPILE_ERROR = "compile_error"
KIND_TRAP = "trap"
KIND_TIMEOUT = "timeout"
KIND_OUTPUT_LIMIT = "output_limit"
KIND_OOM = "oom"
KIND_INTERNAL = "internal"

DEFAULT_OUTPUT_CAP = 1 << 20  # 1 MiB of program stdout


class OutputLimitExceeded(RuntimeTrap):
    """The program printed more than the configured output cap."""


class DeadlineExceeded(InterpError):
    """The in-process wall-clock deadline fired mid-execution."""


class CappedStdout(list):
    """A stdout sink that traps the program once ``cap`` bytes accumulate.

    The engines append one formatted value per print call; the cap is
    checked on every append so a tight print loop is stopped within one
    line of crossing the limit, not after exhausting memory.
    """

    __slots__ = ("cap", "used")

    def __init__(self, cap: int):
        super().__init__()
        self.cap = cap
        self.used = 0

    def append(self, item: str) -> None:  # noqa: A003 - list API
        self.used += len(item) + 1  # + newline the caller will add
        if self.used > self.cap:
            raise OutputLimitExceeded(
                f"program output exceeded {self.cap} bytes"
            )
        super().append(item)


def apply_memory_limit(max_bytes: int) -> bool:
    """Cap this process's address space (best effort, Linux/POSIX only).

    Returns True when the limit was applied.  Failures are swallowed —
    the cap is defense in depth, not a correctness requirement.
    """
    if max_bytes <= 0:
        return False
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        new_hard = hard if hard != resource.RLIM_INFINITY else max_bytes
        resource.setrlimit(
            resource.RLIMIT_AS, (min(max_bytes, new_hard), new_hard)
        )
        return True
    except Exception:
        return False


class _Deadline:
    """SIGALRM-based wall-clock deadline (main-thread only).

    ``signal.setitimer`` can only be armed from the main thread of the
    main interpreter; anywhere else (e.g. the daemon running a request
    inline in a handler thread for tests) the deadline degrades to the
    supervisor's hard kill, which is always armed.
    """

    def __init__(self, seconds: float | None):
        self.seconds = seconds
        self.armed = False
        self._prev: Any = None

    def __enter__(self) -> "_Deadline":
        if (
            self.seconds is not None
            and self.seconds > 0
            and threading.current_thread() is threading.main_thread()
        ):
            def _on_alarm(signum, frame):
                raise DeadlineExceeded(
                    f"execution exceeded {self.seconds:.3g}s wall-clock limit"
                )

            self._prev = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self.armed = True
        return self

    def __exit__(self, *exc) -> None:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._prev)
            self.armed = False


def run_limited(
    source: str,
    extensions: list[str],
    *,
    inputs: dict[str, Any] | None = None,
    output_names: list[str] | None = None,
    engine: str = "vm",
    nthreads: int = 1,
    options=None,
    timeout_s: float | None = None,
    output_cap: int = DEFAULT_OUTPUT_CAP,
    workdir=None,
) -> dict:
    """Compile and execute one program under resource caps.

    ``inputs`` maps RMAT file names to nested lists / numpy arrays that
    are materialized in the run's working directory; ``output_names``
    lists RMAT files to read back (returned as nested lists so the result
    crosses process and JSON boundaries unchanged).

    Returns a dict with at minimum ``ok`` (bool), ``kind`` (one of the
    ``KIND_*`` constants), ``stdout`` (list of printed lines, possibly
    truncated), and ``elapsed_s``.  Successful runs add ``returncode``,
    ``outputs`` and the headline interpreter counters.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro.api import compile_source
    from repro.cexec.interp import make_engine
    from repro.cexec.rmat import read_rmat, write_rmat

    t0 = time.perf_counter()

    def done(kind: str, **extra) -> dict:
        out = {
            "ok": kind == KIND_OK,
            "kind": kind,
            "elapsed_s": time.perf_counter() - t0,
        }
        out.update(extra)
        return out

    try:
        cr = compile_source(source, list(extensions), options=options,
                            nthreads=nthreads)
    except Exception as e:
        return done(KIND_COMPILE_ERROR, errors=[str(e)], stdout=[])
    if not cr.ok:
        return done(KIND_COMPILE_ERROR, errors=list(cr.errors), stdout=[])

    wd = Path(workdir) if workdir else Path(
        tempfile.mkdtemp(prefix="repro-serve-")
    )
    wd.mkdir(parents=True, exist_ok=True)
    for name, data in (inputs or {}).items():
        arr = np.asarray(data, dtype=np.float32)
        write_rmat(wd / name, arr)

    capped = CappedStdout(output_cap)
    executor = make_engine(cr.lowered, cr.ctx, engine=engine,
                           workdir=wd, nthreads=nthreads)
    executor.stdout = capped
    truncated = False
    try:
        with _Deadline(timeout_s):
            try:
                rc = executor.run_main()
            except OutputLimitExceeded as e:
                truncated = True
                return done(KIND_OUTPUT_LIMIT, error=str(e),
                            stdout=list(capped), truncated=True)
            except DeadlineExceeded as e:
                return done(KIND_TIMEOUT, error=str(e), stdout=list(capped))
            except MemoryError:
                return done(KIND_OOM, error="address-space limit exceeded",
                            stdout=list(capped))
            except RuntimeTrap as e:
                # The C runtime exits 2 on traps; mirror that contract.
                return done(KIND_TRAP, error=str(e), returncode=2,
                            stdout=list(capped))
            except InterpError as e:
                return done(KIND_INTERNAL, error=str(e), stdout=list(capped))
            except (IndexError, ZeroDivisionError, OverflowError) as e:
                # The VM lets numpy/Python surface bounds and arithmetic
                # faults raw; to a daemon they are program traps, not bugs.
                return done(KIND_TRAP, error=f"runtime error: {e}",
                            returncode=2, stdout=list(capped))
            except Exception as e:
                return done(KIND_INTERNAL, error=f"{type(e).__name__}: {e}",
                            stdout=list(capped))
    finally:
        try:
            executor.close()
        except Exception:
            pass

    outputs: dict[str, Any] = {}
    for name in output_names or []:
        path = wd / name
        if path.exists():
            outputs[name] = read_rmat(path).tolist()
    stats = executor.stats
    return done(
        KIND_OK,
        returncode=rc,
        stdout=list(capped),
        truncated=truncated,
        outputs=outputs,
        stats={
            "allocs": stats.allocs,
            "frees": stats.frees,
            "parallel_regions": stats.parallel_regions,
            "tasks_spawned": stats.tasks_spawned,
        },
    )
