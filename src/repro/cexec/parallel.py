"""S23: shared-memory fork-join runtime for the bytecode VM.

This is the in-process Python analogue of the generated C runtime's
*enhanced fork-join* pool (S13, paper §III-C, following SAC [14]):

* **Workers are created once** per :class:`WorkerPool` (i.e. once per
  ``run_program``), not once per parallel construct.  The C pool parks
  idle workers in a spin lock on a generation counter; burning a core to
  spin is exactly wrong under the GIL, so the Python pool parks them in
  a :class:`threading.Condition` wait instead — the *start signal* is a
  generation bump plus a notify, the *stop barrier* is a done-counter
  the dispatching thread waits on.  The structure (generation counter,
  per-worker chunk, done-count barrier, inline execution of nested
  regions) mirrors ``rt_pool_*`` in :mod:`repro.codegen.runtime_c`.

* **Fork-join regions** (`run_region`): the caller passes one shard
  closure per thread; worker *t* executes shard *t+1* while the
  dispatching thread executes shard 0, then waits at the stop barrier.
  Dispatch is refused (returns ``False``) off the owner thread or while
  a region is already active — the caller then runs its shards inline,
  which is how nested parallel constructs degrade, exactly like the C
  runtime's ``rt_pool_region_active`` fallback.

* **Cilk tasks** (`submit` / `wait_task`): spawned calls are queued to
  the same workers, bounded by a live-task cap (the C runtime's
  ``RT_MAX_LIVE_TASKS``); a full pool makes ``submit`` return ``None``
  and the caller falls back to sequential elision.  ``wait_task`` *helps*:
  while the awaited task is unfinished the waiting thread drains and
  executes other queued tasks, so a task that spawns and syncs inside a
  worker can never deadlock the pool.

Why threads pay at all under the GIL: the VM's hot loops execute as
numpy batch operations (:mod:`repro.cexec.loopfast`), and numpy releases
the GIL inside its C loops — so sharding the *outer* iteration space
across this pool runs the vectorized inner work on all cores while only
the thin dispatch layer serializes.

:class:`NaiveForkJoin` implements the model the paper's §III-C argues
against — creating and joining threads for every construct — behind the
same interface, so the enhanced-vs-naive overhead comparison (E-S5) can
be *measured* on real VM executions rather than only modeled.
"""

from __future__ import annotations

import inspect
import os
import threading
import time
import warnings
import weakref
from collections import deque
from typing import Callable

# Mirrors RT_MAX_LIVE_TASKS in the generated C runtime (repro.codegen
# .runtime_c): spawns beyond this many live tasks run inline.
DEFAULT_TASK_CAP = 64

# How long to wait for a process worker to honor a retire/terminate
# before escalating (same grace the serve supervisor uses).
HARD_KILL_GRACE = 1.5

_warned_thread_excess = False


def resolve_nthreads(nthreads: int | None = None, *, default: int = 1) -> int:
    """Resolve a thread count: an explicit value wins, else the
    ``REPRO_THREADS`` environment variable, else ``default``.
    The result is clamped to at least 1.

    Env-derived ("auto") values are additionally clamped to
    ``os.cpu_count()`` — oversubscribing cores never helps either
    backend — with a once-per-process warning so a misconfigured
    ``REPRO_THREADS`` is visible rather than silently slow.  Explicit
    values are honored as requested (tests and benchmarks deliberately
    oversubscribe)."""
    if nthreads is not None:
        return max(1, int(nthreads))
    env = os.environ.get("REPRO_THREADS", "").strip()
    if env:
        try:
            val = int(env)
        except ValueError:
            pass
        else:
            val = max(1, val)
            cpus = os.cpu_count() or 1
            if val > cpus:
                global _warned_thread_excess
                if not _warned_thread_excess:
                    _warned_thread_excess = True
                    warnings.warn(
                        f"REPRO_THREADS={val} exceeds the {cpus} available "
                        f"CPU core(s); clamping to {cpus}",
                        RuntimeWarning, stacklevel=2)
                val = cpus
            return val
    return max(1, default)


BACKENDS = ("thread", "process", "auto")


def resolve_backend(backend: str | None = None, *,
                    default: str = "thread") -> str:
    """Resolve the parallel backend: an explicit value wins, else the
    ``REPRO_PARALLEL_BACKEND`` environment variable, else ``default``.

    ``thread`` shards onto the in-process fork-join pool (S23),
    ``process`` onto the shared-memory process pool (S27) with a thread
    fallback for regions the safety analysis rules out, and ``auto``
    picks per region: process when eligible, thread otherwise."""
    if backend is None:
        env = os.environ.get("REPRO_PARALLEL_BACKEND", "").strip().lower()
        backend = env or default
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown parallel backend {backend!r}; have {BACKENDS}")
    return backend


class Task:
    """One queued Cilk task: a thunk plus completion state.

    ``fn`` must capture everything it needs and store its own results;
    the pool records only an exception (re-raised by the VM at sync, in
    spawn order)."""

    __slots__ = ("fn", "exc", "_event")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.exc: BaseException | None = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self) -> None:
        self._event.wait()


class WorkerPool:
    """Persistent enhanced fork-join pool: ``nthreads - 1`` workers plus
    the owning thread, shared by pool regions and Cilk tasks."""

    def __init__(self, nthreads: int, *, task_cap: int = DEFAULT_TASK_CAP):
        self.nthreads = max(1, int(nthreads))
        self.task_cap = task_cap
        self._owner_ident = threading.get_ident()
        self._cond = threading.Condition()
        self._shutdown = False
        # fork-join region state (guarded by _cond)
        self._generation = 0
        self._shards: list[Callable[[], None]] = []
        self._done = 0
        self._region_active = False  # touched only by the owner thread
        # task state (guarded by _cond)
        self._tasks: deque[Task] = deque()
        self._live_tasks = 0
        # observability counters (tests, benchmarks)
        self.regions_dispatched = 0
        self.tasks_pooled = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True,
                             name=f"repro-pool-{i}")
            for i in range(self.nthreads - 1)
        ]
        for t in self._threads:
            t.start()

    # -- worker loop ---------------------------------------------------------

    def _worker(self, idx: int) -> None:
        seen = 0
        while True:
            shard = task = None
            with self._cond:
                while not (self._shutdown or self._generation != seen
                           or self._tasks):
                    self._cond.wait()
                if self._shutdown:
                    return
                if self._generation != seen:
                    # A new region released the pool: take this worker's
                    # shard (the dispatching thread runs shard 0 itself).
                    seen = self._generation
                    if idx + 1 < len(self._shards):
                        shard = self._shards[idx + 1]
                elif self._tasks:
                    task = self._tasks.popleft()
            if shard is not None:
                try:
                    shard()  # contract: shard closures never raise
                finally:
                    with self._cond:
                        self._done += 1
                        self._cond.notify_all()  # wake the stop barrier
            elif task is not None:
                self._run_task(task)

    # -- fork-join regions ---------------------------------------------------

    def run_region(self, shards: list[Callable[[], None]]) -> bool:
        """Execute ``shards`` as one fork-join region; ``True`` when the
        pool ran them, ``False`` when the caller must run them inline
        (off-owner-thread or nested dispatch — the C runtime's
        ``rt_pool_region_active`` path).

        Shard closures must not raise; the VM wraps each shard to record
        its exception for deterministic first-trap-wins re-raising."""
        if len(shards) > self.nthreads:
            raise ValueError(
                f"{len(shards)} shards for a {self.nthreads}-thread pool")
        if (threading.get_ident() != self._owner_ident
                or self._region_active or self._shutdown):
            return False
        if len(shards) <= 1:
            for s in shards:
                s()
            return True
        self._region_active = True
        try:
            with self._cond:
                self._shards = shards
                self._done = 0
                self._generation += 1  # start signal
                self.regions_dispatched += 1
                self._cond.notify_all()
            shards[0]()  # the owner participates as worker 0
            with self._cond:  # stop barrier: quiesce before returning
                while self._done < len(shards) - 1:
                    self._cond.wait()
        finally:
            self._region_active = False
        return True

    # -- Cilk tasks ----------------------------------------------------------

    def submit(self, fn: Callable[[], None]) -> Task | None:
        """Queue a task for the workers; ``None`` when the live-task cap
        is reached (caller applies sequential elision)."""
        with self._cond:
            if self._shutdown or self._live_tasks >= self.task_cap:
                return None
            self._live_tasks += 1
            self.tasks_pooled += 1
            task = Task(fn)
            self._tasks.append(task)
            self._cond.notify_all()
        return task

    def _run_task(self, task: Task) -> None:
        try:
            task.fn()
        except Exception as e:  # re-raised by the VM at the sync point
            task.exc = e
        finally:
            with self._cond:
                self._live_tasks -= 1
                self._cond.notify_all()
            task._event.set()

    def wait_task(self, task: Task) -> None:
        """Wait for ``task``, helping execute other queued tasks — a
        syncing task inside a worker makes progress instead of
        deadlocking the pool."""
        while not task.done:
            other = None
            with self._cond:
                if self._tasks:
                    other = self._tasks.popleft()
            if other is not None:
                self._run_task(other)
            else:
                # Not queued and not done: it is running on some thread.
                task.wait()

    def drain(self) -> None:
        """Wait for every live task (implicit final sync), helping."""
        while True:
            task = None
            with self._cond:
                if self._live_tasks == 0:
                    return
                if self._tasks:
                    task = self._tasks.popleft()
            if task is not None:
                self._run_task(task)
            else:
                with self._cond:
                    if self._live_tasks == 0:
                        return
                    self._cond.wait(0.05)

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=1.0)

    @property
    def alive(self) -> bool:
        return not self._shutdown

    @property
    def region_active(self) -> bool:
        """True while the owner thread is inside run_region — i.e. pool
        workers may be running shards right now (fork hazard, S27)."""
        return self._region_active


class NaiveForkJoin:
    """Spawn-per-construct fork-join — the model §III-C improves upon.

    Same interface as :class:`WorkerPool`, but every region creates and
    joins fresh threads, paying "the price of creating and destroying
    threads each time"; tasks always elide.  Exists so E-S5 can measure
    the enhanced pool's advantage on real executions."""

    def __init__(self, nthreads: int, **_ignored):
        self.nthreads = max(1, int(nthreads))
        self._owner_ident = threading.get_ident()
        self._region_active = False
        self.regions_dispatched = 0
        self.tasks_pooled = 0

    def run_region(self, shards: list[Callable[[], None]]) -> bool:
        if (threading.get_ident() != self._owner_ident
                or self._region_active):
            return False
        self._region_active = True
        try:
            self.regions_dispatched += 1
            threads = [threading.Thread(target=s) for s in shards[1:]]
            for t in threads:
                t.start()
            if shards:
                shards[0]()
            for t in threads:  # join is the (expensive) stop barrier
                t.join()
        finally:
            self._region_active = False
        return True

    def submit(self, fn: Callable[[], None]) -> Task | None:
        return None  # tasks always run via sequential elision

    def wait_task(self, task: Task) -> None:  # pragma: no cover - no tasks
        task.wait()

    def drain(self) -> None:
        pass

    def shutdown(self) -> None:
        pass

    @property
    def alive(self) -> bool:
        return True

    @property
    def region_active(self) -> bool:
        return self._region_active


FORK_MODES = ("enhanced", "naive")


def make_pool(nthreads: int, fork_mode: str = "enhanced"):
    """A fork-join backend for ``nthreads`` threads, or ``None`` when
    one thread needs no pool at all."""
    if nthreads <= 1:
        return None
    if fork_mode == "enhanced":
        return WorkerPool(nthreads)
    if fork_mode == "naive":
        return NaiveForkJoin(nthreads)
    raise ValueError(f"unknown fork mode {fork_mode!r}; have {FORK_MODES}")


# --------------------------------------------------------------------------
# S27: shared-memory process pool
# --------------------------------------------------------------------------

# Fork-time handoff to the child's main: with the fork start method the
# child inherits this module-global by memory, so the (unpicklable)
# runner/setup callables never travel through Process args — which also
# keeps the parent-side Process object from pinning the VM alive.
_fork_payload = None


def attach_shm(name: str):
    """Attach an existing shared-memory segment created by the region
    owner.

    Tracker discipline (3.11 has no ``track=False``): every attach also
    registers the name with the resource tracker.  Because the workers
    are *forked* after :class:`ProcessShardPool` has ensured the
    tracker is running, parent and children share one tracker whose
    per-type cache is a set — the creator's register puts the name in,
    every attacher's register dedups to a no-op, and the creator's
    ``unlink`` performs the single balancing unregister.  Nobody else
    may unregister, or the tracker's cache underflows and it logs a
    KeyError at shutdown."""
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _process_worker_main(conn) -> None:
    """Loop of one forked shard worker: receive a job dict, run it via
    the inherited runner, ship ``(stats, stdout, exc)`` back.  ``None``
    retires the worker; a ``_crash`` job simulates dying mid-shard."""
    runner, child_setup = _fork_payload
    if child_setup is not None:
        child_setup()
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            os._exit(0)
        if job is None:  # graceful retire
            conn.close()
            os._exit(0)
        if job.get("_crash"):  # supervision test hook (cf. serve.workers)
            os._exit(17)
        if job.get("_sleep"):  # timeout test hook
            time.sleep(job["_sleep"])
        try:
            result = runner(job)
        except BaseException as e:  # runner contract violation
            from repro.cexec.interp import InterpStats

            result = (InterpStats(), [], e)
        try:
            conn.send(result)
        except Exception:
            # An unpicklable exception object: degrade to its message.
            from repro.cexec.interp import InterpError

            stats, stdout, exc = result
            conn.send((stats, stdout, InterpError(str(exc))))


class ProcessShardPool:
    """Persistent pool of forked worker *processes* executing shard jobs
    against numpy views over ``multiprocessing.shared_memory`` (S27).

    The supervision story follows :mod:`repro.serve.workers`: fork start
    method (jobs and programs travel by inherited memory, never via
    pickling), crash detection by pipe EOF, optional per-region
    timeouts, and respawn after any loss.  Unlike the serve pool, a lost
    worker does not fail the request — ``run_shards`` returns ``None``,
    the caller discards the (uncommitted) region and reruns it
    sequentially, so a SIGKILLed worker costs time, never correctness.

    The pool holds its runner/setup callables only weakly when they are
    bound methods, so a VM that owns a pool can still be collected; its
    finalizer then shuts the workers down.
    """

    def __init__(self, nworkers: int, runner, child_setup=None, *,
                 timeout_s: float | None = None):
        import multiprocessing as mp

        self.nworkers = max(1, int(nworkers))
        self.timeout_s = timeout_s
        self._runner_ref = (weakref.WeakMethod(runner)
                            if inspect.ismethod(runner) else lambda: runner)
        self._setup_ref = (weakref.WeakMethod(child_setup)
                           if inspect.ismethod(child_setup)
                           else lambda: child_setup)
        self._ctx = mp.get_context("fork")
        # Start the resource tracker *before* forking workers so they
        # inherit its pipe: shm registers from any process then dedup
        # into one shared cache instead of each child spawning a
        # private tracker that would unlink segments on worker exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        self._owner_ident = threading.get_ident()
        self._shutdown = False
        # observability (tests, benchmarks, --stats)
        self.regions_dispatched = 0
        self.workers_respawned = 0
        self.test_crash_next: int | None = None  # worker index, tests only
        self._workers = [self._spawn_worker() for _ in range(self.nworkers)]

    # -- lifecycle -----------------------------------------------------------

    def _spawn_worker(self):
        global _fork_payload
        parent_conn, child_conn = self._ctx.Pipe()
        _fork_payload = (self._runner_ref(), self._setup_ref())
        try:
            proc = self._ctx.Process(
                target=_process_worker_main, args=(child_conn,),
                daemon=True, name="repro-ppool-worker")
            proc.start()
        finally:
            _fork_payload = None
        child_conn.close()
        return [proc, parent_conn]

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        for proc, conn in self._workers:
            try:
                conn.send(None)  # graceful retire
            except (OSError, BrokenPipeError, ValueError):
                pass
        for proc, conn in self._workers:
            proc.join(timeout=HARD_KILL_GRACE)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=HARD_KILL_GRACE)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                proc.kill()
                proc.join(timeout=HARD_KILL_GRACE)
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = []

    @property
    def alive(self) -> bool:
        return not self._shutdown

    @property
    def alive_workers(self) -> int:
        return sum(1 for proc, _ in self._workers if proc.is_alive())

    # -- regions -------------------------------------------------------------

    def run_shards(self, jobs: list) -> list | None:
        """Execute ``jobs`` (dicts) as one region: job 0 runs in the
        calling process, jobs 1..n ship to the workers.  Returns per-job
        ``(stats, stdout, exc)`` results in job order, or ``None`` when
        any worker was lost to a crash or timeout — nothing was
        committed, the caller reruns the region sequentially.  Lost
        workers are respawned before returning."""
        if self._shutdown or threading.get_ident() != self._owner_ident:
            return None
        n = len(jobs)
        if n - 1 > self.nworkers:
            raise ValueError(
                f"{n} shards for a {self.nworkers}-process pool")
        runner = self._runner_ref()
        if runner is None:  # pragma: no cover - owner was collected
            return None
        self.regions_dispatched += 1
        crash_at, self.test_crash_next = self.test_crash_next, None
        lost = False
        for t in range(1, n):
            payload = jobs[t]
            if crash_at == t:
                payload = dict(payload, _crash=True)
            try:
                self._workers[t - 1][1].send(payload)
            except (OSError, BrokenPipeError):
                lost = True
        results: list = [None] * n
        results[0] = runner(jobs[0])
        deadline = (time.monotonic() + self.timeout_s
                    if self.timeout_s else None)
        for t in range(1, n):
            got = self._recv(self._workers[t - 1][1], deadline)
            if got is None:
                lost = True
            else:
                results[t] = got
        if lost:
            self._respawn_all()
            return None
        return results

    def _recv(self, conn, deadline):
        try:
            if deadline is None:
                return conn.recv()
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None  # timed out: worker treated as lost
                if conn.poll(min(remaining, 0.05)):
                    return conn.recv()
        except (EOFError, OSError):
            return None  # pipe EOF: the worker crashed

    def _respawn_all(self) -> None:
        # A region was lost: results channels may hold stale messages
        # and some workers may be wedged mid-shard, so replace the whole
        # bench rather than diagnose survivors (regions are discarded
        # wholesale, so no work is stranded).
        for proc, conn in self._workers:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=HARD_KILL_GRACE)
            if proc.is_alive():  # pragma: no cover - stuck in kernel
                proc.kill()
                proc.join(timeout=HARD_KILL_GRACE)
        self.workers_respawned += self.nworkers
        self._workers = [self._spawn_worker() for _ in range(self.nworkers)]
