"""S23: shared-memory fork-join runtime for the bytecode VM.

This is the in-process Python analogue of the generated C runtime's
*enhanced fork-join* pool (S13, paper §III-C, following SAC [14]):

* **Workers are created once** per :class:`WorkerPool` (i.e. once per
  ``run_program``), not once per parallel construct.  The C pool parks
  idle workers in a spin lock on a generation counter; burning a core to
  spin is exactly wrong under the GIL, so the Python pool parks them in
  a :class:`threading.Condition` wait instead — the *start signal* is a
  generation bump plus a notify, the *stop barrier* is a done-counter
  the dispatching thread waits on.  The structure (generation counter,
  per-worker chunk, done-count barrier, inline execution of nested
  regions) mirrors ``rt_pool_*`` in :mod:`repro.codegen.runtime_c`.

* **Fork-join regions** (`run_region`): the caller passes one shard
  closure per thread; worker *t* executes shard *t+1* while the
  dispatching thread executes shard 0, then waits at the stop barrier.
  Dispatch is refused (returns ``False``) off the owner thread or while
  a region is already active — the caller then runs its shards inline,
  which is how nested parallel constructs degrade, exactly like the C
  runtime's ``rt_pool_region_active`` fallback.

* **Cilk tasks** (`submit` / `wait_task`): spawned calls are queued to
  the same workers, bounded by a live-task cap (the C runtime's
  ``RT_MAX_LIVE_TASKS``); a full pool makes ``submit`` return ``None``
  and the caller falls back to sequential elision.  ``wait_task`` *helps*:
  while the awaited task is unfinished the waiting thread drains and
  executes other queued tasks, so a task that spawns and syncs inside a
  worker can never deadlock the pool.

Why threads pay at all under the GIL: the VM's hot loops execute as
numpy batch operations (:mod:`repro.cexec.loopfast`), and numpy releases
the GIL inside its C loops — so sharding the *outer* iteration space
across this pool runs the vectorized inner work on all cores while only
the thin dispatch layer serializes.

:class:`NaiveForkJoin` implements the model the paper's §III-C argues
against — creating and joining threads for every construct — behind the
same interface, so the enhanced-vs-naive overhead comparison (E-S5) can
be *measured* on real VM executions rather than only modeled.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Callable

# Mirrors RT_MAX_LIVE_TASKS in the generated C runtime (repro.codegen
# .runtime_c): spawns beyond this many live tasks run inline.
DEFAULT_TASK_CAP = 64


def resolve_nthreads(nthreads: int | None = None, *, default: int = 1) -> int:
    """Resolve a thread count: an explicit value wins, else the
    ``REPRO_THREADS`` environment variable, else ``default``.
    The result is clamped to at least 1."""
    if nthreads is not None:
        return max(1, int(nthreads))
    env = os.environ.get("REPRO_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, default)


class Task:
    """One queued Cilk task: a thunk plus completion state.

    ``fn`` must capture everything it needs and store its own results;
    the pool records only an exception (re-raised by the VM at sync, in
    spawn order)."""

    __slots__ = ("fn", "exc", "_event")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.exc: BaseException | None = None
        self._event = threading.Event()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self) -> None:
        self._event.wait()


class WorkerPool:
    """Persistent enhanced fork-join pool: ``nthreads - 1`` workers plus
    the owning thread, shared by pool regions and Cilk tasks."""

    def __init__(self, nthreads: int, *, task_cap: int = DEFAULT_TASK_CAP):
        self.nthreads = max(1, int(nthreads))
        self.task_cap = task_cap
        self._owner_ident = threading.get_ident()
        self._cond = threading.Condition()
        self._shutdown = False
        # fork-join region state (guarded by _cond)
        self._generation = 0
        self._shards: list[Callable[[], None]] = []
        self._done = 0
        self._region_active = False  # touched only by the owner thread
        # task state (guarded by _cond)
        self._tasks: deque[Task] = deque()
        self._live_tasks = 0
        # observability counters (tests, benchmarks)
        self.regions_dispatched = 0
        self.tasks_pooled = 0
        self._threads = [
            threading.Thread(target=self._worker, args=(i,), daemon=True,
                             name=f"repro-pool-{i}")
            for i in range(self.nthreads - 1)
        ]
        for t in self._threads:
            t.start()

    # -- worker loop ---------------------------------------------------------

    def _worker(self, idx: int) -> None:
        seen = 0
        while True:
            shard = task = None
            with self._cond:
                while not (self._shutdown or self._generation != seen
                           or self._tasks):
                    self._cond.wait()
                if self._shutdown:
                    return
                if self._generation != seen:
                    # A new region released the pool: take this worker's
                    # shard (the dispatching thread runs shard 0 itself).
                    seen = self._generation
                    if idx + 1 < len(self._shards):
                        shard = self._shards[idx + 1]
                elif self._tasks:
                    task = self._tasks.popleft()
            if shard is not None:
                try:
                    shard()  # contract: shard closures never raise
                finally:
                    with self._cond:
                        self._done += 1
                        self._cond.notify_all()  # wake the stop barrier
            elif task is not None:
                self._run_task(task)

    # -- fork-join regions ---------------------------------------------------

    def run_region(self, shards: list[Callable[[], None]]) -> bool:
        """Execute ``shards`` as one fork-join region; ``True`` when the
        pool ran them, ``False`` when the caller must run them inline
        (off-owner-thread or nested dispatch — the C runtime's
        ``rt_pool_region_active`` path).

        Shard closures must not raise; the VM wraps each shard to record
        its exception for deterministic first-trap-wins re-raising."""
        if len(shards) > self.nthreads:
            raise ValueError(
                f"{len(shards)} shards for a {self.nthreads}-thread pool")
        if (threading.get_ident() != self._owner_ident
                or self._region_active or self._shutdown):
            return False
        if len(shards) <= 1:
            for s in shards:
                s()
            return True
        self._region_active = True
        try:
            with self._cond:
                self._shards = shards
                self._done = 0
                self._generation += 1  # start signal
                self.regions_dispatched += 1
                self._cond.notify_all()
            shards[0]()  # the owner participates as worker 0
            with self._cond:  # stop barrier: quiesce before returning
                while self._done < len(shards) - 1:
                    self._cond.wait()
        finally:
            self._region_active = False
        return True

    # -- Cilk tasks ----------------------------------------------------------

    def submit(self, fn: Callable[[], None]) -> Task | None:
        """Queue a task for the workers; ``None`` when the live-task cap
        is reached (caller applies sequential elision)."""
        with self._cond:
            if self._shutdown or self._live_tasks >= self.task_cap:
                return None
            self._live_tasks += 1
            self.tasks_pooled += 1
            task = Task(fn)
            self._tasks.append(task)
            self._cond.notify_all()
        return task

    def _run_task(self, task: Task) -> None:
        try:
            task.fn()
        except Exception as e:  # re-raised by the VM at the sync point
            task.exc = e
        finally:
            with self._cond:
                self._live_tasks -= 1
                self._cond.notify_all()
            task._event.set()

    def wait_task(self, task: Task) -> None:
        """Wait for ``task``, helping execute other queued tasks — a
        syncing task inside a worker makes progress instead of
        deadlocking the pool."""
        while not task.done:
            other = None
            with self._cond:
                if self._tasks:
                    other = self._tasks.popleft()
            if other is not None:
                self._run_task(other)
            else:
                # Not queued and not done: it is running on some thread.
                task.wait()

    def drain(self) -> None:
        """Wait for every live task (implicit final sync), helping."""
        while True:
            task = None
            with self._cond:
                if self._live_tasks == 0:
                    return
                if self._tasks:
                    task = self._tasks.popleft()
            if task is not None:
                self._run_task(task)
            else:
                with self._cond:
                    if self._live_tasks == 0:
                        return
                    self._cond.wait(0.05)

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=1.0)

    @property
    def alive(self) -> bool:
        return not self._shutdown


class NaiveForkJoin:
    """Spawn-per-construct fork-join — the model §III-C improves upon.

    Same interface as :class:`WorkerPool`, but every region creates and
    joins fresh threads, paying "the price of creating and destroying
    threads each time"; tasks always elide.  Exists so E-S5 can measure
    the enhanced pool's advantage on real executions."""

    def __init__(self, nthreads: int, **_ignored):
        self.nthreads = max(1, int(nthreads))
        self._owner_ident = threading.get_ident()
        self._region_active = False
        self.regions_dispatched = 0
        self.tasks_pooled = 0

    def run_region(self, shards: list[Callable[[], None]]) -> bool:
        if (threading.get_ident() != self._owner_ident
                or self._region_active):
            return False
        self._region_active = True
        try:
            self.regions_dispatched += 1
            threads = [threading.Thread(target=s) for s in shards[1:]]
            for t in threads:
                t.start()
            if shards:
                shards[0]()
            for t in threads:  # join is the (expensive) stop barrier
                t.join()
        finally:
            self._region_active = False
        return True

    def submit(self, fn: Callable[[], None]) -> Task | None:
        return None  # tasks always run via sequential elision

    def wait_task(self, task: Task) -> None:  # pragma: no cover - no tasks
        task.wait()

    def drain(self) -> None:
        pass

    def shutdown(self) -> None:
        pass

    @property
    def alive(self) -> bool:
        return True


FORK_MODES = ("enhanced", "naive")


def make_pool(nthreads: int, fork_mode: str = "enhanced"):
    """A fork-join backend for ``nthreads`` threads, or ``None`` when
    one thread needs no pool at all."""
    if nthreads <= 1:
        return None
    if fork_mode == "enhanced":
        return WorkerPool(nthreads)
    if fork_mode == "naive":
        return NaiveForkJoin(nthreads)
    raise ValueError(f"unknown fork mode {fork_mode!r}; have {FORK_MODES}")
