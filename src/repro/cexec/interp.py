"""Tree-walking interpreter for lowered (plain-C) host trees.

One of two Python execution engines: it runs the *same* lowered trees
the C printer emits, with the runtime (matrices, refcounting, the
fork-join pool, 4-lane vectors, RMAT I/O) implemented as Python
intrinsics.  Used when gcc is unavailable and by tests that want
instrumented execution (allocation counts, pool-region traces, refcount
balance) without a compile step.

The runtime itself lives in :class:`RTRuntime` and is shared with the
bytecode VM (:mod:`repro.cexec.vm`), which compiles the same trees to a
register bytecode and is the default engine; this tree-walker is kept as
the differential-testing reference.

C semantics are modeled where they differ from Python: integer division
truncates toward zero, `%` follows C, matrices hold float32, and `&&`/
`||` short-circuit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.ag.tree import Node
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cminus.absyn import node_cons_to_list


class InterpError(Exception):
    pass


class RuntimeTrap(InterpError):
    """A runtime check failed (the C runtime would exit(2))."""


@dataclass
class RTMat:
    kind: str  # "f" | "i"
    dims: tuple[int, ...]
    data: np.ndarray
    rc: int = 1

    @property
    def size(self) -> int:
        return int(self.data.size)

    def as_numpy(self) -> np.ndarray:
        return self.data.reshape(self.dims).copy()


@dataclass
class InterpStats:
    allocs: int = 0
    frees: int = 0
    copies: int = 0
    parallel_regions: int = 0
    tasks_spawned: int = 0
    # How many of those spawns actually went to the worker pool instead
    # of being elided inline (S30: race clearance makes this nonzero for
    # effectful-but-disjoint tasks).  NOT part of the engine-differential
    # contract — it legitimately depends on pool presence and saturation.
    tasks_pooled: int = 0
    region_sizes: list[int] = field(default_factory=list)
    # Why the fast paths were NOT taken, reason -> count (S25 satellite):
    # fastloop_bails counts loop-nest executions that fell back to the
    # tree-walking interpreter, shard_bails counts with-loop regions that
    # ran sequentially instead of on the worker pool.
    fastloop_bails: dict[str, int] = field(default_factory=dict)
    shard_bails: dict[str, int] = field(default_factory=dict)
    # S30 shard disjointness certificates, region name -> one-line
    # verdict ("proven: ..." / "not proven: ...").  Compile-time facts
    # recorded when the region first runs; absent entirely under
    # REPRO_NO_RACE_CHECK.  NOT part of the engine-differential
    # contract (the tree walker does not consult the race analysis).
    certs: dict[str, str] = field(default_factory=dict)
    # Dynamic VM instructions retired (only populated when the VM runs
    # in counting mode, e.g. under the E-IR benchmark); NOT part of the
    # engine-differential contract — O0 and O2 legitimately differ here.
    instrs: int = 0
    # Per-pass optimizer rewrite totals for the program that ran
    # (fold/copyprop/cse/licm/strength/dce/functions/bailouts), attached
    # once after the run from the compiled program — compile-time facts,
    # so merge() deliberately leaves them alone.
    opt_counts: dict[str, int] = field(default_factory=dict)
    # S29 dispatch-specialization counters.  NOT part of the
    # engine-differential contract: the tree walker never quickens, and
    # concurrent shards may race benignly on the rare-path increments.
    # ``ic_hits`` is only populated in counting mode (the per-execution
    # increment would tax the lean dispatch path); ``ic_misses``,
    # ``quickened`` and ``deopts`` are always exact on sequential runs.
    quickened: int = 0
    deopts: int = 0
    ic_hits: int = 0
    ic_misses: int = 0
    guards_elided: int = 0

    @property
    def leaked(self) -> int:
        return self.allocs - self.frees

    def bail(self, which: str, reason: str) -> None:
        d = self.fastloop_bails if which == "fastloop" else self.shard_bails
        d[reason] = d.get(reason, 0) + 1

    def merge(self, other: "InterpStats") -> "InterpStats":
        """Fold another stats record into this one (left-to-right).

        Used by the S23 fork-join pool to combine per-worker/per-task
        counters into the parent: counts add, ``region_sizes`` appends in
        shard order — so a pooled run's merged stats are identical to the
        sequential run's."""
        self.allocs += other.allocs
        self.frees += other.frees
        self.copies += other.copies
        self.parallel_regions += other.parallel_regions
        self.tasks_spawned += other.tasks_spawned
        self.tasks_pooled += other.tasks_pooled
        self.instrs += other.instrs
        self.quickened += other.quickened
        self.deopts += other.deopts
        self.ic_hits += other.ic_hits
        self.ic_misses += other.ic_misses
        self.guards_elided += other.guards_elided
        self.region_sizes.extend(other.region_sizes)
        for reason, n in other.fastloop_bails.items():
            self.fastloop_bails[reason] = \
                self.fastloop_bails.get(reason, 0) + n
        for reason, n in other.shard_bails.items():
            self.shard_bails[reason] = self.shard_bails.get(reason, 0) + n
        for region, verdict in other.certs.items():
            self.certs.setdefault(region, verdict)
        return self


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class Scope:
    __slots__ = ("vars", "parent")

    def __init__(self, parent: "Scope | None" = None):
        self.vars: dict[str, Any] = {}
        self.parent = parent

    def lookup_scope(self, name: str) -> "Scope | None":
        s: Scope | None = self
        while s is not None:
            if name in s.vars:
                return s
            s = s.parent
        return None

    def get(self, name: str) -> Any:
        s = self.lookup_scope(name)
        if s is None:
            raise InterpError(f"undefined variable {name!r}")
        return s.vars[name]

    def set(self, name: str, value: Any) -> None:
        s = self.lookup_scope(name)
        if s is None:
            raise InterpError(f"assignment to undefined variable {name!r}")
        s.vars[name] = value

    def declare(self, name: str, value: Any) -> None:
        self.vars[name] = value


def c_div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise RuntimeTrap("integer division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def c_mod(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise RuntimeTrap("integer modulo by zero")
        return a - c_div(a, b) * b
    return math.fmod(a, b)


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_mod,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}


class RTRuntime:
    """The shared execution runtime: matrices, stats, intrinsics, I/O.

    Both Python engines — the tree-walking :class:`Interpreter` and the
    bytecode :class:`repro.cexec.vm.VM` — execute against this exact
    runtime, so observable behavior (stdout, stats counters, traps) is
    engine-independent by construction.
    """

    def __init__(self, *, workdir: str | Path = ".", nthreads: int = 1):
        self.workdir = Path(workdir)
        self.nthreads = max(1, nthreads)
        self.stats = InterpStats()
        self.stdout: list[str] = []

    def close(self) -> None:
        """Release execution resources.  The base runtime holds none;
        the VM overrides this to quiesce its fork-join worker pool."""

    # -- refcounting ---------------------------------------------------------

    def _rc_inc(self, m: "RTMat | None") -> None:
        if m is not None:
            m.rc += 1

    def _rc_dec(self, m: "RTMat | None") -> None:
        if m is None:
            return
        m.rc -= 1
        if m.rc == 0:
            self.stats.frees += 1
            m.data = np.empty(0, dtype=m.data.dtype)  # poison reuse
        elif m.rc < 0:
            raise RuntimeTrap("refcount underflow (double free)")

    # -- I/O and printing ----------------------------------------------------

    def _read_matrix(self, fname: str) -> RTMat:
        arr = read_rmat(self.workdir / fname)
        kind = "f" if arr.dtype.kind == "f" else "i"
        self.stats.allocs += 1
        return RTMat(kind, arr.shape,
                     arr.reshape(-1).astype(np.float32 if kind == "f" else np.int32))

    def _write_matrix(self, fname: str, m: RTMat) -> None:
        write_rmat(self.workdir / fname, m.as_numpy())

    def _print_int(self, v) -> None:
        self.stdout.append(str(int(v)))

    def _print_float(self, v) -> None:
        self.stdout.append(f"{v:g}")

    # -- runtime intrinsics (rt_*) -------------------------------------------

    def _alloc(self, kind: str, rank: int, dims: list[int]) -> RTMat:
        dims = tuple(int(d) for d in dims[:rank])
        if any(d < 0 for d in dims):
            raise RuntimeTrap(f"negative dimension in allocation: {dims}")
        size = 1
        for d in dims:
            size *= d
        self.stats.allocs += 1
        dtype = np.float32 if kind == "f" else np.int32
        return RTMat(kind, dims, np.zeros(size, dtype=dtype))

    def rt_allocf(self, rank, d0, d1, d2, d3):
        return self._alloc("f", int(rank), [d0, d1, d2, d3])

    def rt_alloci(self, rank, d0, d1, d2, d3):
        return self._alloc("i", int(rank), [d0, d1, d2, d3])

    def rt_dim(self, m: RTMat, d) -> int:
        return int(m.dims[int(d)])

    def rt_size(self, m: RTMat) -> int:
        return m.size

    def rt_getf(self, m: RTMat, i) -> float:
        return float(m.data[int(i)])

    def rt_setf(self, m: RTMat, i, v) -> None:
        m.data[int(i)] = np.float32(v)

    def rt_geti(self, m: RTMat, i) -> int:
        return int(m.data[int(i)])

    def rt_seti(self, m: RTMat, i, v) -> None:
        m.data[int(i)] = int(v)

    def rt_bounds_check(self, lo, hi, dim, what) -> None:
        if lo < 0 or hi > dim:
            raise RuntimeTrap(f"{what} range [{lo},{hi}) outside dimension {dim}")

    def rt_bounds_ok(self, lo, hi, dim, what) -> None:
        # Residue of a statically-discharged rt_bounds_check: the S25
        # interval fixpoint proved lo >= 0 and hi <= dim on every path
        # (repro.analysis.shapes.proven_in_range), so only the counter
        # survives to run time.
        self.stats.guards_elided += 1

    def rt_require_dim(self, m: "RTMat | None", d, n) -> None:
        if m is None:
            raise RuntimeTrap("use of unallocated matrix")
        if m.dims[int(d)] != int(n):
            raise RuntimeTrap(f"dimension {d} is {m.dims[int(d)]}, expected {n}")

    def rt_check_rank(self, m: RTMat, rank, is_float) -> None:
        want = "f" if is_float else "i"
        if len(m.dims) != int(rank) or m.kind != want:
            raise RuntimeTrap(
                f"matrix has rank {len(m.dims)}/{m.kind}, declared {rank}/{want}"
            )

    def rt_matmul_check(self, a: RTMat, b: RTMat) -> None:
        if len(a.dims) != 2 or len(b.dims) != 2 or a.dims[1] != b.dims[0]:
            raise RuntimeTrap(f"matrix multiply of {a.dims} by {b.dims}")

    def rt_shape_check(self, a: RTMat, b: RTMat, op) -> None:
        if a.dims != b.dims:
            raise RuntimeTrap(f"{op} on shapes {a.dims} vs {b.dims}")

    def rt_require_divisible(self, n, f, what) -> None:
        if f <= 0 or n % f != 0:
            raise RuntimeTrap(f"{what}: trip count {n} not divisible by {f}")

    def rt_assign_copy(self, dst: "RTMat | None", src: RTMat) -> RTMat:
        if dst is not None and src is not None and dst is not src \
                and dst.dims == src.dims and dst.kind == src.kind:
            dst.data[:] = src.data
            self.stats.copies += 1
            self._rc_dec(src)
            return dst
        self._rc_dec(dst)
        return src

    # 4-lane vectors: numpy float32 arrays of length 4
    def rt_vsplatf(self, x):
        return np.full(4, x, dtype=np.float32)

    def rt_viotaf(self, base):
        return np.arange(base, base + 4, dtype=np.float32)

    def rt_vloadf(self, m: RTMat, i):
        i = int(i)
        return m.data[i:i + 4].astype(np.float32)

    def rt_vstoref(self, m: RTMat, i, v):
        i = int(i)
        m.data[i:i + 4] = v

    def rt_vgatherf(self, m: RTMat, i, stride):
        i, stride = int(i), int(stride)
        return m.data[[i, i + stride, i + 2 * stride, i + 3 * stride]].astype(np.float32)

    def rt_vscatterf(self, m: RTMat, i, stride, v):
        i, stride = int(i), int(stride)
        m.data[[i, i + stride, i + 2 * stride, i + 3 * stride]] = v

    def rt_vaddf(self, a, b):
        return a + b

    def rt_vsubf(self, a, b):
        return a - b

    def rt_vmulf(self, a, b):
        return a * b

    def rt_vdivf(self, a, b):
        return a / b

    def rt_vsumf(self, v):
        return float(v[0] + v[1] + v[2] + v[3])


class Interpreter(RTRuntime):
    """Executes a lowered Root node by walking the tree."""

    def __init__(self, lowered_root: Node, ctx, *, workdir: str | Path = ".",
                 nthreads: int = 1):
        super().__init__(workdir=workdir, nthreads=nthreads)
        self.functions: dict[str, Node] = {}
        for f in node_cons_to_list(lowered_root.children[0]):
            self.functions[f.children[1]] = f
        # lifted pool workers: name -> (body Node, capture names).  Cilk
        # SpawnedFuncs carry no tree body (the interpreter runs spawned
        # calls inline) and are skipped.
        self.lifted: dict[str, tuple[Node, list[str]]] = {}
        for lf in getattr(ctx, "lifted", []):
            if hasattr(lf, "body"):
                self.lifted[lf.name] = (lf.body, [n for _t, n in lf.captures])

    # -- entry points ------------------------------------------------------------

    def run_main(self, argv: list[str] | None = None) -> int:
        if "main" not in self.functions:
            raise InterpError("no main function")
        out = self.call_function("main", [])
        return int(out) if out is not None else 0

    def call_function(self, name: str, args: list[Any]) -> Any:
        func = self.functions.get(name)
        if func is None:
            raise InterpError(f"call to unknown function {name!r}")
        _rett, _name, params, body = func.children
        scope = Scope()
        pnames = [p.children[1] for p in node_cons_to_list(params)]
        if len(pnames) != len(args):
            raise InterpError(f"{name}: expected {len(pnames)} args, got {len(args)}")
        for p, a in zip(pnames, args):
            scope.declare(p, a)
        try:
            self.exec_stmt(body, scope)
        except _Return as r:
            return r.value
        return None

    # -- statements -----------------------------------------------------------------

    def exec_stmt(self, node: Node, scope: Scope) -> None:
        p = node.prod
        ch = node.children
        if p == "block":
            inner = Scope(scope)
            for s in node_cons_to_list(ch[0]):
                self.exec_stmt(s, inner)
        elif p == "seqStmt":
            for s in node_cons_to_list(ch[0]):
                self.exec_stmt(s, scope)
        elif p in ("decl",):
            scope.declare(ch[1], _zero_of(ch[0]))
        elif p == "declInit":
            scope.declare(ch[1], self.eval(ch[2], scope))
        elif p == "exprStmt":
            self.eval(ch[0], scope)
        elif p == "ifStmt":
            if self._truthy(self.eval(ch[0], scope)):
                self.exec_stmt(ch[1], scope)
        elif p == "ifElse":
            if self._truthy(self.eval(ch[0], scope)):
                self.exec_stmt(ch[1], scope)
            else:
                self.exec_stmt(ch[2], scope)
        elif p == "whileStmt":
            while self._truthy(self.eval(ch[0], scope)):
                try:
                    self.exec_stmt(ch[1], scope)
                except _Break:
                    break
                except _Continue:
                    continue
        elif p == "doWhile":
            while True:
                try:
                    self.exec_stmt(ch[0], scope)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(self.eval(ch[1], scope)):
                    break
        elif p == "forStmt":
            inner = Scope(scope)
            init = ch[0]
            if init.prod == "forDecl":
                inner.declare(init.children[1], self.eval(init.children[2], inner))
            else:
                self.eval(init.children[0], inner)
            while self._truthy(self.eval(ch[1], inner)):
                try:
                    self.exec_stmt(ch[3], inner)
                except _Break:
                    break
                except _Continue:
                    pass
                self.eval(ch[2], inner)
        elif p == "returnStmt":
            raise _Return(self.eval(ch[0], scope))
        elif p == "returnVoid":
            raise _Return(None)
        elif p == "breakStmt":
            raise _Break()
        elif p == "continueStmt":
            raise _Continue()
        elif p == "rawStmt":
            text = ch[0].strip()
            if not text.startswith("#pragma"):
                raise InterpError(f"cannot interpret raw statement {text!r}")
        else:
            raise InterpError(f"cannot interpret statement {p!r}")

    @staticmethod
    def _truthy(v: Any) -> bool:
        return bool(v)

    # -- expressions ------------------------------------------------------------------

    def eval(self, node: Node, scope: Scope) -> Any:
        p = node.prod
        ch = node.children
        if p == "intLit":
            return ch[0]
        if p == "floatLit":
            return float(np.float32(ch[0]))
        if p == "boolLit":
            return int(ch[0])
        if p == "strLit":
            return ch[0]
        if p == "var":
            return scope.get(ch[0])
        if p == "rawExpr":
            if ch[0] == "NULL":
                return None
            raise InterpError(f"cannot interpret raw expression {ch[0]!r}")
        if p == "binop":
            op = ch[0]
            if op == "&&":
                return int(self._truthy(self.eval(ch[1], scope))
                           and self._truthy(self.eval(ch[2], scope)))
            if op == "||":
                return int(self._truthy(self.eval(ch[1], scope))
                           or self._truthy(self.eval(ch[2], scope)))
            a = self.eval(ch[1], scope)
            b = self.eval(ch[2], scope)
            return _BINOPS[op](a, b)
        if p == "unop":
            v = self.eval(ch[1], scope)
            return -v if ch[0] == "-" else int(not self._truthy(v))
        if p == "assign":
            if ch[0].prod != "var":
                raise InterpError(f"assignment target {ch[0].prod!r} in lowered code")
            value = self.eval(ch[1], scope)
            scope.set(ch[0].children[0], value)
            return value
        if p == "castE":
            v = self.eval(ch[1], scope)
            return cast_value(ch[0], v)
        if p == "call":
            return self.eval_call(node, scope)
        raise InterpError(f"cannot interpret expression {p!r}")

    # -- calls ------------------------------------------------------------------------

    def eval_call(self, node: Node, scope: Scope) -> Any:
        name = node.children[0]
        argnodes = node_cons_to_list(node.children[1])

        if name == "__rt_pool_run":
            return self._pool_run(argnodes, scope)
        if name in ("__rt_spawn", "__rt_spawn_into"):
            # Cilk sequential elision: run the spawned call inline.
            into = name == "__rt_spawn_into"
            callee = argnodes[1].children[0]
            target = argnodes[2].children[0] if into else None
            value_args = [self.eval(a, scope)
                          for a in (argnodes[3:] if into else argnodes[2:])]
            self.stats.tasks_spawned += 1
            result = self.call_function(callee, value_args)
            if target is not None:
                scope.set(target, result)
            return None
        if name == "rt_sync":
            return None  # elided tasks are already complete
        if name.startswith("__tuple_"):
            return tuple(self.eval(a, scope) for a in argnodes)
        if name.startswith("__tget_"):
            idx = int(name[len("__tget_"):])
            return self.eval(argnodes[0], scope)[idx]

        args = [self.eval(a, scope) for a in argnodes]
        intrinsic = getattr(self, f"rt_{name[3:]}", None) if name.startswith("rt_") else None
        if intrinsic is not None:
            return intrinsic(*args)
        if name == "rc_inc":
            self._rc_inc(args[0])
            return None
        if name == "rc_dec":
            self._rc_dec(args[0])
            return None
        if name == "readMatrix":
            return self._read_matrix(args[0])
        if name == "writeMatrix":
            self._write_matrix(args[0], args[1])
            return None
        if name == "printInt":
            self._print_int(args[0])
            return None
        if name == "printFloat":
            self._print_float(args[0])
            return None
        return self.call_function(name, args)

    def _pool_run(self, argnodes: list[Node], scope: Scope) -> None:
        fname = argnodes[0].children[0]
        total = int(self.eval(argnodes[1], scope))
        captures = [self.eval(a, scope) for a in argnodes[2:]]
        body, names = self.lifted[fname]
        self.stats.parallel_regions += 1
        self.stats.region_sizes.append(total)
        per = -(-total // self.nthreads)
        for t in range(self.nthreads):
            lo, hi = min(t * per, total), min((t + 1) * per, total)
            if lo >= hi:
                continue
            s = Scope()
            for n, v in zip(names, captures):
                s.declare(n, v)
            s.declare("__lo", lo)
            s.declare("__hi", hi)
            self.exec_stmt(body, s)


def cast_value(type_node: Node, v: Any) -> Any:
    """C cast semantics shared by both engines: integral casts truncate,
    casts to float *or double* narrow through float32 (matrix storage is
    float32, and ``floatLit`` narrows the same way — a cast must not be
    able to smuggle extra precision past the declared C type)."""
    ctype = type_node.children[0] if type_node.prod == "tRaw" else type_node.prod
    if isinstance(ctype, str):
        ctype = ctype.strip()
    if ctype in ("tInt", "int", "long", "tBool", "tChar"):
        return int(v)
    if ctype in ("tFloat", "float", "double"):
        return float(np.float32(v))
    return v


def _zero_of(type_node: Node) -> Any:
    if type_node.prod == "tRaw":
        text = type_node.children[0]
        if "rt_mat" in text:
            return None
        if text in ("float", "double"):
            return 0.0
        return 0
    if type_node.prod == "tFloat":
        return 0.0
    return 0


ENGINES = ("vm", "tree")


def make_engine(lowered, ctx, *, engine: str = "vm",
                workdir: str | Path = ".", nthreads: int = 1,
                fork_mode: str = "enhanced", program=None,
                parallel_backend: str | None = None,
                profile: bool = False) -> RTRuntime:
    """An executor for a lowered tree: the bytecode VM (default) or the
    tree-walking reference interpreter.  Both expose ``run_main``,
    ``call_function``, ``stats`` and ``stdout``.

    ``nthreads > 1`` gives the VM an S23 fork-join worker pool
    (``fork_mode`` picks the enhanced persistent pool or the naive
    spawn-per-construct model); ``parallel_backend`` selects where
    shards execute — ``"thread"`` (S23 pool), ``"process"`` (S27
    shared-memory process pool with thread fallback for ineligible
    regions) or ``"auto"`` (process when eligible, else thread); ``None``
    defers to ``REPRO_PARALLEL_BACKEND``, defaulting to threads.  The
    tree-walker is always sequential and ignores all three.  ``program``
    may supply a prebuilt :class:`~repro.cexec.bytecode.BytecodeProgram`
    to the VM."""
    if engine in ("vm", "bytecode"):
        from repro.cexec.vm import VM

        return VM(lowered, ctx, workdir=workdir, nthreads=nthreads,
                  fork_mode=fork_mode, program=program,
                  parallel_backend=parallel_backend, profile=profile)
    if engine in ("tree", "interp"):
        if profile:
            raise ValueError("--profile requires the vm engine")
        return Interpreter(lowered, ctx, workdir=workdir, nthreads=nthreads)
    raise ValueError(f"unknown engine {engine!r}; have {ENGINES}")


def run_program(
    source: str,
    extensions: list[str],
    inputs: dict[str, np.ndarray] | None = None,
    *,
    workdir: str | Path | None = None,
    output_names: list[str] | None = None,
    nthreads: int | None = None,
    options=None,
    engine: str = "vm",
    fork_mode: str = "enhanced",
    parallel_backend: str | None = None,
    profile: bool = False,
) -> tuple[int, dict[str, np.ndarray], InterpStats, "RTRuntime"]:
    """Translate and execute an extended-C program with RMAT inputs.

    ``engine`` selects the Python execution engine: ``"vm"`` (register
    bytecode + numpy-batched loops, the default) or ``"tree"`` (the
    tree-walking reference).  Both produce identical observable behavior.

    ``nthreads`` sizes the VM's S23 fork-join pool; ``None`` defers to
    the ``REPRO_THREADS`` environment variable (default 1).
    ``parallel_backend`` picks thread, process, or auto shard execution
    (``None`` defers to ``REPRO_PARALLEL_BACKEND``).  Any thread count
    and backend is observationally identical to ``nthreads=1``.
    """
    import tempfile

    from repro.api import compile_source
    from repro.cexec.parallel import resolve_nthreads

    nthreads = resolve_nthreads(nthreads)
    cr = compile_source(source, extensions, options=options, nthreads=nthreads)
    if not cr.ok:
        raise InterpError("translation failed:\n" + "\n".join(cr.errors))
    wd = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="repro-interp-"))
    wd.mkdir(parents=True, exist_ok=True)
    for name, arr in (inputs or {}).items():
        write_rmat(wd / name, arr)
    executor = make_engine(cr.lowered, cr.ctx, engine=engine,
                           workdir=wd, nthreads=nthreads, fork_mode=fork_mode,
                           parallel_backend=parallel_backend, profile=profile)
    try:
        rc = executor.run_main()
    finally:
        executor.close()  # quiesce and release any worker pool
    prog = getattr(executor, "program", None)
    if prog is not None:
        executor.stats.opt_counts = dict(getattr(prog, "opt_counts", {}) or {})
    outputs = {}
    for name in output_names or []:
        path = wd / name
        if path.exists():
            outputs[name] = read_rmat(path)
    return rc, outputs, executor.stats, executor
