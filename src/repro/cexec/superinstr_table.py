"""Superinstruction selection table — GENERATED, do not edit.

Provenance: fig1/fig4/fig8/fig9+mandelbrot corpus, deterministic small inputs (seed 29)
Regenerate: PYTHONPATH=src python -m repro.cexec.superinstr --write-table
"""

TABLE_VERSION = 's29-0d455c292a'

PAIRS = frozenset([
    ('<', 'jz'),
    ('*', '+'),
    ('+', 'rt_geti'),
    ('move', 'move'),
    ('*', '*'),
    ('move', 'jmp'),
    ('+', '+'),
    ('rt_geti', '>'),
    ('-', '+'),
    ('+', 'jmp'),
    ('jz', '*'),
    ('rt_dim', '*'),
    ('jz', '-'),
    ('+', '<'),
    ('jz', 'rt_dim'),
    ('jz', 'rt_getf'),
    ('rt_getf', 'rt_getf'),
    ('+', 'move'),
    ('+', '<='),
    ('<=', 'jmp'),
    ('>', 'jz'),
    ('jz', 'jmp'),
    ('+', '*'),
    ('>', 'jmp'),
    ('<', 'jmp'),
    ('rt_geti', '<'),
    ('rt_geti', 'jz'),
    ('rt_getf', '<'),
    ('jz', 'move'),
    ('>=', 'jmp'),
    ('rt_getf', '>='),
    ('rt_dim', 'const'),
])

TRIPLES = frozenset([
    ('*', '*', '+'),
    ('+', 'rt_geti', '>'),
    ('*', '+', 'rt_geti'),
    ('rt_dim', '*', '+'),
    ('jz', '-', '+'),
    ('move', 'move', 'move'),
    ('+', '<', 'jz'),
    ('<', 'jz', 'rt_dim'),
    ('<', 'jz', 'rt_getf'),
    ('jz', 'rt_getf', 'rt_getf'),
    ('*', '+', '+'),
    ('*', '+', '<='),
    ('+', '<=', 'jmp'),
    ('<', 'jz', '*'),
    ('jz', '*', '*'),
    ('jz', 'rt_dim', '*'),
])
