"""Native execution backend: compile generated C with gcc and run it.

This closes the paper's toolchain loop: "translate it down to plain C
code, which can then be compiled for execution by a traditional
compiler" (§II).  Inputs/outputs travel as RMAT files in a scratch
directory; runtime statistics (allocations, frees, copies, parallel
regions) are parsed from the program's RT_STATS line.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cexec.rmat import read_rmat, write_rmat


class BackendError(RuntimeError):
    pass


def gcc_available() -> bool:
    return shutil.which("gcc") is not None


@dataclass
class RunStats:
    allocs: int = 0
    frees: int = 0
    copies: int = 0
    parallel_regions: int = 0

    @property
    def leaked(self) -> int:
        return self.allocs - self.frees


@dataclass
class RunResult:
    returncode: int
    stdout: str
    stderr: str
    outputs: dict[str, np.ndarray] = field(default_factory=dict)
    stats: RunStats = field(default_factory=RunStats)


class CompiledProgram:
    """A gcc-compiled translated program, reusable across runs."""

    def __init__(self, c_source: str, *, openmp: bool = True,
                 optimize: str = "-O2", keep_dir: str | None = None):
        self.workdir = Path(keep_dir or tempfile.mkdtemp(prefix="repro-gcc-"))
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.c_path = self.workdir / "program.c"
        self.bin_path = self.workdir / "program"
        self.c_path.write_text(c_source)
        cmd = ["gcc", optimize, "-o", str(self.bin_path), str(self.c_path),
               "-lpthread", "-lm"]
        if openmp:
            cmd.insert(1, "-fopenmp")
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise BackendError(
                f"gcc failed:\n{proc.stderr}\n--- source ---\n"
                + _numbered(c_source)
            )

    def run(
        self,
        inputs: dict[str, np.ndarray] | None = None,
        *,
        output_names: list[str] | None = None,
        nthreads: int | None = None,
        timeout: float = 120.0,
        collect_stats: bool = True,
        argv: list[str] | None = None,
        cwd: str | Path | None = None,
    ) -> RunResult:
        from repro.cexec.parallel import resolve_nthreads

        nthreads = resolve_nthreads(nthreads)
        rundir = Path(cwd) if cwd else self.workdir
        for name, arr in (inputs or {}).items():
            write_rmat(rundir / name, arr)
        env = dict(os.environ)
        env["RT_THREADS"] = str(nthreads)
        env["OMP_NUM_THREADS"] = str(nthreads)
        if collect_stats:
            env["RT_STATS"] = "1"
        proc = subprocess.run(
            [str(self.bin_path)] + (argv or []),
            capture_output=True, text=True, cwd=rundir, env=env,
            timeout=timeout,
        )
        result = RunResult(proc.returncode, proc.stdout, proc.stderr)
        if collect_stats:
            result.stats = _parse_stats(proc.stdout)
        for name in output_names or []:
            path = rundir / name
            if path.exists():
                result.outputs[name] = read_rmat(path)
        return result

    def cleanup(self) -> None:
        shutil.rmtree(self.workdir, ignore_errors=True)


def _parse_stats(stdout: str) -> RunStats:
    stats = RunStats()
    for line in stdout.splitlines():
        if line.startswith("allocs="):
            for part in line.split():
                key, _, val = part.partition("=")
                if key == "allocs":
                    stats.allocs = int(val)
                elif key == "frees":
                    stats.frees = int(val)
                elif key == "copies":
                    stats.copies = int(val)
                elif key == "parallel_regions":
                    stats.parallel_regions = int(val)
    return stats


def _numbered(src: str) -> str:
    return "\n".join(f"{i + 1:4}: {line}" for i, line in enumerate(src.splitlines()))


def compile_and_run(
    source: str,
    extensions: list[str],
    inputs: dict[str, np.ndarray] | None = None,
    *,
    output_names: list[str] | None = None,
    nthreads: int = 1,
    options=None,
    check: bool = True,
) -> RunResult:
    """One-shot: translate extended C, gcc-compile, run with RMAT inputs.

    ``check=True`` (the default) raises on a nonzero exit status — pass
    False for programs whose main() deliberately returns a value.
    """
    from repro.api import compile_source

    cr = compile_source(source, extensions, options=options, nthreads=nthreads)
    if not cr.ok:
        raise BackendError("translation failed:\n" + "\n".join(cr.errors))
    prog = CompiledProgram(cr.c_source)
    try:
        result = prog.run(inputs, output_names=output_names, nthreads=nthreads)
        if check and result.returncode != 0:
            raise BackendError(
                f"program exited with {result.returncode}: {result.stderr}"
            )
        return result
    finally:
        prog.cleanup()
