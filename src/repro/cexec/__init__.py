"""Execution backends for translated programs.

* :mod:`repro.cexec.gcc_backend` — compile the generated C with gcc and
  run natively (pthreads/SSE/OpenMP), the paper's actual toolchain;
* :mod:`repro.cexec.interp` — a pure-Python interpreter over the lowered
  trees with an instrumented runtime (allocation counts, pool traces);
* :mod:`repro.cexec.rmat` — the RMAT binary matrix format both share.
"""

from repro.cexec.gcc_backend import (
    BackendError,
    CompiledProgram,
    RunResult,
    RunStats,
    compile_and_run,
    gcc_available,
)
from repro.cexec.interp import Interpreter, InterpError, InterpStats, RuntimeTrap, run_program
from repro.cexec.rmat import read_rmat, write_rmat

__all__ = [
    "BackendError",
    "CompiledProgram",
    "Interpreter",
    "InterpError",
    "InterpStats",
    "RunResult",
    "RunStats",
    "RuntimeTrap",
    "compile_and_run",
    "gcc_available",
    "read_rmat",
    "run_program",
    "write_rmat",
]
