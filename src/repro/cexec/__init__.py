"""Execution backends for translated programs.

* :mod:`repro.cexec.gcc_backend` — compile the generated C with gcc and
  run natively (pthreads/SSE/OpenMP), the paper's actual toolchain;
* :mod:`repro.cexec.vm` — the default Python engine: lowered trees are
  compiled to a register bytecode (:mod:`repro.cexec.bytecode`) and run
  by a dispatch loop, with innermost matrix loops batched into numpy
  array operations (:mod:`repro.cexec.loopfast`);
* :mod:`repro.cexec.interp` — a tree-walking interpreter over the same
  lowered trees and runtime, kept as the differential-testing reference;
* :mod:`repro.cexec.rmat` — the RMAT binary matrix format all share.
"""

from repro.cexec.bytecode import BytecodeProgram
from repro.cexec.gcc_backend import (
    BackendError,
    CompiledProgram,
    RunResult,
    RunStats,
    compile_and_run,
    gcc_available,
)
from repro.cexec.interp import (
    ENGINES,
    Interpreter,
    InterpError,
    InterpStats,
    RuntimeTrap,
    make_engine,
    run_program,
)
from repro.cexec.rmat import read_rmat, write_rmat
from repro.cexec.vm import VM

__all__ = [
    "BackendError",
    "BytecodeProgram",
    "CompiledProgram",
    "ENGINES",
    "Interpreter",
    "InterpError",
    "InterpStats",
    "RunResult",
    "RunStats",
    "RuntimeTrap",
    "VM",
    "compile_and_run",
    "gcc_available",
    "make_engine",
    "read_rmat",
    "run_program",
    "write_rmat",
]
