"""Register-bytecode VM: the default Python execution engine.

Executes :class:`repro.cexec.bytecode.Code` instruction arrays against
the same :class:`~repro.cexec.interp.RTRuntime` the tree-walker uses, so
observable behavior — stdout, stats counters, runtime traps, RMAT
outputs — is byte-for-byte identical to the reference interpreter.

Dispatch is *threaded code*: at bind time every symbolic instruction is
turned into a closure ``frame -> next_pc`` with its operands (and, for
intrinsics, the resolved bound method) captured, so the hot loop is just

    while pc < n:
        pc = ops[pc](frame)

with no opcode decoding, no dict lookups and no exception-based control
flow.  Innermost loops whose bodies were recognized by
:mod:`repro.cexec.loopfast` execute as batched numpy slice operations
and fall through into their scalar bytecode when a guard fails.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ag.tree import Node
from repro.cexec.bytecode import BytecodeProgram, Code
from repro.cexec.interp import InterpError, RTRuntime, c_div, c_mod


class VM(RTRuntime):
    """Executes a lowered Root node via compiled register bytecode."""

    def __init__(self, lowered_root: Node, ctx, *, workdir: str | Path = ".",
                 nthreads: int = 1, program: BytecodeProgram | None = None):
        super().__init__(workdir=workdir, nthreads=nthreads)
        self.program = program or BytecodeProgram(lowered_root, ctx)
        self._ops: dict[str, list] = {}
        self._lifted_ops: dict[str, list] = {}

    # -- entry points --------------------------------------------------------

    def run_main(self, argv: list[str] | None = None) -> int:
        if "main" not in self.program.functions:
            raise InterpError("no main function")
        out = self.call_function("main", [])
        return int(out) if out is not None else 0

    def call_function(self, name: str, args: list):
        ops = self._ops.get(name)
        if ops is None:
            ops = bind(self.program.code_for(name), self)
            self._ops[name] = ops
        code = self.program.code_for(name)
        if len(code.params) != len(args):
            raise InterpError(
                f"{name}: expected {len(code.params)} args, got {len(args)}")
        return self._run(ops, code.nregs, args)

    def _run(self, ops: list, nregs: int, args: list):
        frame = [None] * nregs
        frame[1:1 + len(args)] = args
        pc = 0
        n = len(ops)
        while pc < n:
            pc = ops[pc](frame)
        return frame[0]

    # -- pool regions --------------------------------------------------------

    def _pool_run(self, fname: str, total: int, captures: list) -> None:
        ops = self._lifted_ops.get(fname)
        if ops is None:
            ops = bind(self.program.lifted_code_for(fname), self)
            self._lifted_ops[fname] = ops
        code = self.program.lifted_code_for(fname)
        self.stats.parallel_regions += 1
        self.stats.region_sizes.append(total)
        per = -(-total // self.nthreads)
        for t in range(self.nthreads):
            lo, hi = min(t * per, total), min((t + 1) * per, total)
            if lo >= hi:
                continue
            self._run(ops, code.nregs, captures + [lo, hi])

    def _spawn(self, target: int | None, callee: str, args: list, frame) -> None:
        # Cilk sequential elision: run the spawned call inline.
        self.stats.tasks_spawned += 1
        result = self.call_function(callee, args)
        if target is not None:
            frame[target] = result


def bind(code: Code, vm: VM) -> list:
    """Thread a :class:`Code` for one VM: one closure per instruction."""
    ops: list = []
    end = len(code.instrs)
    for i, ins in enumerate(code.instrs):
        ops.append(_bind_one(ins, i + 1, end, vm))
    return ops


def _bind_one(ins: tuple, nxt: int, end: int, vm: VM):
    op = ins[0]

    if op == "const":
        _, d, v = ins

        def f(frame, d=d, v=v, nxt=nxt):
            frame[d] = v
            return nxt
    elif op == "move":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = frame[a]
            return nxt
    elif op == "+":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = frame[a] + frame[b]
            return nxt
    elif op == "-":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = frame[a] - frame[b]
            return nxt
    elif op == "*":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = frame[a] * frame[b]
            return nxt
    elif op == "/":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = c_div(frame[a], frame[b])
            return nxt
    elif op == "%":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = c_mod(frame[a], frame[b])
            return nxt
    elif op == "<":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] < frame[b])
            return nxt
    elif op == "<=":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] <= frame[b])
            return nxt
    elif op == ">":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] > frame[b])
            return nxt
    elif op == ">=":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] >= frame[b])
            return nxt
    elif op == "==":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] == frame[b])
            return nxt
    elif op == "!=":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] != frame[b])
            return nxt
    elif op == "neg":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = -frame[a]
            return nxt
    elif op == "not":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = int(not frame[a])
            return nxt
    elif op == "bool":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = int(bool(frame[a]))
            return nxt
    elif op == "jmp":
        _, t = ins

        def f(frame, t=t):
            return t
    elif op == "jz":
        _, c, t = ins

        def f(frame, c=c, t=t, nxt=nxt):
            return nxt if frame[c] else t
    elif op == "jnz":
        _, c, t = ins

        def f(frame, c=c, t=t, nxt=nxt):
            return t if frame[c] else nxt
    elif op == "cast_int":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = int(frame[a])
            return nxt
    elif op == "cast_f32":
        _, d, a = ins
        f32 = np.float32

        def f(frame, d=d, a=a, nxt=nxt, f32=f32):
            frame[d] = float(f32(frame[a]))
            return nxt
    elif op == "rt_getf":
        _, d, m, i = ins

        def f(frame, d=d, m=m, i=i, nxt=nxt):
            frame[d] = float(frame[m].data[int(frame[i])])
            return nxt
    elif op == "rt_setf":
        _, m, i, v = ins
        f32 = np.float32

        def f(frame, m=m, i=i, v=v, nxt=nxt, f32=f32):
            frame[m].data[int(frame[i])] = f32(frame[v])
            return nxt
    elif op == "rt_geti":
        _, d, m, i = ins

        def f(frame, d=d, m=m, i=i, nxt=nxt):
            frame[d] = int(frame[m].data[int(frame[i])])
            return nxt
    elif op == "rt_seti":
        _, m, i, v = ins

        def f(frame, m=m, i=i, v=v, nxt=nxt):
            frame[m].data[int(frame[i])] = int(frame[v])
            return nxt
    elif op == "rt_dim":
        _, d, m, dim = ins

        def f(frame, d=d, m=m, dim=dim, nxt=nxt):
            frame[d] = int(frame[m].dims[int(frame[dim])])
            return nxt
    elif op == "rt_size":
        _, d, m = ins

        def f(frame, d=d, m=m, nxt=nxt):
            frame[d] = frame[m].size
            return nxt
    elif op == "rc_inc":
        _, a = ins
        inc = vm._rc_inc

        def f(frame, a=a, nxt=nxt, inc=inc):
            inc(frame[a])
            return nxt
    elif op == "rc_dec":
        _, a = ins
        dec = vm._rc_dec

        def f(frame, a=a, nxt=nxt, dec=dec):
            dec(frame[a])
            return nxt
    elif op == "intr":
        _, d, method, regs = ins
        meth = getattr(vm, method)

        def f(frame, d=d, meth=meth, regs=regs, nxt=nxt):
            frame[d] = meth(*[frame[r] for r in regs])
            return nxt
    elif op == "call":
        _, d, name, regs = ins
        call = vm.call_function

        def f(frame, d=d, name=name, regs=regs, nxt=nxt, call=call):
            frame[d] = call(name, [frame[r] for r in regs])
            return nxt
    elif op == "tuple":
        _, d, regs = ins

        def f(frame, d=d, regs=regs, nxt=nxt):
            frame[d] = tuple(frame[r] for r in regs)
            return nxt
    elif op == "tget":
        _, d, src, idx = ins

        def f(frame, d=d, src=src, idx=idx, nxt=nxt):
            frame[d] = frame[src][idx]
            return nxt
    elif op == "pool":
        _, fname, total, caps = ins
        pool = vm._pool_run

        def f(frame, fname=fname, total=total, caps=caps, nxt=nxt, pool=pool):
            pool(fname, int(frame[total]), [frame[r] for r in caps])
            return nxt
    elif op == "spawn":
        _, target, callee, regs = ins
        spawn = vm._spawn

        def f(frame, target=target, callee=callee, regs=regs, nxt=nxt,
              spawn=spawn):
            spawn(target, callee, [frame[r] for r in regs], frame)
            return nxt
    elif op == "fastloop":
        _, plan, skip = ins
        run = plan.run

        def f(frame, run=run, skip=skip, nxt=nxt):
            return skip if run(frame) else nxt
    elif op == "ret":
        _, r = ins

        def f(frame, r=r, end=end):
            frame[0] = frame[r]
            return end
    elif op == "ret_none":
        def f(frame, end=end):
            frame[0] = None
            return end
    else:  # pragma: no cover - compiler and VM opcode sets move together
        raise InterpError(f"unknown opcode {op!r}")
    return f
