"""Register-bytecode VM: the default Python execution engine.

Executes :class:`repro.cexec.bytecode.Code` instruction arrays against
the same :class:`~repro.cexec.interp.RTRuntime` the tree-walker uses, so
observable behavior — stdout, stats counters, runtime traps, RMAT
outputs — is byte-for-byte identical to the reference interpreter.

Dispatch is *threaded code*: at bind time every symbolic instruction is
turned into a closure ``frame -> next_pc`` with its operands (and, for
intrinsics, the resolved bound method) captured, so the hot loop is just

    while pc < n:
        pc = ops[pc](frame)

with no opcode decoding, no dict lookups and no exception-based control
flow.  Innermost loops whose bodies were recognized by
:mod:`repro.cexec.loopfast` execute as batched numpy slice operations
and fall through into their scalar bytecode when a guard fails.

Parallel execution (S23): with ``nthreads > 1`` the VM owns a persistent
:class:`repro.cexec.parallel.WorkerPool`.  Pool regions (`parallelize`d
with-loops, matrixMap) shard the outermost iteration space across the
workers — each shard runs the *same* bound closures on its own frame,
with stats/stdout redirected to thread-local buffers that are merged
left-to-right afterwards, so a pooled run is observationally identical
to a sequential one (bit-identical outputs, stdout order, counters,
first-trap-wins traps).  Cilk ``spawn`` schedules compile-time
*task-safe* callees on the same pool (live-task cap, help-while-sync)
and elides the rest inline.
"""

from __future__ import annotations

import math
import os
import threading
import weakref
from pathlib import Path

import numpy as np

from repro.ag.tree import Node
from repro.analysis.hazards import PROCESS_BLOCKERS
from repro.cexec import superinstr
from repro.cexec.bytecode import BytecodeProgram, Code
from repro.cexec.interp import (
    InterpError, InterpStats, RTMat, RTRuntime, RuntimeTrap, c_div, c_mod,
)
from repro.cexec.parallel import (
    ProcessShardPool, attach_shm, make_pool, resolve_backend,
)


def _flag_off(name: str) -> bool:
    """True when env var *name* is set to a non-empty, non-``0`` value."""
    return os.environ.get(name, "") not in ("", "0")


def _shippable_captures(captures: list) -> str | None:
    """Why this capture list cannot cross a process boundary, or None
    when every capture is a contiguous matrix or a plain scalar."""
    for c in captures:
        if isinstance(c, RTMat):
            if not isinstance(c.data, np.ndarray) \
                    or not c.data.flags.c_contiguous:
                return "capture matrix payload is not a contiguous array"
        elif not isinstance(c, (int, float, str, np.integer, np.floating,
                                type(None))):
            return f"capture of type {type(c).__name__}"
    return None


class VM(RTRuntime):
    """Executes a lowered Root node via compiled register bytecode."""

    def __init__(self, lowered_root: Node, ctx, *, workdir: str | Path = ".",
                 nthreads: int = 1, program: BytecodeProgram | None = None,
                 fork_mode: str = "enhanced",
                 parallel_backend: str | None = None,
                 profile: bool = False):
        # Thread-local redirection target must exist before RTRuntime's
        # __init__ assigns the stats/stdout properties below.
        self._tl = threading.local()
        self._main_stats = InterpStats()
        self._main_stdout: list[str] = []
        super().__init__(workdir=workdir, nthreads=nthreads)
        self.program = program or BytecodeProgram(lowered_root, ctx)
        self._ops: dict[str, list] = {}
        self._lifted_ops: dict[str, list] = {}
        self._fork_mode = fork_mode
        self._backend = resolve_backend(parallel_backend)
        self._pool = None
        self._pool_finalizer = None
        self._ppool = None
        self._ppool_finalizer = None
        self._owner_ident = threading.get_ident()
        self._process_region_active = False
        # Regions actually executed on the process pool; survives
        # close() (which drops the pool and its own counters).
        self.process_regions = 0
        self._shm_seq = 0
        try:
            t = float(os.environ.get("REPRO_SHARD_TIMEOUT_S", "") or 0.0)
        except ValueError:
            t = 0.0
        self._shard_timeout_s = t if t > 0 else None
        self._closed = False
        # S29 dispatch specialization.  REPRO_NO_QUICKEN is the master
        # escape hatch (kills fusion + quickening + ICs + frame pooling);
        # the finer-grained switches disable one mechanism at a time.  A
        # profiling VM runs fully generic so the histogram reflects the
        # shipped (unfused) instruction stream.
        self._counting = bool(os.environ.get("REPRO_COUNT_INSTRS"))
        self._profiling = bool(profile)
        spec_off = _flag_off("REPRO_NO_QUICKEN") or self._profiling
        # A counting VM executes the *generic* stream: fusion's jump
        # threading and mid-group early exits genuinely retire fewer
        # dispatches, which would skew the dynamic-instruction totals
        # the E-IR gates compare across optimizer levels.  Quickening
        # and inline caches are 1:1 with generic dispatches and stay on.
        self._spec_fuse = not (spec_off or self._counting
                               or _flag_off("REPRO_NO_SUPERINSTR"))
        self._quicken = not spec_off
        self._frame_pool = not (spec_off or _flag_off("REPRO_NO_FRAME_POOL"))
        # id(ops) -> per-pc metadata for the counting/profiling loops;
        # registered by _bind so fused sites keep constituent-true counts.
        self._widths: dict[int, list[int]] = {}
        self._opnames: dict[int, list[str]] = {}
        # Inline-cache cells created by quickened matrix-access sites;
        # folded into the main stats at drain time.
        self._ic_cells: list[list] = []
        if self._counting:
            self._run = self._run_counting
        if self._profiling:
            self._run = self._run_profiling
            self._profile_pairs: dict[tuple, int] = {}
            self._profile_triples: dict[tuple, int] = {}
            self._profile_by_op: dict[str, int] = {}
            self._profile_dispatches = 0
        # Guards refcount read-modify-writes and the deferred task-stats
        # accumulator while worker threads are live.
        self._rc_lock = threading.Lock()
        self._task_stats = InterpStats()

    # -- thread-local stats/stdout ------------------------------------------
    #
    # The bound instruction closures capture *methods of this VM*, and the
    # same closures execute on every pool thread.  Routing the runtime's
    # `stats`/`stdout` attributes through a threading.local gives each
    # shard/task a private buffer without rebinding any code: off-region
    # code sees the main buffers, a worker sees whatever the shard job
    # installed for the duration of its run.

    @property
    def stats(self) -> InterpStats:
        s = getattr(self._tl, "stats", None)
        return self._main_stats if s is None else s

    @stats.setter
    def stats(self, value: InterpStats) -> None:
        self._main_stats = value

    @property
    def stdout(self) -> list[str]:
        s = getattr(self._tl, "stdout", None)
        return self._main_stdout if s is None else s

    @stdout.setter
    def stdout(self, value: list[str]) -> None:
        self._main_stdout = value

    # -- refcounting (thread-safe under the pool) ---------------------------

    def _rc_inc(self, m) -> None:
        if self._pool is None:
            RTRuntime._rc_inc(self, m)
        else:
            with self._rc_lock:
                RTRuntime._rc_inc(self, m)

    def _rc_dec(self, m) -> None:
        if self._pool is None:
            RTRuntime._rc_dec(self, m)
        else:
            with self._rc_lock:
                RTRuntime._rc_dec(self, m)

    # -- entry points --------------------------------------------------------

    def run_main(self, argv: list[str] | None = None) -> int:
        if "main" not in self.program.functions:
            raise InterpError("no main function")
        try:
            out = self.call_function("main", [])
        finally:
            # Implicit final sync: finish outstanding Cilk tasks and fold
            # their stats in before counters become observable.
            self._drain_tasks()
        return int(out) if out is not None else 0

    def _exec_code_for(self, name: str) -> Code:
        """The instruction stream this VM actually executes for *name*:
        the superinstruction-fused stream when specialization is on,
        the plain S28-optimized stream otherwise.  Analysis consumers
        (callgraph hazard scans, fingerprints) keep using ``code_for`` —
        fusion must never hide a trap/call from them."""
        p = self.program
        return p.spec_code_for(name) if self._spec_fuse else p.code_for(name)

    def _exec_lifted_code_for(self, name: str) -> Code:
        p = self.program
        return (p.spec_lifted_code_for(name) if self._spec_fuse
                else p.lifted_code_for(name))

    def _bind(self, code: Code) -> list:
        """bind() plus per-``ops`` metadata registration for the
        counting/profiling dispatch loops (keyed by ``id(ops)``; the
        ops lists are cached for the VM's lifetime, so ids are stable).
        A fused ``si`` site has width ``len(parts)`` so counting mode
        still reports constituent dynamic instructions and E-IR numbers
        stay comparable across specialized and generic runs."""
        ops = bind(code, self)
        if self._counting:
            self._widths[id(ops)] = [
                len(ins[1]) if ins[0] == "si" else 1 for ins in code.instrs]
        if self._profiling:
            self._opnames[id(ops)] = [ins[0] for ins in code.instrs]
        return ops

    def _poolable(self, code: Code) -> bool:
        """A frame may be recycled unless the code spawns tasks (a task
        may write ``frame[target]`` after the frame returns to the pool)
        or pooling is disabled.  Slots beyond the arguments are *not*
        cleared on reuse: the compiler zero-initializes every declared
        variable before first read, so stale values are never observable."""
        if not self._frame_pool:
            return False
        p = getattr(code, "_poolable", None)
        if p is None:
            p = not any(ins[0] == "spawn" for ins in code.instrs)
            code._poolable = p
        return p

    def call_function(self, name: str, args: list):
        ops = self._ops.get(name)
        if ops is None:
            # Benign under concurrency: binding is deterministic, losers
            # of the (atomic) dict race just rebuilt an equal list.
            ops = self._bind(self._exec_code_for(name))
            self._ops[name] = ops
        code = self._exec_code_for(name)
        if len(code.params) != len(args):
            raise InterpError(
                f"{name}: expected {len(code.params)} args, got {len(args)}")
        return self._run(ops, code.nregs, args, self._poolable(code))

    def _run(self, ops: list, nregs: int, args: list,
             poolable: bool = False):
        if poolable:
            tl = self._tl
            pools = getattr(tl, "frames", None)
            if pools is None:
                pools = tl.frames = {}
            stack = pools.get(nregs)
            if stack is None:
                stack = pools[nregs] = []
            if stack:
                frame = stack.pop()
                frame[0] = None
            else:
                frame = [None] * nregs
            frame[1:1 + len(args)] = args
            pc = 0
            n = len(ops)
            while pc < n:
                pc = ops[pc](frame)
            ret = frame[0]
            # Recycle only on clean exit (a trapped frame is abandoned —
            # a handler may still reference it via the traceback).
            if len(stack) < 8:
                stack.append(frame)
            return ret
        frame = [None] * nregs
        frame[1:1 + len(args)] = args
        pc = 0
        n = len(ops)
        while pc < n:
            pc = ops[pc](frame)
        return frame[0]

    def _run_counting(self, ops: list, nregs: int, args: list,
                      poolable: bool = False):
        """Dispatch loop variant that counts retired instructions into
        the (thread-local) stats — installed over ``_run`` at init when
        ``REPRO_COUNT_INSTRS`` is set, so the common path stays lean.
        Fused superinstructions retire as their constituent count via
        the per-pc width table registered by ``_bind``."""
        frame = [None] * nregs
        frame[1:1 + len(args)] = args
        pc = 0
        n = len(ops)
        count = 0
        widths = self._widths.get(id(ops))
        if widths is None:
            while pc < n:
                count += 1
                pc = ops[pc](frame)
        else:
            while pc < n:
                count += widths[pc]
                pc = ops[pc](frame)
        self.stats.instrs += count
        return frame[0]

    def _run_profiling(self, ops: list, nregs: int, args: list,
                       poolable: bool = False):
        """Dispatch loop variant for ``reproc --profile``: records the
        executed opcode stream's adjacent fall-through pairs and triples
        (the candidates superinstruction fusion could legally merge) into
        histograms.  Only straight-line adjacency counts — ``pc == prev
        + 1`` — because fusion never spans a taken branch."""
        names = self._opnames[id(ops)]
        pairs = self._profile_pairs
        triples = self._profile_triples
        by_op = self._profile_by_op
        frame = [None] * nregs
        frame[1:1 + len(args)] = args
        pc = 0
        n = len(ops)
        disp = 0
        p1 = -9  # previous pc
        p2 = -9  # pc before that
        while pc < n:
            disp += 1
            name = names[pc]
            by_op[name] = by_op.get(name, 0) + 1
            if pc == p1 + 1:
                k = (names[p1], name)
                pairs[k] = pairs.get(k, 0) + 1
                if p1 == p2 + 1:
                    k3 = (names[p2], k[0], name)
                    triples[k3] = triples.get(k3, 0) + 1
            p2 = p1
            p1 = pc
            pc = ops[pc](frame)
        self._profile_dispatches += disp
        return frame[0]

    def profile_dump(self) -> dict:
        """The recorded dispatch histograms as a JSON-ready dict (see
        ``repro.cexec.superinstr.select_table`` for the consumer)."""
        return {
            "version": 1,
            "dispatches": self._profile_dispatches,
            "pairs": {"|".join(k): v
                      for k, v in sorted(self._profile_pairs.items())},
            "triples": {"|".join(k): v
                        for k, v in sorted(self._profile_triples.items())},
            "by_op": dict(sorted(self._profile_by_op.items())),
        }

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self):
        if self.nthreads <= 1 or self._closed:
            return None
        if self._pool is None:
            self._pool = make_pool(self.nthreads, self._fork_mode)
            if self._pool is not None:
                self._pool_finalizer = weakref.finalize(
                    self, self._pool.shutdown)
        return self._pool

    def _ensure_ppool(self):
        if self.nthreads <= 1 or self._closed:
            return None
        if self._ppool is None:
            try:
                self._ppool = ProcessShardPool(
                    self.nthreads - 1, self._exec_shard_job,
                    self._child_after_fork,
                    timeout_s=self._shard_timeout_s)
            except Exception:  # pragma: no cover - no fork/shm platform
                self._backend = "thread"
                return None
            # The pool only weak-refs this VM, so the finalizer can fire.
            self._ppool_finalizer = weakref.finalize(
                self, self._ppool.shutdown)
        return self._ppool if self._ppool.alive else None

    def _child_after_fork(self) -> None:
        """Sanitize inherited state inside a forked shard worker (cf.
        ``repro.serve.workers._reinit_inherited_state``): fresh locks
        and thread-locals (the parent's may be mid-acquire at fork
        time), no pools of either kind (a nested region in a worker
        runs inline), sequential shard math."""
        self._tl = threading.local()
        self._rc_lock = threading.Lock()
        self._task_stats = InterpStats()
        self._pool = None
        self._ppool = None
        self._process_region_active = False
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._ppool_finalizer is not None:
            self._ppool_finalizer.detach()
            self._ppool_finalizer = None
        self.nthreads = 1

    def close(self) -> None:
        """Quiesce and release the worker pools (idempotent).  The VM
        stays usable afterwards — it simply runs sequentially."""
        self._drain_tasks()
        self._closed = True
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown()
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        if self._ppool is not None:
            ppool, self._ppool = self._ppool, None
            ppool.shutdown()
            if self._ppool_finalizer is not None:
                self._ppool_finalizer.detach()
                self._ppool_finalizer = None

    def _drain_tasks(self) -> None:
        if self._pool is not None:
            self._pool.drain()
        with self._rc_lock:
            task_stats, self._task_stats = self._task_stats, InterpStats()
        self._main_stats.merge(task_stats)
        # Snapshot the inline-cache cells into the stats.  Assignment
        # (not +=) keeps repeated drains idempotent; cell[3] (execution
        # count) is only maintained in counting mode, so ic_hits stays 0
        # on lean runs while ic_misses is always exact.
        cells = self._ic_cells
        if cells:
            misses = 0
            execs = 0
            for c in cells:
                misses += c[2]
                execs += c[3]
            self._main_stats.ic_misses = misses
            self._main_stats.ic_hits = max(0, execs - misses)

    # -- pool regions --------------------------------------------------------

    def _pool_run(self, fname: str, total: int, captures: list) -> None:
        ops = self._lifted_ops.get(fname)
        if ops is None:
            ops = self._bind(self._exec_lifted_code_for(fname))
            self._lifted_ops[fname] = ops
        code = self._exec_lifted_code_for(fname)
        self.stats.parallel_regions += 1
        self.stats.region_sizes.append(total)
        self._record_cert(fname)
        per = -(-total // self.nthreads) if total > 0 else 0
        shards = []
        for t in range(self.nthreads):
            lo, hi = min(t * per, total), min((t + 1) * per, total)
            if lo < hi:
                shards.append((lo, hi))
        if self.nthreads <= 1 or self._closed:
            self.stats.bail("shard", "single worker thread (pool disabled)")
        elif len(shards) <= 1:
            self.stats.bail("shard", "iteration space fits in one shard")
        elif not self.program.lifted_parallel_safe(fname):
            hazards = sorted(self.program.hazards_for(fname, lifted=True))
            self.stats.bail(
                "shard", "not shard-safe ({})".format(", ".join(hazards)))
        elif self._process_region_active:
            # The owner thread is executing shard 0 of a process region;
            # a nested construct inside it degrades like the thread
            # pool's rt_pool_region_active path.
            self.stats.bail(
                "shard", "nested inside an active parallel region")
        elif self._dispatch_region(ops, code, fname, captures, shards):
            return
        # Sequential path: nthreads=1, ineligible body, nested region, or
        # pool refusal — same shard boundaries, run in order inline.
        poolable = self._poolable(code)
        for lo, hi in shards:
            self._run(ops, code.nregs, captures + [lo, hi], poolable)

    def _record_cert(self, fname: str) -> None:
        """File the S30 shard disjointness certificate for a region in
        the bail ledger the first time it runs (no-op when the race
        check is disabled or the region has no pool site)."""
        if fname in self.stats.certs:
            return
        from repro.analysis.races import race_analysis_for
        ra = race_analysis_for(self.program)
        if ra is None:
            return
        cert = ra.certificates.get(fname)
        if cert is not None:
            proven, why = cert
            self.stats.certs[fname] = \
                ("proven: " if proven else "not proven: ") + why

    def _dispatch_region(self, ops, code: Code, fname: str, captures: list,
                         shards: list) -> bool:
        """Route one eligible region to a parallel backend; ``False``
        means a bail reason was recorded and the caller must run the
        shards sequentially inline."""
        if self._backend in ("process", "auto") and self._process_ok_here():
            reason = self._process_refusal(fname, captures)
            if reason is None:
                ppool = self._ensure_ppool()
                if ppool is not None:
                    results = self._pool_run_process(
                        fname, captures, shards, ppool)
                    if results is not None:
                        self._merge_region_results(results)
                        self.process_regions += 1
                        return True
                    # Lost worker: the region committed nothing; rerun
                    # it sequentially for exact sequential semantics.
                    self.stats.bail(
                        "shard",
                        "worker process lost; region rerun sequentially")
                    return False
            elif self._backend == "process":
                # The explicitly requested backend was refused; the
                # region still parallelizes on threads, but the ledger
                # says why processes were off the table.
                self.stats.bail(
                    "shard", f"process-ineligible ({reason}); "
                             f"fell back to thread pool")
        pool = self._ensure_pool()
        if pool is None:  # pragma: no cover - guarded by caller checks
            self.stats.bail("shard", "single worker thread (pool disabled)")
            return False
        if self._pool_run_parallel(ops, code, captures, shards, pool):
            return True
        self.stats.bail("shard", "nested inside an active parallel region")
        return False

    def _process_ok_here(self) -> bool:
        """Process dispatch — including the fork that lazily creates the
        pool — is only safe from the VM's owner thread while no thread
        region is running: forking while pool workers execute shards
        would snapshot their held locks into the children, which then
        deadlock on first use.  Blocked dispatches degrade exactly like
        the thread pool's nested-region path (run_region refuses, the
        region runs sequentially inline)."""
        return (threading.get_ident() == self._owner_ident
                and not (self._pool is not None
                         and self._pool.region_active))

    def _process_refusal(self, fname: str, captures: list) -> str | None:
        """Why this region may not use the process pool (None = it may).
        Mirrors ``ParallelSafety.process_safe`` plus a dispatch-time
        check that every capture can cross the process boundary."""
        if not self.program.lifted_process_safe(fname):
            hz = sorted(self.program.hazards_for(fname, lifted=True)
                        & PROCESS_BLOCKERS)
            return ", ".join(hz)
        return _shippable_captures(captures)

    def _pool_run_parallel(self, ops, code: Code, captures: list,
                           shards: list, pool) -> bool:
        """Dispatch one fork-join region; ``False`` defers to the caller's
        sequential loop (nested region or off-owner-thread)."""
        results: list = [None] * len(shards)
        poolable = self._poolable(code)

        def make_job(i: int, lo: int, hi: int):
            def job():
                # Redirect this thread's stats/stdout to private buffers
                # for the duration of the shard (save/restore nests
                # correctly when the owner thread runs shard 0 while
                # already inside a task context).
                tl = self._tl
                prev_stats = getattr(tl, "stats", None)
                prev_stdout = getattr(tl, "stdout", None)
                tl.stats, tl.stdout = InterpStats(), []
                exc = None
                try:
                    self._run(ops, code.nregs, captures + [lo, hi], poolable)
                except Exception as e:
                    exc = e
                finally:
                    results[i] = (tl.stats, tl.stdout, exc)
                    tl.stats, tl.stdout = prev_stats, prev_stdout
            return job

        jobs = [make_job(i, lo, hi) for i, (lo, hi) in enumerate(shards)]
        if not pool.run_region(jobs):
            return False
        self._merge_region_results(results)
        return True

    def _merge_region_results(self, results: list) -> None:
        # Deterministic left-to-right combination: counters, stdout and —
        # on a trap — the identity of the winning trap all match the
        # sequential run.  A shard that trapped stops the merge exactly
        # where the sequential loop would have stopped: shards after it
        # contribute nothing observable (their writes land in disjoint,
        # never-read output regions).
        caller_stats, caller_stdout = self.stats, self.stdout
        for shard_stats, shard_stdout, exc in results:
            caller_stats.merge(shard_stats)
            caller_stdout.extend(shard_stdout)
            if exc is not None:
                raise exc  # first-trap-wins: lowest iteration index

    # -- process-pool regions (S27) -----------------------------------------

    def _pool_run_process(self, fname: str, captures: list, shards: list,
                          ppool) -> list | None:
        """Run one region on the shared-memory process pool: lay every
        capture matrix out in one shared segment, ship ``(lo, hi)`` jobs
        to the forked workers (shard 0 runs here), copy worker writes
        back, and return per-shard results for the ordered merge.
        ``None`` means a worker was lost — nothing was committed."""
        from multiprocessing import shared_memory

        descs: list[tuple] = []
        mats: list[tuple[int, RTMat]] = []  # (byte offset, capture)
        offset = 0
        for c in captures:
            if isinstance(c, RTMat):
                descs.append(("mat", offset, int(c.data.size),
                              c.data.dtype.str, c.kind, tuple(c.dims)))
                mats.append((offset, c))
                # 64-byte alignment keeps adjacent matrices off one
                # cache line (workers write disjoint shards in place).
                offset += (int(c.data.nbytes) + 63) & ~63
            else:
                descs.append(("val", c))
        self._shm_seq += 1
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, offset),
            name=f"reproshard_{os.getpid()}_{self._shm_seq}")
        try:
            for off, mat in mats:
                view = np.ndarray((mat.data.size,), dtype=mat.data.dtype,
                                  buffer=shm.buf, offset=off)
                view[:] = mat.data
                del view
            jobs = [{"fname": fname, "lo": lo, "hi": hi,
                     "shm": shm.name, "descs": descs}
                    for lo, hi in shards]
            self._process_region_active = True
            try:
                results = ppool.run_shards(jobs)
            finally:
                self._process_region_active = False
            if results is None:
                return None
            # Commit: fold worker writes back into the real matrices.
            # (A trapped shard's partial writes commit too, exactly as
            # thread-mode shards write in place before the merge raises.)
            for off, mat in mats:
                view = np.ndarray((mat.data.size,), dtype=mat.data.dtype,
                                  buffer=shm.buf, offset=off)
                mat.data[:] = view
                del view
            return results
        finally:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - stray view held
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def _exec_shard_job(self, job: dict) -> tuple:
        """Execute one shard job (in a forked worker, or inline for
        shard 0): rebuild the captures as numpy views over the shared
        segment, run the lifted body, and return the shard's private
        ``(stats, stdout, exc)``."""
        fname = job["fname"]
        ops = self._lifted_ops.get(fname)
        if ops is None:
            # Quickening writes land in this (forked) worker's private
            # copy of the ops list — never shared back with the parent.
            ops = self._bind(self._exec_lifted_code_for(fname))
            self._lifted_ops[fname] = ops
        code = self._exec_lifted_code_for(fname)
        shm = attach_shm(job["shm"])
        captures: list = []
        try:
            for d in job["descs"]:
                if d[0] == "val":
                    captures.append(d[1])
                else:
                    _, off, count, dstr, kind, dims = d
                    arr = np.ndarray((count,), dtype=np.dtype(dstr),
                                     buffer=shm.buf, offset=off)
                    captures.append(RTMat(kind, dims, arr))
            tl = self._tl
            prev_stats = getattr(tl, "stats", None)
            prev_stdout = getattr(tl, "stdout", None)
            tl.stats, tl.stdout = InterpStats(), []
            exc = None
            try:
                self._run(ops, code.nregs, captures + [job["lo"], job["hi"]],
                          self._poolable(code))
            except Exception as e:
                # Tracebacks pin frames whose locals reference the shm
                # views (and do not pickle anyway): keep the bare error.
                exc = e.with_traceback(None)
                exc.__context__ = exc.__cause__ = None
            stats, stdout = tl.stats, tl.stdout
            tl.stats, tl.stdout = prev_stats, prev_stdout
            return (stats, stdout, exc)
        finally:
            del captures
            try:
                shm.close()
            except BufferError:  # pragma: no cover - stray view held
                pass

    # -- Cilk tasks ----------------------------------------------------------

    def _spawn(self, target: int | None, callee: str, args: list, frame) -> None:
        # Counted at the spawn point so elided and pooled runs report the
        # same tasks_spawned (the callee's own counters merge later).
        self.stats.tasks_spawned += 1
        pool = self._ensure_pool()
        if pool is not None and self.program.task_parallel_safe(callee):
            def job():
                tl = self._tl
                prev_stats = getattr(tl, "stats", None)
                prev_stdout = getattr(tl, "stdout", None)
                tl.stats, tl.stdout = InterpStats(), []
                try:
                    result = self.call_function(callee, args)
                    if target is not None:
                        frame[target] = result
                finally:
                    task_stats = tl.stats
                    tl.stats, tl.stdout = prev_stats, prev_stdout
                    with self._rc_lock:
                        self._task_stats.merge(task_stats)

            task = pool.submit(job)
            if task is not None:
                self.stats.tasks_pooled += 1
                outstanding = getattr(self._tl, "outstanding", None)
                if outstanding is None:
                    outstanding = self._tl.outstanding = []
                outstanding.append(task)
                return
        # Sequential elision: pool saturated/absent or callee not provably
        # safe to move off-thread — run the spawned call inline.
        result = self.call_function(callee, args)
        if target is not None:
            frame[target] = result

    def _sync(self) -> None:
        outstanding = getattr(self._tl, "outstanding", None)
        if not outstanding:
            return
        self._tl.outstanding = []
        pool = self._pool
        for task in outstanding:
            pool.wait_task(task)
        for task in outstanding:  # re-raise in spawn order
            if task.exc is not None:
                raise task.exc


# Opcodes with a quickened (self-rewriting) variant.  Each starts as a
# generic closure that, on first execution, replaces itself in the ops
# list with a type- or callee-specialized form; a failed type guard
# deopts permanently back to the generic semantics.  The rewrite touches
# only this VM's private ops list — forked shard workers bind their own.
_QUICKEN_OPS = superinstr.QUICKEN_OPS


def bind(code: Code, vm: VM) -> list:
    """Thread a :class:`Code` for one VM: one closure per instruction.

    When dispatch specialization is on, unconditional ``jmp`` chains are
    *jump-threaded away*: every control transfer — explicit branch
    targets and implicit fall-throughs alike — is resolved past any run
    of ``jmp`` instructions to its final destination at bind time, so a
    bare ``jmp`` almost never costs a dispatch (the instruction stays in
    the list, merely unreachable).  The generic stream is bound verbatim
    so ``REPRO_NO_QUICKEN=1`` stays a faithful S28 baseline."""
    instrs = code.instrs
    ops: list = []
    end = len(instrs)
    quicken = getattr(vm, "_quicken", False)
    spec = getattr(vm, "_spec_fuse", False)

    if spec:
        def thread(j: int) -> int:
            seen = set()
            while j < end and instrs[j][0] == "jmp" and j not in seen:
                seen.add(j)  # a jmp-to-itself loop must keep dispatching
                j = instrs[j][1]
            return j
    else:
        def thread(j: int) -> int:
            return j

    for i, ins in enumerate(instrs):
        op = ins[0]
        nxt = thread(i + 1)
        if spec:
            if op in ("jmp", "jz", "jnz"):
                ins = ins[:-1] + (thread(ins[-1]),)
            elif op == "fastloop":
                ins = (op, ins[1], thread(ins[2]))
            elif op == "si":
                parts = tuple(
                    p[:-1] + (thread(p[-1]),)
                    if p[0] in ("jmp", "jz", "jnz") else p
                    for p in ins[1])
                ins = (op, parts, ins[2])
        if op == "si":
            ops.append(superinstr.bind_super(ins, nxt, end))
        elif quicken and op in _QUICKEN_OPS:
            ops.append(_bind_quicken(ins, nxt, end, vm, ops, i))
        elif quicken and op == "intr":
            ops.append(_bind_intr_spec(ins, nxt, vm))
        else:
            ops.append(_bind_one(ins, nxt, end, vm))
    return ops


def _bind_intr_spec(ins: tuple, nxt: int, vm: VM):
    """Arity-specialized intrinsic invocation: the bound method is
    resolved at bind time either way, but small fixed arities skip the
    argument-list build and star-unpack of the generic form."""
    _, d, method, regs = ins
    meth = getattr(vm, method)
    if len(regs) == 1:
        r0, = regs

        def f(frame, d=d, meth=meth, r0=r0, nxt=nxt):
            frame[d] = meth(frame[r0])
            return nxt
    elif len(regs) == 2:
        r0, r1 = regs

        def f(frame, d=d, meth=meth, r0=r0, r1=r1, nxt=nxt):
            frame[d] = meth(frame[r0], frame[r1])
            return nxt
    elif len(regs) == 3:
        r0, r1, r2 = regs

        def f(frame, d=d, meth=meth, r0=r0, r1=r1, r2=r2, nxt=nxt):
            frame[d] = meth(frame[r0], frame[r1], frame[r2])
            return nxt
    else:
        def f(frame, d=d, meth=meth, regs=regs, nxt=nxt):
            frame[d] = meth(*[frame[r] for r in regs])
            return nxt
    return f


def _bind_quicken(ins: tuple, nxt: int, end: int, vm: VM, ops: list, i: int):
    op = ins[0]
    if op == "call":
        return _quicken_call(ins, nxt, vm, ops, i)
    if op in ("/", "%"):
        return _quicken_divmod(ins, nxt, vm, ops, i)
    return _quicken_matacc(ins, nxt, vm, ops, i)


def _quicken_call(ins: tuple, nxt: int, vm: VM, ops: list, i: int):
    """``call`` quickens to a direct dispatch into the callee's already
    bound ops — skipping the per-call dict lookup, Code fetch and arity
    check (validated once, here)."""
    _, d, name, regs = ins

    def q(frame, d=d, name=name, regs=regs, nxt=nxt, vm=vm, ops=ops, i=i):
        frame[d] = vm.call_function(name, [frame[r] for r in regs])
        if ops[i] is q:
            code = vm._exec_code_for(name)
            callee = vm._ops[name]
            run = vm._run
            pl = vm._poolable(code)

            def fast(frame, run=run, callee=callee, nregs=code.nregs,
                     regs=regs, d=d, nxt=nxt, pl=pl):
                frame[d] = run(callee, nregs, [frame[r] for r in regs], pl)
                return nxt

            ops[i] = fast
            vm.stats.quickened += 1
        return nxt

    return q


def _quicken_divmod(ins: tuple, nxt: int, vm: VM, ops: list, i: int):
    """``/`` and ``%`` quicken on the first operand types seen: an
    int/int site inlines C-style truncating division (exact c_div/c_mod
    semantics, including the trap messages), a float/float site inlines
    the float form.  A strict ``type() is`` guard failure — including
    bools, which c_div deliberately treats as ints — deopts the site to
    the generic closure for good."""
    op, d, a, b = ins
    is_div = op == "/"
    gen = c_div if is_div else c_mod

    def generic(frame, d=d, a=a, b=b, nxt=nxt, gen=gen):
        frame[d] = gen(frame[a], frame[b])
        return nxt

    def deopt(x, y, gen=gen, ops=ops, i=i, vm=vm, generic=generic):
        ops[i] = generic
        vm.stats.deopts += 1
        return gen(x, y)

    if is_div:
        def fast_int(frame, d=d, a=a, b=b, nxt=nxt, deopt=deopt):
            x = frame[a]
            y = frame[b]
            if type(x) is int and type(y) is int:
                if y == 0:
                    raise RuntimeTrap("integer division by zero")
                q = abs(x) // abs(y)
                frame[d] = q if (x >= 0) == (y >= 0) else -q
            else:
                frame[d] = deopt(x, y)
            return nxt

        def fast_float(frame, d=d, a=a, b=b, nxt=nxt, deopt=deopt):
            x = frame[a]
            y = frame[b]
            if type(x) is float and type(y) is float:
                frame[d] = x / y
            else:
                frame[d] = deopt(x, y)
            return nxt
    else:
        def fast_int(frame, d=d, a=a, b=b, nxt=nxt, deopt=deopt):
            x = frame[a]
            y = frame[b]
            if type(x) is int and type(y) is int:
                if y == 0:
                    raise RuntimeTrap("integer modulo by zero")
                q = abs(x) // abs(y)
                if (x >= 0) != (y >= 0):
                    q = -q
                frame[d] = x - q * y
            else:
                frame[d] = deopt(x, y)
            return nxt

        def fast_float(frame, d=d, a=a, b=b, nxt=nxt, deopt=deopt):
            x = frame[a]
            y = frame[b]
            if type(x) is float and type(y) is float:
                frame[d] = math.fmod(x, y)
            else:
                frame[d] = deopt(x, y)
            return nxt

    def q(frame, d=d, a=a, b=b, nxt=nxt, gen=gen):
        x = frame[a]
        y = frame[b]
        if ops[i] is q:
            if type(x) is int and type(y) is int:
                ops[i] = fast_int
            elif type(x) is float and type(y) is float:
                ops[i] = fast_float
            else:
                ops[i] = generic
            vm.stats.quickened += 1
        frame[d] = gen(x, y)
        return nxt

    return q


def _quicken_matacc(ins: tuple, nxt: int, vm: VM, ops: list, i: int):
    """Matrix element access quickens with a per-site inline cache on
    the RTMat identity: while the same matrix object flows through the
    site (the overwhelmingly common case — a loop body hammering one
    array), the payload ``.data`` attribute load is cached.  A different
    matrix is a cache miss, not a deopt: the cell re-fills and the site
    stays fast.  The cache holds the *identity*, never shape or dtype,
    so it needs no invalidation — an RTMat's data array is replaced only
    together with the object itself."""
    op = ins[0]
    counting = vm._counting
    if op in ("rt_getf", "rt_geti"):
        _, d, m, ix = ins
        conv = float if op == "rt_getf" else int

        def q(frame, d=d, m=m, ix=ix, nxt=nxt, conv=conv):
            mat = frame[m]
            cell = [mat, mat.data, 0, 0]  # [mat, data, misses, execs]
            if counting:
                def fast(frame, d=d, m=m, ix=ix, nxt=nxt, cell=cell,
                         conv=conv):
                    cell[3] += 1
                    mat = frame[m]
                    if mat is cell[0]:
                        data = cell[1]
                    else:
                        cell[0] = mat
                        data = cell[1] = mat.data
                        cell[2] += 1
                    frame[d] = conv(data[int(frame[ix])])
                    return nxt
            else:
                def fast(frame, d=d, m=m, ix=ix, nxt=nxt, cell=cell,
                         conv=conv):
                    mat = frame[m]
                    if mat is cell[0]:
                        data = cell[1]
                    else:
                        cell[0] = mat
                        data = cell[1] = mat.data
                        cell[2] += 1
                    frame[d] = conv(data[int(frame[ix])])
                    return nxt
            if ops[i] is q:
                vm._ic_cells.append(cell)
                ops[i] = fast
                vm.stats.quickened += 1
            frame[d] = conv(cell[1][int(frame[ix])])
            return nxt

        return q

    _, m, ix, v = ins
    conv = np.float32 if op == "rt_setf" else int

    def q(frame, m=m, ix=ix, v=v, nxt=nxt, conv=conv):
        mat = frame[m]
        cell = [mat, mat.data, 0, 0]
        if counting:
            def fast(frame, m=m, ix=ix, v=v, nxt=nxt, cell=cell, conv=conv):
                cell[3] += 1
                mat = frame[m]
                if mat is cell[0]:
                    data = cell[1]
                else:
                    cell[0] = mat
                    data = cell[1] = mat.data
                    cell[2] += 1
                data[int(frame[ix])] = conv(frame[v])
                return nxt
        else:
            def fast(frame, m=m, ix=ix, v=v, nxt=nxt, cell=cell, conv=conv):
                mat = frame[m]
                if mat is cell[0]:
                    data = cell[1]
                else:
                    cell[0] = mat
                    data = cell[1] = mat.data
                    cell[2] += 1
                data[int(frame[ix])] = conv(frame[v])
                return nxt
        if ops[i] is q:
            vm._ic_cells.append(cell)
            ops[i] = fast
            vm.stats.quickened += 1
        cell[1][int(frame[ix])] = conv(frame[v])
        return nxt

    return q


def _bind_one(ins: tuple, nxt: int, end: int, vm: VM):
    op = ins[0]

    if op == "const":
        _, d, v = ins

        def f(frame, d=d, v=v, nxt=nxt):
            frame[d] = v
            return nxt
    elif op == "move":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = frame[a]
            return nxt
    elif op == "+":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = frame[a] + frame[b]
            return nxt
    elif op == "-":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = frame[a] - frame[b]
            return nxt
    elif op == "*":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = frame[a] * frame[b]
            return nxt
    elif op == "/":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = c_div(frame[a], frame[b])
            return nxt
    elif op == "%":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = c_mod(frame[a], frame[b])
            return nxt
    elif op == "<":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] < frame[b])
            return nxt
    elif op == "<=":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] <= frame[b])
            return nxt
    elif op == ">":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] > frame[b])
            return nxt
    elif op == ">=":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] >= frame[b])
            return nxt
    elif op == "==":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] == frame[b])
            return nxt
    elif op == "!=":
        _, d, a, b = ins

        def f(frame, d=d, a=a, b=b, nxt=nxt):
            frame[d] = int(frame[a] != frame[b])
            return nxt
    elif op == "neg":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = -frame[a]
            return nxt
    elif op == "not":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = int(not frame[a])
            return nxt
    elif op == "bool":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = int(bool(frame[a]))
            return nxt
    elif op == "jmp":
        _, t = ins

        def f(frame, t=t):
            return t
    elif op == "jz":
        _, c, t = ins

        def f(frame, c=c, t=t, nxt=nxt):
            return nxt if frame[c] else t
    elif op == "jnz":
        _, c, t = ins

        def f(frame, c=c, t=t, nxt=nxt):
            return t if frame[c] else nxt
    elif op == "cast_int":
        _, d, a = ins

        def f(frame, d=d, a=a, nxt=nxt):
            frame[d] = int(frame[a])
            return nxt
    elif op == "cast_f32":
        _, d, a = ins
        f32 = np.float32

        def f(frame, d=d, a=a, nxt=nxt, f32=f32):
            frame[d] = float(f32(frame[a]))
            return nxt
    elif op == "rt_getf":
        _, d, m, i = ins

        def f(frame, d=d, m=m, i=i, nxt=nxt):
            frame[d] = float(frame[m].data[int(frame[i])])
            return nxt
    elif op == "rt_setf":
        _, m, i, v = ins
        f32 = np.float32

        def f(frame, m=m, i=i, v=v, nxt=nxt, f32=f32):
            frame[m].data[int(frame[i])] = f32(frame[v])
            return nxt
    elif op == "rt_geti":
        _, d, m, i = ins

        def f(frame, d=d, m=m, i=i, nxt=nxt):
            frame[d] = int(frame[m].data[int(frame[i])])
            return nxt
    elif op == "rt_seti":
        _, m, i, v = ins

        def f(frame, m=m, i=i, v=v, nxt=nxt):
            frame[m].data[int(frame[i])] = int(frame[v])
            return nxt
    elif op == "rt_dim":
        _, d, m, dim = ins

        def f(frame, d=d, m=m, dim=dim, nxt=nxt):
            frame[d] = int(frame[m].dims[int(frame[dim])])
            return nxt
    elif op == "rt_size":
        _, d, m = ins

        def f(frame, d=d, m=m, nxt=nxt):
            frame[d] = frame[m].size
            return nxt
    elif op == "rc_inc":
        _, a = ins
        inc = vm._rc_inc

        def f(frame, a=a, nxt=nxt, inc=inc):
            inc(frame[a])
            return nxt
    elif op == "rc_dec":
        _, a = ins
        dec = vm._rc_dec

        def f(frame, a=a, nxt=nxt, dec=dec):
            dec(frame[a])
            return nxt
    elif op == "intr":
        _, d, method, regs = ins
        meth = getattr(vm, method)

        def f(frame, d=d, meth=meth, regs=regs, nxt=nxt):
            frame[d] = meth(*[frame[r] for r in regs])
            return nxt
    elif op == "call":
        _, d, name, regs = ins
        call = vm.call_function

        def f(frame, d=d, name=name, regs=regs, nxt=nxt, call=call):
            frame[d] = call(name, [frame[r] for r in regs])
            return nxt
    elif op == "tuple":
        _, d, regs = ins

        def f(frame, d=d, regs=regs, nxt=nxt):
            frame[d] = tuple(frame[r] for r in regs)
            return nxt
    elif op == "tget":
        _, d, src, idx = ins

        def f(frame, d=d, src=src, idx=idx, nxt=nxt):
            frame[d] = frame[src][idx]
            return nxt
    elif op == "pool":
        _, fname, total, caps = ins
        pool = vm._pool_run

        def f(frame, fname=fname, total=total, caps=caps, nxt=nxt, pool=pool):
            pool(fname, int(frame[total]), [frame[r] for r in caps])
            return nxt
    elif op == "spawn":
        _, target, callee, regs = ins
        spawn = vm._spawn

        def f(frame, target=target, callee=callee, regs=regs, nxt=nxt,
              spawn=spawn):
            spawn(target, callee, [frame[r] for r in regs], frame)
            return nxt
    elif op == "sync":
        sync = vm._sync

        def f(frame, nxt=nxt, sync=sync):
            sync()
            return nxt
    elif op == "fastloop":
        _, plan, skip = ins
        run = plan.run

        def f(frame, run=run, skip=skip, nxt=nxt, vm=vm):
            # vm.stats is a thread-local property: resolve per execution
            # so shard workers record bails into their own buffers.
            return skip if run(frame, vm.stats) else nxt
    elif op == "ret":
        _, r = ins

        def f(frame, r=r, end=end):
            frame[0] = frame[r]
            return end
    elif op == "ret_none":
        def f(frame, end=end):
            frame[0] = None
            return end
    else:  # pragma: no cover - compiler and VM opcode sets move together
        raise InterpError(f"unknown opcode {op!r}")
    return f
