"""Guarded numpy fast path for compiled innermost loops.

:func:`try_fast_loop` pattern-matches a ``forStmt`` at bytecode-compile
time: a ``for (long v = start; v < limit; v = v + 1)`` whose body is a
flat sequence of matrix stores (``rt_setf``/``rt_seti`` with any index
expression over the loop variable) and scalar reductions
(``acc = acc + E`` / ``acc = acc * E``).  When it matches, the whole trip
count executes as vectorized numpy operations — gathers via fancy
indexing, stores via fancy-index assignment, reductions via
``np.cumsum``/``np.cumprod`` (which numpy evaluates strictly
left-to-right, unlike the pairwise ``np.sum``) — producing **bit-exact**
the same float64/float32 results as the scalar loop.

Exactness is non-negotiable: the plan's guard + compute phase is *pure*
(no frame, matrix, or stats mutation) and every doubtful condition —
non-integer bounds, out-of-range indices, aliasing between a stored and
a loaded matrix, integer division, a zero float divisor, a non-float
accumulator, a value an ``int32`` store would trap on — makes
:meth:`Plan.run` return ``False`` *before anything is committed*, so the
scalar bytecode loop compiled right behind the ``fastloop`` instruction
reproduces the exact behavior, including traps at the correct iteration
with the correct partial state.  Only after every guard passes does the
commit phase (which cannot fail) write stores and accumulators back.

Allocation/copy/region stats are untouched by design: the matched
statement forms never allocate, copy, or open pool regions.

Thread-safety contract (S23): one :class:`Plan` is embedded in its
function's *shared* instruction array, and the fork-join pool executes
that same array concurrently on every worker, each with a private frame
over a disjoint chunk of the iteration space.  :meth:`Plan.run` must
therefore stay reentrant — all per-execution state lives in the
per-call :class:`_Run`, never on the plan — and its numpy batch
operations are exactly the calls that release the GIL, which is what
makes sharding profitable at all.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ag.tree import Node

# Largest trip count the fast path will materialize arrays for; above
# this the scalar loop runs (slow but O(1) memory).
MAX_TRIP = 1 << 24


class _Bail(Exception):
    """Raised inside the pure guard/compute phase to fall back."""


class _Run:
    """Per-execution state threaded through the evaluator closures."""

    __slots__ = ("frame", "iv", "loads", "stmt_i")

    def __init__(self, frame, iv):
        self.frame = frame
        self.iv = iv          # int64 index vector start..limit-1
        self.loads = []       # (mat_object, idx_array, stmt_i)
        self.stmt_i = 0


def _is_intlike(x) -> bool:
    if isinstance(x, np.ndarray):
        return x.dtype.kind in "iub"
    return isinstance(x, (int, np.integer))  # includes bool


def _index_array(x, iv) -> np.ndarray:
    """Validate and broadcast an index operand to an int64 vector."""
    if isinstance(x, np.ndarray):
        if x.dtype.kind not in "iub":
            raise _Bail("non-integer index vector")
        return x.astype(np.int64, copy=False)
    if not _is_intlike(x):
        raise _Bail("non-integer scalar index")
    return np.full(iv.shape, int(x), dtype=np.int64)


def _as_f64(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float64, copy=False)
    return np.float64(x)


class Plan:
    """A matched loop: evaluator closures plus guarded commit steps."""

    def __init__(self, var_name: str, start_ev, limit_ev,
                 stores: list, reductions: list):
        self.var_name = var_name
        self.start_ev = start_ev
        self.limit_ev = limit_ev
        # stores: (stmt_i, kind "f"|"i", mat_slot, idx_ev, val_ev)
        # reductions: (stmt_i, acc_slot, op "+"|"*", ev)
        self.stores = stores
        self.reductions = reductions

    @property
    def steps(self):
        return self.stores + self.reductions

    def run(self, frame, stats=None) -> bool:
        """Execute the whole loop; True on success, False to fall back.

        Phase 1 (guard + compute) is pure: any exception — a _Bail from
        a guard, or anything unforeseen — aborts with no state changed.
        Phase 2 (commit) performs only infallible numpy writes.

        When ``stats`` (an :class:`~repro.cexec.interp.InterpStats`) is
        given, each fallback records the guard's reason so ``reproc
        --stats`` can report *why* the scalar loop ran.
        """
        try:
            commits = self._compute(frame)
        except _Bail as bail:
            if stats is not None:
                stats.bail("fastloop", str(bail))
            return False
        except Exception as err:  # pragma: no cover - defensive
            if stats is not None:
                stats.bail("fastloop", f"unexpected {type(err).__name__}")
            return False
        for c in commits:
            c()
        return True

    def _compute(self, frame) -> list:
        start = self.start_ev(_Run(frame, None))
        limit = self.limit_ev(_Run(frame, None))
        if not _is_intlike(start) or not _is_intlike(limit):
            raise _Bail("non-integer loop bounds")
        start, limit = int(start), int(limit)
        n = limit - start
        if n <= 0:
            return []  # zero-trip loop: nothing to run, nothing to skip
        if n > MAX_TRIP:
            raise _Bail("trip count too large to materialize")
        rt = _Run(frame, np.arange(start, limit, dtype=np.int64))
        commits: list[Callable[[], None]] = []

        stored: dict[int, tuple] = {}  # id(mat) -> (idx_array, stmt_i)
        for stmt_i, kind, mat_slot, idx_ev, val_ev in self.stores:
            rt.stmt_i = stmt_i
            mat = frame[mat_slot]
            data = getattr(mat, "data", None)
            if not isinstance(data, np.ndarray):
                raise _Bail("store target is not a matrix")
            idx = _index_array(idx_ev(rt), rt.iv)
            size = data.size
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= size):
                raise _Bail("store index out of range")
            if id(mat) in stored:
                raise _Bail("two stores to one matrix object")
            # Duplicate store indices: scalar semantics are last-wins
            # interleaved with loads; too subtle to vectorize.
            if idx.size > 1 and not np.all(idx[1:] > idx[:-1]) \
                    and np.unique(idx).size != idx.size:
                raise _Bail("duplicate store indices")
            stored[id(mat)] = (idx, stmt_i)
            vals = val_ev(rt)
            if kind == "f":
                out = np.asarray(_as_f64(vals)).astype(np.float32)
            else:
                v64 = np.asarray(_as_f64(vals))
                if not np.all(np.isfinite(v64)):
                    raise _Bail("non-finite value for integer store")
                out = np.trunc(v64)
                if np.any(out < -2**31) or np.any(out >= 2**31):
                    raise _Bail("integer store out of int32 range")
                out = out.astype(np.int32)
            commits.append(
                lambda data=data, idx=idx, out=out: data.__setitem__(idx, out))

        accs: dict[int, int] = {}
        for stmt_i, acc_slot, op, ev in self.reductions:
            rt.stmt_i = stmt_i
            acc0 = frame[acc_slot]
            if not isinstance(acc0, float):
                raise _Bail("non-float accumulator")
            if acc_slot in accs:
                raise _Bail("two reductions on one accumulator")
            accs[acc_slot] = stmt_i
            e = ev(rt)
            if isinstance(e, np.ndarray):
                chain = np.concatenate(([acc0], _as_f64(e)))
            else:
                chain = np.concatenate(
                    ([acc0], np.full(n, np.float64(e), dtype=np.float64)))
            # cumsum/cumprod accumulate strictly left-to-right on f64,
            # reproducing the scalar fold's rounding exactly (IEEE-754
            # + and * are commutative, so `acc = E op acc` folds the same)
            total = float(np.cumsum(chain)[-1] if op == "+"
                          else np.cumprod(chain)[-1])
            commits.append(
                lambda frame=frame, s=acc_slot, t=total:
                    frame.__setitem__(s, t))

        # Aliasing: a load from a matrix some statement stores to is only
        # safe when it reads exactly the elements that statement writes
        # *and* textually precedes the store (read-then-write per index;
        # all loads happen before any commit, matching scalar order).
        for mat, lidx, l_stmt in rt.loads:
            hit = stored.get(id(mat))
            if hit is None:
                continue
            sidx, s_stmt = hit
            if l_stmt > s_stmt or lidx.shape != sidx.shape \
                    or not np.array_equal(lidx, sidx):
                raise _Bail("load aliases a stored matrix")
        return commits


# --------------------------------------------------------------------------
# Compile-time matching
# --------------------------------------------------------------------------


def _refs_var(node, name: str) -> bool:
    if not isinstance(node, Node):
        return False
    if node.prod == "var" and node.children[0] == name:
        return True
    return any(_refs_var(c, name) for c in node.children)


def _flatten_body(node: Node, out: list[Node]) -> bool:
    from repro.cminus.absyn import node_cons_to_list

    if node.prod in ("block", "seqStmt"):
        for s in node_cons_to_list(node.children[0]):
            if not _flatten_body(s, out):
                return False
        return True
    if node.prod == "exprStmt":
        out.append(node.children[0])
        return True
    return False


def _build_ev(fc, node, var_name: str | None):
    """Expression -> evaluator closure ``rt -> scalar | ndarray``, or
    None when the expression is outside the vectorizable language.
    All frame slots are resolved here, at compile time."""
    if not isinstance(node, Node):
        return None
    p = node.prod
    ch = node.children
    if p == "intLit":
        v = ch[0]
        return lambda rt: v
    if p == "floatLit":
        v = float(np.float32(ch[0]))
        return lambda rt: v
    if p == "boolLit":
        v = int(ch[0])
        return lambda rt: v
    if p == "var":
        if ch[0] == var_name:
            return lambda rt: rt.iv
        slot = fc.lookup(ch[0])
        if slot is None:
            return None
        return lambda rt: rt.frame[slot]
    if p == "binop":
        op = ch[0]
        a = _build_ev(fc, ch[1], var_name)
        b = _build_ev(fc, ch[2], var_name)
        if a is None or b is None:
            return None
        if op == "+":
            return lambda rt: a(rt) + b(rt)
        if op == "-":
            return lambda rt: a(rt) - b(rt)
        if op == "*":
            return lambda rt: a(rt) * b(rt)
        if op == "/":
            def div(rt, a=a, b=b):
                x, y = a(rt), b(rt)
                if _is_intlike(x) and _is_intlike(y):
                    raise _Bail("integer division")  # c_div truncation
                if isinstance(y, np.ndarray):
                    if np.any(y == 0):
                        raise _Bail("zero in divisor vector")
                elif y == 0:
                    raise _Bail("zero divisor")
                return _as_f64(x) / _as_f64(y)
            return div
        if op in ("<", "<=", ">", ">=", "==", "!="):
            import operator
            f = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
                 ">=": operator.ge, "==": operator.eq, "!=": operator.ne}[op]

            def cmp(rt, a=a, b=b, f=f):
                r = f(a(rt), b(rt))
                if isinstance(r, np.ndarray):
                    return r.astype(np.int64)
                return int(r)
            return cmp
        return None  # %, &&, || : scalar semantics too subtle
    if p == "unop":
        v = _build_ev(fc, ch[1], var_name)
        if v is None:
            return None
        if ch[0] == "-":
            return lambda rt: -v(rt)

        def unot(rt, v=v):
            r = v(rt)
            if isinstance(r, np.ndarray):
                return (r == 0).astype(np.int64)
            return int(not r)
        return unot
    if p == "castE":
        from repro.cexec.bytecode import cast_kind

        v = _build_ev(fc, ch[1], var_name)
        if v is None:
            return None
        kind = cast_kind(ch[0])
        if kind is None:
            return v
        if kind == "int":
            def toint(rt, v=v):
                r = v(rt)
                if isinstance(r, np.ndarray):
                    if r.dtype.kind in "iub":
                        return r.astype(np.int64)
                    if not np.all(np.isfinite(r)):
                        raise _Bail("int cast of non-finite")
                    return np.trunc(r).astype(np.int64)
                return int(r)
            return toint

        def tof32(rt, v=v):
            r = v(rt)
            if isinstance(r, np.ndarray):
                return r.astype(np.float32).astype(np.float64)
            return float(np.float32(r))
        return tof32
    if p == "call":
        return _build_call_ev(fc, node, var_name)
    return None


def _build_call_ev(fc, node: Node, var_name: str | None):
    from repro.cminus.absyn import node_cons_to_list

    name = node.children[0]
    args = node_cons_to_list(node.children[1])
    if name in ("rt_getf", "rt_geti"):
        if len(args) != 2 or args[0].prod != "var" \
                or args[0].children[0] == var_name:
            return None
        mslot = fc.lookup(args[0].children[0])
        idx_ev = _build_ev(fc, args[1], var_name)
        if mslot is None or idx_ev is None:
            return None
        want = "f" if name == "rt_getf" else "i"

        def load(rt, mslot=mslot, idx_ev=idx_ev, want=want):
            mat = rt.frame[mslot]
            data = getattr(mat, "data", None)
            if not isinstance(data, np.ndarray):
                raise _Bail("load source is not a matrix")
            idx = _index_array(idx_ev(rt), rt.iv)
            size = data.size
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= size):
                raise _Bail("load index out of range")
            rt.loads.append((mat, idx, rt.stmt_i))
            got = data[idx]
            return got.astype(np.float64) if want == "f" \
                else got.astype(np.int64)
        return load
    if name == "rt_size":
        if len(args) != 1 or args[0].prod != "var" \
                or args[0].children[0] == var_name:
            return None
        mslot = fc.lookup(args[0].children[0])
        if mslot is None:
            return None

        def size(rt, mslot=mslot):
            mat = rt.frame[mslot]
            if not isinstance(getattr(mat, "data", None), np.ndarray):
                raise _Bail("rt_size of a non-matrix")
            return mat.size
        return size
    if name == "rt_dim":
        if len(args) != 2 or args[0].prod != "var" \
                or args[0].children[0] == var_name:
            return None
        mslot = fc.lookup(args[0].children[0])
        d_ev = _build_ev(fc, args[1], None)  # dim index must be invariant
        if mslot is None or d_ev is None or _refs_var(args[1], var_name):
            return None

        def dim(rt, mslot=mslot, d_ev=d_ev):
            mat = rt.frame[mslot]
            if not isinstance(getattr(mat, "data", None), np.ndarray):
                raise _Bail("rt_dim of a non-matrix")
            return int(mat.dims[int(d_ev(rt))])
        return dim
    return None


def _match_reduction(fc, e: Node, var_name: str):
    """``acc = acc (+|*) E`` / ``acc = E (+|*) acc`` with a non-loop-var
    scalar accumulator E does not mention.  Returns (acc_name, acc_slot,
    op, ev) or None."""
    if e.prod != "assign" or e.children[0].prod != "var":
        return None
    acc = e.children[0].children[0]
    rhs = e.children[1]
    if acc == var_name or rhs.prod != "binop" or rhs.children[0] not in ("+", "*"):
        return None
    op, lhs_n, rhs_n = rhs.children
    if lhs_n.prod == "var" and lhs_n.children[0] == acc:
        other = rhs_n
    elif rhs_n.prod == "var" and rhs_n.children[0] == acc:
        other = lhs_n
    else:
        return None
    if _refs_var(other, acc):
        return None
    slot = fc.lookup(acc)
    ev = _build_ev(fc, other, var_name)
    if slot is None or ev is None:
        return None
    return acc, slot, op, ev


# Limit expressions are re-evaluated by the scalar loop every iteration;
# the fast path reads them once, so they must be provably unchanged by
# the body: literals, plain variables (checked against accumulators),
# and rt_size/rt_dim (matrix *shapes* are immutable, only data mutates).
_LIMIT_PRODS = frozenset(["intLit", "var", "binop", "unop", "castE"])


def _limit_ok(node: Node) -> bool:
    if not isinstance(node, Node):
        return True
    if node.prod == "call":
        if node.children[0] not in ("rt_size", "rt_dim"):
            return False
        from repro.cminus.absyn import node_cons_to_list

        return all(_limit_ok(a) for a in node_cons_to_list(node.children[1]))
    if node.prod not in _LIMIT_PRODS:
        return False
    return all(_limit_ok(c) for c in node.children if isinstance(c, Node))


def try_fast_loop(fc, node: Node) -> Plan | None:
    """Match ``forStmt`` against the vectorizable pattern; None = no plan
    (the scalar loop runs alone).  Called with the *enclosing* scope
    active — the loop variable is never a frame slot on this path."""
    init, cond, step, body = node.children
    if init.prod != "forDecl":
        return None
    var_name = init.children[1]
    # condition: var < limit
    if cond.prod != "binop" or cond.children[0] != "<" \
            or cond.children[1].prod != "var" \
            or cond.children[1].children[0] != var_name:
        return None
    limit_node = cond.children[2]
    if _refs_var(limit_node, var_name) or not _limit_ok(limit_node):
        return None
    # step: v = v + 1  (or v = 1 + v)
    if step.prod != "assign" or step.children[0].prod != "var" \
            or step.children[0].children[0] != var_name:
        return None
    s_rhs = step.children[1]
    if s_rhs.prod != "binop" or s_rhs.children[0] != "+":
        return None
    a, b = s_rhs.children[1], s_rhs.children[2]
    one_var = (a.prod == "var" and a.children[0] == var_name
               and b.prod == "intLit" and b.children[0] == 1) or \
              (b.prod == "var" and b.children[0] == var_name
               and a.prod == "intLit" and a.children[0] == 1)
    if not one_var:
        return None
    start_node = init.children[2]
    if _refs_var(start_node, var_name):
        # forDecl init reads the *outer* binding of the same name in the
        # scalar compiler; too confusing to mirror — fall back.
        return None
    start_ev = _build_ev(fc, start_node, None)
    limit_ev = _build_ev(fc, limit_node, None)
    if start_ev is None or limit_ev is None:
        return None

    stmts: list[Node] = []
    if not _flatten_body(body, stmts) or not stmts:
        return None
    stores, reductions = [], []
    acc_names: list[str] = []
    store_val_nodes: list[Node] = []
    for i, e in enumerate(stmts):
        if e.prod == "call" and e.children[0] in ("rt_setf", "rt_seti"):
            from repro.cminus.absyn import node_cons_to_list

            args = node_cons_to_list(e.children[1])
            if len(args) != 3 or args[0].prod != "var" \
                    or args[0].children[0] == var_name:
                return None
            mslot = fc.lookup(args[0].children[0])
            idx_ev = _build_ev(fc, args[1], var_name)
            val_ev = _build_ev(fc, args[2], var_name)
            if mslot is None or idx_ev is None or val_ev is None:
                return None
            kind = "f" if e.children[0] == "rt_setf" else "i"
            stores.append((i, kind, mslot, idx_ev, val_ev))
            store_val_nodes.append(args[1])
            store_val_nodes.append(args[2])
            continue
        red = _match_reduction(fc, e, var_name)
        if red is None:
            return None
        acc, slot, op, ev = red
        reductions.append((i, slot, op, ev))
        acc_names.append(acc)
        store_val_nodes.append(e.children[1])
    # Any accumulator read outside its own fold (in a store value/index,
    # another reduction, or the limit) sees stale pre-loop state on the
    # fast path — bail at compile time.
    for acc in acc_names:
        if _refs_var(limit_node, acc):
            return None
        if sum(1 for n in store_val_nodes if _refs_var(n, acc)) \
                > acc_names.count(acc):
            return None
    if len(set(acc_names)) != len(acc_names):
        return None
    return Plan(var_name, start_ev, limit_ev, stores, reductions)
