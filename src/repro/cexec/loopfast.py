"""Guarded numpy fast path for compiled loops and rectangular loop nests.

:func:`try_fast_loop` pattern-matches a ``forStmt`` at bytecode-compile
time: a ``for (long v = start; v < limit; v = v + c)`` (``<=`` and any
positive constant step also match), or a **rectangular nest** (up to
3-D) of such loops whose inner bounds are invariant across the nest, whose body
is a flat sequence of matrix stores (``rt_setf``/``rt_seti`` with any
index expression over the loop variables) and scalar reductions
(``acc = acc + E`` / ``acc = acc * E``).  When it matches, the whole
iteration space executes as vectorized numpy operations — gathers via
fancy indexing, stores via fancy-index assignment, reductions via
``np.cumsum``/``np.cumprod`` (which numpy evaluates strictly
left-to-right, unlike the pairwise ``np.sum``) — producing **bit-exact**
the same float64/float32 results as the scalar loops.

Exactness is non-negotiable: the plan's guard + compute phase is *pure*
(no frame, matrix, or stats mutation) and every doubtful condition —
non-integer bounds, out-of-range indices, aliasing between a stored and
a loaded matrix, overlapping stores, integer division, a zero float
divisor, a non-float accumulator, a value an ``int32`` store would trap
on — makes :meth:`Plan.run` return ``False`` *before anything is
committed*, so the scalar bytecode loop compiled right behind the
``fastloop`` instruction reproduces the exact behavior, including traps
at the correct iteration with the correct partial state.  Only after
every guard passes does the commit phase (which cannot fail) write
stores and accumulators back.  (When a nest plan bails, the scalar
outer loops still run the *inner* loops' own plans per row, so
partially vectorizable nests degrade gracefully instead of all the way
to scalar.)

Affine interval reasoning (S25) discharges the runtime guards cheaply:
a store index recognized at compile time as ``c0 + Σ coeff·v`` over the
loop variables (coefficients loop-invariant integers) gets its bounds
checked from the interval corners and its index-uniqueness *proven* —
sorting axes by stride, each stride must clear the combined value span
of the axes below it (:func:`repro.ir.affine.nest_injective`, any
depth) — instead of scanned with ``np.unique``.  This is what admits non-unit strides
(``m[2*i+1]``) and 2-D row-major layouts (``m[i*w + j]``) that the
conservative monotone-scan guard used to reject, and it also provides
the interval/congruence evidence for allowing *multiple* stores to one
matrix when their index sets are identical (commit order = statement
order, last write wins, exactly like the scalar body) or provably
disjoint.

Allocation/copy/region stats are untouched by design: the matched
statement forms never allocate, copy, or open pool regions.

Thread-safety contract (S23/S27): one :class:`Plan` is embedded in its
function's *shared* instruction array, and the fork-join pool executes
that same array concurrently on every worker, each with a private frame
over a disjoint chunk of the iteration space.  :meth:`Plan.run` must
therefore stay reentrant — all per-execution state lives in the
per-call :class:`_Run`, never on the plan — and its numpy batch
operations are exactly the calls that release the GIL, which is what
makes sharding profitable at all.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ag.tree import Node

# Largest total trip count the fast path will materialize arrays for;
# above this the scalar loop runs (slow but O(1) memory).
MAX_TRIP = 1 << 24

# Affine corner magnitudes past this bail instead of risking int64
# wraparound in the vectorized index arithmetic (the scalar loop
# computes with exact Python ints and traps on the range check).
_AFFINE_MAG_CAP = 1 << 62


class _Bail(Exception):
    """Raised inside the pure guard/compute phase to fall back."""


class _Run:
    """Per-execution state threaded through the evaluator closures."""

    __slots__ = ("frame", "ivs", "n", "loads", "stmt_i")

    def __init__(self, frame, ivs, n):
        self.frame = frame
        self.ivs = ivs        # var name -> int64 flattened index vector
        self.n = n            # total (flattened) trip count
        self.loads = []       # (mat_object, idx_array, stmt_i)
        self.stmt_i = 0


def _is_intlike(x) -> bool:
    if isinstance(x, np.ndarray):
        return x.dtype.kind in "iub"
    return isinstance(x, (int, np.integer))  # includes bool


def _index_array(x, n: int) -> np.ndarray:
    """Validate and broadcast an index operand to an int64 vector."""
    if isinstance(x, np.ndarray):
        if x.dtype.kind not in "iub":
            raise _Bail("non-integer index vector")
        return x.astype(np.int64, copy=False)
    if not _is_intlike(x):
        raise _Bail("non-integer scalar index")
    return np.full(n, int(x), dtype=np.int64)


def _as_f64(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float64, copy=False)
    return np.float64(x)


def _affine_eval(affine, rt, spans):
    """Evaluate a compile-time affine form against the live iteration
    space: returns ``(idx, lo, hi, unique_proven)`` where ``idx`` is the
    full flattened int64 index vector, ``[lo, hi]`` the exact value
    interval (from the per-term corners — the form is separable), and
    ``unique_proven`` whether injectivity over the grid is discharged
    without scanning."""
    c0_ev, coeffs = affine
    c0 = c0_ev(rt)
    lo = hi = c0
    mag = abs(c0)
    terms = []
    for name, cev in coeffs.items():
        coef = cev(rt)
        first, last, step, count = spans[name]
        a, b = coef * first, coef * last
        lo += min(a, b)
        hi += max(a, b)
        mag += max(abs(a), abs(b))
        terms.append((name, coef, step, count))
    if mag > _AFFINE_MAG_CAP:
        raise _Bail("affine index magnitude too large")
    idx = np.full(rt.n, c0, dtype=np.int64)
    for name, coef, step, count in terms:
        if coef:
            idx += coef * rt.ivs[name]
    # Injectivity: every multi-trip axis must appear with a nonzero
    # stride, and each stride (ascending) must clear the combined value
    # span of the axes below it — blocks nest instead of interleaving.
    # The sorted-stride proof (shared with the IR) works at any depth.
    from repro.ir.affine import nest_injective

    active = [(abs(coef * step), count) for _, coef, step, count in terms
              if count > 1 and coef != 0]
    multi = sum(1 for s in spans.values() if s[3] > 1)
    unique = len(active) == multi and nest_injective(active)
    return idx, lo, hi, unique


class Plan:
    """A matched loop (nest): evaluator closures plus guarded commits."""

    def __init__(self, loops: list, stores: list, reductions: list):
        # loops: (var_name, start_ev, limit_ev, step:int, inclusive:bool)
        #        outermost first
        # stores: (stmt_i, kind "f"|"i", mat_slot, idx_ev, val_ev, affine)
        #        affine: None | (const_ev, {var_name: coeff_ev})
        # reductions: (stmt_i, acc_slot, op "+"|"*", ev)
        self.loops = loops
        self.stores = stores
        self.reductions = reductions
        # Frame slots the evaluator closures read / the commits write —
        # the pinning contract the mid-level IR (S28) honors around the
        # opaque ``fastloop`` instruction.  Filled by try_fast_loop.
        self.read_slots: frozenset[int] = frozenset()
        self.write_slots: frozenset[int] = frozenset()

    @property
    def steps(self):
        return self.stores + self.reductions

    def run(self, frame, stats=None) -> bool:
        """Execute the whole loop; True on success, False to fall back.

        Phase 1 (guard + compute) is pure: any exception — a _Bail from
        a guard, or anything unforeseen — aborts with no state changed.
        Phase 2 (commit) performs only infallible numpy writes.

        When ``stats`` (an :class:`~repro.cexec.interp.InterpStats`) is
        given, each fallback records the guard's reason so ``reproc
        --stats`` can report *why* the scalar loop ran.
        """
        try:
            commits = self._compute(frame)
        except _Bail as bail:
            if stats is not None:
                stats.bail("fastloop", str(bail))
            return False
        except Exception as err:  # pragma: no cover - defensive
            if stats is not None:
                stats.bail("fastloop", f"unexpected {type(err).__name__}")
            return False
        for c in commits:
            c()
        return True

    def _compute(self, frame) -> list:
        rt0 = _Run(frame, {}, 0)
        axes = []  # (name, first, step, count)
        n = 1
        for name, start_ev, limit_ev, step, inclusive in self.loops:
            start = start_ev(rt0)
            limit = limit_ev(rt0)
            if not _is_intlike(start) or not _is_intlike(limit):
                raise _Bail("non-integer loop bounds")
            start, limit = int(start), int(limit)
            stop = limit + 1 if inclusive else limit
            count = max(0, (stop - start + step - 1) // step)
            axes.append((name, start, step, count))
            n *= count
        if n == 0:
            return []  # zero-trip space: nothing to run, nothing to skip
        if n > MAX_TRIP:
            raise _Bail("trip count too large to materialize")
        # Flattened row-major index vectors (outermost varies slowest),
        # mirroring the scalar nest's execution order exactly.
        ivs: dict[str, np.ndarray] = {}
        spans: dict[str, tuple] = {}
        reps_after, reps_before = n, 1
        for name, first, step, count in axes:
            reps_after //= count
            iv = np.arange(first, first + count * step, step, dtype=np.int64)
            if reps_after > 1:
                iv = np.repeat(iv, reps_after)
            if reps_before > 1:
                iv = np.tile(iv, reps_before)
            ivs[name] = iv
            spans[name] = (first, first + (count - 1) * step, step, count)
            reps_before *= count
        rt = _Run(frame, ivs, n)
        commits: list[Callable[[], None]] = []

        # id(mat) -> list of (idx_array, stmt_i, lo, hi)
        stored: dict[int, list] = {}
        for stmt_i, kind, mat_slot, idx_ev, val_ev, affine in self.stores:
            rt.stmt_i = stmt_i
            mat = frame[mat_slot]
            data = getattr(mat, "data", None)
            if not isinstance(data, np.ndarray):
                raise _Bail("store target is not a matrix")
            if affine is not None:
                idx, lo, hi, unique = _affine_eval(affine, rt, spans)
            else:
                idx = _index_array(idx_ev(rt), n)
                lo, hi = int(idx.min()), int(idx.max())
                unique = False
            if lo < 0 or hi >= data.size:
                raise _Bail("store index out of range")
            # Duplicate store indices: scalar semantics are last-wins
            # interleaved with loads; too subtle to vectorize.  The
            # affine proof skips the O(n log n) scan entirely.
            if not unique and idx.size > 1 \
                    and not np.all(idx[1:] > idx[:-1]) \
                    and np.unique(idx).size != idx.size:
                raise _Bail("duplicate store indices")
            # Several stores to one matrix are fine when their index
            # sets are identical (commit order = statement order, so
            # the last statement wins per index, like the scalar body)
            # or provably disjoint; partial overlap interleaves.
            for pidx, p_stmt, plo, phi in stored.get(id(mat), ()):
                if idx.shape == pidx.shape and np.array_equal(idx, pidx):
                    continue
                if hi < plo or phi < lo:
                    continue
                if np.intersect1d(idx, pidx, assume_unique=True).size == 0:
                    continue
                raise _Bail("overlapping stores to one matrix")
            stored.setdefault(id(mat), []).append((idx, stmt_i, lo, hi))
            vals = val_ev(rt)
            if kind == "f":
                out = np.asarray(_as_f64(vals)).astype(np.float32)
            else:
                v64 = np.asarray(_as_f64(vals))
                if not np.all(np.isfinite(v64)):
                    raise _Bail("non-finite value for integer store")
                out = np.trunc(v64)
                if np.any(out < -2**31) or np.any(out >= 2**31):
                    raise _Bail("integer store out of int32 range")
                out = out.astype(np.int32)
            commits.append(
                lambda data=data, idx=idx, out=out: data.__setitem__(idx, out))

        accs: dict[int, int] = {}
        for stmt_i, acc_slot, op, ev in self.reductions:
            rt.stmt_i = stmt_i
            acc0 = frame[acc_slot]
            if not isinstance(acc0, float):
                raise _Bail("non-float accumulator")
            if acc_slot in accs:
                raise _Bail("two reductions on one accumulator")
            accs[acc_slot] = stmt_i
            e = ev(rt)
            if isinstance(e, np.ndarray):
                chain = np.concatenate(([acc0], _as_f64(e)))
            else:
                chain = np.concatenate(
                    ([acc0], np.full(n, np.float64(e), dtype=np.float64)))
            # cumsum/cumprod accumulate strictly left-to-right on f64,
            # reproducing the scalar fold's rounding exactly (IEEE-754
            # + and * are commutative, so `acc = E op acc` folds the same)
            total = float(np.cumsum(chain)[-1] if op == "+"
                          else np.cumprod(chain)[-1])
            commits.append(
                lambda frame=frame, s=acc_slot, t=total:
                    frame.__setitem__(s, t))

        # Aliasing: a load from a stored matrix is safe when it reads
        # exactly the elements some statement writes *and* textually
        # precedes that store (read-then-write per index; all loads
        # happen before any commit, matching scalar order), or when its
        # index set is provably disjoint from every store's (interval
        # separation first, exact membership scan as the backstop).
        for mat, lidx, l_stmt in rt.loads:
            for sidx, s_stmt, slo, shi in stored.get(id(mat), ()):
                if lidx.shape == sidx.shape and np.array_equal(lidx, sidx):
                    if l_stmt > s_stmt:
                        raise _Bail("load aliases a stored matrix")
                    continue
                if lidx.size == 0:
                    continue
                if int(lidx.max()) < slo or shi < int(lidx.min()):
                    continue
                if not np.isin(lidx, sidx).any():
                    continue
                raise _Bail("load aliases a stored matrix")
        return commits


# --------------------------------------------------------------------------
# Compile-time matching
# --------------------------------------------------------------------------


def _refs_var(node, name: str) -> bool:
    if not isinstance(node, Node):
        return False
    if node.prod == "var" and node.children[0] == name:
        return True
    return any(_refs_var(c, name) for c in node.children)


def _stmt_list(node: Node, out: list[Node]) -> None:
    """Flatten block/seq structure into a statement list (any kinds)."""
    from repro.cminus.absyn import node_cons_to_list

    if node.prod in ("block", "seqStmt"):
        for s in node_cons_to_list(node.children[0]):
            _stmt_list(s, out)
    else:
        out.append(node)


def _flatten_body(node: Node, out: list[Node]) -> bool:
    stmts: list[Node] = []
    _stmt_list(node, stmts)
    for s in stmts:
        if s.prod != "exprStmt":
            return False
        out.append(s.children[0])
    return True


def _build_ev(fc, node, var_names):
    """Expression -> evaluator closure ``rt -> scalar | ndarray``, or
    None when the expression is outside the vectorizable language.
    All frame slots are resolved here, at compile time; loop variables
    (``var_names``) evaluate to their flattened index vectors."""
    if not isinstance(node, Node):
        return None
    p = node.prod
    ch = node.children
    if p == "intLit":
        v = ch[0]
        return lambda rt: v
    if p == "floatLit":
        v = float(np.float32(ch[0]))
        return lambda rt: v
    if p == "boolLit":
        v = int(ch[0])
        return lambda rt: v
    if p == "var":
        if ch[0] in var_names:
            name = ch[0]
            return lambda rt: rt.ivs[name]
        slot = fc.lookup(ch[0])
        if slot is None:
            return None
        return lambda rt: rt.frame[slot]
    if p == "binop":
        op = ch[0]
        a = _build_ev(fc, ch[1], var_names)
        b = _build_ev(fc, ch[2], var_names)
        if a is None or b is None:
            return None
        if op == "+":
            return lambda rt: a(rt) + b(rt)
        if op == "-":
            return lambda rt: a(rt) - b(rt)
        if op == "*":
            return lambda rt: a(rt) * b(rt)
        if op == "/":
            def div(rt, a=a, b=b):
                x, y = a(rt), b(rt)
                if _is_intlike(x) and _is_intlike(y):
                    raise _Bail("integer division")  # c_div truncation
                if isinstance(y, np.ndarray):
                    if np.any(y == 0):
                        raise _Bail("zero in divisor vector")
                elif y == 0:
                    raise _Bail("zero divisor")
                return _as_f64(x) / _as_f64(y)
            return div
        if op in ("<", "<=", ">", ">=", "==", "!="):
            import operator
            f = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
                 ">=": operator.ge, "==": operator.eq, "!=": operator.ne}[op]

            def cmp(rt, a=a, b=b, f=f):
                r = f(a(rt), b(rt))
                if isinstance(r, np.ndarray):
                    return r.astype(np.int64)
                return int(r)
            return cmp
        return None  # %, &&, || : scalar semantics too subtle
    if p == "unop":
        v = _build_ev(fc, ch[1], var_names)
        if v is None:
            return None
        if ch[0] == "-":
            return lambda rt: -v(rt)

        def unot(rt, v=v):
            r = v(rt)
            if isinstance(r, np.ndarray):
                return (r == 0).astype(np.int64)
            return int(not r)
        return unot
    if p == "castE":
        from repro.cexec.bytecode import cast_kind

        v = _build_ev(fc, ch[1], var_names)
        if v is None:
            return None
        kind = cast_kind(ch[0])
        if kind is None:
            return v
        if kind == "int":
            def toint(rt, v=v):
                r = v(rt)
                if isinstance(r, np.ndarray):
                    if r.dtype.kind in "iub":
                        return r.astype(np.int64)
                    if not np.all(np.isfinite(r)):
                        raise _Bail("int cast of non-finite")
                    return np.trunc(r).astype(np.int64)
                return int(r)
            return toint

        def tof32(rt, v=v):
            r = v(rt)
            if isinstance(r, np.ndarray):
                return r.astype(np.float32).astype(np.float64)
            return float(np.float32(r))
        return tof32
    if p == "call":
        return _build_call_ev(fc, node, var_names)
    return None


def _build_call_ev(fc, node: Node, var_names):
    from repro.cminus.absyn import node_cons_to_list

    name = node.children[0]
    args = node_cons_to_list(node.children[1])
    if name in ("rt_getf", "rt_geti"):
        if len(args) != 2 or args[0].prod != "var" \
                or args[0].children[0] in var_names:
            return None
        mslot = fc.lookup(args[0].children[0])
        idx_ev = _build_ev(fc, args[1], var_names)
        if mslot is None or idx_ev is None:
            return None
        want = "f" if name == "rt_getf" else "i"

        def load(rt, mslot=mslot, idx_ev=idx_ev, want=want):
            mat = rt.frame[mslot]
            data = getattr(mat, "data", None)
            if not isinstance(data, np.ndarray):
                raise _Bail("load source is not a matrix")
            idx = _index_array(idx_ev(rt), rt.n)
            size = data.size
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= size):
                raise _Bail("load index out of range")
            rt.loads.append((mat, idx, rt.stmt_i))
            got = data[idx]
            return got.astype(np.float64) if want == "f" \
                else got.astype(np.int64)
        return load
    if name == "rt_size":
        if len(args) != 1 or args[0].prod != "var" \
                or args[0].children[0] in var_names:
            return None
        mslot = fc.lookup(args[0].children[0])
        if mslot is None:
            return None

        def size(rt, mslot=mslot):
            mat = rt.frame[mslot]
            if not isinstance(getattr(mat, "data", None), np.ndarray):
                raise _Bail("rt_size of a non-matrix")
            return mat.size
        return size
    if name == "rt_dim":
        if len(args) != 2 or args[0].prod != "var" \
                or args[0].children[0] in var_names:
            return None
        mslot = fc.lookup(args[0].children[0])
        d_ev = _build_ev(fc, args[1], ())  # dim index must be invariant
        if mslot is None or d_ev is None \
                or any(_refs_var(args[1], v) for v in var_names):
            return None

        def dim(rt, mslot=mslot, d_ev=d_ev):
            mat = rt.frame[mslot]
            if not isinstance(getattr(mat, "data", None), np.ndarray):
                raise _Bail("rt_dim of a non-matrix")
            return int(mat.dims[int(d_ev(rt))])
        return dim
    return None


def _affine_form(fc, node, var_names):
    """Recognize ``c0 + Σ coeff·v`` over the loop variables with
    loop-invariant integer coefficients.  Returns ``(const_ev,
    {var: coeff_ev})`` — closures ``rt -> int`` that raise :class:`_Bail`
    on non-integer runtime values — or None when the expression is not
    (recognizably) affine.  The matched sub-language is division-free,
    so the vectorized evaluation distributes exactly like the scalar
    one.  The walk itself lives in :mod:`repro.ir.affine` (shared with
    the strength reducer) instantiated over the closure ring; this
    wrapper only supplies the tree predicates and the frame-slot atom."""
    from repro.cexec.bytecode import cast_kind
    from repro.ir.affine import ClosureRing, tree_affine

    def atom(nm):
        slot = fc.lookup(nm)
        if slot is None:
            return None

        def inv(rt, slot=slot):
            x = rt.frame[slot]
            if isinstance(x, np.ndarray) or not _is_intlike(x):
                raise _Bail("non-integer affine term")
            return int(x)
        return inv

    return tree_affine(node, var_names, ClosureRing, atom=atom,
                       refs_var=_refs_var, cast_kind_of=cast_kind,
                       is_node=lambda n: isinstance(n, Node))


def _match_reduction(fc, e: Node, var_names):
    """``acc = acc (+|*) E`` / ``acc = E (+|*) acc`` with a non-loop-var
    scalar accumulator E does not mention.  Returns (acc_name, acc_slot,
    op, ev) or None."""
    if e.prod != "assign" or e.children[0].prod != "var":
        return None
    acc = e.children[0].children[0]
    rhs = e.children[1]
    if acc in var_names or rhs.prod != "binop" \
            or rhs.children[0] not in ("+", "*"):
        return None
    op, lhs_n, rhs_n = rhs.children
    if lhs_n.prod == "var" and lhs_n.children[0] == acc:
        other = rhs_n
    elif rhs_n.prod == "var" and rhs_n.children[0] == acc:
        other = lhs_n
    else:
        return None
    if _refs_var(other, acc):
        return None
    slot = fc.lookup(acc)
    ev = _build_ev(fc, other, var_names)
    if slot is None or ev is None:
        return None
    return acc, slot, op, ev


# Bound expressions may be re-evaluated by the scalar loops (limits every
# iteration, inner-loop starts every outer iteration); the fast path
# reads them once, so they must be provably unchanged by the body:
# literals, plain variables (checked against accumulators), and
# rt_size/rt_dim (matrix *shapes* are immutable, only data mutates).
_LIMIT_PRODS = frozenset(["intLit", "var", "binop", "unop", "castE"])


def _limit_ok(node: Node) -> bool:
    if not isinstance(node, Node):
        return True
    if node.prod == "call":
        if node.children[0] not in ("rt_size", "rt_dim"):
            return False
        from repro.cminus.absyn import node_cons_to_list

        return all(_limit_ok(a) for a in node_cons_to_list(node.children[1]))
    if node.prod not in _LIMIT_PRODS:
        return False
    return all(_limit_ok(c) for c in node.children if isinstance(c, Node))


def _parse_header(node: Node):
    """Match one ``for (long v = start; v (<|<=) limit; v = v + c)``
    header with a positive integer-literal step.  Returns ``(var_name,
    start_node, limit_node, step, inclusive, body_node)`` or None."""
    init, cond, step, body = node.children
    if init.prod != "forDecl":
        return None
    var_name = init.children[1]
    if cond.prod != "binop" or cond.children[0] not in ("<", "<=") \
            or cond.children[1].prod != "var" \
            or cond.children[1].children[0] != var_name:
        return None
    inclusive = cond.children[0] == "<="
    limit_node = cond.children[2]
    if step.prod != "assign" or step.children[0].prod != "var" \
            or step.children[0].children[0] != var_name:
        return None
    s_rhs = step.children[1]
    if s_rhs.prod != "binop" or s_rhs.children[0] != "+":
        return None
    a, b = s_rhs.children[1], s_rhs.children[2]
    c = None
    if a.prod == "var" and a.children[0] == var_name and b.prod == "intLit":
        c = int(b.children[0])
    elif b.prod == "var" and b.children[0] == var_name and a.prod == "intLit":
        c = int(a.children[0])
    if c is None or c < 1:
        return None
    start_node = init.children[2]
    if _refs_var(start_node, var_name) or _refs_var(limit_node, var_name):
        # forDecl init reads the *outer* binding of the same name in the
        # scalar compiler; too confusing to mirror — fall back.
        return None
    return var_name, start_node, limit_node, c, inclusive, body


class _SlotRecorder:
    """Proxy over the function compiler that records every frame slot a
    plan's evaluator closures capture — the IR optimizer must keep
    exactly those slots live-and-in-place across the ``fastloop``."""

    __slots__ = ("_fc", "seen")

    def __init__(self, fc):
        self._fc = fc
        self.seen: set[int] = set()

    def lookup(self, name: str):
        s = self._fc.lookup(name)
        if s is not None:
            self.seen.add(s)
        return s


def try_fast_loop(fc, node: Node) -> Plan | None:
    """Match ``forStmt`` against the vectorizable pattern — a single
    loop or a rectangular nest (up to 3-D); None = no plan (the scalar
    loop runs alone; an inner loop of an unmatched nest still gets its
    own plan when the scalar body compiles it).  Called with the
    *enclosing* scope active — loop variables are never frame slots on
    this path."""
    hdr = _parse_header(node)
    if hdr is None:
        return None
    fc = _SlotRecorder(fc)
    v1, start1, limit1, step1, incl1, body = hdr
    if not _limit_ok(limit1):
        return None
    loops_src = [(v1, start1, limit1, step1, incl1)]
    # Rectangular nest: each level's body is exactly one inner for whose
    # bounds are invariant across the whole nest (up to 3-D; the affine
    # injectivity proof in nest_injective handles any depth, the cap
    # just bounds compile-time matching).
    while len(loops_src) < 3:
        nest_stmts: list[Node] = []
        _stmt_list(body, nest_stmts)
        if len(nest_stmts) != 1 or nest_stmts[0].prod != "forStmt":
            break
        hdr_in = _parse_header(nest_stmts[0])
        if hdr_in is None:
            return None
        v2, start2, limit2, step2, incl2, body2 = hdr_in
        outer_vars = [v for v, *_ in loops_src]
        if v2 in outer_vars \
                or any(_refs_var(start2, v) or _refs_var(limit2, v)
                       for v in outer_vars) \
                or not _limit_ok(start2) or not _limit_ok(limit2):
            return None
        loops_src.append((v2, start2, limit2, step2, incl2))
        body = body2
    var_names = tuple(v for v, *_ in loops_src)

    loops = []
    for v, start_node, limit_node, stp, incl in loops_src:
        start_ev = _build_ev(fc, start_node, ())
        limit_ev = _build_ev(fc, limit_node, ())
        if start_ev is None or limit_ev is None:
            return None
        loops.append((v, start_ev, limit_ev, stp, incl))
    # Bounds the scalar path re-evaluates mid-nest must not read an
    # accumulator (stale pre-loop state on the fast path); the outer
    # start is evaluated once on both paths, so it is exempt.
    reeval_bounds = [limit1]
    for _, s2, l2, _, _ in loops_src[1:]:
        reeval_bounds.extend((s2, l2))

    stmts: list[Node] = []
    if not _flatten_body(body, stmts) or not stmts:
        return None
    stores, reductions = [], []
    acc_names: list[str] = []
    store_val_nodes: list[Node] = []
    for i, e in enumerate(stmts):
        if e.prod == "call" and e.children[0] in ("rt_setf", "rt_seti"):
            from repro.cminus.absyn import node_cons_to_list

            args = node_cons_to_list(e.children[1])
            if len(args) != 3 or args[0].prod != "var" \
                    or args[0].children[0] in var_names:
                return None
            mslot = fc.lookup(args[0].children[0])
            idx_ev = _build_ev(fc, args[1], var_names)
            val_ev = _build_ev(fc, args[2], var_names)
            if mslot is None or idx_ev is None or val_ev is None:
                return None
            kind = "f" if e.children[0] == "rt_setf" else "i"
            affine = _affine_form(fc, args[1], var_names)
            stores.append((i, kind, mslot, idx_ev, val_ev, affine))
            store_val_nodes.append(args[1])
            store_val_nodes.append(args[2])
            continue
        red = _match_reduction(fc, e, var_names)
        if red is None:
            return None
        acc, slot, op, ev = red
        reductions.append((i, slot, op, ev))
        acc_names.append(acc)
        store_val_nodes.append(e.children[1])
    # Any accumulator read outside its own fold (in a store value/index,
    # another reduction, or a re-evaluated bound) sees stale pre-loop
    # state on the fast path — bail at compile time.
    for acc in acc_names:
        if any(_refs_var(bn, acc) for bn in reeval_bounds):
            return None
        if sum(1 for n_ in store_val_nodes if _refs_var(n_, acc)) \
                > acc_names.count(acc):
            return None
    if len(set(acc_names)) != len(acc_names):
        return None
    plan = Plan(loops, stores, reductions)
    plan.read_slots = frozenset(fc.seen)
    plan.write_slots = frozenset(slot for _i, slot, _op, _ev in reductions)
    return plan
