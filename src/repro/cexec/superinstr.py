"""Profile-guided superinstructions for the bytecode VM (S29).

The S28 optimizer shrinks the dynamic instruction *stream*; this module
shrinks the number of *dispatches* the stream costs.  A corpus profile
(``reproc --profile``, opcode-pair/triple histograms over the shipped
fig1/4/8/9 + mandelbrot programs) selects hot adjacent opcode shapes;
:func:`fuse` then rewrites each compiled :class:`Code` as a peephole
pass **after** the IR pipeline, replacing every table-selected adjacent
group with one ``("si", parts, dead)`` pseudo-instruction.  The VM binds
an ``si`` to a *single* closure, generated and compiled once per
distinct shape from straight-line Python source, so one dispatch retires
two or three constituent instructions — and when a constituent's
destination slot is provably read only inside the group, its frame-slot
write is skipped entirely and the value flows through a Python local.

Soundness notes
---------------
* Fusion runs on the final linearized bytecode, so ``repro.ir`` (and its
  verifier) never see ``si`` opcodes; the unfused stream stays available
  via ``BytecodeProgram.code_for`` for the hazard/call-graph analyses.
* A group never *contains* a jump target: control cannot enter between
  two fused constituents, which is exactly what makes the dead-store
  skip and local forwarding sound.
* Unconditional transfers (``jmp``/``ret``) may only close a group; a
  conditional branch may sit anywhere, compiling to an early ``return``
  out of the closure, so the taken path still costs exactly one dispatch
  while the fall-through path keeps retiring constituents.  Trapping
  constituents (division, matrix access) are fine in any position — a
  trap aborts the whole frame, so a partially-executed group is
  indistinguishable from a partially-executed unfused sequence.
* Quickenable sites (``call``, division/modulo) are left unfused so the
  VM's in-place rewriting (quickening, inline caches) still applies.
"""

from __future__ import annotations

from repro.cexec.bytecode import Code
from repro.cexec.interp import c_div, c_mod

import numpy as np

# Opcodes legal in a non-tail position of a group: always fall through,
# and have a pure-Python statement form `_gen_part` knows how to emit.
# "/", "%" and "call" are deliberately absent (they quicken instead);
# "intr"/"pool"/"spawn"/"sync"/"fastloop"/"rc_*" never fuse.
STRAIGHT_OPS = frozenset([
    "const", "move", "+", "-", "*", "<", "<=", ">", ">=", "==", "!=",
    "neg", "not", "bool", "cast_int", "cast_f32",
    "rt_getf", "rt_geti", "rt_setf", "rt_seti", "rt_dim", "rt_size",
    "tget", "tuple",
])

# Additionally legal as the *last* constituent of a group.
TAIL_OPS = STRAIGHT_OPS | frozenset(["jmp", "jz", "jnz", "ret", "ret_none"])

# Legal in a *non-final* position: straight-line opcodes plus the
# conditional branches, which compile to an early ``return`` out of the
# fused closure.  The taken path costs exactly the one dispatch it
# always did; the fall-through path keeps retiring constituents — this
# is what collapses short-circuit diamonds (`a && b`) into one closure.
MID_OPS = STRAIGHT_OPS | frozenset(["jz", "jnz"])

# Opcodes the VM quickens in place (see repro.cexec.vm) — excluded from
# fusion so the self-rewriting closures still apply; exported here so
# the disassembler can mark them without importing the VM.
QUICKEN_OPS = frozenset(
    ["call", "/", "%", "rt_getf", "rt_setf", "rt_geti", "rt_seti"])

_JUMPS = ("jmp", "jz", "jnz", "fastloop")


def _reads(ins: tuple) -> tuple:
    """Frame slots this instruction reads (conservative, exact for every
    opcode the compiler emits)."""
    op = ins[0]
    if op == "const":
        return ()
    if op in ("move", "neg", "not", "bool", "cast_int", "cast_f32"):
        return (ins[2],)
    if op in ("+", "-", "*", "/", "%",
              "<", "<=", ">", ">=", "==", "!="):
        return (ins[2], ins[3])
    if op in ("rt_getf", "rt_geti", "rt_dim"):
        return (ins[2], ins[3])
    if op in ("rt_setf", "rt_seti"):
        return (ins[1], ins[2], ins[3])
    if op == "rt_size":
        return (ins[2],)
    if op in ("rc_inc", "rc_dec"):
        return (ins[1],)
    if op in ("intr", "call", "spawn"):
        return tuple(ins[3])
    if op == "pool":
        return (ins[2], *ins[3])
    if op == "tuple":
        return tuple(ins[2])
    if op == "tget":
        return (ins[2],)
    if op in ("jz", "jnz"):
        return (ins[1],)
    if op == "ret":
        return (ins[1],)
    return ()  # jmp, sync, ret_none, fastloop (plan slots handled apart)


def _dest(ins: tuple) -> int | None:
    """The synchronously-written destination slot, or None."""
    op = ins[0]
    if op in ("const", "move", "neg", "not", "bool", "cast_int",
              "cast_f32", "+", "-", "*", "/", "%", "<", "<=", ">", ">=",
              "==", "!=", "rt_getf", "rt_geti", "rt_dim", "rt_size",
              "intr", "call", "tuple", "tget"):
        return ins[1]
    return None


# -- fusion pass --------------------------------------------------------------


# Longest run of constituents one fused closure may retire.  Groups are
# built by chaining hot profile pairs, so the cap only bounds code-object
# size per shape — semantics are length-independent.
MAX_GROUP = 12


def fuse(code: Code, pairs: frozenset, triples: frozenset) -> tuple[Code, int]:
    """Rewrite one function's bytecode, fusing table-selected adjacent
    groups into ``("si", parts, dead)`` pseudo-instructions.  Returns the
    (possibly new) :class:`Code` and the number of groups formed.

    Selection is a chain rule over the profile tables: a group grows
    while each consecutive opcode link is a hot pair (links contributed
    by hot triples count too), every non-final constituent is straight-
    line, and no constituent after the first is a jump target.  Chaining
    lets two hot overlapping shapes fuse a whole basic-block run — e.g.
    the mandelbrot escape body collapses to one dispatch — while cold
    adjacencies keep their individual closures."""
    instrs = code.instrs
    n = len(instrs)
    if n < 2 or not (pairs or triples):
        return code, 0
    links = set(pairs)
    for t in triples:
        links.add((t[0], t[1]))
        links.add((t[1], t[2]))

    # Slot read map for the dead-intermediate analysis.  -1 marks a slot
    # as read "somewhere we cannot see": slot 0 (the return value), and
    # every slot a fastloop plan touches behind the VM's back.
    reads: dict[int, set[int]] = {0: {-1}}
    targets: set[int] = set()
    for idx, ins in enumerate(instrs):
        for s in _reads(ins):
            reads.setdefault(s, set()).add(idx)
        op = ins[0]
        if op in _JUMPS:
            targets.add(ins[-1])
            if op == "fastloop":
                plan = ins[1]
                for s in (set(getattr(plan, "read_slots", ()))
                          | set(getattr(plan, "write_slots", ()))):
                    reads.setdefault(s, set()).add(-1)
        elif op == "spawn" and ins[1] is not None:
            # The spawn target is written asynchronously after the
            # instruction retires; treat it as observed everywhere.
            reads.setdefault(ins[1], set()).add(-1)

    # Pass 1: choose groups greedily left-to-right by chaining hot links.
    groups: list[tuple[int, int]] = []  # (start, length)
    new_of_old: dict[int, int] = {}
    out_len = 0
    i = 0
    while i < n:
        length = 1
        if instrs[i][0] in MID_OPS:
            while (length < MAX_GROUP and i + length < n
                   and i + length not in targets
                   and (instrs[i + length - 1][0],
                        instrs[i + length][0]) in links
                   and instrs[i + length][0] in TAIL_OPS):
                length += 1
                # An unconditional transfer closes the group; a mid
                # jz/jnz becomes an early return and chaining goes on.
                if instrs[i + length - 1][0] not in MID_OPS:
                    break
        new_of_old[i] = out_len
        groups.append((i, length))
        out_len += 1
        i += length
    new_of_old[n] = out_len
    if all(length == 1 for _s, length in groups):
        return code, 0

    def remap(t: int) -> int:
        return new_of_old[t]

    # Pass 2: materialize, remapping every jump target (targets are
    # never mid-group, so the map is total on them).
    out: list[tuple] = []
    fused = 0
    for start, length in groups:
        if length == 1:
            ins = instrs[start]
            if ins[0] in _JUMPS:
                ins = ins[:-1] + (remap(ins[-1]),)
            out.append(ins)
            continue
        fused += 1
        parts = []
        dead = []
        for j in range(length):
            ins = instrs[start + j]
            if ins[0] in _JUMPS:
                ins = ins[:-1] + (remap(ins[-1]),)
            parts.append(ins)
            d = _dest(ins)
            if d is None:
                dead.append(False)
                continue
            # Dead outside the group: every read of slot d anywhere in
            # the function happens at a *later* constituent of this
            # group (conservative: slot-level, not def-level).
            in_group_later = set(range(start + j + 1, start + length))
            dead.append(reads.get(d, set()) <= in_group_later)
        out.append(("si", tuple(parts), tuple(dead)))
    new = Code(code.name, code.params, code.nregs, out)
    return new, fused


# -- fused-closure code generation -------------------------------------------

_FN_CACHE: dict[str, object] = {}

_CMP = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!="}

_GLOBALS = {"c_div": c_div, "c_mod": c_mod, "f32": np.float32}


def _gen_expr(ins: tuple, R) -> str:
    """The value expression of a dest-producing constituent."""
    op = ins[0]
    if op == "const":
        return repr(ins[2])
    if op == "move":
        return R(ins[2])
    if op in ("+", "-", "*"):
        return f"({R(ins[2])} {op} {R(ins[3])})"
    if op in _CMP:
        return f"int({R(ins[2])} {op} {R(ins[3])})"
    if op == "neg":
        return f"(-{R(ins[2])})"
    if op == "not":
        return f"int(not {R(ins[2])})"
    if op == "bool":
        return f"int(bool({R(ins[2])}))"
    if op == "cast_int":
        return f"int({R(ins[2])})"
    if op == "cast_f32":
        return f"float(f32({R(ins[2])}))"
    if op == "rt_getf":
        return f"float({R(ins[2])}.data[int({R(ins[3])})])"
    if op == "rt_geti":
        return f"int({R(ins[2])}.data[int({R(ins[3])})])"
    if op == "rt_dim":
        return f"int({R(ins[2])}.dims[int({R(ins[3])})])"
    if op == "rt_size":
        return f"{R(ins[2])}.size"
    if op == "tget":
        return f"{R(ins[2])}[{ins[3]}]"
    if op == "tuple":
        inner = ", ".join(R(r) for r in ins[2])
        return f"({inner},)" if len(ins[2]) == 1 else f"({inner})"
    raise AssertionError(f"no expression form for {op!r}")


def gen_source(parts: tuple, dead: tuple, nxt: int, end: int) -> str:
    """Straight-line Python source for one fused group.

    Frame reads go through ``f[slot]``; a constituent whose destination
    is dead outside the group materializes as a local instead of a
    frame write (and live values that are re-read inside the group are
    forwarded through a local as well, saving the list index)."""
    loc: dict[int, str] = {}   # slot -> live local name
    body: list[str] = []
    ntmp = 0

    def R(slot: int) -> str:
        return loc.get(slot, f"f[{slot}]")

    last = len(parts) - 1
    for j, ins in enumerate(parts):
        op = ins[0]
        later = parts[j + 1:]
        if op in ("rt_setf", "rt_seti"):
            cast = "f32" if op == "rt_setf" else "int"
            body.append(f"{R(ins[1])}.data[int({R(ins[2])})]"
                        f" = {cast}({R(ins[3])})")
            continue
        if op == "jmp":
            body.append(f"return {ins[1]}")
            continue
        if op in ("jz", "jnz"):
            c = R(ins[1])
            t = ins[2]
            if j == last:
                if op == "jz":
                    body.append(f"return {nxt} if {c} else {t}")
                else:
                    body.append(f"return {t} if {c} else {nxt}")
            elif op == "jz":
                body.append(f"if not {c}: return {t}")
            else:
                body.append(f"if {c}: return {t}")
            continue
        if op == "ret":
            body.append(f"f[0] = {R(ins[1])}")
            body.append(f"return {end}")
            continue
        if op == "ret_none":
            body.append("f[0] = None")
            body.append(f"return {end}")
            continue

        d = _dest(ins)
        expr = _gen_expr(ins, R)
        if d is None:  # pragma: no cover - every remaining op has a dest
            body.append(expr)
            continue
        if op in _CMP and dead[j] and all(
                d not in _reads(m) or m[0] in ("jz", "jnz")
                for m in later):
            # Truthiness of the raw comparison equals the int-wrapped
            # form; when it only feeds branches, skip the int().
            expr = f"({R(ins[2])} {_CMP[op]} {R(ins[3])})"
        read_later = any(d in _reads(m) for m in later)
        if read_later:
            name = f"t{ntmp}"
            ntmp += 1
            body.append(f"{name} = {expr}")
            if not dead[j]:
                body.append(f"f[{d}] = {name}")
            loc[d] = name
        elif dead[j]:
            # Still evaluate (traps must fire), but skip the dead write.
            body.append(expr)
        else:
            body.append(f"f[{d}] = {expr}")
            loc.pop(d, None)
    if parts[last][0] not in ("jmp", "jz", "jnz", "ret", "ret_none"):
        body.append(f"return {nxt}")
    inner = "\n    ".join(body)
    helpers = [h for h in ("c_div", "c_mod", "f32")
               if h + "(" in inner]
    params = "".join(f", {h}={h}" for h in helpers)
    return f"def _si(f{params}):\n    {inner}\n"


def bind_super(ins: tuple, nxt: int, end: int):
    """Bind one ``("si", parts, dead)`` instruction to its closure.
    Functions are compiled once per distinct source (shapes repeat
    heavily across sites and programs) and are stateless, so the cache
    is shared by every VM."""
    _op, parts, dead = ins
    src = gen_source(parts, dead, nxt, end)
    fn = _FN_CACHE.get(src)
    if fn is None:
        ns: dict = dict(_GLOBALS)
        exec(compile(src, "<superinstr>", "exec"), ns)  # noqa: S102
        fn = _FN_CACHE[src] = ns["_si"]
    return fn


# -- selection ----------------------------------------------------------------


def select_table(hist: dict, *, max_pairs: int = 32, max_triples: int = 16,
                 min_share: float = 0.002) -> tuple[tuple, tuple]:
    """Derive a (pairs, triples) selection from a ``--profile`` histogram
    dict: fusable shapes covering at least ``min_share`` of all dynamic
    dispatches, hottest first."""
    total = max(1, int(hist.get("dispatches", 0)))

    def pick(kind: str, width: int, cap: int) -> tuple:
        rows = []
        for key, count in (hist.get(kind) or {}).items():
            ops = tuple(key.split("|"))
            if len(ops) != width or count / total < min_share:
                continue
            if not all(o in MID_OPS for o in ops[:-1]):
                continue
            if ops[-1] not in TAIL_OPS:
                continue
            rows.append((count, ops))
        rows.sort(key=lambda r: (-r[0], r[1]))
        return tuple(ops for _c, ops in rows[:cap])

    return pick("pairs", 2, max_pairs), pick("triples", 3, max_triples)


def merge_histograms(hists: list[dict]) -> dict:
    out: dict = {"dispatches": 0, "pairs": {}, "triples": {}, "by_op": {}}
    for h in hists:
        out["dispatches"] += int(h.get("dispatches", 0))
        for kind in ("pairs", "triples", "by_op"):
            for k, v in (h.get(kind) or {}).items():
                out[kind][k] = out[kind].get(k, 0) + v
    return out


# -- shipped-table regeneration (python -m repro.cexec.superinstr) ------------


def corpus_histograms() -> list[dict]:
    """Profile the shipped corpus (fig1/4/8/9 + mandelbrot) at small,
    deterministic sizes and return the per-program histograms."""
    import tempfile

    from repro.cexec.interp import run_program
    from repro.programs import corpus_cases

    hists = []
    for name, source, exts, inputs, outs in corpus_cases():
        with tempfile.TemporaryDirectory(prefix="repro-prof-") as wd:
            _rc, _outs, _stats, ex = run_program(
                source, exts, inputs, workdir=wd,
                output_names=outs, nthreads=1, profile=True)
            hists.append(ex.profile_dump())
    return hists


def render_table(pairs: tuple, triples: tuple, provenance: str) -> str:
    import hashlib

    blob = repr((sorted(pairs), sorted(triples))).encode()
    version = "s29-" + hashlib.sha1(blob).hexdigest()[:10]
    lines = [
        '"""Superinstruction selection table — GENERATED, do not edit.',
        "",
        f"Provenance: {provenance}",
        "Regenerate: PYTHONPATH=src python -m repro.cexec.superinstr"
        " --write-table",
        '"""',
        "",
        f"TABLE_VERSION = {version!r}",
        "",
        "PAIRS = frozenset([",
    ]
    lines += [f"    {p!r}," for p in pairs]
    lines += ["])", "", "TRIPLES = frozenset(["]
    lines += [f"    {t!r}," for t in triples]
    lines += ["])", ""]
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse
    import json
    from pathlib import Path

    ap = argparse.ArgumentParser(
        prog="python -m repro.cexec.superinstr",
        description="Select the superinstruction table from --profile "
        "histograms (default: profile the shipped corpus in-process)")
    ap.add_argument("histograms", nargs="*",
                    help="JSON files from reproc --profile; when omitted "
                    "the shipped fig1/4/8/9+mandelbrot corpus is profiled")
    ap.add_argument("--write-table", action="store_true",
                    help="rewrite src/repro/cexec/superinstr_table.py")
    ap.add_argument("--max-pairs", type=int, default=32)
    ap.add_argument("--max-triples", type=int, default=16)
    ap.add_argument("--min-share", type=float, default=0.002)
    args = ap.parse_args(argv)

    if args.histograms:
        hists = [json.loads(Path(p).read_text()) for p in args.histograms]
        provenance = ", ".join(args.histograms)
    else:
        hists = corpus_histograms()
        provenance = ("fig1/fig4/fig8/fig9+mandelbrot corpus, "
                      "deterministic small inputs (seed 29)")
    merged = merge_histograms(hists)
    pairs, triples = select_table(
        merged, max_pairs=args.max_pairs, max_triples=args.max_triples,
        min_share=args.min_share)
    text = render_table(pairs, triples, provenance)
    if args.write_table:
        out = Path(__file__).with_name("superinstr_table.py")
        out.write_text(text)
        print(f"wrote {out} ({len(pairs)} pairs, {len(triples)} triples)")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
