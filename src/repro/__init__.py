"""repro — reproduction of *A Compiler Extension for Parallel Matrix
Programming* (Williams, Le, Kaminski, Van Wyk; ICPP 2014).

An extensible C translator: a CMINUS host language plus automatically
composable language extensions (MATLAB/SAC-style matrices with parallel
with-loops and matrixMap, tuples, reference-counting pointers, and explicit
loop transformations), together with the modular determinism and modular
well-definedness analyses that guarantee chosen extensions compose into a
working translator.  Extended C programs are checked for domain-specific
errors and lowered to plain parallel C (pthreads / SSE / OpenMP pragma).

Public entry points live in :mod:`repro.api`:

>>> from repro.api import compile_source, MATRIX
>>> result = compile_source("int main() { return 0; }", extensions=[MATRIX])
>>> print(result.c_source)  # doctest: +SKIP
"""

__version__ = "1.0.0"
