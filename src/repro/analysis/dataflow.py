"""Generic worklist dataflow solver over :class:`repro.analysis.cfg.CFG`.

Two classic formulations, both iterating to a fixpoint over reverse
postorder (forward) or postorder (backward):

* :func:`solve` — the lattice-join form: the client supplies a
  ``transfer(block, state) -> state`` function and a ``join``; states
  are opaque.  An optional ``widen`` hook is applied once a block has
  been re-processed ``widen_after`` times, which is how the interval
  domain of the shape pass guarantees termination on loops.
* :func:`solve_genkill` — the bit-vector form for gen/kill problems
  (reaching definitions, liveness): states are frozensets, the join is
  union (*may*) or intersection (*must*).

Both return per-block ``(state_in, state_out)`` pairs keyed by block id,
covering reachable blocks only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.analysis.cfg import CFG, Block


def _neighbors(cfg: CFG, backward: bool):
    """(predecessors, successors) id lists per block for the chosen
    direction — backward problems just flip the edges."""
    preds = {b.bid: [p for p in b.preds] for b in cfg.blocks}
    succs = {b.bid: [t for t, _ in b.succs] for b in cfg.blocks}
    return (succs, preds) if backward else (preds, succs)


def solve(
    cfg: CFG,
    transfer: Callable[[Block, object], object],
    *,
    join: Callable[[object, object], object],
    entry_state: object,
    init: object,
    direction: str = "forward",
    eq: Callable[[object, object], bool] | None = None,
    widen: Callable[[object, object], object] | None = None,
    widen_after: int = 3,
    edge: Callable[[Block, object, object], object] | None = None,
) -> dict[int, tuple[object, object]]:
    """Iterate ``transfer`` to a fixpoint; returns ``{bid: (in, out)}``.

    ``entry_state`` seeds the entry block (exit block when backward);
    ``init`` is the optimistic initial in-state of every other block —
    the first join overwrites it, so pass the lattice bottom.  ``transfer``
    must treat its input state as immutable.

    ``edge(pred_block, label, out_state)``, when given, refines a
    predecessor's out-state along one labeled CFG edge before the join
    (S30: the shape pass narrows intervals through the ``True``/
    ``False`` edges of branch and loop-header comparisons).  Forward
    direction only; the state must be treated as immutable.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"direction {direction!r}")
    backward = direction == "backward"
    if edge is not None and backward:
        raise ValueError("edge refinement is forward-only")
    eq = eq if eq is not None else (lambda a, b: a == b)
    preds, succs = _neighbors(cfg, backward)
    in_edges: dict[int, list] | None = None
    if edge is not None:
        in_edges = {b.bid: [] for b in cfg.blocks}
        for b in cfg.blocks:
            for t, lbl in b.succs:
                if t in in_edges:
                    in_edges[t].append((b.bid, lbl))

    order = cfg.rpo()
    if backward:
        order = list(reversed(order))
    pos = {bid: i for i, bid in enumerate(order)}
    start = cfg.exit if backward else cfg.entry

    state_in: dict[int, object] = {bid: init for bid in order}
    state_out: dict[int, object] = {}
    state_in[start] = entry_state
    visits: dict[int, int] = {bid: 0 for bid in order}

    from heapq import heappush, heappop
    work: list[int] = []
    queued: set[int] = set()
    for bid in order:
        heappush(work, pos[bid])
        queued.add(bid)

    while work:
        bid = order[heappop(work)]
        queued.discard(bid)
        ins = state_in[bid]
        # Recompute the in-state from the (direction-adjusted) preds so
        # a late-arriving contribution is never missed.
        if in_edges is None:
            contribs = [state_out[p] for p in preds[bid] if p in state_out]
        else:
            contribs = [edge(cfg.blocks[p], lbl, state_out[p])
                        for p, lbl in in_edges[bid] if p in state_out]
        if contribs:
            acc = contribs[0]
            for c in contribs[1:]:
                acc = join(acc, c)
            ins = join(ins, acc) if bid == start else acc
        visits[bid] += 1
        if widen is not None and visits[bid] > widen_after:
            ins = widen(state_in[bid], ins)
        state_in[bid] = ins
        out = transfer(cfg.blocks[bid], ins)
        old = state_out.get(bid)
        if old is not None and eq(old, out):
            continue
        state_out[bid] = out
        for s in succs[bid]:
            if s in pos and s not in queued:
                heappush(work, pos[s])
                queued.add(s)

    return {bid: (state_in[bid], state_out.get(bid, state_in[bid]))
            for bid in order}


@dataclass(frozen=True)
class GenKill:
    """Per-block facts for bit-vector problems."""

    gen: frozenset
    kill: frozenset

    def apply(self, state: frozenset) -> frozenset:
        return self.gen | (state - self.kill)


def solve_genkill(
    cfg: CFG,
    gk: dict[int, GenKill],
    *,
    direction: str = "forward",
    may: bool = True,
    boundary: frozenset = frozenset(),
    universe: frozenset | None = None,
) -> dict[int, tuple[frozenset, frozenset]]:
    """Union (may) / intersection (must) gen-kill fixpoint.

    ``boundary`` seeds the entry (exit when backward).  For *must*
    problems ``universe`` supplies the top element that initializes
    non-boundary blocks.
    """
    if not may and universe is None:
        raise ValueError("must-problems need an explicit universe")
    empty: frozenset = frozenset()
    top = empty if may else universe

    def join(a: Hashable, b: Hashable) -> frozenset:
        return (a | b) if may else (a & b)  # type: ignore[operator]

    def transfer(block: Block, state: object) -> object:
        facts = gk.get(block.bid)
        return facts.apply(state) if facts is not None else state

    return solve(
        cfg, transfer, join=join, entry_state=boundary, init=top,
        direction=direction,
    )  # type: ignore[return-value]
