"""Matrix shape & bounds analysis (S25 pass 2).

Forward interval propagation over the lowered trees: integer locals are
tracked as intervals, matrices as ``(kind, per-axis dimension
intervals, null-ness)`` descriptors seeded by the allocation and
``readMatrix`` intrinsics and refined by the rank/dimension guards the
matrix lowering already emits.  The pass then *statically evaluates*
every runtime guard and raw element access:

* ``rt_getf``/``rt_setf``/``rt_geti``/``rt_seti`` — flat index
  provably outside ``[0, size)``,
* ``rt_shape_check`` / ``rt_matmul_check`` / ``rt_require_dim`` /
  ``rt_bounds_check`` / ``rt_check_rank`` / ``rt_require_divisible`` —
  guard condition provably violated,
* ``rt_allocf``/``rt_alloci`` — provably negative dimension,
* any use of a matrix that is still provably NULL.

**Must-fail only**: a diagnostic is emitted only when *every*
concretization of the abstract state traps, so the pass reports errors
(these programs cannot run to completion) and is false-positive-free by
construction — over-approximation can only make it silent, never wrong.
Loops are handled by widening interval bounds to ±∞ after a few
iterations (:func:`repro.analysis.dataflow.solve`'s ``widen`` hook),
which trades loop-carried precision for termination; straight-line
constant shapes — the common case in matrix programs — stay exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import solve
from repro.cminus.absyn import node_cons_to_list
from repro.util.diagnostics import Diagnostics, SourceSpan

PHASE = "analysis.shape"

_INF = math.inf


@dataclass(frozen=True)
class Interval:
    lo: float
    hi: float
    # Symbolic provenance: a variable (or ``m.dimK`` pseudo-variable)
    # this value is *exactly equal to* at run time, when one is known.
    # Two TOP intervals with the same sym are still provably equal —
    # which is how the genarray guard ``hi <= dim`` is discharged when
    # both sides load the same loop bound.  Arithmetic, joins of
    # mismatching syms, and rebinding of the named variable (see
    # ``_Pass.bind``) all drop the sym; dropping is always sound.
    sym: str | None = None

    def __post_init__(self):
        assert self.lo <= self.hi

    @property
    def constant(self) -> int | None:
        if self.lo == self.hi and math.isfinite(self.lo):
            return int(self.lo)
        return None

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi),
                        self.sym if self.sym == other.sym else None)

    def widen(self, newer: "Interval") -> "Interval":
        return Interval(-_INF if newer.lo < self.lo else self.lo,
                        _INF if newer.hi > self.hi else self.hi,
                        self.sym if self.sym == newer.sym else None)


TOP_I = Interval(-_INF, _INF)
BOOL_I = Interval(0, 1)


def _iv(v: int) -> Interval:
    return Interval(v, v)


def _mul_bound(a: float, b: float) -> float:
    if a == 0 or b == 0:  # interval product: 0 * inf contributes 0
        return 0
    return a * b


def iv_add(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo + b.lo, a.hi + b.hi)


def iv_sub(a: Interval, b: Interval) -> Interval:
    return Interval(a.lo - b.hi, a.hi - b.lo)


def iv_mul(a: Interval, b: Interval) -> Interval:
    c = [_mul_bound(a.lo, b.lo), _mul_bound(a.lo, b.hi),
         _mul_bound(a.hi, b.lo), _mul_bound(a.hi, b.hi)]
    return Interval(min(c), max(c))


def iv_neg(a: Interval) -> Interval:
    return Interval(-a.hi, -a.lo)


def disjoint(a: Interval, b: Interval) -> bool:
    return a.hi < b.lo or b.hi < a.lo


@dataclass(frozen=True)
class MatVal:
    """Abstract matrix: element kind, per-axis dims, null-ness."""

    kind: str | None                       # "f" | "i" | None (unknown)
    dims: tuple[Interval, ...] | None      # None: unknown rank
    null: str = "no"                       # "yes" | "no" | "maybe"

    def join(self, other: "MatVal") -> "MatVal":
        kind = self.kind if self.kind == other.kind else None
        if (self.dims is not None and other.dims is not None
                and len(self.dims) == len(other.dims)):
            dims = tuple(a.join(b) for a, b in zip(self.dims, other.dims))
        else:
            dims = None
        null = self.null if self.null == other.null else "maybe"
        return MatVal(kind, dims, null)

    def widen(self, newer: "MatVal") -> "MatVal":
        if (self.dims is None or newer.dims is None
                or len(self.dims) != len(newer.dims)):
            return MatVal(newer.kind, None, newer.null)
        dims = tuple(a.widen(b) for a, b in zip(self.dims, newer.dims))
        return MatVal(newer.kind, dims, newer.null)

    def size(self) -> Interval:
        if self.dims is None:
            return Interval(0, _INF)
        acc = _iv(1)
        for d in self.dims:
            acc = iv_mul(acc, Interval(max(0, d.lo), d.hi))
        return acc


def fmt_interval(iv: Interval) -> str:
    c = iv.constant
    return str(c) if c is not None else "?"


def fmt_dims(m: MatVal) -> str:
    if m.dims is None:
        return "(?)"
    return "(" + ", ".join(fmt_interval(d) for d in m.dims) + ")"


# State: var name -> Interval | MatVal | ("tup", (vals...)).  A name
# missing from the state is TOP (unknown).


def _join_val(a, b):
    if isinstance(a, Interval) and isinstance(b, Interval):
        return a.join(b)
    if isinstance(a, MatVal) and isinstance(b, MatVal):
        return a.join(b)
    if (isinstance(a, tuple) and isinstance(b, tuple)
            and a[0] == b[0] == "tup" and len(a[1]) == len(b[1])):
        parts = tuple(
            _join_val(x, y) for x, y in zip(a[1], b[1]))
        if any(p is None for p in parts):
            return None
        return ("tup", parts)
    return None  # mismatched kinds -> TOP


def join_states(a: dict, b: dict) -> dict:
    out = {}
    for k, v in a.items():
        w = b.get(k)
        if w is None:
            continue
        j = _join_val(v, w)
        if j is not None:
            out[k] = j
    return out


def widen_states(old: dict, new: dict) -> dict:
    out = {}
    for k, v in new.items():
        w = old.get(k)
        if w is None:
            continue  # appeared late: give it up (ensures ascent)
        if isinstance(w, Interval) and isinstance(v, Interval):
            out[k] = w.widen(v)
        elif isinstance(w, MatVal) and isinstance(v, MatVal):
            out[k] = w.widen(v)
        # tuples and mismatches drop to TOP under widening
    return out


def _is_mat_type(type_node) -> bool:
    # "rt_mat *" yes; the mangled tuple types ("tup_rt_mat___i_i") no.
    return (type_node.prod == "tRaw"
            and str(type_node.children[0]).lstrip().startswith("rt_mat"))


def _real_span(span) -> bool:
    """Synthesized guard/temp nodes carry the default span; surface
    statements carry their original one."""
    if span is None:
        return False
    s = span.start
    return not (s.line == 1 and s.column == 0 and s.offset == 0)


def _find_span(node):
    """First real span in a (possibly rebuilt) subtree: rebuilt statement
    wrappers carry the default span, but surface sub-expressions keep
    their original ones."""
    if not hasattr(node, "prod"):
        return None
    if _real_span(getattr(node, "span", None)):
        return node.span
    for c in node.children:
        sp = _find_span(c)
        if sp is not None:
            return sp
    return None


class _Pass:
    def __init__(self, cfg: CFG, diags: Diagnostics | None):
        self.cfg = cfg
        self.diags = diags
        self.seen: set[tuple] = set()
        self.cur_span = None  # effective span of the item being replayed
        # ``rt_bounds_check`` call nodes (by identity) whose guard the
        # fixpoint proves can never fire: every concretization of the
        # (over-approximate) intervals satisfies lo >= 0 and hi <= dim.
        # Consumed by the bytecode compiler to discharge the guard
        # statically (:func:`proven_in_range`).
        self.proven: set[int] = set()

    # -- reporting -----------------------------------------------------------

    def report(self, message: str, span) -> None:
        if self.diags is None:
            return
        if not _real_span(span):
            span = self.cur_span
        where = span if span is not None else SourceSpan()
        key = (message, where.start.line, where.start.column)
        if key in self.seen:
            return
        self.seen.add(key)
        self.diags.error(message, where, PHASE)

    def require_alloc(self, val, argnode, span, what: str) -> None:
        if isinstance(val, MatVal) and val.null == "yes":
            name = (f" '{argnode.children[0]}'"
                    if argnode.prod == "var" else "")
            self.report(
                f"use of unallocated matrix{name} in {what}", span)

    # -- expressions ---------------------------------------------------------

    def expr(self, n, st: dict):
        p = n.prod
        ch = n.children
        if p == "intLit":
            return _iv(int(ch[0]))
        if p == "boolLit":
            return _iv(int(ch[0]))
        if p == "floatLit":
            return TOP_I
        if p == "strLit":
            return None
        if p == "rawExpr":
            if ch[0] == "NULL":
                return MatVal(None, None, "yes")
            return None
        if p == "var":
            v = st.get(ch[0])
            if v is None:
                # Unknown value, but still a nameable one: remember the
                # variable so later equality against another read of it
                # (or of a copy) can be discharged.
                return Interval(-_INF, _INF, sym=ch[0])
            if isinstance(v, Interval) and v.sym is None \
                    and v.constant is None:
                return replace(v, sym=ch[0])
            return v
        if p == "assign":
            v = self.expr(ch[1], st)
            if ch[0].prod == "var":
                self.bind(st, ch[0].children[0], v)
            else:
                self.expr(ch[0], st)
            return v
        if p == "binop":
            op = ch[0]
            a = self.expr(ch[1], st)
            b = self.expr(ch[2], st)
            if op in ("&&", "||") or op in ("<", "<=", ">", ">=",
                                           "==", "!="):
                return BOOL_I
            if isinstance(a, Interval) and isinstance(b, Interval):
                if op == "+":
                    return iv_add(a, b)
                if op == "-":
                    return iv_sub(a, b)
                if op == "*":
                    return iv_mul(a, b)
            return None  # /, % and non-interval operands: unknown
        if p == "unop":
            v = self.expr(ch[1], st)
            if ch[0] == "-" and isinstance(v, Interval):
                return iv_neg(v)
            if ch[0] == "!":
                return BOOL_I
            return None
        if p == "castE":
            v = self.expr(ch[1], st)
            if isinstance(v, Interval):
                # int() truncates toward zero, which is monotone; float
                # casts cannot move an exact integral bound.  The sym is
                # an *exact equality* witness, which truncation breaks.
                return replace(v, sym=None) if v.sym is not None else v
            return v
        if p == "call":
            return self.call(n, st)
        return None

    def bind(self, st: dict, name: str, val) -> None:
        # Rebinding invalidates every symbolic-equality witness that
        # names this variable (including the ``name.dimK`` pseudo-syms
        # of a matrix variable's axes).
        pref = name + "."

        def stale(s) -> bool:
            return s is not None and (s == name or s.startswith(pref))

        def scrub(v):
            if isinstance(v, Interval):
                return replace(v, sym=None) if stale(v.sym) else v
            if isinstance(v, MatVal) and v.dims is not None \
                    and any(stale(d.sym) for d in v.dims):
                return replace(v, dims=tuple(
                    replace(d, sym=None) if stale(d.sym) else d
                    for d in v.dims))
            if isinstance(v, tuple) and len(v) == 2 and v[0] == "tup":
                parts = tuple(scrub(x) for x in v[1])
                return v if all(a is b for a, b in zip(parts, v[1])) \
                    else ("tup", parts)
            return v

        for k in list(st):
            nv = scrub(st[k])
            if nv is not st[k]:
                st[k] = nv
        if val is None:
            st.pop(name, None)
        else:
            st[name] = val

    # -- intrinsic calls -----------------------------------------------------

    def call(self, n, st: dict):
        name = n.children[0]
        argnodes = node_cons_to_list(n.children[1])
        vals = [self.expr(a, st) for a in argnodes]
        span = n.span

        def mat(i) -> MatVal | None:
            v = vals[i] if i < len(vals) else None
            return v if isinstance(v, MatVal) else None

        def iv(i) -> Interval:
            v = vals[i] if i < len(vals) else None
            return v if isinstance(v, Interval) else TOP_I

        def lit(i) -> str | None:
            a = argnodes[i] if i < len(argnodes) else None
            return a.children[0] if a is not None and a.prod == "strLit" \
                else None

        if name in ("rt_allocf", "rt_alloci"):
            rank = iv(0).constant
            dims = None
            if rank is not None and 1 + rank <= len(vals):
                raw = [iv(1 + k) for k in range(rank)]
                for d in raw:
                    if d.hi < 0:
                        self.report(
                            "matrix allocated with a negative dimension "
                            f"({fmt_interval(d)})", span)
                dims = tuple(Interval(max(0, d.lo), max(0, d.hi), d.sym)
                             for d in raw)
            return MatVal("f" if name == "rt_allocf" else "i", dims, "no")

        if name == "readMatrix":
            return MatVal(None, None, "no")

        if name == "rt_check_rank":
            m = mat(0)
            rank = iv(1).constant
            want = None
            c = iv(2).constant
            if c is not None:
                want = "f" if c else "i"
            if m is not None and rank is not None:
                if m.dims is not None and len(m.dims) != rank:
                    self.report(
                        f"matrix has rank {len(m.dims)}, declared rank "
                        f"{rank}", span)
                elif m.kind is not None and want is not None \
                        and m.kind != want:
                    kinds = {"f": "float", "i": "int"}
                    self.report(
                        f"matrix holds {kinds[m.kind]} elements, declared "
                        f"{kinds[want]}", span)
                elif argnodes[0].prod == "var" and m.dims is None:
                    # The guard passed at run time implies this rank/kind:
                    # adopt it (this is how readMatrix results get shapes).
                    self.bind(st, argnodes[0].children[0],
                              MatVal(want or m.kind, (TOP_I,) * rank,
                                     m.null))
            return None

        if name == "rt_dim":
            m = mat(0)
            self.require_alloc(vals[0], argnodes[0], span, "dimSize")
            k = iv(1).constant
            # Pseudo-sym for the axis length itself: matrix shapes are
            # immutable after allocation, so two rt_dim reads through
            # the same still-bound variable are equal.  Invalidated when
            # the variable is rebound (``bind`` scrubs "m."-prefixed
            # syms).
            dsym = (f"{argnodes[0].children[0]}.dim{k}"
                    if k is not None and argnodes[0].prod == "var"
                    else None)
            if m is not None and m.dims is not None and k is not None:
                if 0 <= k < len(m.dims):
                    d = m.dims[k]
                    if d.sym is None and dsym is not None \
                            and d.constant is None:
                        return replace(d, sym=dsym)
                    return d
                if k >= len(m.dims) or k < 0:
                    self.report(
                        f"dimension axis {k} is out of range for a rank-"
                        f"{len(m.dims)} matrix", span)
            return Interval(0, _INF, sym=dsym)

        if name == "rt_size":
            m = mat(0)
            return m.size() if m is not None else Interval(0, _INF)

        if name in ("rt_getf", "rt_geti", "rt_setf", "rt_seti"):
            m = mat(0)
            self.require_alloc(vals[0], argnodes[0], span,
                               "matrix element access")
            idx = iv(1)
            if m is not None and m.null != "yes":
                size = m.size()
                if idx.hi < 0:
                    self.report(
                        "matrix index is always negative "
                        f"({fmt_interval(idx)})", span)
                elif idx.lo >= size.hi:
                    c = idx.constant
                    shown = (f"index {c}" if c is not None
                             else "index") + \
                        f" is out of bounds for {fmt_dims(m)} " \
                        f"(size {fmt_interval(size)})"
                    self.report(f"matrix {shown}", span)
            return TOP_I if name in ("rt_getf", "rt_geti") else None

        if name == "rt_bounds_check":
            lo, hi, dim = iv(0), iv(1), iv(2)
            what = lit(3) or "index"
            if lo.hi < 0:
                self.report(
                    f"{what} lower bound is always negative "
                    f"({fmt_interval(lo)})", span)
            elif hi.lo > dim.hi:
                self.report(
                    f"{what} range end {fmt_interval(hi)} always exceeds "
                    f"dimension {fmt_interval(dim)}", span)
            elif lo.lo >= 0 and (hi.hi <= dim.lo
                                 or (hi.sym is not None
                                     and hi.sym == dim.sym)):
                # Must-pass: the over-approximate intervals (or an exact
                # symbolic equality hi == dim) already satisfy the
                # guard, so every concrete run does too.
                self.proven.add(id(n))
            return None

        if name == "rt_require_dim":
            m = mat(0)
            self.require_alloc(vals[0], argnodes[0], span,
                               "a shape requirement")
            d = iv(1).constant
            want = iv(2)
            if m is not None and m.dims is not None and d is not None \
                    and 0 <= d < len(m.dims):
                if disjoint(m.dims[d], want):
                    self.report(
                        f"dimension {d} is {fmt_interval(m.dims[d])}, "
                        f"required to be {fmt_interval(want)}", span)
                elif argnodes[0].prod == "var":
                    got = m.dims[d]
                    # The guard passing means dims[d] == want exactly,
                    # so either side's sym is a valid equality witness.
                    refined = Interval(max(got.lo, want.lo),
                                       min(got.hi, want.hi),
                                       got.sym or want.sym)
                    dims = (m.dims[:d] + (refined,) + m.dims[d + 1:])
                    self.bind(st, argnodes[0].children[0],
                              MatVal(m.kind, dims, m.null))
            return None

        if name == "rt_matmul_check":
            a, b = mat(0), mat(1)
            self.require_alloc(vals[0], argnodes[0], span,
                               "matrix multiply")
            self.require_alloc(vals[1], argnodes[1], span,
                               "matrix multiply")
            if a is not None and b is not None:
                if a.dims is not None and len(a.dims) != 2:
                    self.report(
                        f"matrix multiply of a rank-{len(a.dims)} matrix "
                        "(rank 2 required)", span)
                elif b.dims is not None and len(b.dims) != 2:
                    self.report(
                        f"matrix multiply by a rank-{len(b.dims)} matrix "
                        "(rank 2 required)", span)
                elif (a.dims is not None and b.dims is not None
                        and disjoint(a.dims[1], b.dims[0])):
                    self.report(
                        f"matrix multiply dimensions never agree: "
                        f"{fmt_dims(a)} by {fmt_dims(b)}", span)
            return None

        if name == "rt_shape_check":
            a, b = mat(0), mat(1)
            what = lit(2) or "elementwise operation"
            self.require_alloc(vals[0], argnodes[0], span, what)
            self.require_alloc(vals[1], argnodes[1], span, what)
            if a is not None and b is not None \
                    and a.dims is not None and b.dims is not None:
                if len(a.dims) != len(b.dims):
                    self.report(
                        f"{what} on matrices of rank {len(a.dims)} and "
                        f"{len(b.dims)}", span)
                elif any(disjoint(x, y)
                         for x, y in zip(a.dims, b.dims)):
                    self.report(
                        f"{what} on shapes {fmt_dims(a)} and {fmt_dims(b)} "
                        "that never match", span)
            return None

        if name == "rt_require_divisible":
            nv, fv = iv(0), iv(1)
            what = lit(2) or "partition"
            if fv.hi <= 0:
                self.report(
                    f"{what}: factor is never positive "
                    f"({fmt_interval(fv)})", span)
            elif nv.constant is not None and fv.constant is not None \
                    and nv.constant % fv.constant != 0:
                self.report(
                    f"{what}: trip count {nv.constant} is not divisible "
                    f"by {fv.constant}", span)
            return None

        if name == "rt_assign_copy":
            src = mat(1)
            return src if src is not None else MatVal(None, None, "maybe")

        if name == "writeMatrix":
            if len(vals) > 1:
                self.require_alloc(vals[1], argnodes[1], span,
                                   "writeMatrix")
            return None

        if name.startswith("__tuple_"):
            return ("tup", tuple(vals))

        if name.startswith("__tget_"):
            idx = int(name[len("__tget_"):])
            v = vals[0] if vals else None
            if isinstance(v, tuple) and v[0] == "tup" and idx < len(v[1]):
                return v[1][idx]
            return None

        # rc ops, prints, pool/spawn/sync, vector ops, user calls: no
        # shape effect; a user call's return value is unknown.  Matrix
        # *shapes* are immutable after allocation, so facts about
        # arguments survive any call.
        return None

    # -- block transfer ------------------------------------------------------

    def block(self, block, st: dict) -> dict:
        st = dict(st)
        # Synthesized guards carry the default span and *precede* the
        # surface statement they protect, so each item's effective span
        # is the next real one in the block (falling back to the last
        # preceding real one).
        spans = [_find_span(it) for it in block.items]
        eff: list = [None] * len(spans)
        nxt = None
        for i in range(len(spans) - 1, -1, -1):
            if spans[i] is not None:
                nxt = spans[i]
            eff[i] = nxt
        prev = None
        for i, sp in enumerate(spans):
            if eff[i] is None:
                eff[i] = prev
            if sp is not None:
                prev = sp
        for i, item in enumerate(block.items):
            self.cur_span = eff[i]
            p = item.prod
            if p == "decl":
                tnode = item.children[0]
                if _is_mat_type(tnode):
                    self.bind(st, item.children[1],
                              MatVal(None, None, "yes"))
                else:
                    # both engines zero-fill declared scalars
                    self.bind(st, item.children[1],
                              _iv(0) if not _is_float_type(tnode)
                              else None)
            elif p in ("declInit", "forDecl"):
                v = self.expr(item.children[2], st)
                self.bind(st, item.children[1], v)
            elif p == "exprStmt":
                self.expr(item.children[0], st)
            elif p == "returnStmt":
                self.expr(item.children[0], st)
            elif p in ("returnVoid", "rawStmt"):
                pass
            else:  # bare condition / step expression
                self.expr(item, st)
        return st

    # -- edge refinement (S30) -----------------------------------------------

    _FLIP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
             "==": "!=", "!=": "=="}
    _MIRROR = {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
               "==": "==", "!=": "!="}

    def refine_edge(self, block, label, st: dict) -> dict:
        """Narrow a predecessor's out-state along its ``True``/``False``
        edge: a loop-header or branch comparison pins the compared
        variable's interval on the edge where it held (or failed).
        The narrowing is a sym-preserving interval *meet* — shrinking a
        variable's range does not change its runtime value, so any
        exact-equality witness it carried stays valid, and an ``==``
        comparison additionally *donates* the other side's sym (this is
        how ``if (k == dimSize(m, 0))`` lets a later ``[0, k)`` bounds
        guard discharge against ``m.dim0``).  Bounds stay non-strict
        (``x < b`` narrows to ``x <= b.hi``) because float-typed
        operands may flow through, for which ``b.hi - 1`` is unsound."""
        if label is None or not block.items:
            return st
        return self._refine_cond(block.items[-1], bool(label), st)

    def _refine_cond(self, cond, held: bool, st: dict) -> dict:
        p = getattr(cond, "prod", None)
        ch = cond.children if p is not None else ()
        if p == "unop" and ch[0] == "!":
            return self._refine_cond(ch[1], not held, st)
        if p == "binop" and ch[0] in ("&&", "||"):
            # a held && (a failed ||) pins both operands
            if (ch[0] == "&&") == held:
                return self._refine_cond(
                    ch[2], held, self._refine_cond(ch[1], held, st))
            return st
        if p != "binop" or ch[0] not in self._FLIP:
            return st
        op = ch[0] if held else self._FLIP[ch[0]]
        out = self._refine_var(ch[1], op, ch[2], st)
        return self._refine_var(ch[2], self._MIRROR[op], ch[1], out)

    def _refine_var(self, node, op, other, st: dict) -> dict:
        """Meet ``node OP other`` into the state when node is a bare
        variable; no-op otherwise."""
        if getattr(node, "prod", None) != "var" or op == "!=":
            return st
        name = node.children[0]
        cur = st.get(name)
        if cur is None:
            cur = Interval(-_INF, _INF, sym=name)
        if not isinstance(cur, Interval):
            return st
        # evaluate the other side on a scratch copy: condition
        # subexpressions must not leak bindings into the edge state
        b = self.expr(other, dict(st))
        if not isinstance(b, Interval):
            return st
        if op == "==":
            lo, hi = max(cur.lo, b.lo), min(cur.hi, b.hi)
            sym = b.sym or cur.sym
        elif op in ("<", "<="):
            lo, hi = cur.lo, min(cur.hi, b.hi)
            sym = cur.sym
        else:  # > >=
            lo, hi = max(cur.lo, b.lo), cur.hi
            sym = cur.sym
        if lo > hi:
            return st  # infeasible edge: keep the (sound) wider state
        refined = Interval(lo, hi, sym)
        if refined == cur:
            return st
        out = dict(st)
        out[name] = refined
        return out


def _is_float_type(type_node) -> bool:
    if type_node.prod == "tFloat":
        return True
    if type_node.prod == "tRaw":
        return str(type_node.children[0]).strip() in ("float", "double")
    return False


def check_shapes(cfg: CFG, diags: Diagnostics) -> None:
    """Run the pass on one function CFG, emitting into ``diags``."""
    silent = _Pass(cfg, None)
    states = solve(
        cfg, silent.block, join=join_states, entry_state={}, init={},
        direction="forward", widen=widen_states, widen_after=3,
        edge=silent.refine_edge,
    )
    reporter = _Pass(cfg, diags)
    for bid in sorted(cfg.reachable()):
        reporter.block(cfg.blocks[bid], states[bid][0])


def proven_in_range(cfg: CFG) -> frozenset[int]:
    """Node ids of ``rt_bounds_check`` calls in ``cfg`` whose guard the
    interval fixpoint proves passes on every execution (``lo >= 0`` and
    ``hi <= dim`` for all concretizations).  Mirror of the must-*fail*
    reporting in :func:`check_shapes`: because the intervals
    over-approximate, a bound that holds abstractly holds concretely,
    so discharging such a guard can never suppress a real trap.  The
    bytecode compiler uses this to compile the guard to the
    ``rt_bounds_ok`` counter bump instead."""
    silent = _Pass(cfg, None)
    states = solve(
        cfg, silent.block, join=join_states, entry_state={}, init={},
        direction="forward", widen=widen_states, widen_after=3,
        edge=silent.refine_edge,
    )
    prover = _Pass(cfg, None)
    for bid in sorted(cfg.reachable()):
        prover.block(cfg.blocks[bid], states[bid][0])
    return frozenset(prover.proven)
