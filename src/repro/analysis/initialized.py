"""Definite-assignment / use-before-init analysis (S25 pass 1).

A classic forward may/must problem over the per-variable lattice

        UNINIT ──┐
                 ├──> MAYBE        (join of disagreeing paths)
        INIT ────┘

run on the lowered trees: a read of a local that is *definitely*
uninitialized on every path is an ``error`` (the emitted C reads an
indeterminate value), a read that is uninitialized on *some* path is a
``warning``.  Parameters are initialized by the caller; a managed
matrix declaration is lowered to ``= NULL`` by the refcount hooks and
therefore counts as initialized here (reading a still-NULL matrix is
the *shape* pass's business, see :mod:`repro.analysis.shapes`).

Shadowing: the lowered trees keep block scoping, but this pass uses one
flat name space per function, so any name declared more than once in a
function is left untracked rather than risking a false positive.
"""

from __future__ import annotations

from repro.analysis.cfg import CFG, is_stmt_item
from repro.analysis.dataflow import solve
from repro.util.diagnostics import Diagnostics, SourceSpan

PHASE = "analysis.init"

_UNINIT, _INIT, _MAYBE = 0, 1, 2

_LEAF_PRODS = frozenset(["intLit", "floatLit", "boolLit", "strLit", "rawExpr"])


def _decl_names(cfg: CFG) -> dict[str, int]:
    """Occurrence count of every declared local name."""
    counts: dict[str, int] = {}

    def visit(n) -> None:
        if n.prod in ("decl", "declInit", "forDecl"):
            counts[n.children[1]] = counts.get(n.children[1], 0) + 1

    for b in cfg.blocks:
        for item in b.items:
            if is_stmt_item(item):
                visit(item)
    return counts


class _Pass:
    def __init__(self, cfg: CFG, diags: Diagnostics | None):
        self.cfg = cfg
        self.diags = diags
        self.reported: set[str] = set()
        counts = _decl_names(cfg)
        params = set(cfg.params)
        # Only locals declared exactly once are tracked (see module doc).
        self.tracked = {n for n, c in counts.items()
                        if c == 1 and n not in params}

    # -- expression walk (evaluation order) ----------------------------------

    def expr(self, n, st: dict[str, int]) -> None:
        p = n.prod
        ch = n.children
        if p == "var":
            self.read(ch[0], st, n.span)
        elif p == "assign":
            self.expr(ch[1], st)
            if ch[0].prod == "var":
                name = ch[0].children[0]
                if name in self.tracked:
                    st[name] = _INIT
            else:  # non-var target still reads its subexpressions
                self.expr(ch[0], st)
        elif p == "binop":
            if ch[0] in ("&&", "||"):
                # The right operand runs on some paths only: reads are
                # real, but its assignments merge as MAYBE.
                self.expr(ch[1], st)
                branch = dict(st)
                self.expr(ch[2], branch)
                for k, v in branch.items():
                    if st.get(k, v) != v:
                        st[k] = _MAYBE
            else:
                self.expr(ch[1], st)
                self.expr(ch[2], st)
        elif p in ("unop", "castE"):
            self.expr(ch[1], st)
        elif p == "call":
            from repro.cminus.absyn import node_cons_to_list

            for a in node_cons_to_list(ch[1]):
                self.expr(a, st)
        elif p in _LEAF_PRODS:
            pass
        else:  # defensive: treat unknown expressions as opaque reads
            for c in ch:
                if hasattr(c, "prod"):
                    self.expr(c, st)

    def read(self, name: str, st: dict[str, int], span) -> None:
        if name not in self.tracked or name in self.reported:
            return
        v = st.get(name, _INIT)
        if v == _INIT or self.diags is None:
            return
        self.reported.add(name)
        where = span if span is not None else SourceSpan()
        if v == _UNINIT:
            self.diags.error(
                f"variable '{name}' is read before it is initialized",
                where, PHASE)
        else:
            self.diags.warning(
                f"variable '{name}' may be read before it is initialized",
                where, PHASE)

    # -- block transfer ------------------------------------------------------

    def block(self, block, st: dict[str, int]) -> dict[str, int]:
        st = dict(st)
        for item in block.items:
            p = item.prod
            if p == "decl":
                name = item.children[1]
                if name in self.tracked:
                    st[name] = _UNINIT
            elif p in ("declInit", "forDecl"):
                self.expr(item.children[2], st)
                name = item.children[1]
                if name in self.tracked:
                    st[name] = _INIT
            elif p == "exprStmt":
                self.expr(item.children[0], st)
            elif p == "returnStmt":
                self.expr(item.children[0], st)
            elif p in ("returnVoid", "rawStmt"):
                pass
            else:  # bare condition / step expression
                self.expr(item, st)
        return st


def _join(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
    out = dict(a)
    for k, v in b.items():
        w = out.get(k)
        if w is None:
            out[k] = v
        elif w != v:
            out[k] = _MAYBE
    return out


def check_initialized(cfg: CFG, diags: Diagnostics) -> None:
    """Run the pass on one function CFG, emitting into ``diags``."""
    silent = _Pass(cfg, None)
    if not silent.tracked:
        return
    states = solve(
        cfg, silent.block, join=_join, entry_state={}, init={},
        direction="forward",
    )
    # Re-walk reachable blocks once, in source order, with the solved
    # in-states: diagnostics come out deterministic and deduplicated.
    reporter = _Pass(cfg, diags)
    for bid in sorted(cfg.reachable()):
        reporter.block(cfg.blocks[bid], states[bid][0])
