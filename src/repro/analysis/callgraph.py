"""Shared static call graph over compiled bytecode (one traversal, two
consumers).

S23 buried call-graph construction inside
``BytecodeProgram._direct_hazards``; S25 lifts it here so that the VM's
parallel-eligibility gate and the ``reproc check`` diagnostics consume
the *same* scan.  A node is keyed ``("fn", name)`` for an ordinary
function or ``("lifted", name)`` for a lifted pool-worker body, exactly
as before; each node records

* its **direct effects** — ``(hazard, description)`` pairs, where the
  description is the user-facing evidence (``"writes a matrix file
  (writeMatrix)"``) that the explainable parallel-safety pass surfaces,
  and
* its **call edges**, labeled with how the edge arises (call, spawn, or
  pool region).

Scanning is per-node lazy and memoized, mirroring the VM's on-demand
compilation: a node that is never reached from a parallel construct is
never compiled, and an *uncompilable* node (unknown function, raw C the
VM cannot interpret) degrades to the full hazard set — sequential
execution raises when and only when that path actually runs, so the
pool must keep it on-thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.hazards import (
    ALL_HAZARDS, H_IO, H_POOL, H_PRINT, H_RC, H_SPAWN, H_TRAP, TRAP_OPS,
)

Key = tuple[str, str]  # ("fn" | "lifted", name)


def display_name(key: Key) -> str:
    kind, name = key
    return f"with-loop region '{name}'" if kind == "lifted" else f"'{name}'"


@dataclass(frozen=True)
class Effect:
    """One direct hazard of a node, with user-facing evidence."""

    hazard: str
    what: str


@dataclass
class CGNode:
    key: Key
    effects: tuple[Effect, ...] = ()
    # callee key -> how the edge arises ("calls 'f'", "spawns 'f'", ...)
    calls: dict[Key, str] = field(default_factory=dict)

    @property
    def hazards(self) -> frozenset:
        return frozenset(e.hazard for e in self.effects)


# Per-opcode trap evidence (TRAP_OPS membership decides *whether* an op
# traps; this table only words the why).
_TRAP_WHAT = {
    "/": "division may trap (divide by zero)",
    "%": "modulo may trap (divide by zero)",
    "cast_int": "float-to-int cast may trap (overflow/NaN)",
    "rt_getf": "matrix element read may trap (index out of range)",
    "rt_geti": "matrix element read may trap (index out of range)",
    "rt_setf": "matrix element write may trap (index out of range)",
    "rt_seti": "matrix element write may trap (index out of range)",
    "rt_dim": "dimension query may trap (axis out of range)",
    "rc_dec": "refcount release may trap (underflow)",
    "fastloop": "fused numpy loop may trap on its scalar fallback",
}

_INTR_EFFECTS = {
    "_read_matrix": ((H_IO, "reads a matrix file (readMatrix)"),
                     (H_TRAP, "file read may trap (missing/corrupt file)")),
    "_write_matrix": ((H_IO, "writes a matrix file (writeMatrix)"),
                      (H_TRAP, "file write may trap")),
    "_print_int": ((H_PRINT, "prints to stdout (printInt)"),
                   (H_TRAP, "printing may trap")),
    "_print_float": ((H_PRINT, "prints to stdout (printFloat)"),
                     (H_TRAP, "printing may trap")),
}


class CallGraph:
    """Lazy, memoized call graph over a :class:`BytecodeProgram`."""

    def __init__(self, program):
        self.program = program
        self._nodes: dict[Key, CGNode] = {}

    def node(self, key: Key) -> CGNode:
        n = self._nodes.get(key)
        if n is None:
            n = self._scan(key)
            self._nodes[key] = n
        return n

    def reachable(self, *roots: Key) -> list[Key]:
        """All keys reachable from ``roots`` (roots first, DFS order);
        expands — and therefore compiles — exactly that subgraph."""
        seen: list[Key] = []
        stack = list(reversed(roots))
        marked = set(stack)
        while stack:
            key = stack.pop()
            seen.append(key)
            for callee in self.node(key).calls:
                if callee not in marked:
                    marked.add(callee)
                    stack.append(callee)
        return seen

    # -- the single instruction-stream traversal -----------------------------

    def _scan(self, key: Key) -> CGNode:
        from repro.cexec.interp import InterpError

        kind, name = key
        program = self.program
        try:
            code = (program.lifted_code_for(name) if kind == "lifted"
                    else program.code_for(name))
        except InterpError as err:
            # Uncompilable or unknown: sequential execution raises when
            # (and only when) this path runs, so keep it on-thread.
            return CGNode(
                key,
                tuple(Effect(h, f"cannot be analyzed: {err}")
                      for h in sorted(ALL_HAZARDS)),
                {})

        effects: dict[tuple[str, str], Effect] = {}
        calls: dict[Key, str] = {}

        def add(hazard: str, what: str) -> None:
            effects.setdefault((hazard, what), Effect(hazard, what))

        for ins in code.instrs:
            op = ins[0]
            if op in TRAP_OPS:
                add(H_TRAP, _TRAP_WHAT[op])
            if op in ("rc_inc", "rc_dec"):
                add(H_RC, f"mutates a reference count ({op})")
            elif op == "intr":
                method = ins[2]
                preset = _INTR_EFFECTS.get(method)
                if preset is not None:
                    for hazard, what in preset:
                        add(hazard, what)
                else:
                    add(H_TRAP, f"runtime intrinsic {method} may trap")
                    if method == "rt_assign_copy":
                        add(H_RC, "rt_assign_copy releases the "
                                  "overwritten reference")
            elif op == "pool":
                add(H_POOL, f"opens a nested parallel region '{ins[1]}'")
                calls.setdefault(("lifted", ins[1]),
                                 f"runs pool region '{ins[1]}'")
            elif op in ("spawn", "call"):
                if op == "spawn":
                    add(H_SPAWN, f"spawns '{ins[2]}'")
                callee, nargs = ins[2], len(ins[3])
                sig = program.functions.get(callee)
                if sig is not None and len(sig[0]) == nargs:
                    calls.setdefault(
                        ("fn", callee),
                        ("spawns" if op == "spawn" else "calls")
                        + f" '{callee}'")
                else:  # unknown callee / arity mismatch raises at run time
                    why = (f"calls unknown function '{callee}'"
                           if sig is None else
                           f"calls '{callee}' with {nargs} argument(s), "
                           f"expected {len(sig[0])}")
                    for h in sorted(ALL_HAZARDS):
                        add(h, why)
        return CGNode(key, tuple(effects.values()), calls)
