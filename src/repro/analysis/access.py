"""Interprocedural matrix access summaries (S30, pass 1 of the race
analysis).

For every function (and lifted pool-worker body) of a compiled program
this pass computes *which matrix elements the function may read and
write*, as affine access forms over symbolic terms:

* an :class:`~repro.ir.affine.Poly` base — an exact integer polynomial
  over named atoms (function parameters ``p:x``, axis lengths
  ``d:<root>:<k>``), plus
* one :class:`IVTerm` per enclosing loop induction variable the index
  depends on, carrying the IV's polynomial coefficient and (half-open)
  symbolic range.

Indices the walk cannot normalize — indirect subscripts ``m[n[i]]``,
division, values flowing through tuples — *widen to ⊤ for that
matrix*: an :class:`Access` with ``base is None`` that overlaps
everything.  Widening is always sound; it can only make the downstream
refutation (:mod:`repro.analysis.races`) fail to prove disjointness,
never prove it wrongly.

Summaries are interprocedural: a call site substitutes the callee's
summary into the caller's symbol space (scalar arguments into ``p:``
atoms, actual matrix roots for matrix parameters, fresh names for the
callee's local allocations) and joins the records, iterating over the
S25 call graph until the fixpoint; a per-summary record cap keeps
recursion finite by collapsing overflow to ⊤ per matrix.

The walk drives an :class:`~repro.analysis.mhp.MHPTracker` as it goes,
so the may-happen-in-parallel pairs fall out of the same traversal
that builds the summary; tasks still pending at function exit are
recorded as the summary's *escapes* and respawned into every caller's
tracker (the VM's implicit sync is at program exit, not function
return).

The tree walk shares :func:`repro.ir.affine.tree_affine` with the
loopfast vectorizer and the strength reducer, instantiated over the
:class:`~repro.ir.affine.PolyRing` with the ``atom_call`` hook so the
``rt_dim(m, k)`` calls the matrix lowering embeds in linearized
indices act as invariant symbolic atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ag.tree import Node
from repro.analysis.mhp import MHPTracker
from repro.cminus.absyn import node_cons_to_list
from repro.ir.affine import Poly, PolyRing, combine, negate, scale, tree_affine

#: Cap on records per function summary; overflow collapses to ⊤ per
#: accessed matrix (keeps the callgraph fixpoint finite under
#: recursion and keeps pair enumeration quadratic in a small constant).
MAX_RECORDS = 64

READ, WRITE = "read", "write"


@dataclass(frozen=True)
class IVTerm:
    """One loop-variable contribution to an access index: the IV's
    coefficient and half-open range ``[lo, hi)``, all exact
    polynomials (``None`` bound = unknown)."""

    name: str
    coeff: Poly
    lo: Poly | None
    hi: Poly | None


@dataclass(frozen=True)
class Access:
    """One may-access of a matrix: ``root`` names the matrix in the
    summary's symbol space, ``base``/``ivs`` the affine index form
    (``base is None`` = ⊤: any element), ``what`` a rendering for
    witness chains, ``chain`` the call path that reaches the access
    (empty = direct), ``span`` its source location.  ``definite`` is
    False for records that exist only because the walk lost track of a
    matrix's identity (tuples, unknown callees): they participate in
    may-conflict (blocking clearance) but never in definite race
    reports."""

    root: str
    mode: str                       # READ | WRITE
    base: Poly | None
    ivs: tuple[IVTerm, ...] = ()
    what: str = ""
    chain: tuple[str, ...] = ()
    span: object = None
    definite: bool = True

    @property
    def top(self) -> bool:
        return self.base is None


@dataclass
class Summary:
    """Access summary of one function: records plus what the function
    knows about the shapes of its local allocations and which spawned
    tasks are still pending when it returns."""

    records: list[Access] = field(default_factory=list)
    #: root -> per-axis length polynomials (local allocations with
    #: analyzable shapes; an entry may be None for an unknown axis).
    dims: dict[str, tuple] = field(default_factory=dict)
    #: tasks pending at function exit: (callee, records) pairs — the
    #: caller respawns these into its own tracker at the call site.
    escaped: list[tuple] = field(default_factory=list)
    #: the walk met something it cannot bound at all (unknown callee,
    #: raw C): every matrix in scope must be assumed read+written.
    opaque: bool = False


# -- affine value helpers ----------------------------------------------------
#
# A scalar abstract value is an *Aff*: ``(Poly, {iv_name: Poly})`` — the
# same shape tree_affine produces — or None for ⊤.

Aff = tuple


def aff_const(v: int) -> Aff:
    return (Poly.const(v), {})


def aff_atom(name: str) -> Aff:
    return (Poly.atom(name), {})


def aff_add(a: Aff | None, b: Aff | None, op: str = "+") -> Aff | None:
    if a is None or b is None:
        return None
    return combine(PolyRing, op, a, b)


def aff_neg(a: Aff | None) -> Aff | None:
    return None if a is None else negate(PolyRing, a)


def aff_mul(a: Aff | None, b: Aff | None) -> Aff | None:
    if a is None or b is None:
        return None
    if a[1] and b[1]:
        return None  # quadratic in IVs
    inv, lin = (a, b) if not a[1] else (b, a)
    return scale(PolyRing, lin, inv[0])


def subst_poly(p: Poly, env: dict[str, Aff | None]) -> Aff | None:
    """Substitute atoms of ``p`` by Affs; atoms missing from ``env``
    are kept verbatim (they already live in the target space)."""
    acc: Aff | None = aff_const(0)
    for m, c in p.terms.items():
        term: Aff | None = aff_const(c)
        for a in m:
            b = env.get(a, aff_atom(a))
            term = aff_mul(term, b)
        acc = aff_add(acc, term)
    return acc


# -- small tree helpers ------------------------------------------------------


def _is_mat_type(type_node) -> bool:
    return (getattr(type_node, "prod", None) == "tRaw"
            and str(type_node.children[0]).lstrip().startswith("rt_mat"))


def render_expr(node) -> str:
    """Small expression renderer for witness text."""
    if not isinstance(node, Node):
        return "?"
    p, ch = node.prod, node.children
    if p == "intLit":
        return str(ch[0])
    if p == "var":
        return str(ch[0])
    if p == "binop":
        return f"{render_expr(ch[1])} {ch[0]} {render_expr(ch[2])}"
    if p == "unop":
        return f"{ch[0]}{render_expr(ch[1])}"
    if p == "castE":
        return render_expr(ch[1])
    if p == "call":
        args = node_cons_to_list(ch[1])
        if ch[0] == "rt_dim":
            return f"dim({render_expr(args[0])}, {render_expr(args[1])})"
        if ch[0] in ("rt_getf", "rt_geti") and len(args) == 2:
            return f"{render_expr(args[0])}[{render_expr(args[1])}]"
        return f"{ch[0]}(..)"
    return "?"


def _refs_var(node, name: str) -> bool:
    if not isinstance(node, Node):
        return False
    if node.prod == "var" and node.children[0] == name:
        return True
    return any(_refs_var(c, name) for c in node.children)


def _assigned_names(node, out: set) -> None:
    """Variable names (scalar or matrix) assigned anywhere under
    ``node`` — the havoc set for loop bodies."""
    if not isinstance(node, Node):
        return
    if node.prod == "assign" and node.children[0].prod == "var":
        out.add(node.children[0].children[0])
    if node.prod in ("declInit", "forDecl", "decl"):
        out.add(node.children[1])
    if node.prod == "call" and node.children[0] == "__rt_spawn_into":
        args = node_cons_to_list(node.children[1])
        if len(args) > 2 and args[2].prod == "strLit":
            out.add(args[2].children[0])
    for c in node.children:
        _assigned_names(c, out)


def _find_span(node):
    from repro.analysis.shapes import _find_span as fs

    return fs(node)


def _contains_spawn(node) -> bool:
    if not isinstance(node, Node):
        return False
    if node.prod == "call" and node.children[0] in (
            "__rt_spawn", "__rt_spawn_into"):
        return True
    return any(_contains_spawn(c) for c in node.children)


# -- the per-function walker -------------------------------------------------


class FnAccess:
    """One walk over a lowered function body, accumulating the access
    summary and driving the function's MHP tracker.

    Scalar locals are tracked as Affs in the current symbol space
    (parameters as ``p:`` atoms), matrix locals as *root sets* —
    ``p:<param>`` for parameter matrices, ``a:<n>`` for local
    allocations, ``?`` when the walk lost track.  ``rt_assign_copy``
    may return either operand (the runtime reuses the destination only
    on shape match), so its result root set is the union.
    """

    def __init__(self, summaries: "Summaries", name: str,
                 params: list[str], tracker: MHPTracker | None = None):
        self.summaries = summaries
        self.name = name
        self.params = list(params)
        self.tracker = tracker
        self.sum = Summary()
        self.scal: dict[str, Aff | None] = {
            p: aff_atom(f"p:{p}") for p in params}
        self.mats: dict[str, frozenset] = {
            p: frozenset({f"p:{p}"}) for p in params}
        self._fresh = 0
        self._suppress = False          # True while substituting a spawn body
        self._iv_stack: list[str] = []  # active loop IVs, outer first
        self._iv_ranges: dict[str, tuple] = {}  # iv -> (lo Aff|None, hi ...)
        #: dominating rt_bounds_check facts: (lo Aff, hi Aff, dim Aff);
        #: truncated back at branch joins and loop exits so only facts
        #: on every path to a use survive.
        self.facts: list[tuple] = []
        #: __rt_pool_run sites seen: (region name, chunk-symbolic
        #: records, facts in force, opaque flag, span)
        self.pool_sites: list[tuple] = []

    # -- bookkeeping ---------------------------------------------------------

    def fresh(self, tag: str) -> str:
        self._fresh += 1
        return f"{tag}:{self.name}:{self._fresh}"

    def record(self, acc: Access) -> None:
        if len(self.sum.records) >= MAX_RECORDS:
            # collapse: one ⊤ record per root/mode already covers it
            if not any(r.root == acc.root and r.top
                       and r.mode == acc.mode for r in self.sum.records):
                self.sum.records.append(replace(acc, base=None, ivs=()))
        else:
            self.sum.records.append(acc)
        if self.tracker is not None and not self._suppress:
            self.tracker.access(acc)

    def roots_of(self, node) -> frozenset:
        if isinstance(node, Node) and node.prod == "var":
            return self.mats.get(node.children[0], frozenset({"?"}))
        if isinstance(node, Node) and node.prod == "call":
            v = self.expr(node)
            if isinstance(v, frozenset):
                return v
        return frozenset({"?"})

    def access_all(self, roots: frozenset, mode: str, span=None,
                   what: str = "", definite: bool = True) -> None:
        for r in sorted(roots):
            self.record(Access(r, mode, None, (), what or "any element",
                               (), span, definite and r != "?"))

    # -- affine evaluation ---------------------------------------------------

    def aff(self, node) -> Aff | None:
        """Affine form of an integer expression in the current state;
        evaluates no side effects (callers walk effects separately)."""
        from repro.cexec.bytecode import cast_kind

        ivs = set(self._iv_stack)

        def atom(nm: str):
            if nm in ivs:
                return None  # tree_affine's var_names path handles it
            v = self.scal.get(nm)
            if v is None or v[1]:
                # unknown, or IV-dependent (handled by the retry below)
                return None
            return v[0]

        def atom_call(n: Node):
            if n.children[0] != "rt_dim":
                return None
            args = node_cons_to_list(n.children[1])
            if len(args) != 2 or args[1].prod != "intLit":
                return None
            return self.dim_poly(args[0], int(args[1].children[0]))

        form = tree_affine(
            node, ivs, PolyRing, atom=atom, refs_var=_refs_var,
            cast_kind_of=cast_kind, is_node=lambda n: isinstance(n, Node),
            atom_call=atom_call)
        if form is None:
            # one retry for IV-affine *bindings*: a local ``t = 2*i``
            # is rejected by ``atom`` above; substitute it directly.
            return self._aff_via_env(node)
        base, coeffs = form
        out: Aff | None = (base, {})
        for name, coeff in coeffs.items():
            if name not in self._iv_ranges:
                return None
            out = aff_add(out, (Poly.const(0), {name: coeff}))
        return out

    def _aff_via_env(self, node) -> Aff | None:
        """Direct structural evaluation handling IV-dependent scalar
        bindings tree_affine's invariant-atom hook cannot express."""
        if not isinstance(node, Node):
            return None
        p, ch = node.prod, node.children
        if p == "intLit":
            return aff_const(int(ch[0]))
        if p == "var":
            nm = ch[0]
            if nm in self._iv_stack:
                return (Poly.const(0), {nm: Poly.const(1)})
            return self.scal.get(nm)
        if p == "binop" and ch[0] in ("+", "-"):
            return aff_add(self._aff_via_env(ch[1]),
                           self._aff_via_env(ch[2]), ch[0])
        if p == "binop" and ch[0] == "*":
            return aff_mul(self._aff_via_env(ch[1]), self._aff_via_env(ch[2]))
        if p == "unop" and ch[0] == "-":
            return aff_neg(self._aff_via_env(ch[1]))
        if p == "castE":
            from repro.cexec.bytecode import cast_kind

            if cast_kind(ch[0]) in (None, "int"):
                return self._aff_via_env(ch[1])
            return None
        if p == "call" and ch[0] == "rt_dim":
            args = node_cons_to_list(ch[1])
            if len(args) == 2 and args[1].prod == "intLit":
                d = self.dim_poly(args[0], int(args[1].children[0]))
                if d is not None:
                    return (d, {})
        return None

    def dim_poly(self, mnode, k: int) -> Poly | None:
        """Symbolic length of axis ``k`` of a matrix expression."""
        if isinstance(mnode, Node) and mnode.prod == "var":
            roots = self.mats.get(mnode.children[0], frozenset({"?"}))
        else:
            return None  # do not evaluate effects from inside aff()
        if len(roots) != 1:
            return None
        (root,) = roots
        if root == "?":
            return None
        known = self.sum.dims.get(root)
        if known is not None and k < len(known) and known[k] is not None:
            return known[k]
        return Poly.atom(f"d:{root}:{k}")

    def _iv_bounds(self, iv: str) -> tuple:
        rng = self._iv_ranges.get(iv)
        if rng is None:
            return (None, None)
        lo, hi = rng
        return (lo[0] if lo is not None and not lo[1] else None,
                hi[0] if hi is not None and not hi[1] else None)

    def _index_access(self, root: str, mode: str, idx: Aff | None,
                      what: str, span) -> Access:
        if idx is None or root == "?":
            return Access(root, mode, None, (), what, (), span,
                          definite=root != "?")
        base, coeffs = idx
        ivs = tuple(IVTerm(iv, c, *self._iv_bounds(iv))
                    for iv, c in sorted(coeffs.items()))
        return Access(root, mode, base, ivs, what, (), span)

    # -- expressions ---------------------------------------------------------

    def expr(self, node):
        """Walk one expression for its *effects*; returns the abstract
        value (Aff, matrix root frozenset, or None)."""
        if not isinstance(node, Node):
            return None
        p, ch = node.prod, node.children
        if p in ("intLit", "boolLit"):
            return aff_const(int(ch[0]))
        if p in ("floatLit", "strLit", "rawExpr"):
            return None
        if p == "var":
            name = ch[0]
            if self.tracker is not None and not self._suppress:
                self.tracker.var_read(name, _find_span(node))
            if name in self.mats:
                return self.mats[name]
            return self.scal.get(name)
        if p == "assign":
            val = self.expr(ch[1])
            if ch[0].prod == "var":
                self.bind(ch[0].children[0], val, span=_find_span(node))
            else:
                self.expr(ch[0])
            return val
        if p == "binop":
            op = ch[0]
            self.expr(ch[1])
            self.expr(ch[2])
            if op in ("+", "-"):
                return aff_add(self.aff(ch[1]), self.aff(ch[2]), op)
            if op == "*":
                return aff_mul(self.aff(ch[1]), self.aff(ch[2]))
            return None
        if p == "unop":
            self.expr(ch[1])
            if ch[0] == "-":
                return aff_neg(self.aff(ch[1]))
            return None
        if p == "castE":
            from repro.cexec.bytecode import cast_kind

            v = self.expr(ch[1])
            if cast_kind(ch[0]) in (None, "int"):
                return v
            return None
        if p == "call":
            return self.call(node)
        return None

    def bind(self, name: str, val, span=None) -> None:
        if self.tracker is not None and not self._suppress:
            self.tracker.var_write(name, span)
        if isinstance(val, frozenset):
            self.mats[name] = val
            self.scal.pop(name, None)
        else:
            self.scal[name] = val
            self.mats.pop(name, None)

    # -- calls ---------------------------------------------------------------

    def call(self, node: Node):
        name = node.children[0]
        args = node_cons_to_list(node.children[1])
        span = _find_span(node)

        if name in ("rt_allocf", "rt_alloci"):
            for a in args:
                self.expr(a)
            root = self.fresh("a")
            if args and args[0].prod == "intLit":
                rank = int(args[0].children[0])
                dims = []
                for k in range(rank):
                    av = self.aff(args[1 + k]) if 1 + k < len(args) else None
                    dims.append(av[0] if av is not None and not av[1]
                                else None)
                self.sum.dims[root] = tuple(dims)
            return frozenset({root})

        if name == "readMatrix":
            for a in args:
                if a.prod != "strLit":
                    self.expr(a)
            return frozenset({self.fresh("a")})

        if name in ("rt_getf", "rt_geti", "rt_setf", "rt_seti"):
            mode = READ if name in ("rt_getf", "rt_geti") else WRITE
            roots = self.roots_of(args[0])
            for a in args[1:]:
                self.expr(a)
            idx = self.aff(args[1]) if len(args) > 1 else None
            mname = (args[0].children[0] if args[0].prod == "var"
                     else "<matrix>")
            what = (f"{mname}[{render_expr(args[1])}]" if len(args) > 1
                    else mname)
            for r in sorted(roots):
                self.record(self._index_access(r, mode, idx, what, span))
            return None

        if name == "rt_assign_copy":
            dst = self.roots_of(args[0])
            src = self.roots_of(args[1])
            self.access_all(src, READ, span, "copies every element")
            self.access_all(dst, WRITE, span, "overwrites every element")
            return dst | src

        if name == "writeMatrix":
            for a in args:
                if a.prod != "strLit":
                    self.expr(a)
            if len(args) > 1:
                self.access_all(self.roots_of(args[1]), READ, span,
                                "writes the matrix to a file")
            return None

        if name == "rt_bounds_check":
            vals = [self.aff(a) for a in args[:3]]
            for a in args:
                if a.prod != "strLit":
                    self.expr(a)
            if len(vals) == 3 and all(v is not None for v in vals):
                self.facts.append(tuple(vals))
            return None

        if name in ("rt_dim", "rt_size", "rt_check_rank", "rt_require_dim",
                    "rt_matmul_check", "rt_shape_check",
                    "rt_require_divisible", "rc_inc", "rc_dec",
                    "printInt", "printFloat"):
            for a in args:
                if a.prod != "strLit":
                    self.expr(a)
            if name == "rt_dim" and len(args) == 2 \
                    and args[1].prod == "intLit":
                d = self.dim_poly(args[0], int(args[1].children[0]))
                if d is not None:
                    return (d, {})
            return None

        if name == "rt_sync":
            if self.tracker is not None and not self._suppress:
                self.tracker.sync()
            return None

        if name in ("__rt_spawn", "__rt_spawn_into"):
            into = name == "__rt_spawn_into"
            callee = args[1].children[0]
            target = args[2].children[0] if into else None
            argnodes = args[3:] if into else args[2:]
            for a in argnodes:  # argument evaluation is synchronous
                self.expr(a)
            if target is not None:
                self.bind(target, None, span)
            prev, self._suppress = self._suppress, True
            try:
                recs = self.inline_call(callee, argnodes, span,
                                        eval_args=False)
            finally:
                self._suppress = prev
            if self.tracker is not None and not self._suppress:
                self.tracker.spawn(callee, target, recs, span)
            return None

        if name == "__rt_pool_run":
            region = args[0].children[0]
            self.expr(args[1])
            total = self.aff(args[1])
            self.inline_region(region, args[2:], total, span)
            return None

        if name.startswith("__tuple_") or name.startswith("__tget_"):
            # matrices through tuples: identity is lost — widen
            out: frozenset = frozenset()
            for a in args:
                v = self.expr(a)
                if isinstance(v, frozenset):
                    what = "reaches the matrix through a tuple"
                    self.access_all(v, WRITE, span, what, definite=False)
                    self.access_all(v, READ, span, what, definite=False)
                    out = out | v
            return (out | frozenset({"?"})) if out else None

        prog = self.summaries.program
        if name in prog.functions:
            self.inline_call(name, args, span)
            return None

        # Unknown callee / raw runtime hook: assume it may touch every
        # matrix it can reach.
        for a in args:
            v = self.expr(a)
            if isinstance(v, frozenset):
                self.access_all(v, WRITE, span, f"passed to {name}",
                                definite=False)
                self.access_all(v, READ, span, f"passed to {name}",
                                definite=False)
        self.sum.opaque = True
        return None

    # -- interprocedural substitution ----------------------------------------

    def _is_matrix_arg(self, node) -> bool:
        if not isinstance(node, Node):
            return False
        if node.prod == "var":
            return node.children[0] in self.mats
        if node.prod == "call":
            return node.children[0] in ("rt_allocf", "rt_alloci",
                                        "readMatrix", "rt_assign_copy")
        return False

    def _site_env(self, params: list[str], argnodes: list) -> tuple:
        """(scalar atom env, matrix root map) for substituting a callee
        summary at this site."""
        env: dict[str, Aff | None] = {}
        rootmap: dict[str, frozenset] = {}
        for p, a in zip(params, argnodes):
            env[f"p:{p}"] = self.aff(a)
            if self._is_matrix_arg(a):
                rootmap[f"p:{p}"] = self.roots_of(a)
        return env, rootmap

    def inline_call(self, callee: str, argnodes: list, span,
                    eval_args: bool = True) -> list:
        """Substitute ``callee``'s summary records into this context;
        returns the substituted records (also joined into this
        summary)."""
        prog = self.summaries.program
        sig = prog.functions.get(callee)
        if eval_args:
            for a in argnodes:
                self.expr(a)
        if sig is None or len(sig[0]) != len(argnodes):
            self.sum.opaque = True
            rec = Access("?", WRITE, None, (), "unknown call", (callee,),
                         span, definite=False)
            self.record(rec)
            return [rec]
        csum = self.summaries.summary(callee)
        env, rootmap = self._site_env(sig[0], argnodes)
        recs, sub = self._subst_records(callee, csum, env, rootmap, span)
        for r in recs:
            self.record(r)
        if csum.opaque:
            self.sum.opaque = True
            rec = Access("?", WRITE, None, (), "unanalyzable callee",
                         (callee,), span, definite=False)
            self.record(rec)
            recs = recs + [rec]
        # respawn tasks the callee leaves pending into our tracker
        for tcallee, trecs in csum.escaped:
            srecs = [r for rec in trecs for r in sub(rec)]
            if self.tracker is not None and not self._suppress:
                self.tracker.spawn(tcallee, None, srecs, span,
                                   chain=(callee,))
        return recs

    def inline_region(self, region: str, caps: list, total, span) -> list:
        """Substitute a lifted worker's summary at its pool-run site.

        The summary sees ``[__lo, __hi) = [0, total)`` — the region as
        one unit.  For the race pass the records are *also* kept with
        the chunk bounds symbolic (``chunk:lo``/``chunk:hi`` atoms), so
        the shard-disjointness certificate can compare two chunk
        instances under the caller's dominating guard facts."""
        prog = self.summaries.program
        ltree = prog.lifted_trees.get(region)
        if ltree is None:
            self.sum.opaque = True
            return []
        params = ltree[0]
        csum = self.summaries.summary(region, lifted=True)
        env, rootmap = self._site_env(params[:-2], caps)
        chunk_env = dict(env)
        chunk_env["p:__lo"] = aff_atom("chunk:lo")
        chunk_env["p:__hi"] = aff_atom("chunk:hi")
        crecs, _ = self._subst_records(region, csum, chunk_env, rootmap,
                                       span, record_dims=False)
        self.pool_sites.append((region, crecs, list(self.facts),
                                csum.opaque, span))
        env["p:__lo"] = aff_const(0)
        env["p:__hi"] = total
        recs, _ = self._subst_records(region, csum, env, rootmap, span)
        for r in recs:
            self.record(r)
        if csum.opaque:
            self.sum.opaque = True
        return recs

    def _subst_records(self, callee: str, csum: Summary, env: dict,
                       rootmap: dict, span, record_dims: bool = True):
        """Substitute a callee summary's records; returns the list plus
        the per-record substitution function (for escapes)."""
        aliasmap: dict[str, frozenset] = dict(rootmap)
        dim_env = dict(env)
        for root in csum.dims:
            aliasmap.setdefault(root, frozenset({self.fresh("a")}))
        for root, targets in aliasmap.items():
            if len(targets) == 1:
                (t,) = targets
                if t != "?":
                    for k in range(8):
                        dim_env.setdefault(f"d:{root}:{k}",
                                           (self._target_dim(t, k), {}))
        for root, dims in csum.dims.items():
            targets = aliasmap[root]
            if len(targets) == 1:
                (t,) = targets
                if t != "?" and record_dims:
                    self.sum.dims.setdefault(t, tuple(
                        None if d is None else self._poly_subst(d, dim_env)
                        for d in dims))

        def sub(rec: Access) -> list[Access]:
            targets = aliasmap.get(rec.root, frozenset({"?"}))
            chain = (callee,) + rec.chain
            return [self._subst_one(rec, t, dim_env, chain, span)
                    for t in sorted(targets)]

        out: list[Access] = []
        for rec in csum.records:
            out.extend(sub(rec))
        return out, sub

    def _target_dim(self, target: str, k: int) -> Poly:
        known = self.sum.dims.get(target)
        if known is not None and k < len(known) and known[k] is not None:
            return known[k]
        return Poly.atom(f"d:{target}:{k}")

    def _poly_subst(self, p: Poly, env: dict) -> Poly | None:
        v = subst_poly(p, env)
        if v is None or v[1]:
            return None
        return v[0]

    def _subst_one(self, rec: Access, target: str, env: dict,
                   chain: tuple, span) -> Access:
        definite = rec.definite and target != "?"
        if rec.top or target == "?":
            return Access(target, rec.mode, None, (), rec.what, chain,
                          rec.span or span, definite)
        form = subst_poly(rec.base, env)
        ivs: list[IVTerm] = []
        ok = form is not None
        base = None
        if ok:
            base, coeffs = form
            for iv, c in coeffs.items():
                # a caller IV leaked through a scalar argument
                lo, hi = self._iv_bounds(iv)
                ivs.append(IVTerm(iv, c, lo, hi))
            for t in rec.ivs:
                c = self._poly_subst(t.coeff, env)
                if c is None:
                    ok = False
                    break
                lo = None if t.lo is None else self._poly_subst(t.lo, env)
                hi = None if t.hi is None else self._poly_subst(t.hi, env)
                ivs.append(IVTerm(self.fresh("i"), c, lo, hi))
        if not ok:
            return Access(target, rec.mode, None, (), rec.what, chain,
                          rec.span or span, definite)
        return Access(target, rec.mode, base, tuple(ivs), rec.what, chain,
                      rec.span or span, definite)

    # -- statements ----------------------------------------------------------

    def stmt(self, node: Node) -> None:
        p, ch = node.prod, node.children
        if p in ("block", "seqStmt"):
            for s in node_cons_to_list(ch[0]):
                self.stmt(s)
        elif p == "decl":
            if _is_mat_type(ch[0]):
                self.bind(ch[1], frozenset({self.fresh("a")}))
            else:
                self.bind(ch[1], None)
        elif p in ("declInit", "forDecl"):
            self.bind(ch[1], self.expr(ch[2]))
        elif p == "exprStmt":
            self.expr(ch[0])
        elif p == "returnStmt":
            self.expr(ch[0])
        elif p in ("returnVoid", "rawStmt", "breakStmt", "continueStmt"):
            pass
        elif p == "ifStmt":
            self.expr(ch[0])
            self._branches(ch[1], None)
        elif p == "ifElse":
            self.expr(ch[0])
            self._branches(ch[1], ch[2])
        elif p == "forStmt":
            self._for(node)
        elif p in ("whileStmt", "doWhile"):
            body, cond = (ch[1], ch[0]) if p == "whileStmt" else (ch[0], ch[1])
            self._havoc(body)
            self.expr(cond)
            self._loop_body(body)
        else:
            self.sum.opaque = True

    def _branches(self, then_n, else_n) -> None:
        tracker = self.tracker
        saved_scal, saved_mats = dict(self.scal), dict(self.mats)
        nfacts = len(self.facts)
        tsnap = tracker.snapshot() if tracker is not None else None
        self.stmt(then_n)
        scal_t, mats_t = self.scal, self.mats
        tthen = tracker.snapshot() if tracker is not None else None
        self.scal, self.mats = dict(saved_scal), dict(saved_mats)
        if tracker is not None:
            tracker.restore(tsnap)
        if else_n is not None:
            self.stmt(else_n)
        if tracker is not None:
            tracker.merge(tthen)
        # join: keep scalar bindings equal on both paths, union roots;
        # guard facts from inside either arm no longer dominate.
        del self.facts[nfacts:]
        self.scal = {k: v for k, v in self.scal.items()
                     if k in scal_t and scal_t[k] == v}
        self.mats = {k: (v | mats_t.get(k, frozenset({"?"})))
                     for k, v in self.mats.items() if k in mats_t}

    def _havoc(self, body) -> None:
        names: set = set()
        _assigned_names(body, names)
        for n in names:
            if n in self.mats:
                self.mats[n] = self.mats[n] | frozenset({"?"})
            else:
                self.scal[n] = None

    def _loop_body(self, body, iv: str | None = None, rng=None) -> None:
        """Walk a loop body; bodies that spawn are walked twice so
        cross-iteration MHP pairs (a task of iteration *i* vs the
        statements and tasks of iteration *i′*) are observed, with a
        renamed IV the second time."""
        nfacts = len(self.facts)
        rounds = 2 if (self.tracker is not None
                       and _contains_spawn(body)) else 1
        for k in range(rounds):
            name = iv if (iv is None or k == 0) else f"{iv}'"
            if iv is not None:
                self._iv_stack.append(name)
                self._iv_ranges[name] = rng
                self.bind(iv, (Poly.const(0), {name: Poly.const(1)}))
            try:
                self.stmt(body)
            finally:
                if iv is not None:
                    self._iv_stack.pop()
        if iv is not None:
            self.bind(iv, None)
        del self.facts[nfacts:]

    def _for(self, node: Node) -> None:
        init, cond, step, body = node.children
        # canonical header: for (v = lo; v < hi; v = v + 1)
        v = lo_node = None
        if init.prod == "forDecl":
            v, lo_node = init.children[1], init.children[2]
        elif (init.prod == "forExpr"
              and init.children[0].prod == "assign"
              and init.children[0].children[0].prod == "var"):
            v = init.children[0].children[0].children[0]
            lo_node = init.children[0].children[1]
        canonical = (
            v is not None
            and cond.prod == "binop" and cond.children[0] in ("<", "<=")
            and cond.children[1].prod == "var"
            and cond.children[1].children[0] == v
            and step.prod == "assign"
            and step.children[0].prod == "var"
            and step.children[0].children[0] == v
            and step.children[1].prod == "binop"
            and step.children[1].children[0] == "+"
            and step.children[1].children[1].prod == "var"
            and step.children[1].children[1].children[0] == v
            and step.children[1].children[2].prod == "intLit"
            and int(step.children[1].children[2].children[0]) == 1)
        if canonical:
            self.expr(lo_node)
            lo = self.aff(lo_node)
            self.expr(cond.children[2])
            hi = self.aff(cond.children[2])
            if cond.children[0] == "<=":
                hi = aff_add(hi, aff_const(1))
            self._havoc(body)
            self._loop_body(body, iv=v, rng=(lo, hi))
            return
        if init.prod == "forExpr":
            self.expr(init.children[0])
        elif init.prod == "forDecl":
            self.bind(init.children[1], self.expr(init.children[2]))
        self._havoc(body)
        if v is not None:
            self.scal[v] = None
        self.expr(cond)
        self._loop_body(body)
        self.expr(step)


# -- program-wide summaries --------------------------------------------------


class Summaries:
    """Lazy, memoized per-function summaries over a
    :class:`~repro.cexec.bytecode.BytecodeProgram`'s lowered trees,
    joined over the call graph by substitution at call sites.  Cycles
    (recursion) are cut by serving an empty summary for functions
    currently being computed and iterating to a small fixpoint.  The
    final walk of each function (the one whose call sites all saw
    stable callee summaries) is kept, with its MHP tracker, for the
    race pass."""

    def __init__(self, program):
        self.program = program
        self._memo: dict[tuple, Summary] = {}
        self._in_progress: set[tuple] = set()
        self.walkers: dict[tuple, FnAccess] = {}

    def summary(self, name: str, *, lifted: bool = False) -> Summary:
        key = ("lifted" if lifted else "fn", name)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return Summary()  # recursion: start from ⊥, iterate below
        self._in_progress.add(key)
        try:
            prev = Summary()
            cur = prev
            walker = None
            for _ in range(4):
                walker = self._compute(name, lifted)
                cur = walker.sum
                if (len(cur.records) == len(prev.records)
                        and len(cur.escaped) == len(prev.escaped)
                        and cur.opaque == prev.opaque):
                    break
                self._memo[key] = cur  # feed the next iteration
                prev = cur
            else:
                cur.opaque = True  # did not stabilize: widen
            self._memo[key] = cur
            if walker is not None:
                self.walkers[key] = walker
            return cur
        finally:
            self._in_progress.discard(key)

    def _compute(self, name: str, lifted: bool) -> FnAccess:
        table = (self.program.lifted_trees if lifted
                 else self.program.functions)
        entry = table.get(name)
        walker = FnAccess(self, name, entry[0] if entry else [],
                          tracker=MHPTracker(name))
        if entry is None:
            walker.sum.opaque = True
            return walker
        try:
            walker.stmt(entry[1])
        except RecursionError:  # pragma: no cover - degenerate nesting
            walker.sum.opaque = True
        walker.sum.escaped.extend(
            (t.callee, t.records) for t in walker.tracker.active)
        return walker
