"""Refcount balance checking (S25 pass 3).

The refcount extension's hooks insert ``rc_inc``/``rc_dec``/
``rt_assign_copy`` calls during lowering; this pass re-derives the
ownership discipline from the lowered tree and warns when a path can
violate it.  Per matrix-typed local it tracks a pair

    (null-ness,  surplus : Interval)

where *surplus* counts the references this frame acquired through that
name minus the references it released — an interval, so the join of an
acquiring and a non-acquiring path is ``[0, 1]`` and the analysis is
path-sensitive in exactly the way leaks are: a variable whose surplus
lower bound is ≥ 1 at function exit leaks on *every* path, one with
``0 < hi`` leaks on *some* path.  A release that can push the surplus
of a definitely-non-null local below zero is a double-release (the
runtime traps "refcount underflow"); releases of a definitely-NULL
name are the runtime's documented no-op and stay silent.

The pass also runs a **backward liveness** problem (the gen/kill form
of the shared solver) over the same CFG: a release that provably drops
the frame's last reference while the name is still live afterwards is
reported as a use-after-release.

All findings are warnings — the ownership discipline is the lowering's
own invariant, and shipped lowerings maintain it (the "clean examples
are silent" guard in the test suite keeps this pass honest); the
crafted-tree tests exercise each warning.  Parameters are borrowed
(the caller holds a reference) and names declared more than once per
function are untracked, both to avoid false positives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.cfg import CFG, is_stmt_item
from repro.analysis.dataflow import GenKill, solve, solve_genkill
from repro.analysis.shapes import Interval, _is_mat_type
from repro.cminus.absyn import node_cons_to_list
from repro.util.diagnostics import Diagnostics, SourceSpan

PHASE = "analysis.rc"

_INF = math.inf


@dataclass(frozen=True)
class RCState:
    null: str            # "yes" | "no" | "maybe"
    surplus: Interval    # refs held *in the worlds where non-NULL*

    def join(self, other: "RCState") -> "RCState":
        # The surplus is conditioned on non-nullness (a NULL name holds
        # nothing and every rc op on it is a no-op), so joining with a
        # definitely-NULL path keeps the other side's interval exact —
        # this is what lets `p = NULL; if (...) p = alloc(); rc_dec(p)`
        # stay balanced instead of smearing to [0, 1].
        if self.null == "yes" and other.null == "yes":
            return RCState("yes", self.surplus.join(other.surplus))
        if self.null == "yes":
            return RCState("maybe", other.surplus)
        if other.null == "yes":
            return RCState("maybe", self.surplus)
        null = self.null if self.null == other.null else "maybe"
        return RCState(null, self.surplus.join(other.surplus))

    def widen(self, newer: "RCState") -> "RCState":
        return RCState(newer.null, self.surplus.widen(newer.surplus))

    def shifted(self, lo: float, hi: float) -> "RCState":
        s = self.surplus
        # Clamp far below zero: one release too many is already reported.
        return RCState(self.null,
                       Interval(max(s.lo + lo, -2), max(s.hi + hi, -2)))


_NULL = RCState("yes", Interval(0, 0))
_UNKNOWN = RCState("maybe", Interval(0, _INF))

# Lowered rhs forms that hand the frame a fresh owned reference.
_ACQUIRING = frozenset(["rt_allocf", "rt_alloci", "readMatrix"])


def _real_span(span) -> bool:
    """Synthesized rc bookkeeping nodes carry the default span; surface
    statements carry their original one."""
    if span is None:
        return False
    s = span.start
    return not (s.line == 1 and s.column == 0 and s.offset == 0)


def _join(a: dict, b: dict) -> dict:
    out = {}
    for k, v in a.items():
        w = b.get(k)
        if w is not None:
            out[k] = v.join(w)
    return out


def _widen(old: dict, new: dict) -> dict:
    return {k: old[k].widen(v) for k, v in new.items() if k in old}


def _tracked_decls(cfg: CFG) -> dict[str, object]:
    """Matrix-typed locals declared exactly once -> their decl span."""
    counts: dict[str, int] = {}
    spans: dict[str, object] = {}
    mat: set[str] = set()
    for b in cfg.blocks:
        for item in b.items:
            if is_stmt_item(item) and item.prod in ("decl", "declInit",
                                                    "forDecl"):
                name = item.children[1]
                counts[name] = counts.get(name, 0) + 1
                if _is_mat_type(item.children[0]):
                    mat.add(name)
                    spans.setdefault(name, item.span)
    params = set(cfg.params)
    return {n: spans[n] for n in mat
            if counts[n] == 1 and n not in params}


def _reads(n, out: set[str], skip_rc_args: bool = True) -> None:
    """Variable names an expression reads (rc_inc/rc_dec operands are
    bookkeeping, not uses)."""
    p = n.prod
    ch = n.children
    if p == "var":
        out.add(ch[0])
    elif p == "assign":
        _reads(ch[1], out)
    elif p == "call":
        if skip_rc_args and ch[0] in ("rc_inc", "rc_dec"):
            return
        for a in node_cons_to_list(ch[1]):
            _reads(a, out)
    else:
        for c in ch:
            if hasattr(c, "prod"):
                _reads(c, out)


def _writes(item) -> set[str]:
    out: set[str] = set()

    def visit(n):
        if n.prod == "assign" and n.children[0].prod == "var":
            out.add(n.children[0].children[0])
        for c in n.children:
            if hasattr(c, "prod"):
                visit(c)

    if item.prod in ("declInit", "forDecl", "decl"):
        out.add(item.children[1])
    if item.prod == "exprStmt":
        visit(item.children[0])
    elif not is_stmt_item(item):
        visit(item)
    return out


class _RCPass:
    def __init__(self, cfg: CFG, diags: Diagnostics | None,
                 tracked: dict[str, object],
                 live_after: dict[tuple[int, int], frozenset] | None = None):
        self.cfg = cfg
        self.diags = diags
        self.tracked = tracked
        self.live_after = live_after or {}
        self.reported: set[tuple[str, str]] = set()
        self.site: tuple[int, int] | None = None  # (bid, item index)
        self.last_span = None  # best real span seen so far (fallback)

    def warn(self, var: str, kind: str, message: str, span) -> None:
        if self.diags is None or (var, kind) in self.reported:
            return
        self.reported.add((var, kind))
        if not _real_span(span):
            span = self.last_span
        self.diags.warning(message, span if span is not None
                           else SourceSpan(), PHASE)

    # -- events --------------------------------------------------------------

    def rc_dec(self, name: str, st: dict, span) -> None:
        cur = st.get(name)
        if cur is None or cur.null == "yes":
            return  # untracked, or releasing NULL: documented no-op
        if cur.null == "no" and cur.surplus.hi <= 0:
            self.warn(
                name, "double",
                f"matrix '{name}' is released more often than it is "
                "acquired on this path (refcount underflow at run time)",
                span)
        if (cur.null == "no" and cur.surplus.hi <= 1
                and self.live_after.get(self.site) is not None
                and name in self.live_after[self.site]):
            self.warn(
                name, "uar",
                f"matrix '{name}' may be used after its last reference "
                "is released here", span)
        # In every world where the name is non-NULL the dec fires.
        st[name] = cur.shifted(-1, -1)

    def rc_inc(self, name: str, st: dict) -> None:
        cur = st.get(name)
        if cur is None or cur.null == "yes":
            return
        st[name] = cur.shifted(1, 1)

    def assign(self, name: str, rhs, st: dict, span) -> None:
        if name not in self.tracked:
            return
        old = st.get(name)
        if rhs.prod == "call":
            callee = rhs.children[0]
            args = node_cons_to_list(rhs.children[1])
            if callee == "rt_assign_copy":
                # `v = rt_assign_copy(v, src)`: the old reference is
                # consumed inside, the result is owned; src's handle is
                # consumed either way (released, or returned as v).
                if len(args) > 1 and args[1].prod == "var":
                    src = st.get(args[1].children[0])
                    if src is not None:
                        st[args[1].children[0]] = src.shifted(-1, 0)
                src_null = (st.get(args[1].children[0]).null
                            if len(args) > 1 and args[1].prod == "var"
                            and args[1].children[0] in st else "maybe")
                st[name] = RCState(
                    src_null, old.surplus if old is not None
                    else Interval(0, 0))
                return
            # Any other call producing a matrix hands the frame an owned
            # reference (the callee's ``lower_return`` secured it); the
            # runtime allocators additionally guarantee non-NULL.
            if old is not None and old.null == "no" \
                    and old.surplus.lo >= 1:
                self.warn(
                    name, "overwrite",
                    f"assignment overwrites matrix '{name}' while it "
                    "still holds an owned reference (leak)", span)
            st[name] = (RCState("no", Interval(1, 1))
                        if callee in _ACQUIRING
                        else RCState("maybe", Interval(1, 1)))
            return
        if rhs.prod == "rawExpr" and rhs.children[0] == "NULL":
            st[name] = _NULL
            return
        if rhs.prod == "var":
            # Plain var-to-var binding is the lowering's ownership-transfer
            # idiom (``forget_temp``): the gensym temp's owned reference
            # MOVES to the destination and the source is never released
            # through its own name again.
            src = rhs.children[0]
            other = st.get(src)
            if other is not None:
                st[name] = other
                st[src] = RCState(other.null, Interval(0, 0))
            else:
                st[name] = RCState("maybe", Interval(0, 0))
            return
        st[name] = _UNKNOWN

    # -- expression / item walk ----------------------------------------------

    def expr(self, n, st: dict) -> None:
        p = n.prod
        ch = n.children
        if p == "call":
            name = ch[0]
            args = node_cons_to_list(ch[1])
            if name in ("rc_inc", "rc_dec") and len(args) == 1 \
                    and args[0].prod == "var":
                if name == "rc_dec":
                    self.rc_dec(args[0].children[0], st, n.span)
                else:
                    self.rc_inc(args[0].children[0], st)
                return
            for a in args:
                self.expr(a, st)
        elif p == "assign":
            self.expr(ch[1], st)
            if ch[0].prod == "var":
                self.assign(ch[0].children[0], ch[1], st, n.span)
        else:
            for c in ch:
                if hasattr(c, "prod"):
                    self.expr(c, st)

    def block(self, block, st: dict) -> dict:
        st = dict(st)
        for i, item in enumerate(block.items):
            self.site = (block.bid, i)
            if _real_span(getattr(item, "span", None)):
                self.last_span = item.span
            p = item.prod
            if p == "decl":
                if item.children[1] in self.tracked:
                    st[item.children[1]] = _NULL
            elif p in ("declInit", "forDecl"):
                self.expr(item.children[2], st)
                if item.children[1] in self.tracked:
                    self.assign(item.children[1], item.children[2], st,
                                item.span)
            elif p == "exprStmt":
                self.expr(item.children[0], st)
            elif p == "returnStmt":
                self.expr(item.children[0], st)
                # The returned value carries one reference out of the
                # frame — a bare ``return v`` as well as a compound value
                # that embeds the variable (e.g. a tuple literal).  The
                # matching rc_inc happened just before for locals/params;
                # temps were already owned.
                escaped: set[str] = set()
                _reads(item.children[0], escaped)
                for rn in escaped:
                    cur = st.get(rn)
                    if cur is not None and cur.null != "yes":
                        s = cur.surplus
                        st[rn] = RCState(
                            cur.null,
                            Interval(max(s.lo - 1, 0), max(s.hi - 1, 0)))
            elif p in ("returnVoid", "rawStmt"):
                pass
            else:
                self.expr(item, st)
        self.site = None
        return st


def _item_liveness(cfg: CFG, tracked: frozenset
                   ) -> dict[tuple[int, int], frozenset]:
    """live-after set per (block, item) via the backward gen/kill
    solver, refined to item granularity inside each block."""
    gen_block: dict[int, GenKill] = {}
    per_item: dict[int, list[tuple[frozenset, frozenset]]] = {}
    for b in cfg.blocks:
        live_gen: frozenset = frozenset()
        kill: frozenset = frozenset()
        rows = []
        for item in b.items:
            reads: set[str] = set()
            if item.prod in ("declInit", "forDecl"):
                _reads(item.children[2], reads)
            elif item.prod == "exprStmt":
                _reads(item.children[0], reads)
            elif item.prod == "returnStmt":
                _reads(item.children[0], reads)
            elif not is_stmt_item(item):
                _reads(item, reads)
            g = frozenset(reads) & tracked
            k = frozenset(_writes(item)) & tracked
            rows.append((g, k))
        per_item[b.bid] = rows
        for g, k in reversed(rows):
            live_gen = g | (live_gen - k)
            kill = kill | k
        gen_block[b.bid] = GenKill(live_gen, kill)

    sol = solve_genkill(cfg, gen_block, direction="backward",
                        may=True, boundary=frozenset())
    live_after: dict[tuple[int, int], frozenset] = {}
    for b in cfg.blocks:
        if b.bid not in sol:
            continue
        # backward problem: sol[bid] = (state at block end, at block start)
        live = sol[b.bid][0]
        for i in range(len(b.items) - 1, -1, -1):
            live_after[(b.bid, i)] = live
            g, k = per_item[b.bid][i]
            live = g | (live - k)
    return live_after


def check_rc_balance(cfg: CFG, diags: Diagnostics) -> None:
    """Run the pass on one function CFG, emitting into ``diags``."""
    tracked = _tracked_decls(cfg)
    if not tracked:
        return
    silent = _RCPass(cfg, None, tracked)
    states = solve(
        cfg, silent.block, join=_join, entry_state={}, init={},
        direction="forward", widen=_widen, widen_after=3,
    )
    live_after = _item_liveness(cfg, frozenset(tracked))
    reporter = _RCPass(cfg, diags, tracked, live_after)
    for bid in sorted(cfg.reachable()):
        reporter.block(cfg.blocks[bid], states[bid][0])
    # Leak checks against the state flowing into the exit block.
    exit_state = states.get(cfg.exit, ({}, {}))[0]
    for name, span in sorted(tracked.items()):
        cur = exit_state.get(name)
        if cur is None or cur.null == "yes":
            continue
        if cur.surplus.lo >= 1:
            where = ("" if cur.null == "no"
                     else " on every path where it is allocated")
            reporter.warn(
                name, "leak",
                f"matrix '{name}' still holds an owned reference at "
                f"function exit{where} (leak)", span)
        elif cur.surplus.lo <= 0 < cur.surplus.hi \
                and math.isfinite(cur.surplus.hi):
            reporter.warn(
                name, "leak",
                f"matrix '{name}' leaks its reference on some paths "
                "through the function", span)
