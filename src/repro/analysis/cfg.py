"""Per-function control-flow graphs over lowered CMINUS bodies.

The dataflow passes (S25) run on the *lowered* plain-C trees — the same
representation the C printer, tree-walker and bytecode compiler consume
— so one CFG serves every analysis and anything the analyses prove holds
for all three execution paths.

A :class:`Block` holds a straight-line list of *items*:

* simple statement nodes (``decl``/``declInit``/``exprStmt``/
  ``returnStmt``/``returnVoid``/``rawStmt``/``forDecl``), appended
  verbatim, and
* bare expression nodes — branch conditions (and ``for`` step
  expressions), recognizable by their expression production names.

A block that ends in a condition has exactly two labeled successor
edges, ``True`` (condition held) and ``False``; straight-line edges are
labeled ``None``.  ``break``/``continue``/``return`` end their block
with an unconditional edge, and statements behind them land in an
unreachable block that :meth:`CFG.rpo` never visits — dead code cannot
produce diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ag.tree import Node
from repro.cminus.absyn import node_cons_to_list

# Productions that appear as statement items; anything else in an item
# list is a bare (condition/step) expression.
STMT_ITEM_PRODS = frozenset([
    "decl", "declInit", "forDecl", "exprStmt",
    "returnStmt", "returnVoid", "rawStmt",
])


def is_stmt_item(item: Node) -> bool:
    return item.prod in STMT_ITEM_PRODS


@dataclass
class Block:
    """One basic block: straight-line items plus labeled out-edges."""

    bid: int
    items: list[Node] = field(default_factory=list)
    succs: list[tuple[int, bool | None]] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)

    def __repr__(self) -> str:  # tests/debugging
        outs = ", ".join(
            f"{t}" + ("" if lbl is None else f"[{lbl}]")
            for t, lbl in self.succs)
        return f"<B{self.bid} items={len(self.items)} -> {outs or '-'}>"


@dataclass
class CFG:
    """Control-flow graph of one function (or lifted worker) body."""

    name: str
    params: list[str]
    blocks: list[Block]
    entry: int
    exit: int
    _rpo: list[int] | None = field(default=None, repr=False)

    def rpo(self) -> list[int]:
        """Reverse-postorder block ids, entry first; unreachable blocks
        are excluded (the exit block is appended if disconnected so
        at-exit checks always run)."""
        if self._rpo is None:
            seen: set[int] = set()
            post: list[int] = []
            # Iterative DFS (lowered trees can nest loops deeply).
            stack: list[tuple[int, int]] = [(self.entry, 0)]
            seen.add(self.entry)
            while stack:
                bid, i = stack.pop()
                succs = self.blocks[bid].succs
                if i < len(succs):
                    stack.append((bid, i + 1))
                    nxt = succs[i][0]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    post.append(bid)
            order = list(reversed(post))
            if self.exit not in seen:
                order.append(self.exit)
            self._rpo = order
        return self._rpo

    def reachable(self) -> set[int]:
        return set(self.rpo())


class _Builder:
    def __init__(self, name: str, params: list[str]):
        self.name = name
        self.params = params
        self.blocks: list[Block] = []
        self.entry = self._new()
        self.exit = self._new()
        self.cur = self.entry
        # (break target, continue target) per enclosing loop
        self.loops: list[tuple[int, int]] = []

    def _new(self) -> int:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b.bid

    def _edge(self, a: int, b: int, label: bool | None = None) -> None:
        self.blocks[a].succs.append((b, label))
        self.blocks[b].preds.append(a)

    def _append(self, item: Node) -> None:
        self.blocks[self.cur].items.append(item)

    def _terminate(self, target: int, label: bool | None = None) -> None:
        """End the current block with an edge; code behind it is dead."""
        self._edge(self.cur, target, label)
        self.cur = self._new()  # unreachable successor block

    # -- statements ----------------------------------------------------------

    def stmt(self, node: Node) -> None:
        p = node.prod
        ch = node.children
        if p in ("block", "seqStmt"):
            for s in node_cons_to_list(ch[0]):
                self.stmt(s)
        elif p in ("decl", "declInit", "exprStmt", "rawStmt"):
            self._append(node)
        elif p == "ifStmt":
            self._append(ch[0])
            then_b = self._new()
            after = self._new()
            self._edge(self.cur, then_b, True)
            self._edge(self.cur, after, False)
            self.cur = then_b
            self.stmt(ch[1])
            self._edge(self.cur, after)
            self.cur = after
        elif p == "ifElse":
            self._append(ch[0])
            then_b = self._new()
            else_b = self._new()
            after = self._new()
            self._edge(self.cur, then_b, True)
            self._edge(self.cur, else_b, False)
            self.cur = then_b
            self.stmt(ch[1])
            self._edge(self.cur, after)
            self.cur = else_b
            self.stmt(ch[2])
            self._edge(self.cur, after)
            self.cur = after
        elif p == "whileStmt":
            head = self._new()
            self._edge(self.cur, head)
            self.blocks[head].items.append(ch[0])
            body = self._new()
            after = self._new()
            self._edge(head, body, True)
            self._edge(head, after, False)
            self.loops.append((after, head))
            self.cur = body
            self.stmt(ch[1])
            self._edge(self.cur, head)
            self.loops.pop()
            self.cur = after
        elif p == "doWhile":
            body = self._new()
            cond_b = self._new()
            after = self._new()
            self._edge(self.cur, body)
            self.loops.append((after, cond_b))
            self.cur = body
            self.stmt(ch[0])
            self._edge(self.cur, cond_b)
            self.loops.pop()
            self.blocks[cond_b].items.append(ch[1])
            self._edge(cond_b, body, True)
            self._edge(cond_b, after, False)
            self.cur = after
        elif p == "forStmt":
            init, cond, step, body_n = ch
            if init.prod == "forDecl":
                self._append(init)
            else:  # forExpr: bare init expression
                self._append(init.children[0])
            head = self._new()
            self._edge(self.cur, head)
            self.blocks[head].items.append(cond)
            body = self._new()
            step_b = self._new()
            after = self._new()
            self._edge(head, body, True)
            self._edge(head, after, False)
            self.loops.append((after, step_b))
            self.cur = body
            self.stmt(body_n)
            self._edge(self.cur, step_b)
            self.loops.pop()
            self.blocks[step_b].items.append(step)
            self._edge(step_b, head)
            self.cur = after
        elif p in ("returnStmt", "returnVoid"):
            self._append(node)
            self._terminate(self.exit)
        elif p == "breakStmt":
            self._terminate(self.loops[-1][0])
        elif p == "continueStmt":
            self._terminate(self.loops[-1][1])
        else:  # extension-specific residue would be a lowering bug
            raise ValueError(f"cannot build CFG for statement {p!r}")

    def finish(self, body: Node) -> CFG:
        self.stmt(body)
        self._edge(self.cur, self.exit)
        return CFG(self.name, self.params, self.blocks, self.entry, self.exit)


def build_cfg(name: str, params: list[str], body: Node) -> CFG:
    """CFG of one lowered function body."""
    return _Builder(name, params).finish(body)


def function_cfgs(lowered_root: Node, ctx=None) -> dict[str, CFG]:
    """CFGs for every function of a lowered program, plus the lifted
    pool-worker bodies registered on ``ctx`` (keyed by worker name, with
    their captures + chunk bounds as parameters, exactly as the VM runs
    them).  Cilk ``SpawnedFunc`` records carry no tree body and are
    skipped — their callees are ordinary functions."""
    cfgs: dict[str, CFG] = {}
    for f in node_cons_to_list(lowered_root.children[0]):
        _rett, fname, params, body = f.children
        pnames = [p.children[1] for p in node_cons_to_list(params)]
        cfgs[fname] = build_cfg(fname, pnames, body)
    for lf in getattr(ctx, "lifted", []) if ctx is not None else []:
        if hasattr(lf, "body"):
            names = [n for _t, n in lf.captures]
            cfgs[lf.name] = build_cfg(
                lf.name, names + ["__lo", "__hi"], lf.body)
    return cfgs
