"""S25 static-analysis layer: CFGs, a generic dataflow solver, and the
domain passes behind ``reproc check``.

The paper's claim that extended programs are "checked for
domain-specific errors" before translation is realized here, one level
above the attribute-grammar analyses: per-function control-flow graphs
over the *lowered* plain-C trees, a worklist solver
(forward/backward, gen/kill and lattice-join), and four passes —

* :mod:`repro.analysis.initialized` — definite assignment,
* :mod:`repro.analysis.shapes` — matrix shape/bounds intervals,
* :mod:`repro.analysis.rcbalance` — refcount balance,
* :mod:`repro.analysis.parsafety` — explainable parallel safety (the
  S23 hazard fixpoint, shared with the VM via
  ``BytecodeProgram.safety``).
"""

from repro.analysis.callgraph import CallGraph, Effect
from repro.analysis.cfg import CFG, Block, build_cfg, function_cfgs
from repro.analysis.dataflow import GenKill, solve, solve_genkill
from repro.analysis.parsafety import (
    Blocker, ParallelSafety, ParallelVerdict, analyze_parallel,
)
from repro.analysis.report import AnalysisReport, analyze_result

__all__ = [
    "AnalysisReport", "Block", "Blocker", "CallGraph", "CFG", "Effect",
    "GenKill", "ParallelSafety", "ParallelVerdict", "analyze_parallel",
    "analyze_result", "build_cfg", "function_cfgs", "solve",
    "solve_genkill",
]
