"""The parallel-eligibility hazard vocabulary (S23/S25).

The fork-join pool may only move code off the owning thread when doing
so cannot change observable behavior.  These constants name the effects
that can make movement observable; they were born in
:mod:`repro.cexec.bytecode` (S23) and moved here when the hazard
fixpoint was reimplemented as a shared interprocedural analysis (S25) —
:mod:`repro.cexec.bytecode` re-exports them for compatibility.

This module is import-free on purpose: both the bytecode compiler and
the analysis package depend on it, in that order, with no cycle.
"""

from __future__ import annotations

H_IO = "io"          # file I/O: cross-shard ordering would be observable
H_PRINT = "print"    # stdout: shards buffer + merge, tasks cannot
H_TRAP = "trap"      # may raise: a pooled task would move the raise site
H_POOL = "pool"      # nested parallel region: region_sizes ordering
H_RC = "rc"          # refcount mutation: frees would reorder across tasks
H_SPAWN = "spawn"    # spawns sub-tasks (informational; never a blocker)

ALL_HAZARDS = frozenset([H_IO, H_PRINT, H_TRAP, H_POOL, H_RC, H_SPAWN])

# A with-loop/matrixMap shard re-raises the lowest-index trap and merges
# buffered stats/stdout in shard order, so only cross-shard file I/O is
# genuinely order-observable.
SHARD_BLOCKERS = frozenset([H_IO])
# A pooled Cilk task runs to completion off-thread with no deterministic
# merge point before its sync, so anything ordered blocks it: traps (the
# elided run raises at the spawn point), prints, file I/O, refcount
# frees, and nested regions (ordered region_sizes trace).
TASK_BLOCKERS = frozenset([H_IO, H_PRINT, H_TRAP, H_POOL, H_RC])
# A shard moved into a *process* worker (S27) sees copies of the capture
# matrices in shared memory; element writes copy back deterministically,
# but refcount mutations would act on per-process copies of the count
# and frees on the worker side would not free anything in the parent —
# so rc traffic joins I/O as a process blocker.  Everything buffered
# (prints, stats) or merged (traps) ships back over the result pipe.
PROCESS_BLOCKERS = frozenset([H_IO, H_RC])

# Opcodes that can raise (div/mod by zero, float->int of inf/nan, OOB
# element access, refcount underflow, fastloop commit of a trapping
# plan).  Pure arithmetic, moves and jumps cannot.
TRAP_OPS = frozenset([
    "/", "%", "cast_int", "rt_getf", "rt_setf", "rt_geti", "rt_seti",
    "rt_dim", "rc_dec", "fastloop",
])

# One-line, user-facing gloss per hazard for `reproc check
# --explain-parallel` (see repro.analysis.parsafety).
HAZARD_GLOSS = {
    H_IO: "file I/O whose cross-shard order would be observable",
    H_PRINT: "prints to stdout (tasks have no ordered merge point)",
    H_TRAP: "may trap at run time (a pooled task would move the raise site)",
    H_POOL: "opens a nested parallel region (ordered region trace)",
    H_RC: "mutates reference counts (frees would reorder across tasks)",
    H_SPAWN: "spawns sub-tasks",
}
