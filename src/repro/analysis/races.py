"""Static data-race detection with affine disjointness proofs (S30,
pass 3).

This pass consumes the other two S30 layers — the per-function access
summaries (:mod:`repro.analysis.access`) and the may-happen-in-parallel
pairs (:mod:`repro.analysis.mhp`) — and answers three questions:

**Reports** — for every MHP pair where one side writes, can the two
index sets be *refuted* (proven disjoint)?  Refutation uses, in order:

1. *cancellation*: the polynomial difference of the two affine forms
   collapses to a nonzero constant (``m[i]`` vs ``m[i + 1]``);
2. *GCD/parity*: all IV coefficients are integer constants with a
   common divisor the constant difference does not share (``m[2*i]``
   vs ``m[2*j + 1]``);
3. *interval*: constant IV ranges put the difference strictly above or
   below zero (``m[i]``, i < 50, vs ``m[50 + j]``, j >= 0).

A same-root pair that survives refutation is reported with an
S25-style witness chain ("task 'f' writes m[base + i]; continuation
reads m[5]; no sync between — via 'g'").  Pairs whose matrix identity
is uncertain (⊤ roots, may-aliasing parameters) *block clearance* but
are never reported — the corpus false-positive bar is absolute.

**Task clearance** — a spawn callee whose only S25 task blocker is the
trap hazard becomes pool-eligible when every trap source is an element
access (or its fused-loop fallback), every access of every spawn site
is proven in bounds of its (constant-shape) matrix, and no unrefuted
MHP pair touches any function reachable from it.  The cleared verdict
feeds :meth:`repro.analysis.parsafety.ParallelSafety.task_safe`, so
the VM's ``_spawn`` gate and ``reproc check --explain-parallel`` move
together.

**Shard certificates** — for each ``__rt_pool_run`` site, two distinct
chunks ``[lo, hi)`` and ``[lo', hi')`` of the region are compared with
the chunk bounds held symbolic.  The mixed-radix argument (the chunk
axis stride covers the value span of every inner axis, spans bounded
by the caller's dominating ``rt_bounds_check`` facts) certifies the
writes disjoint; the certificate is surfaced in the VM's bail ledger.

``REPRO_NO_RACE_CHECK=1`` disables the whole pass: clearance returns
nothing and every eligibility decision is bit-for-bit what S29 made.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.analysis.access import READ, WRITE, Access, Summaries, subst_poly
from repro.analysis.callgraph import CallGraph
from repro.analysis.hazards import H_TRAP, TASK_BLOCKERS
from repro.ir.affine import Poly

#: Trap evidence compatible with clearance: traps made impossible by
#: the in-bounds proof (element accesses and their fused-loop
#: fallback) or only raisable on malformed lowering (axis literals).
_BENIGN_TRAPS = frozenset({
    "matrix element read may trap (index out of range)",
    "matrix element write may trap (index out of range)",
    "dimension query may trap (axis out of range)",
    "fused numpy loop may trap on its scalar fallback",
})


def race_check_disabled() -> bool:
    return os.environ.get("REPRO_NO_RACE_CHECK", "") not in ("", "0")


@dataclass(frozen=True)
class RaceFinding:
    """One reported (unrefuted, definite-identity) race."""

    fn: str                     # function whose execution exhibits it
    kind: str                   # "task-cont" | "task-task" | "spawn-target"
    proven: bool                # True: provably the same element
    message: str
    witness: tuple[str, ...] = ()
    span: object = None

    def lines(self) -> list[str]:
        out = [f"race: {self.message}"]
        out.extend(f"    {w}" for w in self.witness)
        return out


@dataclass
class RaceAnalysis:
    """Program-wide result of the S30 race pass."""

    findings: list[RaceFinding] = field(default_factory=list)
    #: spawn callee -> proof sentence (race-free, pool-eligible)
    cleared: dict[str, str] = field(default_factory=dict)
    #: spawn callee considered for clearance -> why it stays blocked
    blocked: dict[str, str] = field(default_factory=dict)
    #: pool region -> (proven, certificate / reason)
    certificates: dict[str, tuple] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def race_cleared(self, name: str) -> bool:
        return name in self.cleared


# -- index refutation --------------------------------------------------------


def _const(p) -> int | None:
    return None if p is None else p.constant


def refute(r1: Access, r2: Access) -> str:
    """Compare two access index forms of the *same* matrix: returns
    ``"disjoint"`` (proven never the same element), ``"same"`` (proven
    always the same element), or ``"unknown"``.  IVs with the same name
    denote the same runtime value (a task and its continuation inside
    one loop iteration share the iteration's IV); cross-iteration pairs
    arrive with renamed IVs."""
    if r1.top or r2.top:
        return "unknown"
    coeffs: dict[str, list] = {}
    for rec, sign in ((r1, 1), (r2, -1)):
        for t in rec.ivs:
            ent = coeffs.setdefault(t.name, [Poly.const(0), t.lo, t.hi])
            ent[0] = ent[0] + t.coeff if sign > 0 else ent[0] - t.coeff
    base = r1.base - r2.base
    live = {n: (c, lo, hi) for n, (c, lo, hi) in coeffs.items()
            if c.constant != 0}
    if not live:
        c = base.constant
        if c == 0:
            return "same"
        return "disjoint" if c is not None else "unknown"
    # vacuous: an IV with a provably empty range never produces an access
    for _n, (_c, lo, hi) in live.items():
        clo, chi = _const(lo), _const(hi)
        if clo is not None and chi is not None and chi <= clo:
            return "disjoint"
    b = base.constant
    ccoeffs = [c.constant for c, _lo, _hi in live.values()]
    if b is not None and all(c is not None for c in ccoeffs):
        g = math.gcd(*(abs(c) for c in ccoeffs))
        if g > 1 and b % g != 0:
            return "disjoint"
        lo_sum = hi_sum = b
        bounded = True
        for c, lo, hi in live.values():
            clo, chi = _const(lo), _const(hi)
            if clo is None or chi is None:
                bounded = False
                break
            a1, a2 = c.constant * clo, c.constant * (chi - 1)
            lo_sum += min(a1, a2)
            hi_sum += max(a1, a2)
        if bounded and (lo_sum > 0 or hi_sum < 0):
            return "disjoint"
    return "unknown"


def roots_relation(a: str, b: str) -> str:
    """``"same"`` / ``"distinct"`` / ``"maybe"`` for two summary roots.
    Allocation roots (``a:``/``i:``) are fresh objects: distinct from
    every other root.  Two different parameter roots may alias (a
    caller can pass one matrix twice); ``?`` may alias anything."""
    if a == b and a != "?":
        return "same"
    if a == "?" or b == "?":
        return "maybe"
    if a.startswith(("a:", "i:")) or b.startswith(("a:", "i:")):
        return "distinct"
    return "maybe"  # two distinct p: roots


# -- in-bounds proofs --------------------------------------------------------


def record_in_bounds(rec: Access, dims) -> bool:
    """Is ``rec``'s whole index range provably within ``[0, size)`` of
    a matrix with the given constant shape?"""
    if rec.top or dims is None:
        return False
    size = 1
    for d in dims:
        c = _const(d)
        if c is None:
            return False
        size *= c
    lo = hi = _const(rec.base)
    if lo is None:
        return False
    for t in rec.ivs:
        c, tlo, thi = _const(t.coeff), _const(t.lo), _const(t.hi)
        if c is None or tlo is None or thi is None:
            return False
        if thi <= tlo:
            return True  # empty range: the access never happens
        a1, a2 = c * tlo, c * (thi - 1)
        lo += min(a1, a2)
        hi += max(a1, a2)
    return 0 <= lo and hi < size


# -- shard disjointness (mixed-radix argument) -------------------------------

_CHUNK_ATOMS = ("chunk:lo", "chunk:hi")


def _mentions_chunk(p) -> bool:
    return p is not None and bool(p.atoms() & set(_CHUNK_ATOMS))


def _prime(p):
    """Rename the symbolic chunk bounds to the second chunk's."""
    if p is None:
        return None
    env = {a: (Poly.atom(a + "'"), {}) for a in _CHUNK_ATOMS}
    v = subst_poly(p, env)
    return None if v is None or v[1] else v[0]


def _positive_monomial(p: Poly) -> bool:
    """Every term has a nonnegative coefficient and at least one is
    positive — with atoms standing for axis lengths (>= 0), the value
    is >= 0 wherever it is nonzero."""
    if not p.terms:
        return False
    return all(c > 0 for c in p.terms.values())


def chunk_disjoint(w: Access, r: Access, facts: list) -> tuple:
    """Prove that ``w`` executed for chunk ``[chunk:lo, chunk:hi)``
    and ``r`` executed for a *different* chunk never touch the same
    element.  Returns ``(proven, reason)``.

    Requires both indices to depend on a chunk-ranged axis in the same
    way; the remaining axes must pair up with equal coefficients and
    ranges, their total span bounded below the chunk stride by the
    dominating guard facts (span_k <= dim_k and the stride is the
    mixed-radix product of inner dims)."""
    if w.top or r.top:
        return False, f"{w.what or 'a write'}: index not affine"
    wchunk = [t for t in w.ivs
              if _mentions_chunk(t.lo) or _mentions_chunk(t.hi)]
    rchunk = [t for t in r.ivs
              if _mentions_chunk(t.lo) or _mentions_chunk(t.hi)]
    if len(wchunk) != 1 or len(rchunk) != 1:
        return False, f"{w.what}: no single chunk-driven axis"
    cw, cr = wchunk[0], rchunk[0]
    if _mentions_chunk(cw.coeff) or cw.lo is None or cw.hi is None \
            or cr.lo is None or cr.hi is None:
        return False, f"{w.what}: chunk axis not affine in the chunk bounds"
    # chunk axis value set must be exactly offset + [chunk:lo, chunk:hi)
    off_w = cw.lo - Poly.atom("chunk:lo")
    if _mentions_chunk(off_w) or (cw.hi - Poly.atom("chunk:hi")) != off_w:
        return False, f"{w.what}: chunk axis range is not the chunk itself"
    off_r = cr.lo - Poly.atom("chunk:lo")
    if _mentions_chunk(off_r) or (cr.hi - Poly.atom("chunk:hi")) != off_r:
        return False, f"{r.what}: chunk axis range is not the chunk itself"
    if off_w != off_r or cw.coeff != cr.coeff:
        return False, f"{w.what} vs {r.what}: chunk axes differ"
    if _mentions_chunk(w.base) or _mentions_chunk(r.base) \
            or w.base != r.base:
        return False, f"{w.what} vs {r.what}: bases differ"
    stride = cw.coeff
    # pair up the inner axes by (coeff, range)
    rest_w = [t for t in w.ivs if t is not cw]
    rest_r = list(t for t in r.ivs if t is not cr)
    spans: list[tuple] = []  # (coeff, lo, hi) of each paired inner axis
    for t in rest_w:
        match = next(
            (u for u in rest_r
             if u.coeff == t.coeff and u.lo == t.lo and u.hi == t.hi), None)
        if match is None:
            return False, f"{w.what} vs {r.what}: inner axes differ"
        rest_r.remove(match)
        if t.lo is None or t.hi is None:
            return False, f"{w.what}: inner axis has unknown range"
        spans.append((t.coeff, t.lo, t.hi))
    if rest_r:
        return False, f"{w.what} vs {r.what}: inner axes differ"
    # |sum inner_k| <= sum coeff_k * (span_k - 1) < |stride|
    budget = stride
    for coeff, lo, hi in spans:
        if not _positive_monomial(coeff):
            return False, f"{w.what}: inner coefficient sign unknown"
        span = None
        cs, clo, chi = _const(coeff), _const(lo), _const(hi)
        if clo is not None and chi is not None:
            span = Poly.const(max(chi - clo, 1))
        else:
            for flo, fhi, fdim in facts:
                if flo[1] or fhi[1]:  # facts must be loop-invariant
                    continue
                if flo[0] == lo and fhi[0] == hi:
                    span = fdim[0] if not fdim[1] else None
                    break
        if span is None:
            return False, (f"{w.what}: no guard bounds the inner axis "
                           f"[{lo!r}, {hi!r})")
        budget = budget - coeff * (span - Poly.const(1))
        del cs
    slack = budget.constant
    if slack is None or slack < 1:
        if not spans and _positive_monomial(stride):
            # stride >= 1 whenever any inner iteration exists is not
            # derivable without an inner axis; require a constant
            return False, f"{w.what}: chunk stride not provably nonzero"
        return False, (f"{w.what}: chunk stride does not cover the "
                       f"inner extent")
    return True, (f"{w.what} is injective across chunks (stride covers "
                  f"the guarded inner extent)")


def prove_shard(region: str, crecs: list, facts: list,
                opaque: bool) -> tuple:
    """Disjointness certificate for one pool region's chunks."""
    if opaque:
        return False, "worker body not fully analyzable"
    writes = [r for r in crecs if r.mode == WRITE]
    if not writes:
        return True, "read-only region: shards share no written element"
    for w in writes:
        if w.root == "?":
            return False, f"{w.what}: written matrix identity unknown"
        if w.top:
            return False, f"{w.what or 'a write'}: index not affine"
    for w in writes:
        for r in crecs:
            rel = roots_relation(w.root, r.root)
            if rel == "distinct":
                continue
            if rel == "maybe":
                return False, (f"{w.what} vs {r.what}: matrices may "
                               f"alias")
            ok, why = chunk_disjoint(w, r, facts)
            if not ok:
                return False, why
    n = len(writes)
    return True, (f"{n} write{'s' if n != 1 else ''} proven disjoint "
                  f"across chunks (affine mixed-radix injectivity)")


# -- the program-level pass --------------------------------------------------


def _fmt_span(span) -> str:
    if span is None:
        return ""
    start = getattr(span, "start", None)
    return str(start) if start is not None else str(span)


def _chain_suffix(chain: tuple) -> str:
    if not chain:
        return ""
    return " via " + " -> ".join(f"'{c}'" for c in chain)


def analyze_races(program) -> RaceAnalysis:
    """Run the full S30 pass over a compiled program.  Raises only on
    internal errors; callers wanting best-effort behavior (the VM
    eligibility gate) wrap this in :func:`race_analysis_for`."""
    summaries = Summaries(program)
    for fname in program.functions:
        summaries.summary(fname)

    out = RaceAnalysis()
    seen: set = set()
    #: functions during whose execution some unrefuted pair arises
    tainted: set[str] = set()
    #: spawn callees participating in an unrefuted pair
    tainted_callees: set[str] = set()
    #: spawn callee -> list of (walker, Task)
    spawned: dict[str, list] = {}

    def add_finding(f: RaceFinding) -> None:
        key = (f.fn, f.kind, f.message, _fmt_span(f.span))
        if key not in seen:
            seen.add(key)
            out.findings.append(f)

    for key, walker in sorted(summaries.walkers.items()):
        kind_, fname = key
        tracker = walker.tracker
        for task in tracker.tasks:
            spawned.setdefault(task.callee, []).append((walker, task))
        for pair in tracker.pairs:
            task = pair.task
            if pair.kind == "var":
                tainted.add(fname)
                tainted_callees.add(task.callee)
                msg = (f"task '{task.callee}' is pending; continuation "
                       f"{pair.var_mode}s its spawn target "
                       f"'{pair.var}' before sync")
                add_finding(RaceFinding(
                    fname, "spawn-target", True, msg,
                    (f"spawned at {_fmt_span(task.span)}; "
                     f"touched at {_fmt_span(pair.span)}",), pair.span))
                continue
            if pair.kind == "cont":
                others = [(pair.access, "continuation",
                           pair.access.chain)]
                okind = "task-cont"
            else:
                others = [(rec, f"sibling task '{pair.other.callee}'",
                           rec.chain[1:]
                           if rec.chain[:1] == (pair.other.callee,)
                           else rec.chain)
                          for rec in pair.other.records]
                okind = "task-task"
            for trec in task.records:
                for orec, owho, ochain in others:
                    if trec.mode != WRITE and orec.mode != WRITE:
                        continue
                    rel = roots_relation(trec.root, orec.root)
                    if rel == "distinct":
                        continue
                    if rel == "maybe":
                        tainted.add(fname)
                        tainted_callees.add(task.callee)
                        if pair.kind == "task":
                            tainted_callees.add(pair.other.callee)
                        continue
                    verdict = refute(trec, orec)
                    if verdict == "disjoint":
                        continue
                    tainted.add(fname)
                    tainted_callees.add(task.callee)
                    if pair.kind == "task":
                        tainted_callees.add(pair.other.callee)
                    if not (trec.definite and orec.definite):
                        continue
                    qual = ("provably the same element"
                            if verdict == "same"
                            else "cannot be proven disjoint")
                    msg = (f"task '{task.callee}' {trec.mode}s "
                           f"{trec.what}{_chain_suffix(trec.chain[1:])}; "
                           f"{owho} {orec.mode}s {orec.what}"
                           f"{_chain_suffix(ochain)} — {qual}; "
                           f"no sync between")
                    wit = (f"spawned at {_fmt_span(task.span)}"
                           f"{_chain_suffix(task.chain)}",
                           f"conflicting access at {_fmt_span(orec.span)}")
                    add_finding(RaceFinding(
                        fname, okind, verdict == "same", msg, wit,
                        orec.span or task.span))

        for region, crecs, facts, opq, _span in walker.pool_sites:
            cert = prove_shard(region, crecs, facts, opq)
            prev = out.certificates.get(region)
            if prev is None or (prev[0] and not cert[0]):
                out.certificates[region] = cert

    # -- task clearance ------------------------------------------------------
    cg = CallGraph(program)
    for callee in sorted(spawned):
        sites = spawned[callee]
        hz = program.hazards_for(callee) if callee in program.functions \
            else None
        if hz is None:
            out.blocked[callee] = "unknown function"
            continue
        blocking = hz & TASK_BLOCKERS
        if not blocking:
            continue  # already eligible without us
        if blocking - {H_TRAP}:
            out.blocked[callee] = (
                "blocked by non-trap hazards: "
                + ", ".join(sorted(blocking - {H_TRAP})))
            continue
        reach = cg.reachable(("fn", callee))
        bad = None
        if callee in tainted_callees:
            bad = "unrefuted MHP conflict involving this task"
        for node_key in reach if bad is None else ():
            if node_key[0] == "fn" and node_key[1] in tainted:
                bad = f"unrefuted race while '{node_key[1]}' runs"
                break
            for eff in cg.node(node_key).effects:
                if eff.hazard == H_TRAP and eff.what not in _BENIGN_TRAPS:
                    bad = f"may trap: {eff.what}"
                    break
            if bad:
                break
        if bad is None:
            nrec = 0
            for walker, task in sites:
                for rec in task.records:
                    if rec.root == "?" or not rec.definite:
                        bad = f"{rec.what}: matrix identity unknown"
                        break
                    if not record_in_bounds(
                            rec, walker.sum.dims.get(rec.root)):
                        bad = (f"{rec.what}: not provably in bounds "
                               f"at the spawn site")
                        break
                    nrec += 1
                if bad:
                    break
        if bad is not None:
            out.blocked[callee] = bad
        else:
            out.cleared[callee] = (
                f"race-free: every access across {len(sites)} spawn "
                f"site{'s' if len(sites) != 1 else ''} proven in-bounds "
                f"and disjoint from all concurrent work")

    out.findings.sort(key=lambda f: (f.fn, _fmt_span(f.span), f.message))
    return out


def race_analysis_for(program) -> RaceAnalysis | None:
    """Best-effort, env-gated entry point shared by the VM eligibility
    gate and the diagnostics report (memoized on the program)."""
    if race_check_disabled():
        return None
    cached = getattr(program, "_race_analysis", False)
    if cached is not False:
        return cached
    try:
        result = analyze_races(program)
    except Exception:
        result = None
    program._race_analysis = result
    return result
