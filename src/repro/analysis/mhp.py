"""May-happen-in-parallel tracking (S30, pass 2 of the race analysis).

The MHP state of the walk is deliberately tiny — a list of *active
tasks*: Cilk spawns whose matching ``sync`` has not yet been reached on
the current path.  The :class:`~repro.analysis.access.FnAccess` tree
walk drives one :class:`MHPTracker` per function and the tracker folds
every observation into *pairs* of things that may execute
concurrently:

* ``cont`` — an active task vs. a continuation access (any matrix
  access the walk performs while the task is pending, including
  accesses reached through calls — the access record's chain carries
  the "via 'g'" path);
* ``task`` — two sibling tasks pending at the same time;
* ``var`` — the continuation touching a ``spawn x = f(...)`` target
  variable before the sync that makes it well-defined.

Control flow is handled conservatively in the direction that can only
*add* pairs: after ``if``/``else`` the active set is the union of both
arms (a sync inside one branch does not clear the other's tasks), and
loop bodies containing a spawn are walked twice with renamed induction
variables so a task of iteration *i* pairs against the accesses and
tasks of iteration *i′ ≠ i*.  ``rt_sync`` clears the active set —
after it, nothing spawned before may run concurrently with what
follows.  Tasks still active when the walk falls off the end of the
function *escape* into every caller (the VM's implicit sync is at
``run_main`` exit, not at function return); the access summary records
them so call sites respawn them into the caller's tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Task:
    """One spawn site: the callee, the ``spawn_into`` target variable
    (None for plain ``spawn``), and the task body's access records
    substituted into the spawning function's symbol space."""

    tid: int
    callee: str
    target: str | None
    records: tuple
    span: object = None
    #: chain of callers between the tracked function and the spawn
    #: site (empty = spawned directly by the tracked function).
    chain: tuple = ()


@dataclass(frozen=True)
class Pair:
    """One may-happen-in-parallel observation (see module docstring
    for the kinds)."""

    kind: str               # "cont" | "task" | "var"
    task: Task
    access: object = None   # Access for "cont"
    other: "Task | None" = None   # for "task"
    var: str | None = None        # for "var"
    var_mode: str | None = None   # "read" | "write"
    span: object = None


class MHPTracker:
    """Concurrency state machine driven by the access walk."""

    def __init__(self, fn: str):
        self.fn = fn
        self.active: list[Task] = []
        self.pairs: list[Pair] = []
        self.tasks: list[Task] = []
        self._next = 0

    # -- events from the walk ------------------------------------------------

    def spawn(self, callee: str, target: str | None, records,
              span=None, chain: tuple = ()) -> Task:
        task = Task(self._next, callee, target, tuple(records), span, chain)
        self._next += 1
        for t in self.active:
            self.pairs.append(Pair("task", t, other=task, span=span))
        self.active.append(task)
        self.tasks.append(task)
        return task

    def access(self, acc) -> None:
        for t in self.active:
            self.pairs.append(Pair("cont", t, access=acc,
                                   span=getattr(acc, "span", None)))

    def var_read(self, name: str, span=None) -> None:
        self._var(name, "read", span)

    def var_write(self, name: str, span=None) -> None:
        self._var(name, "write", span)

    def _var(self, name: str, mode: str, span) -> None:
        for t in self.active:
            if t.target == name:
                self.pairs.append(
                    Pair("var", t, var=name, var_mode=mode, span=span))

    def sync(self) -> None:
        self.active.clear()

    # -- path-sensitivity hooks (branch join = union) ------------------------

    def snapshot(self) -> list[Task]:
        return list(self.active)

    def restore(self, snap: list[Task]) -> None:
        self.active = list(snap)

    def merge(self, snap: list[Task]) -> None:
        have = {t.tid for t in self.active}
        for t in snap:
            if t.tid not in have:
                self.active.append(t)
