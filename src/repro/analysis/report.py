"""`reproc check` entry point: run every S25 pass over one compile
result and collect a structured, cacheable report."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.analysis.cfg import function_cfgs
from repro.analysis.initialized import check_initialized
from repro.analysis.parsafety import ParallelVerdict, analyze_parallel
from repro.analysis.rcbalance import check_rc_balance
from repro.analysis.shapes import check_shapes
from repro.util.diagnostics import Diagnostic, Diagnostics, Severity


def _span_json(span) -> dict | None:
    start = getattr(span, "start", None)
    if start is None:
        return None
    return {"file": start.filename, "line": start.line,
            "col": start.column + 1}


@dataclass(frozen=True)
class AnalysisReport:
    """Immutable result of analyzing one program — safe to cache and
    share across threads (the compile service keys it by translator
    fingerprint + source digest)."""

    filename: str
    diagnostics: tuple[Diagnostic, ...]       # source-ordered
    parallel: tuple[ParallelVerdict, ...]     # one per parallel construct
    functions: int                            # CFGs analyzed
    # S30 race analysis, or None when REPRO_NO_RACE_CHECK disabled it.
    # Rendered only under ``--races``/``--json`` so the S25 golden
    # output is byte-identical either way.
    races: object = None

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return self.error_count == 0

    @property
    def race_count(self) -> int:
        return len(self.races.findings) if self.races is not None else 0

    def summary(self, *, races: bool = False) -> str:
        e, w = self.error_count, self.warning_count
        r = self.race_count if races else 0
        if not e and not w and not r:
            return f"{self.filename}: no issues"
        parts = []
        if e:
            parts.append(f"{e} error" + ("s" if e != 1 else ""))
        if w:
            parts.append(f"{w} warning" + ("s" if w != 1 else ""))
        if r:
            parts.append(f"{r} race finding" + ("s" if r != 1 else ""))
        return f"{self.filename}: " + ", ".join(parts)

    def format(self, *, explain_parallel: bool = False,
               races: bool = False) -> str:
        lines = [str(d) for d in self.diagnostics]
        if explain_parallel:
            for v in self.parallel:
                first, *rest = v.explain().splitlines()
                lines.append(f"parallel: {first}")
                lines.extend(rest)
        if races:
            lines.extend(self._race_lines())
        lines.append(self.summary(races=races))
        return "\n".join(lines)

    def _race_lines(self) -> list[str]:
        ra = self.races
        if ra is None:
            return ["races: analysis disabled (REPRO_NO_RACE_CHECK)"]
        out: list[str] = []
        for f in ra.findings:
            out.extend(f.lines())
        for name in sorted(ra.cleared):
            out.append(f"race task '{name}': cleared - {ra.cleared[name]}")
        for name in sorted(ra.blocked):
            out.append(f"race task '{name}': blocked - {ra.blocked[name]}")
        for region in sorted(ra.certificates):
            proven, why = ra.certificates[region]
            verdict = "proven" if proven else "not proven"
            out.append(f"race cert '{region}': {verdict} - {why}")
        n = len(ra.findings)
        out.append("races: clean" if not n
                   else f"races: {n} finding" + ("s" if n != 1 else ""))
        return out

    def to_json(self) -> str:
        """Machine-readable report (stable schema, one JSON object):
        every diagnostic carries its pass, severity, span, and message;
        race findings additionally carry their witness chains."""
        ra = self.races
        body = {
            "filename": self.filename,
            "ok": self.ok,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "functions": self.functions,
            "diagnostics": [
                {"pass": d.phase, "severity": d.severity.name.lower(),
                 "span": _span_json(d.span), "message": d.message}
                for d in self.diagnostics],
            "parallel": [
                {"kind": v.kind, "name": v.name, "safe": v.safe,
                 "process_safe": v.process_safe,
                 "race_note": v.race_note,
                 "blockers": [
                     {"hazard": b.hazard, "what": b.what,
                      "chain": [str(k[1]) for k in b.chain[1:]]}
                     for b in v.blockers]}
                for v in self.parallel],
            "races": None if ra is None else {
                "findings": [
                    {"pass": "races", "fn": f.fn, "kind": f.kind,
                     "proven": f.proven, "severity": "warning",
                     "span": _span_json(f.span), "message": f.message,
                     "witness": list(f.witness)}
                    for f in ra.findings],
                "cleared": dict(sorted(ra.cleared.items())),
                "blocked": dict(sorted(ra.blocked.items())),
                "certificates": {
                    region: {"proven": proven, "why": why}
                    for region, (proven, why)
                    in sorted(ra.certificates.items())},
            },
        }
        return json.dumps(body, indent=2, sort_keys=False)


def analyze_result(result, *, filename: str | None = None
                   ) -> AnalysisReport:
    """Run all four passes over a successful
    :class:`repro.driver.CompileResult`, plus the S30 race pass."""
    # Deferred: races -> access -> repro.ir would re-enter a partially
    # initialized repro.cexec.bytecode at package-import time.
    from repro.analysis.races import race_analysis_for

    if not result.ok or result.lowered is None:
        raise ValueError("analyze_result needs a successful compile "
                         "(run semantic checking first)")
    fname = filename if filename is not None else "<input>"
    diags = Diagnostics()
    cfgs = function_cfgs(result.lowered, result.ctx)
    for name in cfgs:
        cfg = cfgs[name]
        check_initialized(cfg, diags)
        check_shapes(cfg, diags)
        check_rc_balance(cfg, diags)
    program = result.bytecode()
    parallel = tuple(analyze_parallel(program))
    return AnalysisReport(
        fname, tuple(diags.sorted()), parallel, len(cfgs),
        races=race_analysis_for(program))
