"""`reproc check` entry point: run every S25 pass over one compile
result and collect a structured, cacheable report."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import function_cfgs
from repro.analysis.initialized import check_initialized
from repro.analysis.parsafety import ParallelVerdict, analyze_parallel
from repro.analysis.rcbalance import check_rc_balance
from repro.analysis.shapes import check_shapes
from repro.util.diagnostics import Diagnostic, Diagnostics, Severity


@dataclass(frozen=True)
class AnalysisReport:
    """Immutable result of analyzing one program — safe to cache and
    share across threads (the compile service keys it by translator
    fingerprint + source digest)."""

    filename: str
    diagnostics: tuple[Diagnostic, ...]       # source-ordered
    parallel: tuple[ParallelVerdict, ...]     # one per parallel construct
    functions: int                            # CFGs analyzed

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        return self.error_count == 0

    def summary(self) -> str:
        e, w = self.error_count, self.warning_count
        if not e and not w:
            return f"{self.filename}: no issues"
        parts = []
        if e:
            parts.append(f"{e} error" + ("s" if e != 1 else ""))
        if w:
            parts.append(f"{w} warning" + ("s" if w != 1 else ""))
        return f"{self.filename}: " + ", ".join(parts)

    def format(self, *, explain_parallel: bool = False) -> str:
        lines = [str(d) for d in self.diagnostics]
        if explain_parallel:
            for v in self.parallel:
                first, *rest = v.explain().splitlines()
                lines.append(f"parallel: {first}")
                lines.extend(rest)
        lines.append(self.summary())
        return "\n".join(lines)


def analyze_result(result, *, filename: str | None = None
                   ) -> AnalysisReport:
    """Run all four passes over a successful
    :class:`repro.driver.CompileResult`."""
    if not result.ok or result.lowered is None:
        raise ValueError("analyze_result needs a successful compile "
                         "(run semantic checking first)")
    fname = filename if filename is not None else "<input>"
    diags = Diagnostics()
    cfgs = function_cfgs(result.lowered, result.ctx)
    for name in cfgs:
        cfg = cfgs[name]
        check_initialized(cfg, diags)
        check_shapes(cfg, diags)
        check_rc_balance(cfg, diags)
    program = result.bytecode()
    parallel = tuple(analyze_parallel(program))
    return AnalysisReport(
        fname, tuple(diags.sorted()), parallel, len(cfgs))
