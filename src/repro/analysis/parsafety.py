"""Explainable interprocedural parallel-safety analysis (S25).

Reimplements the S23 hazard fixpoint of
``BytecodeProgram._hazards``/``_direct_hazards`` on top of the shared
:class:`repro.analysis.callgraph.CallGraph`, with one addition: every
verdict can *explain itself*.  The fixpoint equations are unchanged —

    hazards(n) = direct(n) ∪ ⋃ hazards(callee)   over n's call edges

with cycles (recursion) converging because hazard sets only grow — so
shard/task eligibility decisions are bit-identical to the pre-S25
private fixpoint (``tests/analysis/test_parallel_safety.py`` proves
this differentially).  What is new is the witness search: for each
hazard that blocks a construct, a BFS over the same call edges finds a
*shortest* call chain from the construct to a node whose direct effect
carries that hazard, and the verdict renders it as

    with-loop region '__wl_body0' is not shard-safe:
      file I/O whose cross-shard order would be observable
        via 'helper': writes a matrix file (writeMatrix)

``BytecodeProgram.lifted_parallel_safe``/``task_parallel_safe`` now
consult this class, so the VM refuses exactly what the diagnostics
explain — the silent bail of S23 is gone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, Key, display_name
from repro.analysis.hazards import (
    H_SPAWN, HAZARD_GLOSS, PROCESS_BLOCKERS, SHARD_BLOCKERS, TASK_BLOCKERS,
)


@dataclass(frozen=True)
class Blocker:
    """Why one hazard blocks a construct: the hazard, the shortest call
    chain that reaches it, and the direct-effect evidence at its end."""

    hazard: str
    chain: tuple[Key, ...]  # root first; last element owns the effect
    what: str

    def render(self) -> str:
        gloss = HAZARD_GLOSS.get(self.hazard, self.hazard)
        via = " -> ".join(display_name(k) for k in self.chain[1:])
        site = f", reached via {via}" if via else ""
        return f"{gloss}{site}; evidence: {self.what}"


@dataclass(frozen=True)
class ParallelVerdict:
    """The decision for one parallel construct, with its reasons."""

    kind: str        # "shard" (with-loop/matrixMap region) | "task" (spawn)
    name: str        # worker region name / spawned callee
    safe: bool
    hazards: frozenset
    blockers: tuple[Blocker, ...]
    # S27: a shard-safe region may additionally qualify for the
    # shared-memory *process* pool (shard-safe AND no rc traffic).  None
    # for task verdicts, where the question does not arise.
    process_safe: bool | None = None
    process_blockers: tuple[Blocker, ...] = ()
    # S30: when a task verdict is safe *despite* effect blockers, the
    # race analysis discharged them; this carries its proof sentence.
    race_note: str | None = None

    @property
    def construct(self) -> str:
        return (f"with-loop region '{self.name}'" if self.kind == "shard"
                else f"cilk task '{self.name}'")

    def headline(self) -> str:
        if self.safe:
            if self.kind == "shard":
                where = ("thread or process workers" if self.process_safe
                         else "thread workers only")
                return (f"{self.construct}: OK - may be sharded across "
                        f"the worker pool ({where})")
            return (f"{self.construct}: OK - may be scheduled as an "
                    f"off-thread task")
        return (f"{self.construct}: runs sequentially - not "
                f"{self.kind}-safe")

    def explain(self) -> str:
        lines = [self.headline()]
        if self.safe and self.race_note is not None:
            for b in self.blockers:
                lines.append(
                    f"  hazard discharged by race analysis: {b.render()}")
            lines.append(f"  {self.race_note}")
        else:
            for b in self.blockers:
                lines.append(f"  blocked by {b.render()}")
        if self.safe and self.process_safe is False:
            for b in self.process_blockers:
                lines.append(f"  process pool blocked by {b.render()}")
        return "\n".join(lines)


class ParallelSafety:
    """Hazard fixpoint + witness search over the shared call graph.

    One instance is memoized per :class:`BytecodeProgram` (its
    ``.safety`` property); the VM and ``reproc check`` therefore share
    one traversal and necessarily agree.
    """

    def __init__(self, program, graph: CallGraph | None = None):
        self.program = program
        self.graph = graph if graph is not None else CallGraph(program)
        self._memo: dict[Key, frozenset] = {}

    # -- the S23 fixpoint, verbatim semantics --------------------------------

    def hazards(self, key: Key) -> frozenset:
        memo = self._memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        # Collect the reachable, not-yet-memoized subgraph...
        direct: dict[Key, set] = {}
        edges: dict[Key, set] = {}
        stack = [key]
        while stack:
            k = stack.pop()
            if k in direct:
                continue
            node = self.graph.node(k)
            direct[k] = set(node.hazards)
            edges[k] = set(node.calls)
            for callee in edges[k]:
                if callee not in direct and callee not in memo:
                    stack.append(callee)
        # ...and propagate hazards to a fixpoint (cycles — recursion —
        # converge because hazard sets only grow).
        changed = True
        while changed:
            changed = False
            for k, hz in direct.items():
                for callee in edges[k]:
                    callee_hz = memo.get(callee) or direct.get(callee, ())
                    if not (set(callee_hz) <= hz):
                        hz |= set(callee_hz)
                        changed = True
        for k, hz in direct.items():
            memo[k] = frozenset(hz)
        return memo[key]

    def shard_safe(self, name: str) -> bool:
        return not (self.hazards(("lifted", name)) & SHARD_BLOCKERS)

    def task_safe(self, name: str) -> bool:
        if name not in self.program.functions:
            return False
        if not (self.hazards(("fn", name)) & TASK_BLOCKERS):
            return True
        # S30: a trap-blocked task becomes eligible when the race
        # analysis proves every spawn-site access in bounds and
        # disjoint from all concurrent work.  Under
        # REPRO_NO_RACE_CHECK the analysis returns None and the S25
        # decision stands bit-for-bit.
        from repro.analysis.races import race_analysis_for
        ra = race_analysis_for(self.program)
        return ra is not None and ra.race_cleared(name)

    def process_safe(self, name: str) -> bool:
        """Whether a shard may execute in a *process* worker (S27):
        shard-safe and free of refcount traffic, so copies of the
        capture matrices in shared memory behave identically."""
        return not (self.hazards(("lifted", name)) & PROCESS_BLOCKERS)

    # -- explanation ---------------------------------------------------------

    def witness(self, root: Key, hazard: str) -> Blocker:
        """Shortest call chain from ``root`` to a direct carrier of
        ``hazard``.  The fixpoint guarantees one exists whenever
        ``hazard in self.hazards(root)``."""
        parent: dict[Key, Key | None] = {root: None}
        q: deque[Key] = deque([root])
        while q:
            k = q.popleft()
            node = self.graph.node(k)
            for e in node.effects:
                if e.hazard == hazard:
                    chain: list[Key] = []
                    cur: Key | None = k
                    while cur is not None:
                        chain.append(cur)
                        cur = parent[cur]
                    return Blocker(hazard, tuple(reversed(chain)), e.what)
            for callee in node.calls:
                if callee not in parent:
                    parent[callee] = k
                    q.append(callee)
        raise AssertionError(  # pragma: no cover - fixpoint invariant
            f"hazard {hazard!r} has no witness under {root!r}")

    def verdict(self, kind: str, name: str) -> ParallelVerdict:
        if kind == "shard":
            root: Key = ("lifted", name)
            blockset = SHARD_BLOCKERS
            safe = self.shard_safe(name)
        else:
            root = ("fn", name)
            blockset = TASK_BLOCKERS
            safe = self.task_safe(name)
        hz = self.hazards(root)
        blocking = sorted((hz & blockset) - {H_SPAWN})
        blockers = tuple(self.witness(root, h) for h in blocking)
        if kind != "shard":
            note = None
            if safe and blocking:
                from repro.analysis.races import race_analysis_for
                ra = race_analysis_for(self.program)
                if ra is not None:
                    note = ra.cleared.get(name)
            return ParallelVerdict(kind, name, safe, hz, blockers,
                                   race_note=note)
        p_safe = self.process_safe(name)
        p_blocking = sorted((hz & PROCESS_BLOCKERS) - set(blocking))
        p_blockers = tuple(self.witness(root, h) for h in p_blocking)
        return ParallelVerdict(kind, name, safe, hz, blockers,
                               process_safe=p_safe,
                               process_blockers=p_blockers)


def analyze_parallel(program) -> list[ParallelVerdict]:
    """Verdicts for every parallel construct of a compiled program: one
    shard verdict per lifted with-loop/matrixMap worker, one task
    verdict per distinct Cilk spawn callee (``SpawnedFunc`` records,
    which carry the callee under ``call_name`` and no tree body)."""
    safety = program.safety
    verdicts: list[ParallelVerdict] = []
    seen_tasks: set[str] = set()
    for lf in program.lifted:
        if hasattr(lf, "body"):
            verdicts.append(safety.verdict("shard", lf.name))
        else:
            callee = getattr(lf, "call_name", lf.name)
            if callee not in seen_tasks:
                seen_tasks.add(callee)
                verdicts.append(safety.verdict("task", callee))
    return verdicts
