// Mandelbrot escape-time over a fixed viewport.  Unlike the SSH
// pipelines, every pixel runs a data-dependent while loop, so nothing
// here vectorizes: the kernel is pure scalar bytecode dispatch, which
// makes it the reference workload for the S28 mid-level IR optimizer
// (constant folding, CSE of the coordinate arithmetic, LICM of the
// per-row invariants, strength-reduced row offsets).
int escape(float cr, float ci, int maxIter) {
    float zr = 0.0;
    float zi = 0.0;
    int it = 0;
    while (it < maxIter && zr * zr + zi * zi <= 4.0) {
        float t = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = t;
        it = it + 1;
    }
    return it;
}

int main() {
    int h = 40;
    int w = 60;
    int maxIter = 80;
    Matrix int <2> counts = init(Matrix int <2>, h, w);
    for (int i = 0; i < h; i = i + 1) {
        for (int j = 0; j < w; j = j + 1) {
            float cr = 0.0 - 2.0 + 3.0 * (float) j / (float) w;
            float ci = 0.0 - 1.2 + 2.4 * (float) i / (float) h;
            counts[i, j] = escape(cr, ci, maxIter);
        }
    }
    int total = 0;
    for (int i = 0; i < h; i = i + 1) {
        for (int j = 0; j < w; j = j + 1) {
            total = total + counts[i, j];
        }
    }
    printInt(total);
    writeMatrix("mandel.data", counts);
    return 0;
}
