// Paper Fig. 9: the temporal-mean with-loop with programmer-specified
// transformations: split the j loop by 4, vectorize the inner part,
// parallelize the i loop (OpenMP pragma, Fig. 11).
int main() {
    Matrix float <3> mat = readMatrix("ssh.data");
    int m = dimSize(mat, 0);
    int n = dimSize(mat, 1);
    int p = dimSize(mat, 2);
    Matrix float <2> means = init(Matrix float <2>, m, n);
    means = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n],
            (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,:][k])) / p)
        transform split j by 4, jin, jout.
                  vectorize jin.
                  parallelize i;
    writeMatrix("means.data", means);
    return 0;
}
