"""The paper's example programs in extended C, shipped as package data."""

from __future__ import annotations

from pathlib import Path

_DIR = Path(__file__).parent

PROGRAMS = {
    "fig1": "fig1_temporal_mean.xc",
    "fig4": "fig4_conncomp.xc",
    "fig8": "fig8_eddy_scoring.xc",
    "fig9": "fig9_transformed_mean.xc",
    "mandelbrot": "mandelbrot.xc",
}


def load(name: str) -> str:
    """Source text of a paper program ("fig1", "fig4", "fig8", "fig9"
    or a bare filename)."""
    fname = PROGRAMS.get(name, name)
    path = _DIR / fname
    if not path.exists():
        raise FileNotFoundError(f"no such program {name!r}; have {sorted(PROGRAMS)}")
    return path.read_text()


def path_of(name: str) -> Path:
    return _DIR / PROGRAMS.get(name, name)
