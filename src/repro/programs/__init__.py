"""The paper's example programs in extended C, shipped as package data."""

from __future__ import annotations

from pathlib import Path

_DIR = Path(__file__).parent

PROGRAMS = {
    "fig1": "fig1_temporal_mean.xc",
    "fig4": "fig4_conncomp.xc",
    "fig8": "fig8_eddy_scoring.xc",
    "fig9": "fig9_transformed_mean.xc",
    "mandelbrot": "mandelbrot.xc",
}


def load(name: str) -> str:
    """Source text of a paper program ("fig1", "fig4", "fig8", "fig9"
    or a bare filename)."""
    fname = PROGRAMS.get(name, name)
    path = _DIR / fname
    if not path.exists():
        raise FileNotFoundError(f"no such program {name!r}; have {sorted(PROGRAMS)}")
    return path.read_text()


def path_of(name: str) -> Path:
    return _DIR / PROGRAMS.get(name, name)


def corpus_cases() -> list[tuple]:
    """The full corpus at small, deterministic sizes: ``(name, source,
    extensions, inputs, output_names)`` tuples ready for
    :func:`repro.cexec.interp.run_program`.

    Shared by the E-IR instruction-count benchmark, the S29 profiling
    run that regenerates the superinstruction table, and the dispatch-
    specialization differential tests — same seeds everywhere, so all
    three observe the same dynamic behavior.  The mandelbrot viewport
    and iteration budget are shrunk by textual substitution of the
    integer literals in the source (the compiled program is otherwise
    identical)."""
    import numpy as np

    from repro.eddy import synthetic_ssh

    cases: list[tuple] = []
    cube = np.random.default_rng(0).normal(0, 0.5, (6, 8, 12)) \
        .astype(np.float32)
    cases.append(("fig1", load("fig1"), ["matrix"],
                  {"ssh.data": cube}, ["means.data"]))
    ssh = np.random.default_rng(9).normal(0.2, 0.5, (8, 9, 5)) \
        .astype(np.float32)
    dates = np.array([1011990, 1012000, 1012010, 1012020, 1012030],
                     dtype=np.int32)
    cases.append(("fig4", load("fig4"), ["matrix"],
                  {"ssh.data": ssh, "dates.data": dates},
                  ["eddyLabels.data"]))
    eddy = synthetic_ssh((5, 6, 32), n_eddies=2, seed=21)
    cases.append(("fig8", load("fig8"), ["matrix"],
                  {"ssh.data": eddy.cube}, ["temporalScores.data"]))
    c9 = np.random.default_rng(3).normal(0, 1, (6, 8, 10)) \
        .astype(np.float32)
    cases.append(("fig9", load("fig9"), ["matrix", "transform"],
                  {"ssh.data": c9}, ["means.data"]))
    src = load("mandelbrot")
    for old, new in (("int h = 40;", "int h = 10;"),
                     ("int w = 60;", "int w = 12;"),
                     ("int maxIter = 80;", "int maxIter = 24;")):
        assert old in src, f"mandelbrot.xc drifted: {old!r} missing"
        src = src.replace(old, new)
    cases.append(("mandelbrot", src, ["matrix"], {}, ["mandel.data"]))
    return cases
