// Paper Fig. 1: temporal mean of sea-surface-height data.
// For every measured point on the ocean's surface, the average sea
// height over time.  mat is latitude x longitude x time.
int main() {
    Matrix float <3> mat = readMatrix("ssh.data");
    int m = dimSize(mat, 0);
    int n = dimSize(mat, 1);
    int p = dimSize(mat, 2);
    Matrix float <2> means = init(Matrix float <2>, m, n);
    means = with ([0,0] <= [i,j] < [m,n])
        genarray([m,n],
            (with ([0] <= [k] < [p]) fold(+, 0.0, mat[i,j,:][k])) / p);
    writeMatrix("means.data", means);
    return 0;
}
