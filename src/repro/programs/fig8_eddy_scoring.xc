// Paper Fig. 8: ocean eddy scoring.
// scoreTS computes, for every point of a time series, the "area" of the
// trough it belongs to (Fig. 7); main maps it over the time dimension of
// the SSH cube.  Uses the tuples extension (getTrough returns three
// values) and the matrix extension (ranges, `end`, with-loops,
// matrixMap).

(Matrix float <1>, int, int)
getTrough(Matrix float <1> ts, int i) {
    int beginning = i;
    int n = dimSize(ts, 0);
    // Walk downwards
    while (i + 1 < n && ts[i] >= ts[i + 1])
        i = i + 1;
    // Walk upwards
    while (i + 1 < n && ts[i] < ts[i + 1])
        i = i + 1;
    // Return the trough
    return (ts[beginning : i], beginning, i);
}

Matrix float <1>
computeArea(Matrix float <1> areaOfInterest) {
    float y1 = areaOfInterest[0];
    float y2 = areaOfInterest[end];
    int x1 = 0;
    int x2 = dimSize(areaOfInterest, 0) - 1;
    // compute slope
    float m = (y1 - y2) / ((float) (x1 - x2));
    // compute y intercept
    float b = y1 - m * x1;
    Matrix float <1> Line = (x1 :: x2) * m + b;
    float area = with ([0] <= [i] < [dimSize(Line, 0)])
        fold(+, 0.0, Line[i] - areaOfInterest[i]);
    return with ([0] <= [i] < [dimSize(Line, 0)])
        genarray([dimSize(Line, 0)], area);
}

Matrix float <1> scoreTS(Matrix float <1> ts) {
    Matrix float <1> scores = init(Matrix float <1>, dimSize(ts, 0));
    int n = dimSize(ts, 0);
    int i = 0;
    while (i + 1 < n && ts[i] < ts[i + 1]) // trimming
        i = i + 1;
    int beginning = 0;
    Matrix float <1> trough;
    while (i < n - 1) {
        (trough, beginning, i) = getTrough(ts, i);
        scores[beginning : i] = computeArea(trough);
    }
    return scores;
}

int main() {
    // Shape of SSH in the paper: 721 x 1440 x 954
    Matrix float <3> data = readMatrix("ssh.data");
    Matrix float <3> scores = matrixMap(scoreTS, data, [2]);
    writeMatrix("temporalScores.data", scores);
    return 0;
}
