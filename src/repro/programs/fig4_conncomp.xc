// Paper Fig. 4: connected-component labeling mapped over the time
// dimension of an SSH cube.  The paper elides connComp's body ("compute
// connected components"); here it is written out as iterative
// min-label propagation over the 4-neighborhood of below-threshold
// cells — identifying eddy candidates by "thresholding the SSH data and
// searching for connected components" (§IV).

Matrix int <2> connComp(Matrix float <2> ssh) {
    int m = dimSize(ssh, 0);
    int n = dimSize(ssh, 1);
    Matrix bool <2> binary = ssh < 0.0;
    Matrix int <2> labels = init(Matrix int <2>, m, n);
    for (int i = 0; i < m; i = i + 1) {
        for (int j = 0; j < n; j = j + 1) {
            if (binary[i, j])
                labels[i, j] = i * n + j + 1;
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (int i = 0; i < m; i = i + 1) {
            for (int j = 0; j < n; j = j + 1) {
                if (labels[i, j] > 0) {
                    int best = labels[i, j];
                    if (i > 0 && labels[i - 1, j] > 0 && labels[i - 1, j] < best)
                        best = labels[i - 1, j];
                    if (j > 0 && labels[i, j - 1] > 0 && labels[i, j - 1] < best)
                        best = labels[i, j - 1];
                    if (i < m - 1 && labels[i + 1, j] > 0 && labels[i + 1, j] < best)
                        best = labels[i + 1, j];
                    if (j < n - 1 && labels[i, j + 1] > 0 && labels[i, j + 1] < best)
                        best = labels[i, j + 1];
                    if (best < labels[i, j]) {
                        labels[i, j] = best;
                        changed = true;
                    }
                }
            }
        }
    }
    return labels;
}

int main() {
    Matrix float <3> ssh = readMatrix("ssh.data");
    Matrix int <1> dates = readMatrix("dates.data");
    ssh = ssh[:, :, dates >= 1012000];
    Matrix int <3> labels = matrixMap(connComp, ssh, [0, 1]);
    writeMatrix("eddyLabels.data", labels);
    return 0;
}
