"""Context-free grammar specifications, composition, and FIRST/FOLLOW sets."""

from repro.grammar.cfg import (
    START,
    Grammar,
    GrammarError,
    GrammarSpec,
    Production,
)
from repro.grammar.sets import GrammarSets

__all__ = [
    "Grammar",
    "GrammarError",
    "GrammarSpec",
    "GrammarSets",
    "Production",
    "START",
]
