"""Nullable / FIRST / FOLLOW computations (fixpoint over the grammar)."""

from __future__ import annotations

from repro.grammar.cfg import Grammar


class GrammarSets:
    """Nullable, FIRST and FOLLOW sets for a built grammar."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.nullable: set[str] = set()
        self.first: dict[str, set[str]] = {}
        self.follow: dict[str, set[str]] = {}
        self._compute_nullable()
        self._compute_first()
        self._compute_follow()

    # -- nullable -------------------------------------------------------------

    def _compute_nullable(self) -> None:
        changed = True
        while changed:
            changed = False
            for p in self.grammar.productions:
                if p.lhs in self.nullable:
                    continue
                if all(
                    sym in self.nullable
                    for sym in p.rhs
                    if not self.grammar.is_terminal(sym)
                ) and not any(self.grammar.is_terminal(sym) for sym in p.rhs):
                    self.nullable.add(p.lhs)
                    changed = True

    def is_nullable_seq(self, symbols: tuple[str, ...]) -> bool:
        return all(
            (not self.grammar.is_terminal(s)) and s in self.nullable for s in symbols
        )

    # -- FIRST ------------------------------------------------------------------

    def _compute_first(self) -> None:
        g = self.grammar
        for t in g.terminals:
            self.first[t] = {t}
        for nt in g.nonterminals:
            self.first[nt] = set()
        changed = True
        while changed:
            changed = False
            for p in g.productions:
                target = self.first[p.lhs]
                before = len(target)
                for sym in p.rhs:
                    target |= self.first[sym]
                    if g.is_terminal(sym) or sym not in self.nullable:
                        break
                if len(target) != before:
                    changed = True

    def first_of_seq(self, symbols: tuple[str, ...]) -> set[str]:
        """FIRST of a symbol string (no epsilon marker; use is_nullable_seq)."""
        out: set[str] = set()
        for sym in symbols:
            out |= self.first[sym]
            if self.grammar.is_terminal(sym) or sym not in self.nullable:
                break
        return out

    # -- FOLLOW -------------------------------------------------------------------

    def _compute_follow(self) -> None:
        g = self.grammar
        for nt in g.nonterminals:
            self.follow[nt] = set()
        changed = True
        while changed:
            changed = False
            for p in g.productions:
                for i, sym in enumerate(p.rhs):
                    if g.is_terminal(sym):
                        continue
                    target = self.follow[sym]
                    before = len(target)
                    rest = p.rhs[i + 1:]
                    target |= self.first_of_seq(rest)
                    if self.is_nullable_seq(rest):
                        target |= self.follow[p.lhs]
                    if len(target) != before:
                        changed = True
