"""Context-free grammar specifications, in the shape Silver/Copper compose.

A :class:`GrammarSpec` bundles terminal declarations (with their regexes),
productions (with semantic actions building AST nodes), and metadata the
modular determinism analysis needs: which module declared each production
and which terminals are *marking terminals* (the unique tokens that start
an extension's syntax).

Productions are written concretely, e.g.::

    g.production("AddExpr ::= AddExpr Plus MulExpr", action=mk_add)
    g.production("ExprList ::= Expr", action=lambda c: [c[0]])

Symbol classification (terminal vs nonterminal) is deferred to
:meth:`GrammarSpec.build`, after all compositions have happened — an
extension's production may freely mention host nonterminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.lexing.scanner import EOF
from repro.lexing.terminals import TerminalSet

Action = Callable[[list[Any]], Any]

START = "$START"  # augmented start symbol


def PASS(children: list[Any]) -> Any:
    """The identity semantic action: the production's value is its first
    child's value, unchanged.

    Use this (rather than an ad-hoc ``lambda c: c[0]``) for unit-chain
    productions like ``AddExpr ::= MulExpr``: because the shared function
    object is recognizable, the compiled parser driver (S24) collapses
    such reductions to a bare GOTO — no action call, no stack slicing,
    no span inference — which is safe exactly because ``PASS`` returns
    the child unchanged (same object, same span).
    """
    return children[0]


@dataclass(frozen=True)
class Production:
    index: int
    lhs: str
    rhs: tuple[str, ...]
    action: Action | None = None
    name: str = ""
    origin: str = "host"

    def __str__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else "ε"
        return f"{self.lhs} ::= {rhs}"


def default_action(prod: Production) -> Action:
    label = prod.name or prod.lhs

    def build(children: list[Any]) -> Any:
        return (label, *children)

    return build


class GrammarError(ValueError):
    pass


@dataclass
class GrammarSpec:
    """A host-language or extension grammar module (pre-composition)."""

    name: str
    start: str | None = None
    terminals: TerminalSet = field(default_factory=TerminalSet)
    raw_productions: list[tuple[str, tuple[str, ...], Action | None, str, str]] = field(
        default_factory=list
    )

    def terminal(self, name: str, pattern: str, **kw: Any):
        kw.setdefault("origin", self.name)
        return self.terminals.declare(name, pattern, **kw)

    def production(
        self, rule: str, action: Action | None = None, name: str = ""
    ) -> None:
        """Add a production written as ``"Lhs ::= Sym1 Sym2 ..."``."""
        if "::=" not in rule:
            raise GrammarError(f"production missing '::=': {rule!r}")
        lhs_text, rhs_text = rule.split("::=", 1)
        lhs = lhs_text.strip()
        if not lhs or " " in lhs:
            raise GrammarError(f"malformed production lhs in {rule!r}")
        rhs = tuple(rhs_text.split())
        self.raw_productions.append((lhs, rhs, action, name, self.name))

    def compose(self, *extensions: "GrammarSpec") -> "GrammarSpec":
        """Compose this (host) grammar with extension grammars.

        Terminal sets are merged (identical shared declarations allowed);
        production lists are concatenated.  The start symbol is the host's.
        """
        out = GrammarSpec(
            name="+".join([self.name, *(e.name for e in extensions)]),
            start=self.start,
        )
        out.terminals = self.terminals
        out.raw_productions = list(self.raw_productions)
        for ext in extensions:
            out.terminals = out.terminals.merge(ext.terminals)
            out.raw_productions.extend(ext.raw_productions)
        return out

    def build(self) -> "Grammar":
        """Resolve symbols and produce an immutable, augmented grammar."""
        if self.start is None:
            raise GrammarError(f"grammar {self.name!r} has no start symbol")
        productions: list[Production] = [
            Production(0, START, (self.start, EOF), action=lambda c: c[0], origin=self.name)
        ]
        seen: set[tuple[str, tuple[str, ...]]] = set()
        for lhs, rhs, action, name, origin in self.raw_productions:
            key = (lhs, rhs)
            if key in seen:
                raise GrammarError(f"duplicate production {lhs} ::= {' '.join(rhs)}")
            seen.add(key)
            productions.append(
                Production(len(productions), lhs, rhs, action, name, origin)
            )
        return Grammar(self.name, self.start, self.terminals, tuple(productions))


class Grammar:
    """An immutable grammar with resolved symbol classification."""

    def __init__(
        self,
        name: str,
        start: str,
        terminals: TerminalSet,
        productions: tuple[Production, ...],
    ):
        self.name = name
        self.start = start
        self.terminal_set = terminals
        self.productions = productions
        self.terminals: frozenset[str] = frozenset(
            t.name for t in terminals if not t.layout
        ) | {EOF}
        self.nonterminals: frozenset[str] = frozenset(p.lhs for p in productions)

        overlap = self.terminals & self.nonterminals
        if overlap:
            raise GrammarError(f"symbols both terminal and nonterminal: {sorted(overlap)}")

        self.by_lhs: dict[str, list[Production]] = {}
        for p in productions:
            self.by_lhs.setdefault(p.lhs, []).append(p)

        undefined: set[str] = set()
        for p in productions:
            for sym in p.rhs:
                if sym not in self.terminals and sym not in self.nonterminals:
                    undefined.add(sym)
        if undefined:
            raise GrammarError(
                f"undefined symbols (no terminal declaration or production): "
                f"{sorted(undefined)}"
            )
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} has no productions")

    def is_terminal(self, sym: str) -> bool:
        return sym in self.terminals

    def prods_for(self, nt: str) -> list[Production]:
        return self.by_lhs.get(nt, [])

    def __repr__(self) -> str:
        return (
            f"Grammar({self.name}: {len(self.productions)} productions, "
            f"{len(self.terminals)} terminals, {len(self.nonterminals)} nonterminals)"
        )
