"""The supervised worker-process pool behind ``/run`` (S26).

Programs submitted to the daemon are untrusted in the only sense that
matters operationally: they can loop forever, print forever, or allocate
until the OOM killer arrives.  The daemon therefore never executes a
program in its own process.  Each :class:`WorkerPool` owns N long-lived
``multiprocessing`` workers, each a fresh interpreter running
:func:`_worker_main`: a loop that receives one job over its pipe, runs it
through :func:`repro.cexec.limited.run_limited` (in-process deadline +
output cap + optional address-space cap) and sends the result dict back.

Supervision invariants, each covered by ``tests/serve/test_workers.py``:

* **Hard timeout** — the parent waits ``timeout * grace`` on the pipe; a
  worker that blows through its in-process deadline (e.g. stuck inside a
  C call) is SIGKILLed and replaced.  The request gets a ``timeout``
  result; no other request is disturbed.
* **Crash isolation** — a worker dying mid-job (segfault, ``os._exit``,
  OOM kill) surfaces as ``worker_lost`` for that job only; the pool
  respawns the worker before the next dispatch.
* **Recycling** — after ``max_requests`` jobs a worker is retired
  gracefully and replaced, bounding interpreter-state drift and leak
  accumulation (MELT's resident-compiler hygiene, applied to executors).
* **Bounded concurrency** — dispatch blocks on an idle-worker queue with
  a deadline; admission control above it (the server's request queue)
  keeps that wait short.

The pool shares the daemon's :class:`repro.service.stats.Counters`, so
worker restarts, timeouts and recycles are visible in ``/stats``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
from dataclasses import dataclass

from repro.cexec.limited import (
    DEFAULT_OUTPUT_CAP,
    KIND_TIMEOUT,
    apply_memory_limit,
    run_limited,
)
from repro.serve.protocol import KIND_WORKER_LOST, ServeRequest

#: Multiplier on the request timeout before the parent SIGKILLs a worker
#: whose in-process deadline should already have fired.
HARD_KILL_GRACE = 1.5

_EXIT = {"type": "_exit"}


def _reinit_inherited_state() -> None:
    """Make a forked worker self-consistent.

    Workers default to the ``fork`` start method (no ``__main__``
    re-import, instant spawn), but the daemon forks replacements from
    handler threads — and a lock another thread held at fork time stays
    held forever in the child.  Every process-wide lock the worker's
    compile path can touch is therefore rebound to a fresh object, and
    the shared caches are dropped (they may be mid-mutation); the child
    rebuilds its translators from the on-disk artifact store instead.
    """
    try:
        import repro.api as api_mod
        import repro.service.cache as cache_mod

        api_mod._registry_lock = threading.Lock()
        cache_mod._shared_lock = threading.Lock()
        cache_mod._shared = None
    except Exception:
        pass


def _worker_main(conn, output_cap: int, max_memory_bytes: int) -> None:
    """Worker-process entry: serve jobs from ``conn`` until told to exit."""
    _reinit_inherited_state()
    if max_memory_bytes > 0:
        apply_memory_limit(max_memory_bytes)
    # Workers are pure executors; they must never outlive the daemon.
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            return
        jtype = job.get("type")
        if jtype == "_exit":
            conn.close()
            return
        if jtype == "_crash":  # test hook: simulate a hard worker death
            os._exit(17)
        if jtype == "_ping":
            conn.send({"ok": True, "kind": "pong", "pid": os.getpid()})
            continue
        try:
            result = run_limited(
                job["source"],
                list(job.get("extensions", ("matrix",))),
                inputs=job.get("inputs") or None,
                output_names=list(job.get("output_names", ())),
                engine=job.get("engine", "vm"),
                nthreads=int(job.get("nthreads", 1)),
                options=_make_options(job.get("options")),
                timeout_s=job.get("timeout_s"),
                output_cap=output_cap,
            )
        except BaseException as e:  # never let a job kill the loop
            result = {"ok": False, "kind": "internal", "error": str(e)}
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


def _make_options(options: dict | None):
    if not options:
        return None
    from repro.cminus.env import Optimizations

    return Optimizations(**options)


@dataclass
class _Worker:
    process: mp.Process
    conn: object  # parent end of the duplex pipe
    served: int = 0

    def kill(self) -> None:
        try:
            self.process.kill()
        except Exception:
            pass
        self.process.join(timeout=5)
        try:
            self.conn.close()
        except Exception:
            pass

    def retire(self) -> None:
        """Graceful exit: drain-friendly, lets the child clean up."""
        try:
            self.conn.send(_EXIT)
        except Exception:
            self.kill()
            return
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except Exception:
                pass


class WorkerPool:
    """N supervised executor processes with timeout, recycle and respawn."""

    def __init__(
        self,
        size: int = 2,
        *,
        max_requests_per_worker: int = 64,
        default_timeout_s: float = 30.0,
        output_cap: int = DEFAULT_OUTPUT_CAP,
        max_memory_bytes: int = 0,
        counters=None,
        mp_start_method: str | None = None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.max_requests_per_worker = max_requests_per_worker
        self.default_timeout_s = default_timeout_s
        self.output_cap = output_cap
        self.max_memory_bytes = max_memory_bytes
        self.counters = counters
        # "fork" by default: workers start instantly with warm imports
        # and no __main__ re-execution (forkserver/spawn re-import the
        # parent's __main__, which breaks under pytest, `python -c` and
        # stdin-driven runs).  Respawns can fork from handler threads, so
        # workers rebind every process-wide lock their compile path can
        # touch on entry (see _reinit_inherited_state).  forkserver and
        # spawn remain selectable via REPRO_SERVE_MP.
        method = mp_start_method or os.environ.get("REPRO_SERVE_MP", "fork")
        self._ctx = mp.get_context(method)
        if method == "forkserver":
            try:
                self._ctx.set_forkserver_preload(
                    ["repro.api", "repro.cexec.limited"]
                )
            except Exception:
                pass
        self._idle: "queue.Queue[_Worker]" = queue.Queue()
        self._lock = threading.Lock()
        self._closed = False
        self._live: list[_Worker] = []
        for _ in range(size):
            self._idle.put(self._spawn())

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent, child = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child, self.output_cap, self.max_memory_bytes),
            daemon=True,
            name="repro-serve-worker",
        )
        proc.start()
        child.close()  # the parent keeps only its end
        w = _Worker(proc, parent)
        with self._lock:
            self._live.append(w)
        return w

    def _replace(self, worker: _Worker, *, graceful: bool) -> _Worker | None:
        """Retire/kill ``worker`` and spawn its successor (None when the
        pool shut down concurrently — no successor then)."""
        with self._lock:
            if worker in self._live:
                self._live.remove(worker)
            closed = self._closed
        if graceful:
            worker.retire()
        else:
            worker.kill()
        if closed:
            return None
        if self.counters is not None:
            self.counters.add(serve_worker_restarts=1)
        return self._spawn()

    def close(self, timeout_s: float = 10.0) -> None:
        """Retire every worker; safe to call twice."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            live = list(self._live)
            self._live.clear()
        deadline = time.monotonic() + timeout_s
        for w in live:
            w.retire()
            if time.monotonic() > deadline:
                break
        # Whatever didn't retire in time gets killed.
        for w in live:
            if w.process.is_alive():
                w.kill()

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._live if w.process.is_alive())

    # -- dispatch -------------------------------------------------------------

    def submit_raw(self, job: dict, *, timeout_s: float | None = None,
                   acquire_timeout_s: float = 30.0) -> dict:
        """Run one job dict on an idle worker, supervising the outcome."""
        if self._closed:
            return {"ok": False, "kind": "shutdown",
                    "error": "worker pool is shut down"}
        timeout = timeout_s if timeout_s is not None else self.default_timeout_s
        job = dict(job)
        job.setdefault("timeout_s", timeout)
        try:
            worker = self._idle.get(timeout=acquire_timeout_s)
        except queue.Empty:
            return {"ok": False, "kind": KIND_TIMEOUT,
                    "error": "no worker became available in time"}
        graceful_recycle = False
        try:
            try:
                worker.conn.send(job)
            except (BrokenPipeError, OSError):
                # Worker died between jobs; replace and retry once.
                worker = self._replace(worker, graceful=False)
                if worker is None:
                    return {"ok": False, "kind": "shutdown",
                            "error": "worker pool is shut down"}
                try:
                    worker.conn.send(job)
                except (BrokenPipeError, OSError):
                    worker = self._replace(worker, graceful=False)
                    return {"ok": False, "kind": KIND_WORKER_LOST,
                            "error": "worker unavailable"}

            hard_deadline = timeout * HARD_KILL_GRACE if timeout else None
            if worker.conn.poll(hard_deadline):
                try:
                    result = worker.conn.recv()
                except (EOFError, OSError):
                    # Crash mid-job: pipe closed without a result.
                    worker = self._replace(worker, graceful=False)
                    return {"ok": False, "kind": KIND_WORKER_LOST,
                            "error": "worker crashed while executing "
                                     "the request"}
            else:
                # In-process deadline failed to fire (stuck in C code or
                # the job ignored it): hard kill.
                worker = self._replace(worker, graceful=False)
                if self.counters is not None:
                    self.counters.add(serve_timeouts=1)
                return {"ok": False, "kind": KIND_TIMEOUT,
                        "error": f"execution exceeded {timeout:.3g}s "
                                 "(worker killed)"}

            worker.served += 1
            if result.get("kind") == KIND_TIMEOUT and self.counters is not None:
                self.counters.add(serve_timeouts=1)
            if worker.served >= self.max_requests_per_worker:
                graceful_recycle = True
            return result
        finally:
            if graceful_recycle:
                worker = self._replace(worker, graceful=True)
            if worker is not None and not self._closed:
                self._idle.put(worker)

    def submit(self, request: ServeRequest,
               acquire_timeout_s: float = 30.0) -> dict:
        """Run a validated ``run`` request."""
        job = {
            "type": "run",
            "source": request.source,
            "extensions": list(request.extensions),
            "engine": request.engine,
            "nthreads": request.nthreads,
            "inputs": request.inputs,
            "output_names": list(request.output_names),
            "options": request.options or None,
        }
        return self.submit_raw(
            job,
            timeout_s=request.timeout_s,
            acquire_timeout_s=acquire_timeout_s,
        )
