"""The serve wire protocol: request model, validation, coalescing keys.

``reproc serve`` speaks length-prefixed JSON over HTTP/1.1 — every
request is a ``POST`` whose ``Content-Length`` header prefixes a single
JSON document, and every response is a JSON document the same way, so
any HTTP client (``curl``, ``http.client``, a browser) is a valid
protocol client.  Four request types map to four endpoints:

===========  =============  ====================================================
type         endpoint       semantics
===========  =============  ====================================================
``compile``  ``/compile``   translate to parallel C (hot translator cache)
``check``    ``/check``     S25 static-analysis report
``run``      ``/run``       execute in a supervised worker process under caps
``stats``    ``/stats``     service + serve counters (also plain ``GET``)
===========  =============  ====================================================

Status codes carry transport-level outcomes only: ``200`` for every
completed request (including programs that failed to compile or
trapped — those are *results*, reported in the body), ``400`` for
malformed requests, ``429`` when the bounded request queue is full
(body ``{"ok": false, "kind": "busy"}``), ``404`` for unknown
endpoints.  Bodies always include ``ok`` and ``kind``.

:class:`ServeRequest` is the validated in-daemon form; ``from_payload``
rejects unknown fields and wrong types with messages precise enough to
fix the client call, because a daemon serving many clients cannot crash
on a malformed one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

REQUEST_TYPES = ("compile", "check", "run", "stats", "shutdown")

#: Transport-level result kinds shared by server and client.
KIND_BUSY = "busy"
KIND_BAD_REQUEST = "bad_request"
KIND_WORKER_LOST = "worker_lost"

_MAX_SOURCE_BYTES = 4 << 20  # one program, not a dataset
_ALLOWED_FIELDS = {
    "type", "source", "extensions", "filename", "engine", "nthreads",
    "timeout_s", "inputs", "output_names", "options", "explain_parallel",
}
_ALLOWED_OPTIONS = {"fuse_assignment", "eliminate_slices", "parallelize"}


class ProtocolError(ValueError):
    """A malformed request payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class ServeRequest:
    """One validated daemon request."""

    type: str
    source: str = ""
    extensions: tuple[str, ...] = ("matrix",)
    filename: str = "<request>"
    engine: str = "vm"
    nthreads: int = 1
    timeout_s: float | None = None
    inputs: dict[str, Any] = field(default_factory=dict)
    output_names: tuple[str, ...] = ()
    options: dict[str, bool] = field(default_factory=dict)
    explain_parallel: bool = False

    @staticmethod
    def from_payload(payload: Any) -> "ServeRequest":
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        unknown = set(payload) - _ALLOWED_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown request fields: {sorted(unknown)}"
            )
        rtype = payload.get("type")
        if rtype not in REQUEST_TYPES:
            raise ProtocolError(
                f"request type must be one of {list(REQUEST_TYPES)}, "
                f"got {rtype!r}"
            )
        source = payload.get("source", "")
        if not isinstance(source, str):
            raise ProtocolError("'source' must be a string")
        if len(source.encode()) > _MAX_SOURCE_BYTES:
            raise ProtocolError(
                f"'source' exceeds {_MAX_SOURCE_BYTES} bytes"
            )
        if rtype in ("compile", "check", "run") and not source.strip():
            raise ProtocolError(f"'{rtype}' requires a non-empty 'source'")
        extensions = payload.get("extensions", ["matrix"])
        if isinstance(extensions, str):
            extensions = [e for e in extensions.split(",") if e]
        if not (isinstance(extensions, list)
                and all(isinstance(e, str) for e in extensions)):
            raise ProtocolError(
                "'extensions' must be a list of strings or a "
                "comma-separated string"
            )
        engine = payload.get("engine", "vm")
        if engine not in ("vm", "tree"):
            raise ProtocolError("'engine' must be 'vm' or 'tree'")
        nthreads = payload.get("nthreads", 1)
        if not isinstance(nthreads, int) or not 1 <= nthreads <= 64:
            raise ProtocolError("'nthreads' must be an int in [1, 64]")
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
                raise ProtocolError("'timeout_s' must be a positive number")
            timeout_s = float(timeout_s)
        inputs = payload.get("inputs", {})
        if not (isinstance(inputs, dict)
                and all(isinstance(k, str) for k in inputs)):
            raise ProtocolError("'inputs' must map file names to arrays")
        output_names = payload.get("output_names", [])
        if not (isinstance(output_names, list)
                and all(isinstance(n, str) for n in output_names)):
            raise ProtocolError("'output_names' must be a list of strings")
        options = payload.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be an object")
        bad = set(options) - _ALLOWED_OPTIONS
        if bad:
            raise ProtocolError(
                f"unknown options: {sorted(bad)}; "
                f"have {sorted(_ALLOWED_OPTIONS)}"
            )
        if not all(isinstance(v, bool) for v in options.values()):
            raise ProtocolError("option values must be booleans")
        filename = payload.get("filename", "<request>")
        if not isinstance(filename, str):
            raise ProtocolError("'filename' must be a string")
        explain = payload.get("explain_parallel", False)
        if not isinstance(explain, bool):
            raise ProtocolError("'explain_parallel' must be a boolean")
        return ServeRequest(
            type=rtype,
            source=source,
            extensions=tuple(extensions) or ("matrix",),
            filename=filename,
            engine=engine,
            nthreads=nthreads,
            timeout_s=timeout_s,
            inputs=dict(inputs),
            output_names=tuple(output_names),
            options={k: bool(v) for k, v in options.items()},
            explain_parallel=explain,
        )

    def make_options(self):
        """The request's options as an Optimizations instance."""
        from repro.cminus.env import Optimizations

        return Optimizations(**self.options) if self.options else None

    def coalesce_key(self) -> str:
        """Identity for in-flight request coalescing.

        Two requests coalesce when a single execution can serve both:
        same type, source, extension set, filename, engine/threads,
        inputs and options.  ``filename`` participates because it labels
        diagnostics — two clients compiling the same source under
        different names expect their own name in error messages.
        ``timeout_s`` is deliberately excluded: the leader's timeout
        governs, and a follower asking for a longer timeout still gets a
        correct (if earlier) answer.
        """
        h = hashlib.sha256()
        key = {
            "type": self.type,
            "source": self.source,
            "extensions": list(self.extensions),
            "filename": self.filename,
            "engine": self.engine,
            "nthreads": self.nthreads,
            "inputs": self.inputs,
            "output_names": list(self.output_names),
            "options": self.options,
            "explain_parallel": self.explain_parallel,
        }
        h.update(json.dumps(key, sort_keys=True).encode())
        return h.hexdigest()


def encode_response(payload: dict) -> bytes:
    """Length-prefixed JSON: the body bytes (Content-Length is the prefix)."""
    return json.dumps(payload).encode()


def decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ProtocolError(f"request body is not valid JSON: {e}") from e
