"""S26 — ``reproc serve``: the persistent compile-and-execute daemon.

The serving story the ROADMAP promised: a long-running process that
keeps translators hot (:class:`~repro.service.service.CompileService`),
executes untrusted programs in a supervised worker pool
(:class:`~repro.serve.workers.WorkerPool`), coalesces identical
in-flight requests, applies admission control with explicit 429
backpressure, and drains gracefully on shutdown.  The wire protocol
(:mod:`repro.serve.protocol`) is length-prefixed JSON framed as
HTTP/1.1, so ``curl`` is a valid client and so is
:class:`~repro.serve.client.ServeClient`.

>>> from repro.serve import ReproServer, ServeClient, ServeConfig
>>> with ReproServer(ServeConfig(port=0)) as server:
...     client = ServeClient(port=server.port)
...     client.run("int main() { printInt(42); return 0; }")["stdout"]
['42']
"""

from repro.serve.client import ServeClient, ServeUnavailable
from repro.serve.protocol import (
    KIND_BAD_REQUEST,
    KIND_BUSY,
    KIND_WORKER_LOST,
    ProtocolError,
    REQUEST_TYPES,
    ServeRequest,
)
from repro.serve.server import ReproServer, ServeConfig
from repro.serve.workers import WorkerPool

__all__ = [
    "KIND_BAD_REQUEST",
    "KIND_BUSY",
    "KIND_WORKER_LOST",
    "ProtocolError",
    "REQUEST_TYPES",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeRequest",
    "ServeUnavailable",
    "WorkerPool",
]
