"""``reproc serve`` — the resident compile-and-execute daemon (S26).

The ROADMAP's serving story, made concrete: one long-running process
keeps hot translators and the analysis LRU resident in a
:class:`~repro.service.service.CompileService`, executes untrusted
programs in a supervised :class:`~repro.serve.workers.WorkerPool`, and
speaks the HTTP/1.1-framed JSON protocol of :mod:`repro.serve.protocol`
to any number of concurrent clients.

Three mechanisms carry the operational load:

* **Coalescing** — identical in-flight requests (same
  :meth:`~repro.serve.protocol.ServeRequest.coalesce_key`) share one
  execution.  The first client in becomes the *leader* and does the
  work; every *follower* blocks on the leader's flight and receives a
  copy of its result with ``"coalesced": true``.  Followers consume no
  admission slot and no worker — a thundering herd of identical
  compiles costs one compile.
* **Admission control** — a counting semaphore of ``queue_depth`` slots
  bounds concurrently admitted leaders.  When no slot is free the
  request is rejected *immediately* with HTTP 429 / ``kind: "busy"``
  (never queued invisibly), so clients see backpressure they can act
  on.  Stats ``serve_rejections`` counts these.
* **Graceful shutdown** — ``stop()`` (or a ``shutdown`` request) stops
  accepting new work (503 ``shutting_down``), waits up to
  ``drain_timeout_s`` for in-flight leaders to finish, cancels whatever
  compile work remains via each flight's
  :class:`~repro.service.service.CancelToken`, then closes the worker
  pool.  In-flight clients get real answers, not connection resets.

The daemon and the CLI batch/check paths share one
:class:`~repro.service.stats.Counters` instance (through the shared
translator cache), so ``/stats`` and ``reproc batch --stats`` read the
same ledger.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from dataclasses import asdict, dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.protocol import (
    KIND_BAD_REQUEST,
    KIND_BUSY,
    ProtocolError,
    ServeRequest,
    encode_response,
)
from repro.serve.workers import WorkerPool
from repro.service import CompileRequest, CompileService, shared_cache
from repro.service.service import CANCELLED, CancelToken

_ENDPOINTS = {
    "/compile": "compile",
    "/check": "check",
    "/run": "run",
    "/stats": "stats",
    "/shutdown": "shutdown",
}

#: Request body size cap (source cap + JSON overhead headroom).
_MAX_BODY_BYTES = 8 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Daemon tunables; every knob has a ``reproc serve`` flag."""

    host: str = "127.0.0.1"
    port: int = 7378           # "SERV" on a phone keypad
    socket_path: str | None = None   # AF_UNIX instead of TCP when set
    pool_size: int = 2               # executor worker processes
    queue_depth: int = 8             # admitted-leader bound (429 beyond)
    default_timeout_s: float = 30.0  # per-run wall clock unless overridden
    max_requests_per_worker: int = 64
    output_cap: int = 1 << 20
    max_memory_bytes: int = 0        # 0 = no RLIMIT_AS in workers
    drain_timeout_s: float = 10.0


class _Flight:
    """One leader execution that followers can wait on."""

    __slots__ = ("done", "result", "cancel")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: dict | None = None
        self.cancel = CancelToken()


class ReproServer:
    """The daemon behind ``reproc serve`` — embeddable for tests.

    ``start()``/``stop()`` run it on a background thread;
    ``serve_forever()`` blocks (the CLI path).  ``handle_payload`` is
    the transport-independent core: every HTTP request funnels into it,
    and tests may call it directly.
    """

    def __init__(self, config: ServeConfig | None = None,
                 service: CompileService | None = None):
        self.config = config or ServeConfig()
        self.service = service or CompileService(shared_cache())
        self.counters = self.service._counters
        self.pool = WorkerPool(
            self.config.pool_size,
            max_requests_per_worker=self.config.max_requests_per_worker,
            default_timeout_s=self.config.default_timeout_s,
            output_cap=self.config.output_cap,
            max_memory_bytes=self.config.max_memory_bytes,
            counters=self.counters,
        )
        self._admission = threading.Semaphore(self.config.queue_depth)
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._started_at = time.monotonic()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- request core ---------------------------------------------------------

    def handle_payload(self, payload) -> tuple[int, dict]:
        """Dispatch one decoded JSON payload; returns (status, body)."""
        try:
            request = ServeRequest.from_payload(payload)
        except ProtocolError as e:
            return 400, {"ok": False, "kind": KIND_BAD_REQUEST,
                         "error": str(e)}

        if request.type == "stats":
            self.counters.add(serve_stats=1)
            return 200, self._stats_body()
        if request.type == "shutdown":
            threading.Thread(target=self.stop, daemon=True,
                             name="repro-serve-shutdown").start()
            return 200, {"ok": True, "kind": "shutting_down"}
        if self._draining.is_set():
            return 503, {"ok": False, "kind": "shutting_down",
                         "error": "daemon is draining"}

        # Coalescing: one execution per identical in-flight request.
        key = request.coalesce_key()
        with self._flights_lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = self._flights[key] = _Flight()
        if not leader:
            flight.done.wait()
            self.counters.add(serve_coalesced=1, **{f"serve_{request.type}": 1})
            result = dict(flight.result or
                          {"ok": False, "kind": "internal",
                           "error": "leader produced no result"})
            result["coalesced"] = True
            # A follower coalesced onto a rejected leader is rejected too.
            status = 429 if result.get("kind") == KIND_BUSY else 200
            return status, result

        # Leader path: admission first, then the actual work.
        if not self._admission.acquire(blocking=False):
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.result = {"ok": False, "kind": KIND_BUSY,
                             "error": "request queue is full; retry later"}
            flight.done.set()
            self.counters.add(serve_rejections=1)
            return 429, dict(flight.result)
        self.counters.add(**{f"serve_{request.type}": 1})
        try:
            result = self._execute(request, flight.cancel)
        except Exception as e:  # a handler bug must not wedge followers
            result = {"ok": False, "kind": "internal", "error": str(e)}
        finally:
            self._admission.release()
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.result = result if isinstance(result, dict) else {
                "ok": False, "kind": "internal", "error": "no result"}
            flight.done.set()
        result = dict(flight.result)
        result["coalesced"] = False
        return 200, result

    def _execute(self, request: ServeRequest, cancel: CancelToken) -> dict:
        if request.type == "run":
            return self.pool.submit(request)
        creq = CompileRequest(
            request.source,
            extensions=request.extensions,
            filename=request.filename,
            options=request.make_options(),
            nthreads=request.nthreads,
            cancel=cancel,
        )
        t0 = time.perf_counter()
        if request.type == "check":
            resp = self.service.check(creq)
        else:
            resp = self.service.compile(creq)
        elapsed = time.perf_counter() - t0
        if not resp.ok:
            kind = ("cancelled" if CANCELLED in resp.errors
                    else "compile_error")
            return {"ok": False, "kind": kind, "errors": list(resp.errors),
                    "elapsed_s": elapsed}
        body: dict = {"ok": True, "kind": "ok", "errors": [],
                      "elapsed_s": elapsed}
        if request.type == "check":
            report = resp.report
            body["report"] = report.format(
                explain_parallel=request.explain_parallel)
            body["error_count"] = report.error_count
            body["warning_count"] = report.warning_count
        else:
            body["c_source"] = resp.c_source
            body["timings"] = {
                "parse_s": resp.timings.parse,
                "decorate_s": resp.timings.decorate,
                "lower_s": resp.timings.lower,
                "emit_s": resp.timings.emit,
            }
        return body

    def _stats_body(self) -> dict:
        return {
            "ok": True,
            "kind": "stats",
            "stats": asdict(self.service.stats()),
            "pretty": self.service.stats().pretty(),
            "uptime_s": time.monotonic() - self._started_at,
            "workers_alive": self.pool.alive_workers,
            "queue_depth": self.config.queue_depth,
            "draining": self._draining.is_set(),
        }

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> str:
        if self.config.socket_path:
            return self.config.socket_path
        if self._httpd is not None:
            host, port = self._httpd.server_address[:2]
            return f"{host}:{port}"
        return f"{self.config.host}:{self.config.port}"

    @property
    def port(self) -> int:
        """The bound TCP port (meaningful after start; supports port=0)."""
        if self._httpd is not None and not self.config.socket_path:
            return self._httpd.server_address[1]
        return self.config.port

    def _make_httpd(self) -> ThreadingHTTPServer:
        handler = _make_handler(self)
        if self.config.socket_path:
            return _UnixHTTPServer(self.config.socket_path, handler)
        return ThreadingHTTPServer(
            (self.config.host, self.config.port), handler)

    def start(self) -> "ReproServer":
        """Bind and serve on a background thread (tests, embedding)."""
        self._httpd = self._make_httpd()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True, name="repro-serve-accept")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI path)."""
        self._httpd = self._make_httpd()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._finish_stop()

    def stop(self) -> None:
        """Graceful shutdown: drain, cancel stragglers, close the pool."""
        if self._stopped.is_set():
            return
        self._draining.set()
        if self._httpd is not None:
            self._httpd.shutdown()   # stops serve_forever; idempotent
        if self._thread is not None:
            self._thread.join(timeout=self.config.drain_timeout_s)
            self._finish_stop()
        # CLI path: serve_forever's finally runs _finish_stop.

    def _finish_stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        # Drain: wait for in-flight leaders, then cancel what remains.
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            with self._flights_lock:
                flights = list(self._flights.values())
            if not flights:
                break
            flights[0].done.wait(timeout=0.05)
        with self._flights_lock:
            for flight in self._flights.values():
                flight.cancel.cancel()
        if self._httpd is not None:
            self._httpd.server_close()
            if self.config.socket_path:
                import os

                try:
                    os.unlink(self.config.socket_path)
                except OSError:
                    pass
        self.pool.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _UnixHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer over an AF_UNIX socket path."""

    address_family = socket.AF_UNIX

    def __init__(self, path: str, handler):
        import os

        try:
            os.unlink(path)
        except OSError:
            pass
        socketserver.TCPServer.__init__(self, path, handler)

    def server_bind(self):
        # The HTTPServer override calls getfqdn on a (host, port) pair;
        # a unix path has neither.
        socketserver.TCPServer.server_bind(self)
        self.server_name = self.server_address
        self.server_port = 0


def _make_handler(server: ReproServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        # Quiet by default: a load test would otherwise spam stderr.
        def log_message(self, fmt, *args):  # noqa: D102
            pass

        def address_string(self):  # AF_UNIX client_address is b"" / ""
            try:
                return super().address_string()
            except Exception:
                return "unix"

        def _reply(self, status: int, body: dict) -> None:
            data = encode_response(body)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            try:
                self.wfile.write(data)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage

        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.split("?")[0] == "/stats":
                server.counters.add(serve_stats=1)
                self._reply(200, server._stats_body())
            elif self.path.split("?")[0] == "/healthz":
                self._reply(200, {"ok": True, "kind": "healthy"})
            else:
                self._reply(404, {"ok": False, "kind": "not_found",
                                  "error": f"no such endpoint {self.path!r}"})

        def do_POST(self):  # noqa: N802 - http.server API
            path = self.path.split("?")[0]
            rtype = _ENDPOINTS.get(path)
            if rtype is None:
                self._reply(404, {"ok": False, "kind": "not_found",
                                  "error": f"no such endpoint {path!r}; "
                                  f"have {sorted(_ENDPOINTS)}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                length = -1
            if length < 0 or length > _MAX_BODY_BYTES:
                self._reply(400, {"ok": False, "kind": KIND_BAD_REQUEST,
                                  "error": "missing or oversized "
                                  "Content-Length"})
                return
            body = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(body.decode("utf-8")) if length else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as e:
                self._reply(400, {"ok": False, "kind": KIND_BAD_REQUEST,
                                  "error": f"body is not valid JSON: {e}"})
                return
            if isinstance(payload, dict):
                declared = payload.setdefault("type", rtype)
                if declared != rtype:
                    self._reply(400, {
                        "ok": False, "kind": KIND_BAD_REQUEST,
                        "error": f"payload type {declared!r} does not "
                        f"match endpoint {path!r}"})
                    return
            status, out = server.handle_payload(payload)
            self._reply(status, out)

    return Handler
