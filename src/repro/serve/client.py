"""``reproc client`` — the scripting client for the serve daemon.

:class:`ServeClient` wraps one daemon address (TCP host:port or an
AF_UNIX socket path) and exposes one method per request type.  Every
method returns the daemon's decoded JSON body — ``ok``/``kind`` plus
type-specific fields — and never raises for *protocol-level* outcomes
(busy, bad request, compile errors); only transport failures (daemon
unreachable, malformed response) raise :class:`ServeUnavailable`.

The client retries nothing by itself: a 429 ``busy`` body is returned to
the caller, who owns the backoff policy.  :meth:`ServeClient.load` is
the exception — it is the smoke-load generator behind
``reproc client load`` and CI, firing N identical + M distinct requests
from a thread pool and reporting latency percentiles, throughput and the
coalescing observed.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from typing import Any

from repro.serve.protocol import KIND_BUSY


class ServeUnavailable(ConnectionError):
    """The daemon could not be reached or spoke garbage."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """http.client over an AF_UNIX socket path."""

    def __init__(self, path: str, timeout: float | None = None):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ServeClient:
    """A thread-safe client for one ``reproc serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7378,
                 *, socket_path: str | None = None,
                 timeout_s: float = 120.0):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    def _connect(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path,
                                       timeout=self.timeout_s)
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def request(self, rtype: str, **fields: Any) -> dict:
        """POST one request; returns the decoded body (adds ``_status``)."""
        payload = {"type": rtype, **{k: v for k, v in fields.items()
                                     if v is not None}}
        conn = self._connect()
        try:
            conn.request(
                "POST", f"/{rtype}",
                body=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            raw = resp.read()
            status = resp.status
        except (OSError, http.client.HTTPException) as e:
            raise ServeUnavailable(
                f"daemon at {self._address()} unreachable: {e}") from e
        finally:
            conn.close()
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as e:
            raise ServeUnavailable(
                f"daemon at {self._address()} returned a non-JSON "
                f"body (HTTP {status}): {e}") from e
        if not isinstance(body, dict):
            raise ServeUnavailable(
                f"daemon returned a non-object body: {body!r}")
        body["_status"] = status
        return body

    def _address(self) -> str:
        return self.socket_path or f"{self.host}:{self.port}"

    # -- one helper per request type ------------------------------------------

    def compile(self, source: str, extensions=("matrix",), **kw) -> dict:
        return self.request("compile", source=source,
                            extensions=list(extensions), **kw)

    def check(self, source: str, extensions=("matrix",), **kw) -> dict:
        return self.request("check", source=source,
                            extensions=list(extensions), **kw)

    def run(self, source: str, extensions=("matrix",), **kw) -> dict:
        return self.request("run", source=source,
                            extensions=list(extensions), **kw)

    def stats(self) -> dict:
        return self.request("stats")

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def wait_ready(self, timeout_s: float = 10.0,
                   interval_s: float = 0.05) -> bool:
        """Poll ``stats`` until the daemon answers (startup handshake)."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                self.stats()
                return True
            except ServeUnavailable:
                time.sleep(interval_s)
        return False

    # -- smoke load (CI + `reproc client load`) -------------------------------

    def load(self, source: str, extensions=("matrix",), *,
             requests: int = 32, clients: int = 8,
             rtype: str = "compile", distinct: int = 1) -> dict:
        """Fire ``requests`` requests from ``clients`` threads.

        ``distinct`` spreads the load over that many source variants (a
        trailing comment makes each fingerprint unique), so
        ``distinct=1`` maximizes coalescing while higher values exercise
        the cache.  Returns latency percentiles, throughput, and how
        many responses were coalesced or rejected.
        """
        variants = [
            source if i == 0 else f"{source}\n// variant {i}\n"
            for i in range(max(1, distinct))
        ]
        latencies: list[float] = []
        outcomes = {"ok": 0, "busy": 0, "coalesced": 0, "failed": 0}
        lock = threading.Lock()

        def one(i: int) -> None:
            t0 = time.perf_counter()
            try:
                body = self.request(rtype, source=variants[i % len(variants)],
                                    extensions=list(extensions))
            except ServeUnavailable:
                with lock:
                    outcomes["failed"] += 1
                return
            dt = time.perf_counter() - t0
            with lock:
                latencies.append(dt)
                if body.get("kind") == KIND_BUSY:
                    outcomes["busy"] += 1
                elif body.get("ok"):
                    outcomes["ok"] += 1
                else:
                    outcomes["failed"] += 1
                if body.get("coalesced"):
                    outcomes["coalesced"] += 1

        t_start = time.perf_counter()
        threads: list[threading.Thread] = []
        pending = list(range(requests))
        idx_lock = threading.Lock()

        def worker() -> None:
            while True:
                with idx_lock:
                    if not pending:
                        return
                    i = pending.pop()
                one(i)

        for _ in range(max(1, clients)):
            t = threading.Thread(target=worker, daemon=True)
            t.start()
            threads.append(t)
        for t in threads:
            t.join()
        wall = time.perf_counter() - t_start

        latencies.sort()

        def pct(p: float) -> float:
            if not latencies:
                return 0.0
            k = min(len(latencies) - 1, int(round(p * (len(latencies) - 1))))
            return latencies[k]

        return {
            "requests": requests,
            "clients": clients,
            "rtype": rtype,
            "distinct": len(variants),
            "wall_s": wall,
            "throughput_rps": requests / wall if wall > 0 else 0.0,
            "p50_ms": pct(0.50) * 1e3,
            "p99_ms": pct(0.99) * 1e3,
            "max_ms": (latencies[-1] * 1e3) if latencies else 0.0,
            **outcomes,
        }
