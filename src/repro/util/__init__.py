"""Shared infrastructure: source locations, diagnostics, ordered structures."""

from repro.util.diagnostics import (
    Diagnostic,
    DiagnosticError,
    Diagnostics,
    Severity,
    SourceLocation,
    SourceSpan,
)

__all__ = [
    "Diagnostic",
    "DiagnosticError",
    "Diagnostics",
    "Severity",
    "SourceLocation",
    "SourceSpan",
]
