"""Source locations and diagnostic (error/warning) reporting.

Every phase of the translator — scanning, parsing, semantic analysis, the
modular analyses — reports problems through a :class:`Diagnostics` sink so
that a single compilation can accumulate and present all errors at once,
the way the paper's extended translator "checks this extended program for
errors" before translating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(slots=True)
class SourceLocation:
    """A point in a source file: 1-based line, 0-based column, absolute offset.

    Immutable by convention.  Not ``frozen=True``: a frozen slotted
    dataclass constructs through ``object.__setattr__`` per field, and the
    scanner builds one of these (plus a span and a token) per token — the
    plain-assignment ``__init__`` is ~3.5x faster and sets the per-token
    cost floor for the compiled front end (S24).
    """

    line: int = 1
    column: int = 0
    offset: int = 0
    filename: str = "<input>"

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.offset, self.filename))

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column + 1}"

    def advanced_by(self, text: str) -> "SourceLocation":
        """Location after consuming ``text`` starting at this location."""
        nl = text.count("\n")
        if nl:
            line = self.line + nl
            column = len(text) - text.rfind("\n") - 1
        else:
            line = self.line
            column = self.column + len(text)
        return SourceLocation(line, column, self.offset + len(text), self.filename)


@dataclass(slots=True)
class SourceSpan:
    """A half-open region ``[start, end)`` of a source file.

    Immutable by convention; see :class:`SourceLocation` on why not frozen.
    """

    start: SourceLocation = field(default_factory=SourceLocation)
    end: SourceLocation = field(default_factory=SourceLocation)

    def __hash__(self) -> int:
        return hash((self.start, self.end))

    @staticmethod
    def at(loc: SourceLocation) -> "SourceSpan":
        return SourceSpan(loc, loc)

    def __str__(self) -> str:
        return str(self.start)


class Severity(enum.IntEnum):
    NOTE = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True, slots=True)
class Diagnostic:
    severity: Severity
    message: str
    span: SourceSpan = field(default_factory=SourceSpan)
    phase: str = ""

    def __str__(self) -> str:
        tag = self.severity.name.lower()
        where = f"{self.span}" if self.span else "<unknown>"
        prefix = f"[{self.phase}] " if self.phase else ""
        return f"{where}: {tag}: {prefix}{self.message}"


class DiagnosticError(Exception):
    """Raised when a phase cannot continue past accumulated errors."""

    def __init__(self, diagnostics: "Diagnostics"):
        self.diagnostics = diagnostics
        super().__init__("\n".join(str(d) for d in diagnostics.errors()))


class Diagnostics:
    """An append-only sink of diagnostics shared across translator phases."""

    def __init__(self) -> None:
        self._items: list[Diagnostic] = []

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def emit(self, diag: Diagnostic) -> None:
        self._items.append(diag)

    def error(self, message: str, span: SourceSpan | None = None, phase: str = "") -> None:
        self.emit(Diagnostic(Severity.ERROR, message, span or SourceSpan(), phase))

    def warning(self, message: str, span: SourceSpan | None = None, phase: str = "") -> None:
        self.emit(Diagnostic(Severity.WARNING, message, span or SourceSpan(), phase))

    def note(self, message: str, span: SourceSpan | None = None, phase: str = "") -> None:
        self.emit(Diagnostic(Severity.NOTE, message, span or SourceSpan(), phase))

    def errors(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity is Severity.WARNING]

    def sorted(self) -> list[Diagnostic]:
        """Source order — (filename, line, column), then descending
        severity for co-located diagnostics — with emission order as the
        final tie-break, so output is stable run to run (``reproc
        check`` golden files depend on this)."""
        indexed = list(enumerate(self._items))
        indexed.sort(key=lambda pair: (
            pair[1].span.start.filename,
            pair[1].span.start.line,
            pair[1].span.start.column,
            -int(pair[1].severity),
            pair[0],
        ))
        return [d for _i, d in indexed]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._items)

    def check(self) -> None:
        """Raise :class:`DiagnosticError` if any error has been emitted."""
        if self.has_errors:
            raise DiagnosticError(self)

    def format(self) -> str:
        return "\n".join(str(d) for d in self._items)
