"""Undecorated syntax trees for the attribute-grammar engine.

A :class:`Node` is a plain tree: a production name plus children (child
nodes, scanner tokens, or literal leaf values such as identifiers and
numbers).  Attribute evaluation happens on *decorated* views of these
trees (:mod:`repro.ag.eval`); the same undecorated tree may be decorated
several times with different inherited attributes — which is exactly what
higher-order attributes [25] require.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.lexing.scanner import Token
from repro.util.diagnostics import SourceSpan


class Node:
    """An undecorated AST node: production name + children."""

    __slots__ = ("prod", "children", "span")

    def __init__(self, prod: str, children: list[Any] | None = None,
                 span: SourceSpan | None = None):
        self.prod = prod
        self.children: list[Any] = children or []
        self.span = span or _infer_span(self.children)

    def __repr__(self) -> str:
        return f"{self.prod}({', '.join(map(_short, self.children))})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and self.prod == other.prod
            and self.children == other.children
        )

    def __hash__(self) -> int:  # pragma: no cover - nodes rarely hashed
        return hash((self.prod, len(self.children)))

    # -- structure helpers ----------------------------------------------------

    def child_nodes(self) -> Iterator["Node"]:
        for c in self.children:
            if isinstance(c, Node):
                yield c

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of all descendant nodes (including self)."""
        yield self
        for c in self.child_nodes():
            yield from c.walk()

    def count(self, prod: str) -> int:
        return sum(1 for n in self.walk() if n.prod == prod)

    def find_all(self, prod: str) -> list["Node"]:
        return [n for n in self.walk() if n.prod == prod]

    def replace(self, old: "Node", new: "Node") -> "Node":
        """Tree with ``old`` (by identity) replaced by ``new``; untouched
        subtrees are shared, the spine is rebuilt (trees are immutable in
        spirit, as in Silver)."""
        if self is old:
            return new
        changed = False
        kids: list[Any] = []
        for c in self.children:
            if isinstance(c, Node):
                r = c.replace(old, new)
                changed = changed or (r is not c)
                kids.append(r)
            else:
                kids.append(c)
        return Node(self.prod, kids, self.span) if changed else self


def _infer_span(children: list[Any]) -> SourceSpan:
    starts = []
    ends = []
    for c in children:
        if isinstance(c, Node):
            starts.append(c.span.start)
            ends.append(c.span.end)
        elif isinstance(c, Token):
            starts.append(c.span.start)
            ends.append(c.span.end)
    if not starts:
        return SourceSpan()
    return SourceSpan(
        min(starts, key=lambda l: l.offset), max(ends, key=lambda l: l.offset)
    )


def _short(c: Any) -> str:
    if isinstance(c, Node):
        return c.prod
    if isinstance(c, Token):
        return repr(c.lexeme)
    return repr(c)
