"""Demand-driven attribute evaluation over decorated trees.

A :class:`DecoratedNode` pairs an undecorated :class:`~repro.ag.tree.Node`
with its context (parent + child index, or explicit inherited values at the
root).  Attribute values are memoized per decorated node; evaluation is
demand-driven with cycle detection — the strategy Silver uses, which makes
attribute order declarative.

Forwarding: if a production declares a forward tree, any synthesized
attribute it does not define is evaluated on the decorated forward, which
receives the same inherited attributes as the forwarding node (Silver's
semantics).  Equations may also *decorate* locally constructed trees
(higher-order attributes) via :meth:`DecoratedNode.decorate`.
"""

from __future__ import annotations

from typing import Any

from repro.ag.core import AGSpec
from repro.ag.tree import Node

_PENDING = object()


class AGEvalError(Exception):
    """Attribute evaluation failure."""


class MissingEquationError(AGEvalError):
    pass


class CyclicAttributeError(AGEvalError):
    pass


class DecoratedNode:
    """A node decorated with a context supplying inherited attributes."""

    __slots__ = (
        "spec", "node", "parent", "child_index", "_root_inh",
        "_syn_cache", "_inh_cache", "_children_cache", "_forward_cache",
    )

    def __init__(
        self,
        spec: AGSpec,
        node: Node,
        parent: "DecoratedNode | None" = None,
        child_index: int = -1,
        root_inherited: dict[str, Any] | None = None,
    ):
        self.spec = spec
        self.node = node
        self.parent = parent
        self.child_index = child_index
        self._root_inh = root_inherited or {}
        self._syn_cache: dict[str, Any] = {}
        self._inh_cache: dict[str, Any] = {}
        self._children_cache: dict[int, Any] = {}
        self._forward_cache: Any = None

    # -- structure ---------------------------------------------------------------

    @property
    def prod(self) -> str:
        return self.node.prod

    @property
    def span(self):
        return self.node.span

    def child(self, i: int) -> Any:
        """The i-th child: a DecoratedNode for node children, else the raw
        leaf value (token / string / number / python list)."""
        if i in self._children_cache:
            return self._children_cache[i]
        raw = self.node.children[i]
        out = (
            DecoratedNode(self.spec, raw, parent=self, child_index=i)
            if isinstance(raw, Node)
            else raw
        )
        self._children_cache[i] = out
        return out

    def children(self) -> list[Any]:
        return [self.child(i) for i in range(len(self.node.children))]

    def __getitem__(self, i: int) -> Any:
        return self.child(i)

    def decorate(self, tree: Node, inherited: dict[str, Any] | None = None) -> "DecoratedNode":
        """Decorate a locally constructed tree (higher-order attribute).

        By default the new root inherits *this* node's inherited attributes
        (the common case for translation trees); entries in ``inherited``
        override or extend them.
        """
        inh = dict(self._all_inherited())
        if inherited:
            inh.update(inherited)
        return DecoratedNode(self.spec, tree, root_inherited=inh)

    def _all_inherited(self) -> dict[str, Any]:
        """Inherited attribute values available to this node (lazily pulled)."""
        out: dict[str, Any] = {}
        lhs = self.spec.productions[self.prod].lhs if self.prod in self.spec.productions else None
        for attr in self.spec.attrs_on(lhs, "inh") if lhs else []:
            try:
                out[attr] = self.inh(attr)
            except MissingEquationError:
                pass
        return out

    # -- attribute access ---------------------------------------------------------

    def att(self, name: str) -> Any:
        decl = self.spec.attrs.get(name)
        if decl is None:
            raise AGEvalError(f"unknown attribute {name!r}")
        return self.syn(name) if decl.kind == "syn" else self.inh(name)

    def __getattr__(self, name: str) -> Any:
        # Convenience: dn.typerep == dn.att("typerep").  Unknown attributes
        # and missing equations propagate as AG errors (not AttributeError)
        # so that specification bugs fail loudly.
        if name.startswith("_"):
            raise AttributeError(name)
        return self.att(name)

    def syn(self, name: str) -> Any:
        cached = self._syn_cache.get(name, None)
        if name in self._syn_cache:
            if cached is _PENDING:
                raise CyclicAttributeError(
                    f"cycle evaluating synthesized {name!r} on {self.prod}"
                )
            return cached
        self._syn_cache[name] = _PENDING
        try:
            value = self._eval_syn(name)
        except BaseException:
            del self._syn_cache[name]
            raise
        self._syn_cache[name] = value
        return value

    def _eval_syn(self, name: str) -> Any:
        fn = self.spec.syn_equations.get((self.prod, name))
        if fn is not None:
            return fn(self)
        fwd_fn = self.spec.forwards.get(self.prod)
        if fwd_fn is not None:
            return self.forward().syn(name)
        default = self.spec.defaults.get(name)
        if default is not None:
            return default(self)
        raise MissingEquationError(
            f"no equation for synthesized attribute {name!r} on production "
            f"{self.prod!r} (and it does not forward)"
        )

    def forward(self) -> "DecoratedNode":
        """The decorated forward tree of this node (Silver forwarding)."""
        if self._forward_cache is not None:
            return self._forward_cache
        fwd_fn = self.spec.forwards.get(self.prod)
        if fwd_fn is None:
            raise AGEvalError(f"production {self.prod!r} does not forward")
        tree = fwd_fn(self)
        if not isinstance(tree, Node):
            raise AGEvalError(f"forward of {self.prod!r} returned {type(tree).__name__}")
        # The forward receives the same inherited attributes as this node,
        # computed lazily by chaining to self.
        fwd = _ForwardNode(self.spec, tree, self)
        self._forward_cache = fwd
        return fwd

    def inh(self, name: str) -> Any:
        if name in self._inh_cache:
            cached = self._inh_cache[name]
            if cached is _PENDING:
                raise CyclicAttributeError(
                    f"cycle evaluating inherited {name!r} on {self.prod}"
                )
            return cached
        self._inh_cache[name] = _PENDING
        try:
            value = self._eval_inh(name)
        except BaseException:
            del self._inh_cache[name]
            raise
        self._inh_cache[name] = value
        return value

    def _eval_inh(self, name: str) -> Any:
        if self.parent is None:
            if name in self._root_inh:
                return self._root_inh[name]
            raise MissingEquationError(
                f"inherited attribute {name!r} not supplied at tree root "
                f"({self.prod})"
            )
        fn = self.spec.inh_equations.get((self.parent.prod, self.child_index, name))
        if fn is not None:
            return fn(self.parent)
        decl = self.spec.attrs[name]
        if decl.autocopy:
            return self.parent.inh(name)
        raise MissingEquationError(
            f"no equation for inherited attribute {name!r} on child "
            f"{self.child_index} of production {self.parent.prod!r}"
        )


class _ForwardNode(DecoratedNode):
    """Decorated forward tree: inherited attributes chain to the forwarder."""

    __slots__ = ("forwarder",)

    def __init__(self, spec: AGSpec, tree: Node, forwarder: DecoratedNode):
        super().__init__(spec, tree)
        self.forwarder = forwarder

    def _eval_inh(self, name: str) -> Any:
        return self.forwarder.inh(name)


def decorate(spec: AGSpec, tree: Node, inherited: dict[str, Any] | None = None) -> DecoratedNode:
    """Decorate ``tree`` as a root with explicit inherited attribute values."""
    return DecoratedNode(spec, tree, root_inherited=inherited or {})
