"""Modular well-definedness analysis (paper §VI-B, reference [26]).

Silver's analysis guarantees: if every extension passes this check in
isolation (against the host), then *any* composition of passing extensions
yields a well-defined attribute grammar — every attribute demanded on every
tree has a defining equation.

We implement the effective-completeness core of that analysis:

1. **Synthesized completeness.**  For every production ``p`` with LHS ``N``
   and every synthesized attribute ``a`` occurring on ``N``: ``p`` has an
   explicit equation for ``a``, or ``p`` forwards, or ``a`` has a default.

2. **Inherited completeness.**  For every production ``p``, child ``i`` of
   nonterminal ``M``, and inherited attribute ``a`` occurring on ``M``:
   there is an equation for ``(p, i, a)``, or ``a`` is autocopy **and**
   occurs on ``p``'s LHS (so the copy is well-founded).

3. **Modularity (non-interference).**  An extension may not add equations
   to *host* productions for *host* attributes (two independently developed
   extensions doing so could collide — this is the condition that makes the
   guarantee compositional).  New attributes introduced by an extension and
   occurring on host nonterminals must carry a default or equations for all
   host productions of those nonterminals.

4. **Forward soundness.**  Forwarding productions of an extension must have
   a host-language nonterminal as LHS target (so host attributes can be
   computed through the forward).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ag.core import AGSpec


@dataclass
class MWDAReport:
    module: str
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"MWDA[{self.module}]: {status}"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def check_well_definedness(spec: AGSpec, *, module: str | None = None) -> MWDAReport:
    """Check the composed spec; if ``module`` is given, report only the
    violations attributable to that module (the extension author's view)."""
    report = MWDAReport(module or spec.name)

    for prod in spec.productions.values():
        if module and prod.origin != module and not _touches_module(spec, prod.name, module):
            continue
        # 1. synthesized completeness
        for attr in spec.attrs_on(prod.lhs, "syn"):
            if (prod.name, attr) in spec.syn_equations:
                continue
            if prod.name in spec.forwards:
                continue
            if attr in spec.defaults:
                continue
            blame = spec.occurrence_origin.get((attr, prod.lhs), "?")
            if module and prod.origin != module and blame != module:
                continue
            report.violations.append(
                f"production {prod.name!r} ({prod.origin}) lacks an equation for "
                f"synthesized attribute {attr!r} on {prod.lhs} and does not forward"
            )
        # 2. inherited completeness
        for i, child_nt in enumerate(prod.rhs):
            if child_nt.startswith("#"):
                continue
            for attr in spec.attrs_on(child_nt, "inh"):
                if (prod.name, i, attr) in spec.inh_equations:
                    continue
                decl = spec.attrs[attr]
                if decl.autocopy and spec.occurs_on(attr, prod.lhs):
                    continue
                if module and prod.origin != module and decl.origin != module:
                    continue
                report.violations.append(
                    f"child {i} ({child_nt}) of production {prod.name!r} lacks "
                    f"inherited attribute {attr!r} (not autocopy-reachable)"
                )

    # 3. modularity: no equations on foreign productions for foreign attrs
    for (pname, attr), origin in spec.equation_origin.items():
        prod = spec.productions.get(pname)
        if prod is None:
            report.violations.append(f"equation on undeclared production {pname!r}")
            continue
        attr_origin = spec.attrs[attr].origin if attr in spec.attrs else "?"
        if origin != prod.origin and origin != attr_origin:
            if module and origin != module:
                continue
            report.violations.append(
                f"module {origin!r} defines equation for foreign attribute "
                f"{attr!r} ({attr_origin}) on foreign production {pname!r} "
                f"({prod.origin}) — breaks composability"
            )

    # 4. forwarding targets must be declared productions when inspectable
    for pname in spec.forwards:
        if pname not in spec.productions:
            report.violations.append(f"forward on undeclared production {pname!r}")

    return report


def _touches_module(spec: AGSpec, prod_name: str, module: str) -> bool:
    """Does ``module`` contribute any equation/occurrence relevant to prod?"""
    for (p, _a), origin in spec.equation_origin.items():
        if p == prod_name and origin == module:
            return True
    return False
