"""Attribute-grammar engine (the Silver reproduction, §VI-B).

Synthesized/inherited attributes with demand-driven evaluation, autocopy,
defaults, forwarding, and higher-order attributes; plus the modular
well-definedness analysis.
"""

from repro.ag.core import AbstractProduction, AGError, AGSpec, AttrDecl
from repro.ag.eval import (
    AGEvalError,
    CyclicAttributeError,
    DecoratedNode,
    MissingEquationError,
    decorate,
)
from repro.ag.mwda import MWDAReport, check_well_definedness
from repro.ag.tree import Node

__all__ = [
    "AbstractProduction",
    "AGError",
    "AGEvalError",
    "AGSpec",
    "AttrDecl",
    "CyclicAttributeError",
    "DecoratedNode",
    "MissingEquationError",
    "MWDAReport",
    "Node",
    "check_well_definedness",
    "decorate",
]
