"""Attribute-grammar specifications, in the manner of Silver (paper [8]).

A :class:`AGSpec` declares, each tagged with the module ("origin") that
declared it so the modular well-definedness analysis can reason about
composition:

* **nonterminals** and **abstract productions** (name, LHS, RHS signature);
* **synthesized** and **inherited attributes**, with the nonterminals they
  *occur on*; inherited attributes may be ``autocopy`` (Silver's pattern for
  environments: copied unchanged to children unless overridden);
* **equations**: for a synthesized attribute, per production; for an
  inherited attribute, per (production, child index);
* **defaults** for synthesized attributes (used when a production has no
  explicit equation and does not forward);
* **forwarding** [Silver]: a production may define a forward tree — the
  host-language translation of an extension construct.  Any synthesized
  attribute the production does not define explicitly is evaluated on the
  decorated forward tree.  This is precisely how the paper's extensions
  "translate the construct down to plain C code".

AGSpecs compose with :meth:`AGSpec.compose`, mirroring grammar composition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ag.tree import Node


class AGError(ValueError):
    pass


@dataclass(frozen=True)
class AttrDecl:
    name: str
    kind: str  # "syn" | "inh"
    origin: str
    autocopy: bool = False
    # occurs-on is stored in AGSpec.occurrences


@dataclass(frozen=True)
class AbstractProduction:
    name: str
    lhs: str
    rhs: tuple[str, ...]  # nonterminal names or leaf kinds ("#token", "#value")
    origin: str

    def nt_child_indices(self) -> list[int]:
        return [i for i, s in enumerate(self.rhs) if not s.startswith("#")]


# Equation signatures: synthesized/forward/default take the decorated node;
# inherited equations take the decorated *parent* node.
EqFn = Callable[[Any], Any]


@dataclass
class AGSpec:
    name: str
    nonterminals: dict[str, str] = field(default_factory=dict)  # name -> origin
    productions: dict[str, AbstractProduction] = field(default_factory=dict)
    attrs: dict[str, AttrDecl] = field(default_factory=dict)
    occurrences: dict[str, set[str]] = field(default_factory=dict)  # attr -> {nt}
    occurrence_origin: dict[tuple[str, str], str] = field(default_factory=dict)
    syn_equations: dict[tuple[str, str], EqFn] = field(default_factory=dict)
    inh_equations: dict[tuple[str, int, str], EqFn] = field(default_factory=dict)
    defaults: dict[str, EqFn] = field(default_factory=dict)
    forwards: dict[str, EqFn] = field(default_factory=dict)
    equation_origin: dict[tuple[str, str], str] = field(default_factory=dict)

    # -- declarations -----------------------------------------------------------

    def nonterminal(self, name: str, *, origin: str | None = None) -> str:
        if name in self.nonterminals:
            raise AGError(f"duplicate nonterminal {name!r}")
        self.nonterminals[name] = origin or self.name
        return name

    def abstract_production(
        self, name: str, lhs: str, rhs: list[str], *, origin: str | None = None
    ) -> AbstractProduction:
        if name in self.productions:
            raise AGError(f"duplicate abstract production {name!r}")
        prod = AbstractProduction(name, lhs, tuple(rhs), origin or self.name)
        self.productions[name] = prod
        return prod

    def synthesized(
        self, name: str, on: list[str] | str, *, origin: str | None = None
    ) -> None:
        self._declare_attr(name, "syn", on, origin=origin)

    def inherited(
        self,
        name: str,
        on: list[str] | str,
        *,
        autocopy: bool = False,
        origin: str | None = None,
    ) -> None:
        self._declare_attr(name, "inh", on, autocopy=autocopy, origin=origin)

    def _declare_attr(self, name, kind, on, *, autocopy=False, origin=None):
        origin = origin or self.name
        if name in self.attrs:
            decl = self.attrs[name]
            if decl.kind != kind or decl.autocopy != autocopy:
                raise AGError(f"attribute {name!r} redeclared incompatibly")
            # A re-declaration (an extension adding occurrences of a host
            # attribute to its own nonterminals) keeps the original origin.
        else:
            self.attrs[name] = AttrDecl(name, kind, origin, autocopy)
            self.occurrences[name] = set()
        nts = [on] if isinstance(on, str) else list(on)
        for nt in nts:
            self.occurrences[name].add(nt)
            self.occurrence_origin.setdefault((name, nt), origin)

    def equation(self, prod: str, attr: str, fn: EqFn, *, origin: str | None = None) -> None:
        """Define a synthesized-attribute equation on a production."""
        key = (prod, attr)
        if key in self.syn_equations:
            raise AGError(f"duplicate equation for {attr!r} on {prod!r}")
        self.syn_equations[key] = fn
        self.equation_origin[key] = origin or self.name

    def inh_equation(
        self, prod: str, child: int, attr: str, fn: EqFn, *, origin: str | None = None
    ) -> None:
        """Define an inherited-attribute equation for a production's child."""
        key = (prod, child, attr)
        if key in self.inh_equations:
            raise AGError(f"duplicate inherited equation {attr!r} on {prod!r}.{child}")
        self.inh_equations[key] = fn

    def default(self, attr: str, fn: EqFn, *, origin: str | None = None) -> None:
        if attr in self.defaults:
            raise AGError(f"duplicate default for {attr!r}")
        self.defaults[attr] = fn

    def forward(self, prod: str, fn: EqFn, *, origin: str | None = None) -> None:
        """Declare that ``prod`` forwards to the tree computed by ``fn``."""
        if prod in self.forwards:
            raise AGError(f"production {prod!r} already forwards")
        self.forwards[prod] = fn

    # -- composition --------------------------------------------------------------

    def compose(self, *extensions: "AGSpec") -> "AGSpec":
        out = AGSpec(name="+".join([self.name, *(e.name for e in extensions)]))
        for spec in (self, *extensions):
            for nt, origin in spec.nonterminals.items():
                if nt not in out.nonterminals:
                    out.nonterminals[nt] = origin
            for pname, prod in spec.productions.items():
                if pname in out.productions:
                    raise AGError(f"production {pname!r} declared by two modules")
                out.productions[pname] = prod
            for aname, decl in spec.attrs.items():
                if aname in out.attrs:
                    prev = out.attrs[aname]
                    # Occurrence re-declarations across modules are fine as
                    # long as kind/autocopy agree (origin may differ: an
                    # extension mentions a host attribute by name).
                    if prev.kind != decl.kind or prev.autocopy != decl.autocopy:
                        raise AGError(f"attribute {aname!r} declared incompatibly")
                else:
                    out.attrs[aname] = decl
                    out.occurrences[aname] = set()
                out.occurrences[aname] |= spec.occurrences.get(aname, set())
            out.occurrence_origin.update(spec.occurrence_origin)
            for key, fn in spec.syn_equations.items():
                if key in out.syn_equations:
                    raise AGError(f"equation for {key} from two modules")
                out.syn_equations[key] = fn
            out.equation_origin.update(spec.equation_origin)
            for key, fn in spec.inh_equations.items():
                if key in out.inh_equations:
                    raise AGError(f"inherited equation for {key} from two modules")
                out.inh_equations[key] = fn
            for aname, fn in spec.defaults.items():
                if aname in out.defaults:
                    raise AGError(f"default for {aname!r} from two modules")
                out.defaults[aname] = fn
            for pname, fn in spec.forwards.items():
                if pname in out.forwards:
                    raise AGError(f"forward for {pname!r} from two modules")
                out.forwards[pname] = fn
        return out

    # -- tree construction ----------------------------------------------------------

    def make(self, prod: str, children: list[Any] | None = None, span=None) -> Node:
        """Build a Node, arity-checked against the abstract production."""
        children = children or []
        decl = self.productions.get(prod)
        if decl is None:
            raise AGError(f"unknown abstract production {prod!r}")
        if len(children) != len(decl.rhs):
            raise AGError(
                f"production {prod!r} expects {len(decl.rhs)} children, "
                f"got {len(children)}"
            )
        return Node(prod, children, span)

    def occurs_on(self, attr: str, nt: str) -> bool:
        return nt in self.occurrences.get(attr, set())

    def attrs_on(self, nt: str, kind: str | None = None) -> list[str]:
        return [
            a
            for a, nts in self.occurrences.items()
            if nt in nts and (kind is None or self.attrs[a].kind == kind)
        ]
