"""repro.ir — TAC/SSA mid-level IR and optimizing pass pipeline (S28).

Sits between the bytecode compiler's lowering (:mod:`repro.cexec.
bytecode`) and the VM: register bytecode is decoded into a CFG of
three-address instructions, rebuilt in SSA form on the PR 5 analysis
framework, optimized (constant folding, copy propagation, global CSE,
LICM, strength reduction, DCE), and re-emitted as bytecode.  See
DESIGN.md S28.
"""

from repro.ir.pipeline import PASS_COUNTERS, dump_stages, optimize_code

__all__ = ["PASS_COUNTERS", "dump_stages", "optimize_code"]
