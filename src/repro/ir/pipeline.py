"""Pass pipeline driver: bytecode -> TAC/SSA -> passes -> bytecode.

``optimize_code`` is the single entry point
(:class:`repro.cexec.bytecode.BytecodeProgram` calls it per function
when ``Optimizations.opt_level`` > 0):

* ``-O0`` — identity (the S22 compiler's output runs unchanged);
* ``-O1`` — fold / copy-prop / CSE / DCE (no loop transforms);
* ``-O2`` — plus LICM and strength reduction (the default).

The driver is defensive: the optimizer must never turn a compilable
program into a broken one, so any internal error falls back to the
unoptimized code and bumps the ``bailouts`` counter (tests run with
``REPRO_IR_STRICT=1``, which re-raises instead).  A structural verifier
checks every emitted function — operand slots in range, jump targets on
instruction boundaries, opcode vocabulary the VM knows — before it is
allowed to replace the original.
"""

from __future__ import annotations

import os

from repro.cexec.bytecode import Code

from repro.ir import passes as P
from repro.ir.ssa import build_ssa, destroy_ssa
from repro.ir.tac import (
    BINOPS, LOADS, STORES, TACFunc, UNOPS, Value, decode, linearize,
)

#: Per-pass rewrite counter names, in pipeline order (stats reporting).
PASS_COUNTERS = ("fold", "copyprop", "cse", "thread", "licm", "strength",
                 "dce")

_KNOWN_OPS = (BINOPS | UNOPS | LOADS | STORES | frozenset([
    "const", "jmp", "jz", "jnz", "rt_dim", "rt_size", "rc_inc", "rc_dec",
    "intr", "call", "tuple", "tget", "pool", "spawn", "sync", "fastloop",
    "ret", "ret_none"]))


def _verify(code: Code) -> None:
    n = len(code.instrs)
    for i, ins in enumerate(code.instrs):
        op = ins[0]
        if op not in _KNOWN_OPS:
            raise AssertionError(f"unknown op {op!r} at {i}")
        if op in ("jmp", "jz", "jnz", "fastloop"):
            t = ins[-1]
            if not (0 <= t <= n):
                raise AssertionError(f"jump target {t} out of range at {i}")
        regs = []
        if op in ("intr", "call", "spawn"):
            regs = [*ins[3]] if ins[1] is None else [ins[1], *ins[3]]
        elif op == "pool":
            regs = [ins[2], *ins[3]]
        elif op == "tuple":
            regs = [ins[1], *ins[2]]
        elif op in ("jz", "jnz"):
            regs = [ins[1]]
        elif op in ("const", "tget"):
            regs = [ins[1]]
        elif op not in ("jmp", "ret_none", "sync", "fastloop"):
            regs = [x for x in ins[1:] if isinstance(x, int)]
        for r in regs:
            if not (0 <= r < code.nregs):
                raise AssertionError(f"register {r} out of range at {i}")


def _run_passes(fn: TACFunc, level: int, counts,
                check=lambda where: None) -> None:
    poisoned = P.poisoned_values(fn)
    P.dvnt(fn, counts, poisoned)
    check("dvnt")
    if level >= 2:
        # early DCE clears dead phi cycles (unread temp slots merged at
        # joins) so jump_thread's "phis used only locally" test sees
        # through them.
        P.dce(fn, counts)
        check("dce")
        P.jump_thread(fn, counts, poisoned)
        check("jump_thread")
        P.licm(fn, counts, poisoned)
        check("licm")
        P.strength_reduce(fn, counts, poisoned)
        check("strength_reduce")
        P.dvnt(fn, counts, poisoned)
        check("dvnt")
    P.dce(fn, counts)
    check("dce")


def optimize_code(code: Code, level: int, counts) -> Code:
    """Optimize one compiled function; returns a new :class:`Code` (or
    the input unchanged at ``-O0`` / on internal bailout)."""
    if level <= 0 or not code.instrs:
        return code
    try:
        fn = decode(code)
        build_ssa(fn)
        # Under REPRO_IR_STRICT the SSA verifier pins well-formedness
        # between every pass (tests/ir also runs it unconditionally);
        # otherwise passes stay check-free and any breakage is caught
        # by the structural _verify + bailout below.
        if os.environ.get("REPRO_IR_STRICT"):
            from repro.ir.verify import verify_fn
            verify_fn(fn, where="build_ssa")
            _run_passes(fn, level, counts,
                        check=lambda where: verify_fn(fn, where=where))
        else:
            _run_passes(fn, level, counts)
        reg, nregs = destroy_ssa(fn)
        out = linearize(fn, reg, nregs)
        _verify(out)
        counts["functions"] = counts.get("functions", 0) + 1
        return out
    except Exception:
        if os.environ.get("REPRO_IR_STRICT"):
            raise
        counts["bailouts"] = counts.get("bailouts", 0) + 1
        return code


# -- IR dumping (reproc disasm --ir, golden tests) ---------------------------


def dump_fn(fn: TACFunc, title: str = "") -> str:
    """Deterministic, diff-friendly text form of a TAC function: value
    ids renumbered in block order, blocks labeled by layout position."""
    order = [b for b in sorted(fn.blocks, key=lambda x: fn.blocks[x].key)
             if b in set(fn.rpo())]
    label = {bid: f"B{i}" for i, bid in enumerate(order)}
    names: dict[int, str] = {}

    def nm(v) -> str:
        if not isinstance(v, Value):
            return repr(v)
        if fn.undef is not None and v.vid == fn.undef.vid:
            return "undef"
        s = names.get(v.vid)
        if s is None:
            s = names[v.vid] = f"v{len(names)}"
        return s

    # parameters first so their names are stable
    if fn.undef is not None:
        for v in fn.values[1:len(fn.params) + 1]:
            names[v.vid] = f"p{v.slot - 1}"

    lines = [f"{title or fn.name}({', '.join(fn.params)})"]
    for bid in order:
        b = fn.blocks[bid]
        preds = ", ".join(label[p] for p in b.preds if p in label)
        lines.append(f"{label[bid]}:" + (f"    ; preds {preds}" if preds
                                         else ""))
        for ins in b.instrs:
            if ins.op == "nop":
                continue
            if ins.op == "phi":
                pairs = ", ".join(
                    f"{label.get(p, '?')}: {nm(a)}"
                    for p, a in zip(ins.extra["preds"], ins.args))
                lines.append(f"  {nm(ins.dest)} = phi [{pairs}]")
                continue
            if ins.op == "flacc":
                lines.append(f"  {nm(ins.dest)} = flacc slot{ins.extra}")
                continue
            rhs = ins.op
            if ins.extra is not None and ins.op in ("intr", "call", "spawn"):
                rhs += f" {ins.extra}"
            elif ins.op == "const":
                rhs += f" {ins.extra!r}"
            elif ins.op == "tget":
                rhs += f" .{ins.extra}"
            if ins.args:
                rhs += " " + ", ".join(nm(a) for a in ins.args)
            lines.append(f"  {nm(ins.dest)} = {rhs}" if ins.dest is not None
                         else f"  {rhs}")
        t = b.term
        if t is None:
            continue
        if t.op == "fastloop":
            ex = t.extra
            lines.append(
                f"  fastloop reads[{', '.join(map(str, ex['reads']))}] "
                f"accs[{', '.join(map(str, ex['accs']))}] "
                f"-> done {label.get(b.succs[0], '?')}, "
                f"scalar {label.get(b.succs[1], '?')}")
        elif t.op in ("jz", "jnz"):
            lines.append(f"  {t.op} {nm(t.args[0])} "
                         f"-> {label.get(b.succs[0], '?')}, "
                         f"else {label.get(b.succs[1], '?')}")
        elif t.op == "jmp":
            lines.append(f"  jmp {label.get(b.succs[0], '?')}")
        elif t.op == "ret":
            lines.append(f"  ret {nm(t.args[0])}")
        else:
            lines.append(f"  {t.op}")
    return "\n".join(lines)


def dump_stages(code: Code, level: int) -> dict[str, str]:
    """All intermediate forms of one function, for ``reproc disasm``:
    raw TAC, SSA, optimized SSA, and the final bytecode disassembly."""
    from collections import defaultdict

    out: dict[str, str] = {"bytecode-in": code.dis()}
    fn = decode(code)
    out["tac"] = dump_fn(fn, f"{code.name} [tac]")
    build_ssa(fn)
    out["ssa"] = dump_fn(fn, f"{code.name} [ssa]")
    counts: dict[str, int] = defaultdict(int)
    if level > 0:
        _run_passes(fn, level, counts)
    out["opt"] = dump_fn(fn, f"{code.name} [opt -O{level}]")
    out["counts"] = ", ".join(f"{k}={counts[k]}" for k in PASS_COUNTERS
                              if counts.get(k))
    final = optimize_code(code, level, defaultdict(int))
    out["bytecode"] = final.dis()
    return out
