"""SSA well-formedness verifier for the TAC mid-level IR (S30).

The pipeline's structural ``_verify`` checks the *emitted bytecode*;
nothing checked the IR in between, so a pass that broke SSA form (a
duplicated definition, a use hoisted above its def, a phi left behind
after an edge was retargeted) surfaced only as a wrong answer or a
linearizer crash several passes later.  :func:`verify_fn` pins the
invariants every pass relies on:

* **CFG shape** — every reachable block ends in a terminator with the
  right successor count (``jmp`` 1, ``jz``/``jnz``/``fastloop`` 2,
  ``ret``/``ret_none`` 0), edges are symmetric (``succs``/``preds``
  agree), and targets exist;
* **single definition** — no SSA value is defined by two instructions;
* **def dominates use** — straight-line uses see their def earlier in
  the same block or in a strict dominator; a phi's *k*-th operand is a
  use at the end of its *k*-th predecessor;
* **phi arity** — a phi's operand list is exactly as long as its
  recorded predecessor list, which matches the block's actual preds
  (the multiset, so a shared ``jz`` target with both edges from one
  block still verifies).

``undef`` (vid 0) and parameter values (vids 1..nparams) are defined
at entry and dominate everything.  The verifier runs between every
pass when ``REPRO_IR_STRICT`` is set (the tests/ir suites run it
unconditionally) and costs one linear scan plus the dominator tree the
function already computes for its passes.
"""

from __future__ import annotations

from repro.ir.tac import TACFunc, TERMINATORS, Value

#: Ops that never define a value even when ``dest`` is still set
#: (nop-ed instructions keep their old dest field).
_NON_DEFS = frozenset(["nop"] + sorted(TERMINATORS))

_SUCC_COUNT = {"jmp": 1, "jz": 2, "jnz": 2, "fastloop": 2,
               "ret": 0, "ret_none": 0}


class VerifyError(AssertionError):
    """An IR invariant does not hold; the message names the pass that
    just ran (``where``), the block, and the offending instruction."""


def _fail(where: str, fn: TACFunc, bid, msg: str) -> None:
    tag = f" after {where}" if where else ""
    raise VerifyError(f"IR verify failed{tag} in '{fn.name}' B{bid}: {msg}")


def verify_fn(fn: TACFunc, *, where: str = "") -> None:
    """Check ``fn``; raises :class:`VerifyError` on the first violation.

    Works on SSA-form functions (Value operands).  Pre-SSA / post-
    destruction functions (int slot operands) get the CFG checks only.
    """
    reachable = set(fn.rpo())
    if fn.entry not in fn.blocks:
        _fail(where, fn, fn.entry, "entry block missing")

    # -- CFG shape -----------------------------------------------------------
    for bid in reachable:
        b = fn.blocks[bid]
        if b.term is None:
            _fail(where, fn, bid, "reachable block has no terminator")
        op = b.term.op
        if op not in TERMINATORS:
            _fail(where, fn, bid, f"terminator op {op!r} is not a terminator")
        want = _SUCC_COUNT[op]
        if len(b.succs) != want:
            _fail(where, fn, bid,
                  f"{op} expects {want} successor(s), has {len(b.succs)}")
        for s in b.succs:
            if s not in fn.blocks:
                _fail(where, fn, bid, f"successor B{s} does not exist")
            if b.bid not in fn.blocks[s].preds:
                _fail(where, fn, bid,
                      f"edge to B{s} missing from its preds")
        for p in b.preds:
            if p not in fn.blocks or b.bid not in fn.blocks[p].succs:
                _fail(where, fn, bid,
                      f"pred B{p} does not list this block as a successor")

    # -- SSA form ------------------------------------------------------------
    ssa = any(isinstance(i.dest, Value) or
              any(isinstance(a, Value) for a in i.args)
              for bid in reachable for i in fn.blocks[bid].instrs)
    if not ssa:
        return

    nparams = len(fn.params)
    defs: dict[int, tuple[int, int]] = {}  # vid -> (block, instr index)
    for bid in reachable:
        for idx, ins in enumerate(fn.blocks[bid].instrs):
            if ins.op in _NON_DEFS or not isinstance(ins.dest, Value):
                continue
            vid = ins.dest.vid
            if vid in defs:
                _fail(where, fn, bid,
                      f"value v{vid} defined twice "
                      f"(also in B{defs[vid][0]})")
            defs[vid] = (bid, idx)

    idom = fn.dominators()

    def entry_defined(vid: int) -> bool:
        return vid <= nparams  # undef (0) and parameters

    def check_use(v, use_bid: int, use_idx: int | None, what: str) -> None:
        if not isinstance(v, Value):
            return
        if entry_defined(v.vid):
            return
        site = defs.get(v.vid)
        if site is None:
            _fail(where, fn, use_bid,
                  f"{what} uses v{v.vid} which has no definition")
        dbid, didx = site
        if dbid == use_bid:
            if use_idx is not None and didx >= use_idx:
                _fail(where, fn, use_bid,
                      f"{what} uses v{v.vid} before its definition")
        elif not fn.dominates(idom, dbid, use_bid):
            _fail(where, fn, use_bid,
                  f"{what} uses v{v.vid} whose def in B{dbid} does "
                  f"not dominate")

    for bid in reachable:
        b = fn.blocks[bid]
        for idx, ins in enumerate(b.instrs):
            if ins.op == "phi":
                preds = list(ins.extra["preds"])
                if len(ins.args) != len(preds):
                    _fail(where, fn, bid,
                          f"phi has {len(ins.args)} operand(s) for "
                          f"{len(preds)} recorded predecessor(s)")
                if sorted(preds) != sorted(b.preds):
                    _fail(where, fn, bid,
                          f"phi preds {sorted(preds)} != block preds "
                          f"{sorted(b.preds)}")
                for k, (arg, p) in enumerate(zip(ins.args, preds)):
                    # a phi operand is a use at the end of its pred
                    check_use(arg, p, None, f"phi operand {k}")
            elif ins.op != "nop":
                for a in ins.args:
                    check_use(a, bid, idx, f"'{ins.op}'")
        if b.term is not None:
            for a in b.term.args:
                check_use(a, bid, None, f"terminator '{b.term.op}'")


def verify_all(fns, *, where: str = "") -> None:
    """Verify a batch of functions (tests/ir convenience)."""
    for fn in fns:
        verify_fn(fn, where=where)
