"""Three-address-code IR over the register bytecode (S28).

``cexec.bytecode`` already lowers trees to flat three-address register
code — `(op, dest, operands...)` tuples over frame slots — so the
mid-level IR decodes *that* vocabulary instead of inventing a second
one: every IR instruction corresponds to exactly one VM opcode with the
VM's own semantics (``c_div`` trapping, float32 narrowing, short-circuit
jumps already resolved).  This module provides the structural layer:

* :func:`decode` — split a :class:`~repro.cexec.bytecode.Code` into
  basic blocks with explicit terminators and build the CFG;
* dominators / dominance frontiers / natural loops on that CFG (the
  same iterative worklist style as :mod:`repro.analysis.cfg`, which
  handles the *tree-level* CFGs; this one is register-level);
* CFG normalization — synthetic entry, critical-edge splitting, loop
  preheaders, and ``fastloop`` done-edge stubs — done *before* SSA
  construction so :mod:`repro.ir.ssa` never has to edit edges under
  phis;
* :func:`linearize` — re-emit an optimized function as a flat
  :class:`Code`, resolving block targets back to jump offsets.

``fastloop`` needs special care: its guarded numpy plan closures
capture *frame slot numbers* at tree-compile time (see
:mod:`repro.cexec.loopfast`), so the IR models it as an opaque two-way
terminator that reads a declared set of pinned slots and (on the
"whole loop vectorized" edge) defines its accumulator slots through
synthetic ``flacc`` instructions in a stub block on that edge.  At
linearization the pinned slots are reserved from register allocation
and refreshed with ``move``s right before the instruction, so the plan
always sees exactly the values the unoptimized program would have had
in those slots.
"""

from __future__ import annotations

from repro.cexec.bytecode import Code

# -- opcode classification ---------------------------------------------------

BINOPS = frozenset(["+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!="])
UNOPS = frozenset(["move", "neg", "not", "bool", "cast_int", "cast_f32"])
LOADS = frozenset(["rt_getf", "rt_geti"])
STORES = frozenset(["rt_setf", "rt_seti"])
TERMINATORS = frozenset(["jmp", "jz", "jnz", "ret", "ret_none", "fastloop"])

#: Pure ops: result depends only on operand *values*; safe to merge by
#: value number when the first occurrence dominates the second.  Note
#: ``/ % cast_int cast_f32 rt_dim tget`` may trap, but dominance makes
#: CSE of them sound (the surviving occurrence traps first, or neither
#: does).  ``rt_dim``/``rt_size`` are pure because an ``RTMat``'s dims
#: tuple is immutable — rebinding a matrix variable yields a *new* SSA
#: value, so the value-number key changes with it.
PURE = BINOPS | frozenset([
    "const", "move", "neg", "not", "bool", "cast_int", "cast_f32",
    "rt_dim", "rt_size", "tuple", "tget"])

#: Pure *and* unable to raise on any operand the type-checked programs
#: can produce (int/float scalars): safe to speculate — execute on a
#: path the original program would not have taken (LICM hoisting past a
#: zero-trip loop guard).  Casts are excluded (``int(nan)`` and
#: ``float32(10**400)`` raise), as are ``/ %`` (trap) and everything
#: touching matrices.
SPECULATABLE = frozenset([
    "const", "move", "neg", "not", "bool", "tuple",
    "+", "-", "*", "<", "<=", ">", ">=", "==", "!="])

#: Instructions that must never be removed, merged, or moved: visible
#: effects, control, or reads of asynchronously-written frame cells.
EFFECTS = STORES | frozenset([
    "rc_inc", "rc_dec", "intr", "call", "pool", "spawn", "sync"])


class Value:
    """One SSA value.  ``slot`` remembers the frame slot the value was
    homed in by the original compiler (a debugging/pinning hint)."""

    __slots__ = ("vid", "slot")

    def __init__(self, vid: int, slot: int | None = None):
        self.vid = vid
        self.slot = slot

    def __repr__(self):  # pragma: no cover - debugging
        return f"v{self.vid}"


class Instr:
    """One IR instruction.

    ``dest`` / ``args`` hold frame-slot ints after :func:`decode` and
    :class:`Value` objects once SSA renaming has run.  ``extra`` is the
    opcode-specific immediate payload: const value, intrinsic/callee
    name, tuple index, fastloop plan, phi predecessor list, or the
    pinned frame slot of a ``flacc``.
    """

    __slots__ = ("op", "dest", "args", "extra")

    def __init__(self, op, dest=None, args=(), extra=None):
        self.op = op
        self.dest = dest
        self.args = list(args)
        self.extra = extra

    def __repr__(self):  # pragma: no cover - debugging
        return f"<{self.op} {self.dest} {self.args}>"


class Block:
    """Basic block: straight-line instrs plus one terminator.

    ``succs`` are block ids; for ``jz``/``jnz`` the order is
    ``[taken, fallthrough]``, for ``fastloop`` ``[done, scalar]``.
    ``key`` is the layout sort hint used by :func:`linearize` (original
    blocks keep their bytecode offset; synthetic blocks are given
    fractional keys next to their anchor).
    """

    __slots__ = ("bid", "instrs", "term", "succs", "preds", "key")

    def __init__(self, bid: int, key: float):
        self.bid = bid
        self.instrs: list[Instr] = []
        self.term: Instr | None = None
        self.succs: list[int] = []
        self.preds: list[int] = []
        self.key = key

    def phis(self):
        return [i for i in self.instrs if i.op == "phi"]


class TACFunc:
    """One function in IR form, plus the CFG-derived analyses."""

    def __init__(self, name: str, params: list[str], nregs: int):
        self.name = name
        self.params = params
        self.nregs = nregs            # original frame size (slot space)
        self.blocks: dict[int, Block] = {}
        self.entry = 0
        self._next_bid = 0
        #: frame slots referenced by embedded fastloop plans — reserved
        #: from register compaction for the function's whole lifetime.
        self.pinned_slots: set[int] = set()
        self.values: list[Value] = []
        self.undef: Value | None = None

    # -- construction helpers ------------------------------------------------

    def new_block(self, key: float) -> Block:
        b = Block(self._next_bid, key)
        self._next_bid += 1
        self.blocks[b.bid] = b
        return b

    def new_value(self, slot: int | None = None) -> Value:
        v = Value(len(self.values), slot)
        self.values.append(v)
        return v

    def compute_preds(self) -> None:
        for b in self.blocks.values():
            b.preds = []
        for b in self.blocks.values():
            for s in b.succs:
                self.blocks[s].preds.append(b.bid)

    # -- orders and dominance ------------------------------------------------

    def rpo(self) -> list[int]:
        """Reverse postorder over reachable blocks, entry first."""
        seen = {self.entry}
        post: list[int] = []
        stack: list[tuple[int, int]] = [(self.entry, 0)]
        while stack:
            bid, i = stack.pop()
            succs = self.blocks[bid].succs
            if i < len(succs):
                stack.append((bid, i + 1))
                nxt = succs[i]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                post.append(bid)
        return list(reversed(post))

    def dominators(self) -> dict[int, int | None]:
        """Immediate dominators (Cooper-Harvey-Kennedy iterative)."""
        order = self.rpo()
        index = {b: i for i, b in enumerate(order)}
        idom: dict[int, int | None] = {self.entry: self.entry}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for bid in order[1:]:
                preds = [p for p in self.blocks[bid].preds if p in idom]
                if not preds:
                    continue
                new = preds[0]
                for p in preds[1:]:
                    new = intersect(new, p)
                if idom.get(bid) != new:
                    idom[bid] = new
                    changed = True
        idom[self.entry] = None
        return idom

    def dom_tree(self, idom) -> dict[int, list[int]]:
        kids: dict[int, list[int]] = {b: [] for b in idom}
        for b, d in idom.items():
            if d is not None:
                kids[d].append(b)
        for k in kids.values():
            k.sort(key=lambda b: self.blocks[b].key)
        return kids

    def dominance_frontiers(self, idom) -> dict[int, set[int]]:
        df: dict[int, set[int]] = {b: set() for b in idom}
        for bid in idom:
            preds = [p for p in self.blocks[bid].preds if p in idom]
            if len(preds) < 2:
                continue
            for p in preds:
                runner = p
                while runner is not None and runner != idom[bid]:
                    df[runner].add(bid)
                    runner = idom[runner]
        return df

    def dominates(self, idom, a: int, b: int) -> bool:
        while b is not None:
            if a == b:
                return True
            b = idom.get(b)
        return False

    def natural_loops(self, idom) -> list[tuple[int, frozenset[int]]]:
        """``(header, body)`` for each natural loop (back edges with the
        same header merged), innermost first."""
        loops: dict[int, set[int]] = {}
        for b in self.rpo():
            for s in self.blocks[b].succs:
                if s in idom and self.dominates(idom, s, b):
                    body = loops.setdefault(s, {s})
                    stack = [b]
                    while stack:
                        x = stack.pop()
                        if x in body:
                            continue
                        body.add(x)
                        stack.extend(p for p in self.blocks[x].preds
                                     if p in idom)
        return sorted(((h, frozenset(body)) for h, body in loops.items()),
                      key=lambda hb: len(hb[1]))


# -- decoding ----------------------------------------------------------------


def _decode_instr(ins: tuple) -> Instr:
    op = ins[0]
    if op == "const":
        return Instr(op, ins[1], (), ins[2])
    if op in UNOPS:
        return Instr(op, ins[1], (ins[2],))
    if op in BINOPS or op in LOADS or op == "rt_dim":
        return Instr(op, ins[1], (ins[2], ins[3]))
    if op == "rt_size":
        return Instr(op, ins[1], (ins[2],))
    if op in STORES:
        return Instr(op, None, (ins[1], ins[2], ins[3]))
    if op in ("rc_inc", "rc_dec"):
        return Instr(op, None, (ins[1],))
    if op in ("intr", "call"):
        return Instr(op, ins[1], tuple(ins[3]), ins[2])
    if op == "spawn":
        return Instr(op, ins[1], tuple(ins[3]), ins[2])
    if op == "tuple":
        return Instr(op, ins[1], tuple(ins[2]))
    if op == "tget":
        return Instr(op, ins[1], (ins[2],), ins[3])
    if op == "pool":
        return Instr(op, None, (ins[2],) + tuple(ins[3]), ins[1])
    if op == "sync":
        return Instr(op)
    raise ValueError(f"cannot decode opcode {op!r}")


def _encode_instr(ins: Instr, reg) -> tuple:
    op = ins.op
    if op == "const":
        return (op, reg(ins.dest), ins.extra)
    if op in UNOPS:
        return (op, reg(ins.dest), reg(ins.args[0]))
    if op in BINOPS or op in LOADS or op == "rt_dim":
        return (op, reg(ins.dest), reg(ins.args[0]), reg(ins.args[1]))
    if op == "rt_size":
        return (op, reg(ins.dest), reg(ins.args[0]))
    if op in STORES:
        return (op, reg(ins.args[0]), reg(ins.args[1]), reg(ins.args[2]))
    if op in ("rc_inc", "rc_dec"):
        return (op, reg(ins.args[0]))
    if op in ("intr", "call"):
        return (op, reg(ins.dest), ins.extra, tuple(reg(a) for a in ins.args))
    if op == "spawn":
        return (op, None if ins.dest is None else reg(ins.dest), ins.extra,
                tuple(reg(a) for a in ins.args))
    if op == "tuple":
        return (op, reg(ins.dest), tuple(reg(a) for a in ins.args))
    if op == "tget":
        return (op, reg(ins.dest), reg(ins.args[0]), ins.extra)
    if op == "pool":
        return (op, ins.extra, reg(ins.args[0]),
                tuple(reg(a) for a in ins.args[1:]))
    if op == "sync":
        return (op,)
    raise ValueError(f"cannot encode opcode {op!r}")


def decode(code: Code) -> TACFunc:
    """Split flat bytecode into a normalized CFG (see module docstring:
    synthetic entry, fastloop stubs, split critical edges, preheaders)."""
    instrs = code.instrs
    n = len(instrs)

    # 1. leaders
    leaders = {0}
    for i, ins in enumerate(instrs):
        op = ins[0]
        if op in ("jmp", "jz", "jnz", "fastloop"):
            t = ins[-1]
            if t < n:
                leaders.add(t)
            if op != "jmp" and i + 1 < n:
                leaders.add(i + 1)
            if op == "jmp" and i + 1 < n:
                leaders.add(i + 1)
        elif op in ("ret", "ret_none") and i + 1 < n:
            leaders.add(i + 1)

    fn = TACFunc(code.name, list(code.params), code.nregs)
    starts = sorted(leaders)
    block_at: dict[int, Block] = {}
    for s in starts:
        block_at[s] = fn.new_block(float(s))
    # jumps may target one-past-the-end: falling off the code is an
    # implicit ret_none, so give that offset a real block (pruned when
    # nothing reaches it).
    endb = fn.new_block(float(n))
    endb.term = Instr("ret_none")
    block_at[n] = endb

    # 2. fill blocks
    bounds = starts + [n]
    for k, s in enumerate(starts):
        b = block_at[s]
        e = bounds[k + 1]
        i = s
        while i < e:
            ins = instrs[i]
            op = ins[0]
            if op == "jmp":
                b.term = Instr("jmp")
                b.succs = [block_at[ins[1]].bid]
                break
            if op in ("jz", "jnz"):
                b.term = Instr(op, None, (ins[1],))
                b.succs = [block_at[ins[2]].bid,
                           block_at[i + 1 if i + 1 < n else n].bid]
                break
            if op == "ret":
                b.term = Instr(op, None, (ins[1],))
                b.succs = []
                break
            if op == "ret_none":
                b.term = Instr(op)
                b.succs = []
                break
            if op == "fastloop":
                plan = ins[1]
                reads = sorted(getattr(plan, "read_slots", None) or
                               range(code.nregs))
                accs = sorted(getattr(plan, "write_slots", ()) or ())
                fn.pinned_slots.update(reads)
                fn.pinned_slots.update(accs)
                # stub block on the done edge: flacc defs re-import the
                # accumulator slots the plan wrote behind the IR's back.
                stub = fn.new_block(float(ins[2]) - 0.25)
                for s_acc in accs:
                    stub.instrs.append(
                        Instr("flacc", s_acc, (), s_acc))
                stub.term = Instr("jmp")
                stub.succs = [block_at[ins[2]].bid]
                b.term = Instr("fastloop", None, tuple(reads),
                               {"plan": plan, "reads": reads, "accs": accs})
                if i + 1 >= n:
                    raise ValueError("fastloop at end of code")
                b.succs = [stub.bid, block_at[i + 1].bid]
                break
            b.instrs.append(_decode_instr(ins))
            i += 1
        else:
            # fell off the block end: explicit jump to the next block
            # (or implicit function end == ret_none fallthrough).
            if e < n:
                b.term = Instr("jmp")
                b.succs = [block_at[e].bid]
            else:
                b.term = Instr("ret_none")
                b.succs = []

    # 3. synthetic entry (keeps "loop header == first block" cases sane)
    first = block_at[0]
    entry = fn.new_block(-1.0)
    entry.term = Instr("jmp")
    entry.succs = [first.bid]
    fn.entry = entry.bid
    fn.compute_preds()

    _split_critical_edges(fn)
    _insert_preheaders(fn)
    _prune_unreachable(fn)
    return fn


def _prune_unreachable(fn: TACFunc) -> None:
    """Drop blocks the entry cannot reach (dead bytecode after returns,
    jump-only diamonds): SSA renaming walks the dominator tree, so only
    reachable blocks get values — the passes must never see the rest."""
    live = set(fn.rpo())
    for bid in list(fn.blocks):
        if bid not in live:
            del fn.blocks[bid]
    fn.compute_preds()


def _split_edge(fn: TACFunc, u: Block, pos: int) -> Block:
    """Insert an empty block on the ``pos``-th out-edge of ``u``."""
    v = fn.blocks[u.succs[pos]]
    mid = fn.new_block(u.key + 0.01 * (pos + 1) + 0.001 * v.key / 1e6)
    mid.term = Instr("jmp")
    mid.succs = [v.bid]
    u.succs[pos] = mid.bid
    return mid


def _split_critical_edges(fn: TACFunc) -> None:
    for bid in list(fn.blocks):
        u = fn.blocks[bid]
        if len(u.succs) < 2:
            continue
        for pos in range(len(u.succs)):
            v = fn.blocks[u.succs[pos]]
            if len(v.preds) > 1:
                _split_edge(fn, u, pos)
    fn.compute_preds()


def _insert_preheaders(fn: TACFunc) -> None:
    """Give every natural loop a dedicated outside-edge block placed
    just before the header (LICM's hoist target)."""
    idom = fn.dominators()
    for header, body in fn.natural_loops(idom):
        h = fn.blocks[header]
        outside = [p for p in h.preds if p not in body]
        if len(outside) == 1 and len(fn.blocks[outside[0]].succs) == 1:
            continue  # already a dedicated preheader
        pre = fn.new_block(h.key - 0.5)
        pre.term = Instr("jmp")
        pre.succs = [header]
        for p in set(outside):
            pb = fn.blocks[p]
            pb.succs = [pre.bid if s == header and p not in body else s
                        for s in pb.succs]
        fn.compute_preds()
        idom = fn.dominators()


# -- linearization -----------------------------------------------------------


def linearize(fn: TACFunc, reg, nregs: int) -> Code:
    """Emit a :class:`Code` from a (post-SSA) function.  ``reg`` maps a
    ``dest``/``args`` entry to its final frame slot.  Fallthrough edges
    that cannot be laid out adjacently get a jump trampoline."""
    order = [bid for bid in sorted(fn.blocks,
                                   key=lambda b: fn.blocks[b].key)
             if bid in set(fn.rpo())]
    code = Code(fn.name, list(fn.params), nregs)
    out = code.instrs
    placeholders: list[tuple[int, int]] = []   # (instr index, block id)
    start_of: dict[int, int] = {}

    for k, bid in enumerate(order):
        b = fn.blocks[bid]
        start_of[bid] = len(out)
        for ins in b.instrs:
            if ins.op == "flacc":
                # the plan left the value in its pinned slot; import it
                # into the value's allocated register.
                if reg(ins.dest) != ins.extra:
                    out.append(("move", reg(ins.dest), ins.extra))
                continue
            if ins.op == "nop":
                continue
            out.append(_encode_instr(ins, reg))
        t = b.term
        nxt = order[k + 1] if k + 1 < len(order) else None
        if t.op == "jmp":
            if b.succs[0] != nxt:
                placeholders.append((len(out), b.succs[0]))
                out.append(("jmp", -1))
        elif t.op in ("jz", "jnz"):
            taken, fall = b.succs
            placeholders.append((len(out), taken))
            out.append((t.op, reg(t.args[0]), -1))
            if fall != nxt:
                placeholders.append((len(out), fall))
                out.append(("jmp", -1))
        elif t.op == "ret":
            out.append(("ret", reg(t.args[0])))
        elif t.op == "ret_none":
            out.append(("ret_none",))
        elif t.op == "fastloop":
            ex = t.extra
            # refresh the pinned slots the plan will read
            for slot, v in zip(ex["reads"], t.args):
                r = reg(v)
                if r != slot:
                    out.append(("move", slot, r))
            done, scalar = b.succs
            placeholders.append((len(out), done))
            out.append(("fastloop", ex["plan"], -1))
            if scalar != nxt:
                placeholders.append((len(out), scalar))
                out.append(("jmp", -1))
        else:  # pragma: no cover - decode/linearize move together
            raise ValueError(f"unknown terminator {t.op!r}")

    for at, bid in placeholders:
        ins = out[at]
        out[at] = ins[:-1] + (start_of[bid],)
    return code
