"""SSA construction / destruction over :mod:`repro.ir.tac` (S28).

Construction is the textbook dominance-frontier algorithm: phi
placement at the iterated frontier of each slot's definition blocks,
then dominator-tree renaming.  Every slot is treated as defined at
entry — parameters by their incoming values, everything else by a
per-function ``undef`` value — so phis are always fully populated and
paths that never initialize a local (which lowering's definite
zero-init makes unobservable anyway) stay representable.

Destruction goes through edge copies: critical edges were split during
decode, so each phi's per-predecessor copy lands at the end of that
predecessor, sequentialized as a *parallel* copy group (cycles broken
with one temporary).  Register compaction then runs liveness — via the
generic gen/kill worklist solver from :mod:`repro.analysis.dataflow`
(PR 5), duck-typing the TAC CFG into its block protocol — and colors
the interference graph greedily with phi-affinity bias, so most phi
copies collapse into no-ops.  Frame slots referenced by embedded
``fastloop`` plans are reserved, and ``spawn`` destinations get
dedicated slots for the whole frame lifetime (a pooled task may write
its result cell at any moment up to the ``sync``)."""

from __future__ import annotations

import sys

from repro.analysis.dataflow import GenKill, solve_genkill

from repro.ir.tac import Instr, TACFunc, Value


def _slot_defs(fn: TACFunc):
    """slot -> set of block ids that (re)define it."""
    defs: dict[int, set[int]] = {}
    for b in fn.blocks.values():
        for ins in b.instrs:
            if ins.dest is not None:
                defs.setdefault(ins.dest, set()).add(b.bid)
    return defs


def build_ssa(fn: TACFunc) -> None:
    """Rewrite ``fn`` in place: slot ints -> :class:`Value` operands,
    phis inserted at join points.  Parameter values get vids
    ``1..len(params)`` (vid 0 is the undef value)."""
    idom = fn.dominators()
    df = fn.dominance_frontiers(idom)
    tree = fn.dom_tree(idom)
    reachable = set(idom)

    fn.undef = fn.new_value(None)
    entry_vals: dict[int, Value] = {}
    for i, _p in enumerate(fn.params):
        entry_vals[i + 1] = fn.new_value(i + 1)

    # -- phi placement (iterated dominance frontier per slot) ---------------
    phis_of: dict[int, dict[int, Instr]] = {b: {} for b in fn.blocks}
    for slot, def_blocks in _slot_defs(fn).items():
        work = [b for b in def_blocks if b in reachable] + [fn.entry]
        onto: set[int] = set()
        while work:
            d = work.pop()
            for f in df.get(d, ()):
                if f in onto:
                    continue
                onto.add(f)
                nb = fn.blocks[f]
                phi = Instr("phi", slot,
                            [None] * len(nb.preds),
                            {"slot": slot, "preds": list(nb.preds)})
                phis_of[f][slot] = phi
                work.append(f)
    for bid, phis in phis_of.items():
        if phis:
            b = fn.blocks[bid]
            b.instrs[:0] = [phis[s] for s in sorted(phis)]

    # -- renaming -----------------------------------------------------------
    stacks: dict[int, list[Value]] = {}

    def top(slot: int) -> Value:
        st = stacks.get(slot)
        if st:
            return st[-1]
        return entry_vals.get(slot, fn.undef)

    def rename(bid: int) -> None:
        b = fn.blocks[bid]
        pushed: list[int] = []
        for ins in b.instrs:
            if ins.op != "phi":
                ins.args = [top(a) for a in ins.args]
            if ins.dest is not None:
                slot = ins.dest
                v = fn.new_value(slot)
                ins.dest = v
                stacks.setdefault(slot, []).append(v)
                pushed.append(slot)
        t = b.term
        if t is not None and t.args:
            t.args = [top(a) if not isinstance(a, Value) else a
                      for a in t.args]
        for s in b.succs:
            sb = fn.blocks[s]
            for phi in sb.instrs:
                if phi.op != "phi":
                    break
                for k, p in enumerate(phi.extra["preds"]):
                    if p == bid and phi.args[k] is None:
                        phi.args[k] = top(phi.extra["slot"])
                        break
        for kid in tree.get(bid, ()):
            rename(kid)
        for slot in pushed:
            stacks[slot].pop()

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, len(fn.blocks) * 4 + 100))
    try:
        rename(fn.entry)
    finally:
        sys.setrecursionlimit(old)

    # any phi operand still None comes from an unreachable predecessor
    for b in fn.blocks.values():
        for phi in b.instrs:
            if phi.op != "phi":
                break
            phi.args = [a if a is not None else fn.undef for a in phi.args]


# -- out of SSA --------------------------------------------------------------


def _sequentialize(copies: list[tuple[int, int]], tmp: int):
    """Order parallel ``dst <- src`` register copies; break cycles with
    ``tmp``.  Returns a list of sequential ``(dst, src)`` moves."""
    pending = {d: s for d, s in copies if d != s}
    out: list[tuple[int, int]] = []
    while pending:
        # emit every copy whose destination nobody still needs to read
        ready = [d for d in pending if d not in pending.values()]
        if ready:
            for d in ready:
                out.append((d, pending.pop(d)))
            continue
        # pure cycle: rotate through the temporary
        start, s0 = next(iter(pending.items()))
        out.append((tmp, start))
        # walk the cycle backwards: each dst takes its src, the dst
        # whose src was `start` takes the temp.
        chain = [start]
        d = s0
        while d != start:
            chain.append(d)
            d = pending[d]
        for d in chain[:-1]:
            out.append((d, pending.pop(d)))
        out.append((chain[-1], tmp))
        pending.pop(chain[-1])
    return out


class _BlockMap(dict):
    """bid -> block mapping that *iterates values* (the protocol
    :func:`repro.analysis.dataflow._neighbors` expects of
    ``cfg.blocks``)."""

    def __iter__(self):
        return iter(self.values())


class _LiveCFG:
    """Duck-typed adapter: TAC blocks + a synthetic exit, speaking the
    :mod:`repro.analysis.cfg` block protocol for the worklist solver."""

    class _B:
        __slots__ = ("bid", "preds", "succs")

        def __init__(self, bid, preds, succs):
            self.bid = bid
            self.preds = preds
            self.succs = [(s, None) for s in succs]

    def __init__(self, fn: TACFunc):
        reachable = set(fn.rpo())
        self.exit = -1
        rets = [b for b in reachable if not fn.blocks[b].succs]
        bl = [self._B(b,
                      [p for p in fn.blocks[b].preds if p in reachable],
                      fn.blocks[b].succs + ([self.exit] if b in rets else []))
              for b in sorted(reachable)]
        bl.append(self._B(self.exit, rets, []))
        self.blocks = _BlockMap((b.bid, b) for b in bl)
        self.entry = fn.entry
        self._order = fn.rpo() + [self.exit]

    def rpo(self):
        return self._order


class _Raw:
    """A pre-colored operand (edge-copy moves emitted post-coloring)."""

    __slots__ = ("slot",)

    def __init__(self, slot: int):
        self.slot = slot


def destroy_ssa(fn: TACFunc):
    """Replace phis with edge copies over virtual registers, run
    liveness + interference coloring, and return ``(reg, nregs)`` for
    :func:`repro.ir.tac.linearize`."""
    reachable = set(fn.rpo())
    blocks = [fn.blocks[b] for b in sorted(reachable)]

    # 1. virtual registers: one per SSA value (undef gets none)
    vreg: dict[int, int] = {}

    def vr(v: Value) -> int | None:
        if v is fn.undef:
            return None
        r = vreg.get(v.vid)
        if r is None:
            r = vreg[v.vid] = len(vreg)
        return r

    # 2. phi -> parallel copy groups at predecessor ends
    affinity: dict[int, set[int]] = {}
    edge_copies: dict[int, list[tuple[int, int]]] = {}
    for b in blocks:
        phis = [i for i in b.instrs if i.op == "phi"]
        if not phis:
            continue
        b.instrs = [i for i in b.instrs if i.op != "phi"]
        for k, p in enumerate(phis[0].extra["preds"]):
            if p not in reachable:
                continue
            group = edge_copies.setdefault(p, [])
            for phi in phis:
                src = phi.args[k]
                if src is fn.undef:
                    continue  # never-initialized path: cell never read
                d, s = vr(phi.dest), vr(src)
                group.append((d, s))
                affinity.setdefault(d, set()).add(s)
                affinity.setdefault(s, set()).add(d)

    # 3. per-block (uses, def) sequences over vregs, copies included
    seqs: dict[int, list[tuple[list[int], int | None]]] = {}
    gk: dict[int, GenKill] = {}
    for b in blocks:
        seq: list[tuple[list[int], int | None]] = []
        for ins in b.instrs:
            srcs = [vr(a) for a in ins.args if isinstance(a, Value)]
            seq.append(([s for s in srcs if s is not None],
                        vr(ins.dest) if ins.dest is not None else None))
        for d, s in edge_copies.get(b.bid, ()):
            seq.append(([s], d))
        if b.term is not None:
            srcs = [vr(a) for a in b.term.args if isinstance(a, Value)]
            seq.append(([s for s in srcs if s is not None], None))
        seqs[b.bid] = seq
        gen: set[int] = set()
        kill: set[int] = set()
        for srcs, d in seq:
            gen.update(s for s in srcs if s not in kill)
            if d is not None:
                kill.add(d)
        gk[b.bid] = GenKill(frozenset(gen), frozenset(kill))

    # backward may-analysis: live[bid] = (live-out, live-in)
    live = solve_genkill(_LiveCFG(fn), gk, direction="backward")

    # 4. interference by backward walk; spawn destinations conflict with
    # everything (their cell may be written until the final sync)
    neigh: dict[int, set[int]] = {r: set() for r in range(len(vreg))}

    def interfere(a: int, others) -> None:
        na = neigh[a]
        for o in others:
            if o != a:
                na.add(o)
                neigh[o].add(a)

    for b in blocks:
        lv = set(live[b.bid][0]) if b.bid in live else set()
        for srcs, d in reversed(seqs[b.bid]):
            if d is not None:
                interfere(d, lv)
                lv.discard(d)
            lv.update(srcs)

    spawn_regs = {vr(ins.dest) for b in blocks for ins in b.instrs
                  if ins.op == "spawn" and ins.dest is not None}
    for sr in spawn_regs:
        interfere(sr, [r for r in neigh if r != sr])

    # 5. greedy coloring with phi-affinity bias.  Params precolored to
    # slots 1..n; slot 0 (return) and fastloop-pinned slots reserved.
    nparams = len(fn.params)
    reserved = set(fn.pinned_slots) | {0}
    color: dict[int, int] = {}
    for v in fn.values[1:nparams + 1]:      # the entry parameter values
        r = vreg.get(v.vid)
        if r is not None:
            color[r] = v.slot

    def pick(r: int) -> int:
        taken = {color[x] for x in neigh.get(r, ()) if x in color}
        for partner in affinity.get(r, ()):
            c = color.get(partner)
            if c is not None and c not in taken and c not in reserved \
                    and c > nparams:
                return c
        c = nparams + 1
        while c in taken or c in reserved:
            c += 1
        return c

    for r in sorted(neigh, key=lambda x: -len(neigh[x])):
        if r not in color:
            color[r] = pick(r)

    nregs = max([nparams + 1] + [c + 1 for c in color.values()] +
                [s + 1 for s in reserved])
    tmp = nregs            # shared cycle-breaking / undef scratch slot
    nregs += 1

    # 6. materialize edge copies as sequential moves at block ends
    for bid, group in edge_copies.items():
        b = fn.blocks[bid]
        regs = [(color[d], color[s]) for d, s in group]
        for d, s in _sequentialize(regs, tmp):
            if d != s:
                b.instrs.append(Instr("move", _Raw(d), (_Raw(s),)))

    def reg(x) -> int:
        if isinstance(x, _Raw):
            return x.slot
        if isinstance(x, Value):
            if x is fn.undef:
                # an operand on a never-initialized path: any cell does —
                # lowering zero-inits every declaration, so a real read
                # of this register cannot occur.
                return tmp
            return color[vreg[x.vid]]
        raise TypeError(f"unrenamed operand {x!r}")

    return reg, nregs
