"""Optimizing passes over the SSA-form TAC (S28).

The pipeline runs, per function::

    dvnt -> jump_thread -> licm -> strength_reduce -> dvnt -> dce   (-O2)
    dvnt -> dce                                                     (-O1)

* :func:`dvnt` — dominator-tree value numbering: constant folding with
  the VM's exact semantics (``c_div``/``c_mod`` trapping, float32-
  narrowed literals, C comparison results), copy propagation, global
  CSE of pure ops, and block-local CSE of ``rt_getf``/``rt_geti`` loads
  behind a memory-epoch counter;
* :func:`jump_thread` — branches decided by a constant become jumps,
  and a predecessor whose phi contribution decides a phi-only block's
  branch jumps straight to the decided target.  Lowered short-circuit
  ``&&``/``||`` produce exactly this shape (the "condition false" arm
  feeds ``const 0`` into the merge phi), so threading turns the
  condition diamond into straight-line dominance — which is what lets
  the second :func:`dvnt` run CSE *across* the former merge point;
* :func:`licm` — loop-invariant code motion into the preheaders decode
  created, restricted to the ``SPECULATABLE`` ops (never traps, never
  observes memory), so a zero-trip loop stays unobservably different;
* :func:`strength_reduce` — affine index arithmetic ``iv * k`` over a
  basic induction variable becomes its own induction variable (phi +
  one add on the back edge), via the shared canonical affine forms of
  :mod:`repro.ir.affine`;
* :func:`dce` — mark/sweep over SSA uses; only ``PURE`` instructions
  may be deleted (a dead *trapping* instruction — ``x / 0`` whose
  result is unused — still traps in the reference semantics and is
  kept).

Trap preservation is structural: folding executes the op's own runtime
semantics and refuses to fold when it raises; CSE merges a computation
only into a dominating occurrence (the survivor traps first or neither
does); LICM speculates only never-trapping ops; DCE keeps every
possibly-trapping or effectful instruction.  ``spawn`` results are
*poisoned*: the VM writes a spawned call's result cell asynchronously
(any moment up to the ``sync``), so instructions reading one are never
folded, merged, hoisted, or deleted — they execute exactly where the
unoptimized program executed them.
"""

from __future__ import annotations

import numpy as np

from repro.cexec.interp import c_div, c_mod

from repro.ir.tac import (
    BINOPS, EFFECTS, Instr, LOADS, PURE, SPECULATABLE, TACFunc, Value,
)

_COMMUTATIVE = frozenset(["+", "*", "==", "!="])

#: Ops whose result is always an exact Python int 0/1 in the VM, so
#: ``bool`` of one is a bit-exact identity (see the opcode closures in
#: :mod:`repro.cexec.vm`).
_BOOLEAN = frozenset(["<", "<=", ">", ">=", "==", "!=", "not", "bool"])

_FOLD = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": c_div,
    "%": c_mod,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "neg": lambda a: -a,
    "not": lambda a: int(not a),
    "bool": lambda a: int(bool(a)),
    "cast_int": lambda a: int(a),
    "cast_f32": lambda a: float(np.float32(a)),
    "move": lambda a: a,
}


def poisoned_values(fn: TACFunc) -> set[int]:
    """vids whose frame cell the VM may rewrite asynchronously."""
    return {ins.dest.vid for b in fn.blocks.values() for ins in b.instrs
            if ins.op == "spawn" and ins.dest is not None}


def _def_map(fn: TACFunc) -> dict[int, Instr]:
    return {ins.dest.vid: ins for b in fn.blocks.values()
            for ins in b.instrs if isinstance(ins.dest, Value)}


class _Canon:
    """Union-find-ish value replacement map with path compression."""

    def __init__(self):
        self.repl: dict[int, Value] = {}

    def resolve(self, v: Value) -> Value:
        r = self.repl.get(v.vid)
        if r is None:
            return v
        root = self.resolve(r)
        self.repl[v.vid] = root
        return root

    def alias(self, v: Value, to: Value) -> None:
        self.repl[v.vid] = to

    def sweep(self, fn: TACFunc) -> None:
        """Rewrite every remaining use through the replacement map."""
        if not self.repl:
            return
        for b in fn.blocks.values():
            for ins in b.instrs:
                ins.args = [self.resolve(a) if isinstance(a, Value) else a
                            for a in ins.args]
            if b.term is not None:
                b.term.args = [self.resolve(a) if isinstance(a, Value) else a
                               for a in b.term.args]


def _const_key(v) -> tuple:
    return (type(v).__name__, repr(v))


def dvnt(fn: TACFunc, counts, poisoned: set[int]) -> None:
    """Dominator-tree value numbering: fold + copy-prop + CSE."""
    idom = fn.dominators()
    tree = fn.dom_tree(idom)
    canon = _Canon()
    consts: dict[int, object] = {}     # vid -> known constant value
    defops: dict[int, str] = {}        # vid -> defining op (post-fold)
    scopes: list[dict] = [{}]

    def lookup(key):
        for sc in reversed(scopes):
            if key in sc:
                return sc[key]
        return None

    def visit(bid: int) -> None:
        scopes.append({})
        b = fn.blocks[bid]
        loads: dict = {}               # block-local load table
        epoch = 0
        for ins in b.instrs:
            op = ins.op
            if op == "phi":
                continue               # back-edge args resolved in sweep
            ins.args = [canon.resolve(a) if isinstance(a, Value) else a
                        for a in ins.args]
            dirty = any(isinstance(a, Value) and a.vid in poisoned
                        for a in ins.args)
            if op in EFFECTS:
                epoch += 1
            if dirty or ins.dest is None:
                continue
            d = ins.dest

            # -- constant folding (exact runtime semantics) ----------------
            if op == "const":
                consts[d.vid] = ins.extra
            elif op in _FOLD and all(isinstance(a, Value)
                                     and a.vid in consts
                                     for a in ins.args):
                try:
                    val = _FOLD[op](*[consts[a.vid] for a in ins.args])
                except Exception:
                    val = _SENTINEL    # trapping fold: leave it in place
                if val is not _SENTINEL:
                    ins.op, ins.args, ins.extra = "const", [], val
                    op = "const"
                    consts[d.vid] = val
                    counts["fold"] += 1
            defops[d.vid] = op

            # -- algebraic identity: bool of a 0/1-valued op is it ---------
            if op == "bool":
                a = ins.args[0]
                if isinstance(a, Value) and defops.get(a.vid) in _BOOLEAN \
                        and a.vid not in poisoned:
                    canon.alias(d, a)
                    ins.op, ins.args = "nop", []
                    counts["fold"] += 1
                    continue

            # -- copy propagation ------------------------------------------
            if op == "move":
                src = ins.args[0]
                if isinstance(src, Value) and src.vid not in poisoned:
                    canon.alias(d, src)
                    ins.op, ins.args = "nop", []
                    counts["copyprop"] += 1
                continue

            # -- algebraic identity: x * 1 (int) is x ----------------------
            if op == "*":
                for i_, j_ in ((0, 1), (1, 0)):
                    a = ins.args[i_]
                    if isinstance(a, Value) and consts.get(a.vid) is not None \
                            and type(consts[a.vid]) is int \
                            and consts[a.vid] == 1:
                        other = ins.args[j_]
                        if isinstance(other, Value) \
                                and other.vid not in poisoned:
                            canon.alias(d, other)
                            ins.op, ins.args = "nop", []
                            counts["fold"] += 1
                        break
                if ins.op == "nop":
                    continue

            # -- block-local load CSE --------------------------------------
            if op in LOADS:
                key = (op, epoch) + tuple(
                    a.vid if isinstance(a, Value) else ("l", a)
                    for a in ins.args)
                prior = loads.get(key)
                if prior is not None:
                    canon.alias(d, prior)
                    ins.op, ins.args = "nop", []
                    counts["cse"] += 1
                else:
                    loads[key] = d
                continue

            # -- global CSE over pure values -------------------------------
            if op in PURE:
                vids = tuple(a.vid if isinstance(a, Value) else ("l", a)
                             for a in ins.args)
                if op in _COMMUTATIVE:
                    vids = tuple(sorted(vids, key=repr))
                key = (op, _const_key(ins.extra) if op == "const"
                       else ins.extra, vids)
                prior = lookup(key)
                if prior is not None:
                    canon.alias(d, prior)
                    ins.op, ins.args, ins.extra = "nop", [], None
                    counts["cse"] += 1
                else:
                    scopes[-1][key] = d
        if b.term is not None:
            b.term.args = [canon.resolve(a) if isinstance(a, Value) else a
                           for a in b.term.args]
        for kid in tree.get(bid, ()):
            visit(kid)
        scopes.pop()

    _deep_recursion(fn, lambda: visit(fn.entry))
    canon.sweep(fn)


_SENTINEL = object()


def _deep_recursion(fn: TACFunc, thunk) -> None:
    import sys

    old = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old, len(fn.blocks) * 6 + 200))
    try:
        thunk()
    finally:
        sys.setrecursionlimit(old)


# -- jump threading ----------------------------------------------------------


def _use_blocks(fn: TACFunc) -> dict[int, set[int]]:
    """vid -> block ids with at least one use (instr args or term args)."""
    uses: dict[int, set[int]] = {}
    for b in fn.blocks.values():
        for ins in b.instrs:
            for a in ins.args:
                if isinstance(a, Value):
                    uses.setdefault(a.vid, set()).add(b.bid)
        if b.term is not None:
            for a in b.term.args:
                if isinstance(a, Value):
                    uses.setdefault(a.vid, set()).add(b.bid)
    return uses


def jump_thread(fn: TACFunc, counts, poisoned: set[int]) -> None:
    """Resolve branches that are decided before they are reached.

    Two rewrites, iterated to a fixpoint:

    * a ``jz``/``jnz`` whose condition is a known constant becomes an
      unconditional jump (the dead edge's phi operands are dropped);
    * a *phi-only* block ``S`` branching on one of its own phis lets
      every predecessor that feeds the phi a constant jump directly to
      the target that constant decides, bypassing ``S``.

    The second rewrite is what dissolves lowered short-circuit
    ``&&``/``||`` diamonds: the early-exit arm feeds ``const 0``/``1``
    into the merge phi, so after threading it the surviving arm
    *dominates* the join and the follow-up :func:`dvnt` can CSE the
    condition's subexpressions with the body's.

    Threading ``P -> T`` is only legal when nothing defined in ``S`` is
    live into ``T``: we require every phi of ``S`` to be used inside
    ``S`` only, and ``T`` to carry no phis (so the new edge needs no
    operands).  Blocks cut off by rewrites are deleted, and phis left
    with a single predecessor decay to ``move``s for copy propagation.
    """

    def decide(term_op: str, succs, c) -> int:
        jump = not bool(c) if term_op == "jz" else bool(c)
        return succs[0] if jump else succs[1]

    # each rewrite removes an edge or a conditional branch, so the
    # fixpoint is bounded by CFG size; the range is a defensive cap.
    for _round in range(len(fn.blocks) * 4 + 32):
        changed = False
        defm = _def_map(fn)
        uses = _use_blocks(fn)
        reachable = set(fn.rpo())
        for sid in sorted(reachable, key=lambda b: fn.blocks[b].key):
            S = fn.blocks[sid]
            t = S.term
            if t is None or t.op not in ("jz", "jnz"):
                continue
            cond = t.args[0]
            if not isinstance(cond, Value) or cond.vid in poisoned:
                continue
            cd = defm.get(cond.vid)
            if cd is None:
                continue

            # -- constant condition: fold the branch -----------------------
            if cd.op == "const":
                tgt = decide(t.op, S.succs, cd.extra)
                other = S.succs[1] if tgt == S.succs[0] else S.succs[0]
                S.term = Instr("jmp")
                S.succs = [tgt]
                if other != tgt:
                    for phi in fn.blocks[other].phis():
                        if sid in phi.extra["preds"]:
                            k = phi.extra["preds"].index(sid)
                            del phi.args[k]
                            del phi.extra["preds"][k]
                counts["thread"] += 1
                changed = True
                continue

            # -- phi condition: thread constant-contributing preds ---------
            if cd.op != "phi" or cd not in S.instrs:
                continue
            if any(i.op not in ("phi", "nop") for i in S.instrs):
                continue
            phis = S.phis()
            if any(uses.get(p.dest.vid, set()) - {sid} for p in phis):
                continue
            for k, pbid in enumerate(cd.extra["preds"]):
                arg = cd.args[k]
                ad = defm.get(arg.vid) if isinstance(arg, Value) else None
                if ad is None or ad.op != "const":
                    continue
                P = fn.blocks.get(pbid)
                if P is None or pbid not in reachable \
                        or P.succs.count(sid) != 1:
                    continue
                tgt = decide(t.op, S.succs, ad.extra)
                if tgt == sid or any(fn.blocks[tgt].phis()):
                    continue
                P.succs[P.succs.index(sid)] = tgt
                for phi in phis:
                    j = phi.extra["preds"].index(pbid)
                    del phi.args[j]
                    del phi.extra["preds"][j]
                counts["thread"] += 1
                changed = True
                break      # maps are stale; re-derive before the next one
            if changed:
                break
        if not changed:
            break

    # -- cleanup: drop cut-off blocks, decay single-pred phis to moves -----
    live = set(fn.rpo())
    for bid in list(fn.blocks):
        if bid not in live:
            del fn.blocks[bid]
    fn.compute_preds()
    for b in fn.blocks.values():
        for ins in b.instrs:
            if ins.op != "phi":
                continue
            kept = [(p, a) for p, a in zip(ins.extra["preds"], ins.args)
                    if p in live]
            if len(kept) == 1:
                ins.op, ins.args, ins.extra = "move", [kept[0][1]], None
            elif len(kept) < len(ins.args):
                ins.extra["preds"] = [p for p, _ in kept]
                ins.args = [a for _, a in kept]


# -- loop infrastructure -----------------------------------------------------


def _loops_with_preheaders(fn: TACFunc):
    """(header, body, preheader, latches) for every natural loop that
    has the dedicated preheader decode promised, innermost first."""
    idom = fn.dominators()
    out = []
    for header, body in fn.natural_loops(idom):
        h = fn.blocks[header]
        outside = [p for p in h.preds if p not in body]
        latches = [p for p in h.preds if p in body]
        if len(outside) == 1 and len(fn.blocks[outside[0]].succs) == 1:
            out.append((header, body, outside[0], latches))
    return out


def _def_blocks(fn: TACFunc) -> dict[int, int]:
    return {ins.dest.vid: b.bid for b in fn.blocks.values()
            for ins in b.instrs if isinstance(ins.dest, Value)}


def licm(fn: TACFunc, counts, poisoned: set[int]) -> None:
    """Hoist never-trapping pure instructions whose operands are defined
    outside the loop into its preheader.  Processes loops innermost
    first, so an invariant chain bubbles as far out as it is invariant."""
    loops = _loops_with_preheaders(fn)
    defb = _def_blocks(fn)
    rpo = fn.rpo()
    for header, body, pre_bid, _latches in loops:
        pre = fn.blocks[pre_bid]

        def invariant(a) -> bool:
            if not isinstance(a, Value):
                return True
            return defb.get(a.vid) not in body    # params/undef: no def

        changed = True
        while changed:
            changed = False
            for bid in rpo:
                if bid not in body:
                    continue
                blk = fn.blocks[bid]
                kept = []
                for ins in blk.instrs:
                    if ins.op in SPECULATABLE and ins.dest is not None \
                            and not any(isinstance(a, Value)
                                        and a.vid in poisoned
                                        for a in ins.args) \
                            and all(invariant(a) for a in ins.args):
                        pre.instrs.append(ins)
                        defb[ins.dest.vid] = pre_bid
                        counts["licm"] += 1
                        changed = True
                    else:
                        kept.append(ins)
                blk.instrs = kept


def strength_reduce(fn: TACFunc, counts, poisoned: set[int]) -> None:
    """``d = iv * k`` (k loop-invariant) becomes a derived induction
    variable: one preheader multiply plus an add on the back edge,
    replacing the per-iteration multiply.  Affine recognition goes
    through :mod:`repro.ir.affine` so the IR and the loopfast
    vectorizer agree on what "affine in the induction variable" means."""
    from repro.ir.affine import ssa_affine_mul

    defm = _def_map(fn)
    defb = _def_blocks(fn)
    canon = _Canon()
    for header, body, pre_bid, latches in _loops_with_preheaders(fn):
        if len(latches) != 1:
            continue
        latch = fn.blocks[latches[0]]
        h = fn.blocks[header]
        pre = fn.blocks[pre_bid]

        def invariant(a) -> bool:
            if not isinstance(a, Value):
                return False
            return defb.get(a.vid) not in body

        # basic IVs: phi(init from pre, upd from latch) with upd = phi +- c
        basics: dict[int, tuple[Value, Value, Value, int]] = {}
        for phi in h.instrs:
            if phi.op != "phi":
                break
            preds = phi.extra["preds"]
            if sorted(preds) != sorted([pre_bid, latches[0]]):
                continue
            init = phi.args[preds.index(pre_bid)]
            upd = phi.args[preds.index(latches[0])]
            if not isinstance(upd, Value) or upd.vid not in defm:
                continue
            u = defm[upd.vid]
            if u.op not in ("+", "-") or defb.get(upd.vid) not in body:
                continue
            step = None
            sign = 1
            if isinstance(u.args[0], Value) \
                    and u.args[0].vid == phi.dest.vid \
                    and invariant(u.args[1]):
                step, sign = u.args[1], (1 if u.op == "+" else -1)
            elif u.op == "+" and isinstance(u.args[1], Value) \
                    and u.args[1].vid == phi.dest.vid \
                    and invariant(u.args[0]):
                step, sign = u.args[0], 1
            if step is not None and isinstance(init, Value):
                basics[phi.dest.vid] = (init, step, phi.dest, sign)

        if not basics:
            continue
        for bid in sorted(body):
            for ins in fn.blocks[bid].instrs:
                if ins.op != "*" or ins.dest is None:
                    continue
                if any(isinstance(a, Value) and a.vid in poisoned
                       for a in ins.args):
                    continue
                m = ssa_affine_mul(ins, basics, invariant)
                if m is None:
                    continue
                iv_vid, k = m
                init, step, phi_v, sign = basics[iv_vid]
                # preheader: d0 = init * k ; incr = step * k (negated
                # for a down-counting iv)
                d0 = fn.new_value()
                pre.instrs.append(Instr("*", d0, (init, k)))
                incr = fn.new_value()
                pre.instrs.append(Instr("*", incr, (step, k)))
                if sign < 0:
                    n2 = fn.new_value()
                    pre.instrs.append(Instr("neg", n2, (incr,)))
                    incr = n2
                dphi = fn.new_value()
                dnext = fn.new_value()
                args = [None, None]
                preds = [pre_bid, latches[0]]
                hp = list(h.preds)
                phi_args = [d0 if p == pre_bid else dnext for p in hp]
                h.instrs.insert(0, Instr(
                    "phi", dphi, phi_args, {"slot": None, "preds": hp}))
                latch.instrs.append(Instr("+", dnext, (dphi, incr)))
                defb[dphi.vid] = header
                defb[dnext.vid] = latches[0]
                defb[d0.vid] = pre_bid
                canon.alias(ins.dest, dphi)
                ins.op, ins.args = "nop", []
                counts["strength"] += 1
    canon.sweep(fn)


def dce(fn: TACFunc, counts) -> None:
    """Mark/sweep dead code elimination.  Roots: effects, terminator
    operands, and anything not provably pure; only ``PURE``/``phi``/
    ``nop``/``flacc`` instructions may disappear."""
    defm = _def_map(fn)
    live: set[int] = set()
    work: list[Value] = []

    def mark(a) -> None:
        if isinstance(a, Value) and a.vid not in live:
            live.add(a.vid)
            work.append(a)

    removable = PURE | {"phi", "flacc"}
    for b in fn.blocks.values():
        for ins in b.instrs:
            if ins.op == "nop":
                continue
            if ins.op not in removable:
                for a in ins.args:
                    mark(a)
                if ins.dest is not None:
                    live.add(ins.dest.vid)
        if b.term is not None:
            for a in b.term.args:
                mark(a)
    while work:
        v = work.pop()
        ins = defm.get(v.vid)
        if ins is None:
            continue
        for a in ins.args:
            mark(a)
    for b in fn.blocks.values():
        kept = []
        for ins in b.instrs:
            if ins.op == "nop":
                continue
            if ins.op in removable and ins.dest is not None \
                    and ins.dest.vid not in live:
                counts["dce"] += 1
                continue
            kept.append(ins)
        b.instrs = kept
