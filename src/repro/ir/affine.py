"""Canonical affine forms shared by the optimizer and the vectorizer
(S28).

An affine form is ``(c0, {var: coeff})`` — a constant term plus one
coefficient per loop variable — the *normal form* both consumers match
against:

* :mod:`repro.cexec.loopfast` recognizes store indices as affine in
  the loop variables.  Its terms are *evaluator closures* (``rt ->
  int``) bound to frame slots, so it instantiates the walk with
  :class:`ClosureRing`;
* :func:`repro.ir.passes.strength_reduce` recognizes ``iv * k``
  products over SSA values via :func:`ssa_affine_mul` — the degenerate
  affine form ``(0, {iv: k})``.

Keeping one tree walk means "affine" cannot drift between the two: a
shape the vectorizer proves injective is exactly a shape the strength
reducer would rewrite, and vice versa.
"""

from __future__ import annotations


class ClosureRing:
    """Ring of ``rt -> value`` evaluator closures (loopfast terms)."""

    @staticmethod
    def const(v):
        return lambda rt: v

    @staticmethod
    def add(a, b):
        return lambda rt: a(rt) + b(rt)

    @staticmethod
    def sub(a, b):
        return lambda rt: a(rt) - b(rt)

    @staticmethod
    def neg(a):
        return lambda rt: -a(rt)

    @staticmethod
    def mul(a, b):
        return lambda rt: a(rt) * b(rt)


def combine(ring, op, a, b):
    """Combine two affine forms ``(c0, coeffs)`` under ``+``/``-``."""
    ca, da = a
    cb, db = b
    coeffs = dict(da)
    for k, ev in db.items():
        prev = coeffs.get(k)
        term = ev if op == "+" else ring.neg(ev)
        coeffs[k] = term if prev is None else ring.add(prev, term)
    c0 = ring.add(ca, cb) if op == "+" else ring.sub(ca, cb)
    return c0, coeffs


def scale(ring, a, s):
    """Multiply an affine form by an invariant term ``s``."""
    c, d = a
    return ring.mul(s, c), {k: ring.mul(s, ev) for k, ev in d.items()}


def negate(ring, a):
    c, d = a
    return ring.neg(c), {k: ring.neg(ev) for k, ev in d.items()}


def tree_affine(node, var_names, ring, *, atom, refs_var, cast_kind_of,
                is_node):
    """Normalize a lowered expression tree to ``(c0, {var: coeff})``.

    ``atom(name)`` yields the ring term for a loop-invariant variable
    (or None to reject); ``refs_var(node, v)`` and ``cast_kind_of``
    supply the caller's tree predicates.  Returns None when the tree is
    not (recognizably) affine in ``var_names`` — quadratic terms,
    division, calls.
    """
    if not is_node(node):
        return None
    p = node.prod
    ch = node.children
    if p == "intLit":
        return ring.const(int(ch[0])), {}
    if p == "var":
        nm = ch[0]
        if nm in var_names:
            return ring.const(0), {nm: ring.const(1)}
        term = atom(nm)
        if term is None:
            return None
        return term, {}
    if p == "binop" and ch[0] in ("+", "-"):
        a = tree_affine(ch[1], var_names, ring, atom=atom,
                        refs_var=refs_var, cast_kind_of=cast_kind_of,
                        is_node=is_node)
        b = tree_affine(ch[2], var_names, ring, atom=atom,
                        refs_var=refs_var, cast_kind_of=cast_kind_of,
                        is_node=is_node)
        if a is None or b is None:
            return None
        return combine(ring, ch[0], a, b)
    if p == "binop" and ch[0] == "*":
        l_lin = any(refs_var(ch[1], v) for v in var_names)
        r_lin = any(refs_var(ch[2], v) for v in var_names)
        if l_lin and r_lin:
            return None  # quadratic
        lin_node, inv_node = (ch[2], ch[1]) if r_lin else (ch[1], ch[2])
        lin = tree_affine(lin_node, var_names, ring, atom=atom,
                          refs_var=refs_var, cast_kind_of=cast_kind_of,
                          is_node=is_node)
        inv = tree_affine(inv_node, var_names, ring, atom=atom,
                          refs_var=refs_var, cast_kind_of=cast_kind_of,
                          is_node=is_node)
        if lin is None or inv is None or inv[1]:
            return None
        return scale(ring, lin, inv[0])
    if p == "unop" and ch[0] == "-":
        a = tree_affine(ch[1], var_names, ring, atom=atom,
                        refs_var=refs_var, cast_kind_of=cast_kind_of,
                        is_node=is_node)
        if a is None:
            return None
        return negate(ring, a)
    if p == "castE":
        # int (or no-op) casts are the identity on affine integer forms
        if cast_kind_of(ch[0]) in (None, "int"):
            return tree_affine(ch[1], var_names, ring, atom=atom,
                               refs_var=refs_var, cast_kind_of=cast_kind_of,
                               is_node=is_node)
        return None
    return None


def nest_injective(active) -> bool:
    """Injectivity of an affine index over a rectangular grid: sort the
    axes by |stride| and require each stride to clear the whole value
    span of the axes below it (blocks must nest, not interleave).
    ``active`` is ``[(|coeff*step|, trip_count), ...]`` for every
    multi-trip axis with a nonzero coefficient."""
    span = 0
    for stride, count in sorted(active):
        if stride <= span:
            return False
        span += stride * (count - 1)
    return True


def ssa_affine_mul(ins, basics, invariant):
    """Recognize the degenerate SSA affine form ``(0, {iv: k})`` — a
    single multiply of a basic induction variable by a loop-invariant
    value.  Returns ``(iv_vid, k_value)`` or None."""
    a, b = ins.args
    for iv, k in ((a, b), (b, a)):
        vid = getattr(iv, "vid", None)
        if vid in basics and invariant(k):
            return vid, k
    return None
