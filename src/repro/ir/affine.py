"""Canonical affine forms shared by the optimizer and the vectorizer
(S28).

An affine form is ``(c0, {var: coeff})`` — a constant term plus one
coefficient per loop variable — the *normal form* both consumers match
against:

* :mod:`repro.cexec.loopfast` recognizes store indices as affine in
  the loop variables.  Its terms are *evaluator closures* (``rt ->
  int``) bound to frame slots, so it instantiates the walk with
  :class:`ClosureRing`;
* :func:`repro.ir.passes.strength_reduce` recognizes ``iv * k``
  products over SSA values via :func:`ssa_affine_mul` — the degenerate
  affine form ``(0, {iv: k})``;
* :mod:`repro.analysis.access` (S30) normalizes matrix access indices
  to affine forms over *symbolic* terms — :class:`Poly` values over
  named atoms such as function parameters and ``rt_dim`` axis lengths —
  by instantiating the walk with :class:`PolyRing` and the
  ``atom_call`` hook (``rt_dim(m, k)`` call nodes act as invariant
  atoms exactly like variables do).

Keeping one tree walk means "affine" cannot drift between the
consumers: a shape the vectorizer proves injective is exactly a shape
the strength reducer would rewrite and the race refuter can cancel,
and vice versa.
"""

from __future__ import annotations


class ClosureRing:
    """Ring of ``rt -> value`` evaluator closures (loopfast terms)."""

    @staticmethod
    def const(v):
        return lambda rt: v

    @staticmethod
    def add(a, b):
        return lambda rt: a(rt) + b(rt)

    @staticmethod
    def sub(a, b):
        return lambda rt: a(rt) - b(rt)

    @staticmethod
    def neg(a):
        return lambda rt: -a(rt)

    @staticmethod
    def mul(a, b):
        return lambda rt: a(rt) * b(rt)


class Poly:
    """Exact integer polynomial over named atoms — the symbolic term
    ring of the S30 access-summary analysis.

    ``terms`` maps a *monomial* (sorted tuple of atom names, possibly
    with repeats) to its integer coefficient; the empty monomial is the
    constant term.  Atoms name runtime integers whose value is fixed
    for the lifetime of the comparison (function parameters, ``rt_dim``
    axis lengths of a still-bound matrix variable), so two polynomials
    whose difference normalizes to a constant are runtime values a
    fixed distance apart — the cancellation step every disjointness
    refutation rests on.  Immutable; all operations return new values.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: dict[tuple, int] | None = None):
        self.terms = {m: c for m, c in (terms or {}).items() if c != 0}

    @classmethod
    def const(cls, v: int) -> "Poly":
        return cls({(): int(v)})

    @classmethod
    def atom(cls, name: str) -> "Poly":
        return cls({(name,): 1})

    @property
    def constant(self) -> int | None:
        """The integer value, when the polynomial is a constant."""
        if not self.terms:
            return 0
        if len(self.terms) == 1 and () in self.terms:
            return self.terms[()]
        return None

    def __add__(self, other: "Poly") -> "Poly":
        out = dict(self.terms)
        for m, c in other.terms.items():
            out[m] = out.get(m, 0) + c
        return Poly(out)

    def __sub__(self, other: "Poly") -> "Poly":
        out = dict(self.terms)
        for m, c in other.terms.items():
            out[m] = out.get(m, 0) - c
        return Poly(out)

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "Poly") -> "Poly":
        out: dict[tuple, int] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = tuple(sorted(m1 + m2))
                out[m] = out.get(m, 0) + c1 * c2
        return Poly(out)

    def __eq__(self, other) -> bool:
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def atoms(self) -> frozenset:
        return frozenset(a for m in self.terms for a in m)

    def subst(self, env: dict[str, "Poly"]) -> "Poly | None":
        """Replace atoms by polynomials; ``None`` if an atom has no
        binding (the caller cannot name it in the target scope)."""
        acc = Poly.const(0)
        for m, c in self.terms.items():
            term = Poly.const(c)
            for a in m:
                b = env.get(a)
                if b is None:
                    return None
                term = term * b
            acc = acc + term
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debugging
        if not self.terms:
            return "0"
        parts = []
        for m, c in sorted(self.terms.items()):
            parts.append(f"{c}" + "".join(f"*{a}" for a in m))
        return " + ".join(parts)


class PolyRing:
    """Ring of :class:`Poly` values (symbolic access forms)."""

    const = staticmethod(Poly.const)
    add = staticmethod(lambda a, b: a + b)
    sub = staticmethod(lambda a, b: a - b)
    neg = staticmethod(lambda a: -a)
    mul = staticmethod(lambda a, b: a * b)


def combine(ring, op, a, b):
    """Combine two affine forms ``(c0, coeffs)`` under ``+``/``-``."""
    ca, da = a
    cb, db = b
    coeffs = dict(da)
    for k, ev in db.items():
        prev = coeffs.get(k)
        term = ev if op == "+" else ring.neg(ev)
        coeffs[k] = term if prev is None else ring.add(prev, term)
    c0 = ring.add(ca, cb) if op == "+" else ring.sub(ca, cb)
    return c0, coeffs


def scale(ring, a, s):
    """Multiply an affine form by an invariant term ``s``."""
    c, d = a
    return ring.mul(s, c), {k: ring.mul(s, ev) for k, ev in d.items()}


def negate(ring, a):
    c, d = a
    return ring.neg(c), {k: ring.neg(ev) for k, ev in d.items()}


def tree_affine(node, var_names, ring, *, atom, refs_var, cast_kind_of,
                is_node, atom_call=None):
    """Normalize a lowered expression tree to ``(c0, {var: coeff})``.

    ``atom(name)`` yields the ring term for a loop-invariant variable
    (or None to reject); ``refs_var(node, v)`` and ``cast_kind_of``
    supply the caller's tree predicates.  ``atom_call(node)``, when
    given, may turn an invariant *call* node (``rt_dim(m, 2)`` embedded
    by the matrix lowering's linear indexer) into a ring term.  Returns
    None when the tree is not (recognizably) affine in ``var_names`` —
    quadratic terms, division, unrecognized calls.
    """
    if not is_node(node):
        return None
    p = node.prod
    ch = node.children
    if p == "call" and atom_call is not None:
        term = atom_call(node)
        return None if term is None else (term, {})
    if p == "intLit":
        return ring.const(int(ch[0])), {}
    if p == "var":
        nm = ch[0]
        if nm in var_names:
            return ring.const(0), {nm: ring.const(1)}
        term = atom(nm)
        if term is None:
            return None
        return term, {}
    if p == "binop" and ch[0] in ("+", "-"):
        a = tree_affine(ch[1], var_names, ring, atom=atom,
                        refs_var=refs_var, cast_kind_of=cast_kind_of,
                        is_node=is_node, atom_call=atom_call)
        b = tree_affine(ch[2], var_names, ring, atom=atom,
                        refs_var=refs_var, cast_kind_of=cast_kind_of,
                        is_node=is_node, atom_call=atom_call)
        if a is None or b is None:
            return None
        return combine(ring, ch[0], a, b)
    if p == "binop" and ch[0] == "*":
        l_lin = any(refs_var(ch[1], v) for v in var_names)
        r_lin = any(refs_var(ch[2], v) for v in var_names)
        if l_lin and r_lin:
            return None  # quadratic
        lin_node, inv_node = (ch[2], ch[1]) if r_lin else (ch[1], ch[2])
        lin = tree_affine(lin_node, var_names, ring, atom=atom,
                          refs_var=refs_var, cast_kind_of=cast_kind_of,
                          is_node=is_node, atom_call=atom_call)
        inv = tree_affine(inv_node, var_names, ring, atom=atom,
                          refs_var=refs_var, cast_kind_of=cast_kind_of,
                          is_node=is_node, atom_call=atom_call)
        if lin is None or inv is None or inv[1]:
            return None
        return scale(ring, lin, inv[0])
    if p == "unop" and ch[0] == "-":
        a = tree_affine(ch[1], var_names, ring, atom=atom,
                        refs_var=refs_var, cast_kind_of=cast_kind_of,
                        is_node=is_node, atom_call=atom_call)
        if a is None:
            return None
        return negate(ring, a)
    if p == "castE":
        # int (or no-op) casts are the identity on affine integer forms
        if cast_kind_of(ch[0]) in (None, "int"):
            return tree_affine(ch[1], var_names, ring, atom=atom,
                               refs_var=refs_var, cast_kind_of=cast_kind_of,
                               is_node=is_node, atom_call=atom_call)
        return None
    return None


def nest_injective(active) -> bool:
    """Injectivity of an affine index over a rectangular grid: sort the
    axes by |stride| and require each stride to clear the whole value
    span of the axes below it (blocks must nest, not interleave).
    ``active`` is ``[(|coeff*step|, trip_count), ...]`` for every
    multi-trip axis with a nonzero coefficient."""
    span = 0
    for stride, count in sorted(active):
        if stride <= span:
            return False
        span += stride * (count - 1)
    return True


def ssa_affine_mul(ins, basics, invariant):
    """Recognize the degenerate SSA affine form ``(0, {iv: k})`` — a
    single multiply of a basic induction variable by a loop-invariant
    value.  Returns ``(iv_vid, k_value)`` or None."""
    a, b = ins.args
    for iv, k in ((a, b), (b, a)):
        vid = getattr(iv, "vid", None)
        if vid in basics and invariant(k):
            return vid, k
    return None
