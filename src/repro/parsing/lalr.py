"""LR(0) automaton construction and LALR(1) lookahead computation.

The construction follows the textbook pipeline Copper uses underneath:

1. canonical LR(0) collection (kernel item sets + GOTO function);
2. LALR(1) lookaheads by the spontaneous-generation / propagation
   algorithm (Dragon Book alg. 4.63), using a dummy lookahead ``#``;
3. the table builder in :mod:`repro.parsing.tables` turns the automaton
   plus lookaheads into ACTION/GOTO tables and reports conflicts.

The end-of-file terminal is a *real* grammar symbol here (the augmented
production is ``$START ::= Start $EOF``), which simplifies both the
scanner interface (EOF is just another valid terminal) and the modular
determinism analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.cfg import Grammar
from repro.grammar.sets import GrammarSets

# Dummy lookahead used during lookahead discovery.
HASH = "$#"

# An LR(0) item: (production index, dot position).
Item = tuple[int, int]
Kernel = frozenset[Item]


@dataclass
class LR0Automaton:
    grammar: Grammar
    states: list[Kernel] = field(default_factory=list)
    goto: dict[tuple[int, str], int] = field(default_factory=dict)

    def describe_item(self, item: Item) -> str:
        prod = self.grammar.productions[item[0]]
        rhs = list(prod.rhs)
        rhs.insert(item[1], "·")
        return f"{prod.lhs} ::= {' '.join(rhs) if rhs else '·'}"

    def describe_state(self, s: int) -> str:
        lines = [self.describe_item(i) for i in sorted(self.states[s])]
        return "\n".join(lines)


def lr0_closure(grammar: Grammar, kernel: Kernel) -> set[Item]:
    """All items derivable from a kernel by expanding dots before NTs."""
    out: set[Item] = set(kernel)
    work = list(kernel)
    while work:
        prod_i, dot = work.pop()
        rhs = grammar.productions[prod_i].rhs
        if dot < len(rhs):
            sym = rhs[dot]
            if not grammar.is_terminal(sym):
                for p in grammar.prods_for(sym):
                    item = (p.index, 0)
                    if item not in out:
                        out.add(item)
                        work.append(item)
    return out


def build_lr0(grammar: Grammar) -> LR0Automaton:
    start_kernel: Kernel = frozenset({(0, 0)})
    auto = LR0Automaton(grammar, [start_kernel])
    index: dict[Kernel, int] = {start_kernel: 0}
    work = [0]
    while work:
        si = work.pop()
        closure = lr0_closure(grammar, auto.states[si])
        moves: dict[str, set[Item]] = {}
        for prod_i, dot in closure:
            rhs = grammar.productions[prod_i].rhs
            if dot < len(rhs):
                moves.setdefault(rhs[dot], set()).add((prod_i, dot + 1))
        for sym in sorted(moves):
            kernel: Kernel = frozenset(moves[sym])
            if kernel not in index:
                index[kernel] = len(auto.states)
                auto.states.append(kernel)
                work.append(index[kernel])
            auto.goto[(si, sym)] = index[kernel]
    return auto


def lr1_closure(
    grammar: Grammar, sets: GrammarSets, items: set[tuple[Item, str]]
) -> set[tuple[Item, str]]:
    """LR(1) closure where lookaheads may be the dummy ``HASH``."""
    out = set(items)
    work = list(items)
    while work:
        (prod_i, dot), la = work.pop()
        rhs = grammar.productions[prod_i].rhs
        if dot >= len(rhs):
            continue
        sym = rhs[dot]
        if grammar.is_terminal(sym):
            continue
        beta = rhs[dot + 1:]
        first_beta = sets.first_of_seq(beta)
        lookaheads = set(first_beta)
        if sets.is_nullable_seq(beta):
            lookaheads.add(la)
        for p in grammar.prods_for(sym):
            for b in lookaheads:
                entry = ((p.index, 0), b)
                if entry not in out:
                    out.add(entry)
                    work.append(entry)
    return out


@dataclass
class LALRResult:
    automaton: LR0Automaton
    # (state, item) -> lookahead terminal set, for every item in each
    # state's *closure* whose dot can reach the end (reduce decisions only
    # consult completed items).
    lookaheads: dict[tuple[int, Item], set[str]]


def compute_lalr_lookaheads(grammar: Grammar, auto: LR0Automaton, sets: GrammarSets) -> LALRResult:
    """Spontaneous generation + propagation over kernel items, then a final
    pass pushing kernel lookaheads through each state's LR(1) closure so
    completed (reduce) items carry their lookahead sets."""
    kernels: dict[tuple[int, Item], set[str]] = {}
    propagate: dict[tuple[int, Item], set[tuple[int, Item]]] = {}

    for si, kernel in enumerate(auto.states):
        for kitem in kernel:
            kernels.setdefault((si, kitem), set())
            closure = lr1_closure(grammar, sets, {(kitem, HASH)})
            for (prod_i, dot), la in closure:
                rhs = grammar.productions[prod_i].rhs
                if dot >= len(rhs):
                    continue
                sym = rhs[dot]
                target_state = auto.goto.get((si, sym))
                if target_state is None:
                    continue
                target_item = (prod_i, dot + 1)
                key = (target_state, target_item)
                if la == HASH:
                    propagate.setdefault((si, kitem), set()).add(key)
                else:
                    kernels.setdefault(key, set()).add(la)

    # The initial kernel item's lookahead is irrelevant (EOF is a real
    # symbol), but seed it so propagation is well-founded.
    kernels[(0, (0, 0))].add(HASH)

    changed = True
    while changed:
        changed = False
        for src, targets in propagate.items():
            src_las = kernels.get(src, set())
            for tgt in targets:
                tgt_las = kernels.setdefault(tgt, set())
                before = len(tgt_las)
                tgt_las |= src_las
                if len(tgt_las) != before:
                    changed = True

    # Final pass: lookaheads for every completed item via in-state closure.
    lookaheads: dict[tuple[int, Item], set[str]] = {}
    for si, kernel in enumerate(auto.states):
        seed = {
            (kitem, la)
            for kitem in kernel
            for la in kernels.get((si, kitem), set())
        }
        closure = lr1_closure(grammar, sets, seed)
        for (prod_i, dot), la in closure:
            if la == HASH:
                continue
            lookaheads.setdefault((si, (prod_i, dot)), set()).add(la)
    return LALRResult(auto, lookaheads)
