"""The LR parser driver, coupled to the context-aware scanner.

The driver asks the scanner for the next token *relative to the current
LR state's valid-lookahead set* — the defining loop of a Copper-generated
parser.  Reductions run production actions immediately (bottom-up tree
construction); terminal children are :class:`~repro.lexing.scanner.Token`
objects carrying lexemes and source spans.

Like the scanner, the driver has two engines (S24): the interpreted loop
over string-keyed action dicts (the reference), and a compiled loop over
:class:`~repro.parsing.compiled.CompiledTables` — terminal indices from
the compiled scanner straight into a dense ACTION array, integer-encoded
actions, and per-production reduce metadata resolved at construction
time.  Both produce identical trees and identical diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ag.tree import Node
from repro.grammar.cfg import Grammar, default_action
from repro.lexing.scanner import EOF, ContextAwareScanner, Token
from repro.parsing.compiled import CompiledTables
from repro.parsing.tables import ActionKind, ParseTables, build_tables
from repro.util.diagnostics import SourceLocation, SourceSpan


def _is_spanless_node(value: Any) -> bool:
    return (
        isinstance(value, Node)
        and value.span.start.offset == 0
        and value.span.end.offset == 0
    )


def _infer_span(children: list[Any]):
    starts = []
    ends = []
    for c in children:
        span = None
        if isinstance(c, (Node, Token)):
            span = c.span
        if span is not None and not (span.start.offset == span.end.offset == 0):
            starts.append(span.start)
            ends.append(span.end)
    if not starts:
        return None
    return SourceSpan(
        min(starts, key=lambda l: l.offset), max(ends, key=lambda l: l.offset)
    )


class ParseError(Exception):
    def __init__(self, message: str, location: SourceLocation):
        self.location = location
        super().__init__(f"{location}: {message}")


@dataclass
class ParseResult:
    value: Any
    tokens_consumed: int


class Parser:
    """A generated parser for one composed grammar.

    ``backend="compiled"`` (default) drives the dense-table hot loop when
    the scanner carries compiled tables; ``backend="interpreted"`` forces
    the dict-walking reference loop.  A pre-lowered
    :class:`CompiledTables` (from the artifact cache) may be supplied via
    ``compiled``.
    """

    def __init__(
        self,
        grammar: Grammar,
        *,
        prefer_shift: frozenset[str] | set[str] = frozenset(),
        tables: ParseTables | None = None,
        scanner: ContextAwareScanner | None = None,
        backend: str = "compiled",
        compiled: CompiledTables | None = None,
    ):
        if backend not in ("compiled", "interpreted"):
            raise ValueError(f"unknown parser backend {backend!r}")
        self.grammar = grammar
        self.tables = tables or build_tables(grammar, prefer_shift=prefer_shift)
        self.scanner = scanner or ContextAwareScanner(
            grammar.terminal_set, backend=backend
        )
        self.compiled: CompiledTables | None = None
        cdfa = self.scanner.compiled
        if backend == "compiled" and cdfa is not None:
            if not self.tables._valid:
                self.tables.finalize()
            ct = compiled or CompiledTables.from_tables(self.tables, cdfa.universe)
            self.compiled = ct.attach(grammar)
            ct.interesting_masks = tuple(
                m | cdfa.layout_mask for m in ct.valid_masks
            )
            ct.accepts_by_state = [
                cdfa.premasked_accepts(m) for m in ct.interesting_masks
            ]

    def parse(self, text: str, filename: str = "<input>") -> Any:
        """Parse ``text``, returning the start production's action value."""
        if self.compiled is not None:
            return self._parse_compiled(text, filename)
        return self._parse_interpreted(text, filename)

    def _parse_interpreted(self, text: str, filename: str = "<input>") -> Any:
        state_stack: list[int] = [0]
        value_stack: list[Any] = []
        loc = SourceLocation(filename=filename)
        tokens = 0

        token: Token | None = None
        while True:
            state = state_stack[-1]
            valid = self.tables.valid_terminals(state)
            if token is None:
                token = self.scanner.scan(text, loc, valid)
                tokens += 1
            act = self.tables.action[state].get(token.terminal)
            if act is None:
                expected = ", ".join(sorted(valid - {EOF})[:10])
                raise ParseError(
                    f"syntax error at {token.lexeme!r} ({token.terminal}); "
                    f"expected one of: {expected}",
                    token.span.start,
                )
            if act.kind is ActionKind.SHIFT:
                state_stack.append(act.target)
                value_stack.append(token)
                loc = token.span.end
                token = None
            elif act.kind is ActionKind.REDUCE:
                prod = self.grammar.productions[act.target]
                n = len(prod.rhs)
                children = value_stack[len(value_stack) - n:] if n else []
                if n:
                    del state_stack[len(state_stack) - n:]
                    del value_stack[len(value_stack) - n:]
                action = prod.action or default_action(prod)
                value = action(children)
                # Attach source spans to freshly built AST nodes whose
                # actions dropped the tokens (the common case).
                if _is_spanless_node(value):
                    span = _infer_span(children)
                    if span is not None:
                        value.span = span
                goto = self.tables.goto[state_stack[-1]].get(prod.lhs)
                if goto is None:  # pragma: no cover - table construction invariant
                    raise ParseError(
                        f"internal parser error: no goto for {prod.lhs}",
                        token.span.start,
                    )
                state_stack.append(goto)
                value_stack.append(value)
            else:  # ACCEPT
                # Stack holds exactly the start symbol's value.
                return ParseResult(value_stack[-1], tokens).value

    def _parse_compiled(self, text: str, filename: str = "<input>") -> Any:
        """The fused scan+parse hot loop.

        The scanner's single-forward-pass engine is inlined here so the
        steady state spends no per-token call or prologue: the char loop
        runs over the cached equivalence-class sequence, the raw
        best-accept mask resolves through a per-LR-state memo to either
        a terminal index or a layout skip, and source locations advance
        as plain ints (objects are built only at token boundaries).
        Every non-hot case — EOF, scan errors, ambiguities, dominance
        dead ends, unmemoized masks — delegates to
        :meth:`~repro.lexing.scanner.ContextAwareScanner.scan_compiled`,
        which produces results and diagnostics identical to the
        interpreted reference engine.
        """
        ct = self.compiled
        sc = self.scanner
        cd = sc.compiled
        cached = sc._cls_cache
        if cached is not None and cached[0] is text:
            cls = cached[1]
        else:
            cls = cd.classes_of_text(text)
            sc._cls_cache = (text, cls)
        trans = cd.trans_off
        start_off = cd.start_off
        layout_mask = cd.layout_mask
        action_arr = ct.run_action
        nterms = ct.nterms
        goto_arr = ct.goto
        nnts = ct.nnts
        valid_masks = ct.valid_masks
        accepts_by_state = ct.accepts_by_state
        valid_sets = self.tables._valid
        reduce_info = ct.reduce_info
        scan_memos = ct.scan_memos
        unit_memo = ct.unit_memo
        outcomes = sc._outcomes
        text_len = len(text)
        _Loc = SourceLocation
        _Span = SourceSpan
        _Tok = Token

        state_stack: list[int] = [0]
        value_stack: list[Any] = []
        state = 0
        line = 1
        column = 0
        pos = 0
        start_loc: SourceLocation | None = _Loc(filename=filename)
        tokens = 0

        while True:
            # -- scan one token for the current LR state ----------------------
            accepts = accepts_by_state[state]
            memo = scan_memos[state]
            while True:
                if pos >= text_len:
                    token = None  # EOF (or layout-then-EOF): delegate
                    break
                off = start_off
                i = pos
                best_end = -1
                best_mask = 0
                while i < text_len:
                    off = trans[off + cls[i]]
                    if off < 0:
                        break
                    i += 1
                    hit = accepts[off]
                    if hit:
                        best_end = i
                        best_mask = hit
                if best_end < 0:
                    token = None  # scan error: delegate for the diagnostic
                    break
                res = memo.get(best_mask)
                if res is None:
                    hm = best_mask & valid_masks[state]
                    if hm:
                        outcome = outcomes.get(hm)
                        if outcome is None:
                            outcome = sc._outcome_for(cd.universe.names_of(hm))
                            if outcome[0] == "tok":
                                outcome = (*outcome, cd.universe.index[outcome[1]])
                            outcomes[hm] = outcome
                        if outcome[0] != "tok":
                            token = None  # ambiguity/dominance: delegate
                            break
                        res = memo[best_mask] = (1, outcome[1], outcome[2])
                    elif best_mask & layout_mask:
                        res = memo[best_mask] = (0,)
                    else:  # pragma: no cover - accepts & interesting guards
                        token = None
                        break
                if res[0]:
                    lexeme = text[pos:best_end]
                    nl = lexeme.count("\n")
                    if nl:
                        end_line = line + nl
                        end_col = best_end - pos - lexeme.rfind("\n") - 1
                    else:
                        end_line = line
                        end_col = column + best_end - pos
                    if start_loc is None:
                        start_loc = _Loc(line, column, pos, filename)
                    end_loc = _Loc(end_line, end_col, best_end, filename)
                    token = _Tok(res[1], lexeme, _Span(start_loc, end_loc))
                    tidx = res[2]
                    line = end_line
                    column = end_col
                    pos = best_end
                    start_loc = end_loc
                    break
                # layout: advance ints only, no objects, no lexeme slice
                nl = text.count("\n", pos, best_end)
                if nl:
                    line += nl
                    column = best_end - 1 - text.rfind("\n", pos, best_end)
                else:
                    column += best_end - pos
                pos = best_end
                start_loc = None
            if token is None:
                # Slow path: reproduce the reference behavior exactly —
                # returns the token (EOF, unmemoized edge) or raises the
                # identical ScanError/LexicalAmbiguityError.
                if start_loc is None:
                    start_loc = _Loc(line, column, pos, filename)
                token, tidx = sc.scan_compiled(
                    text, start_loc, valid_masks[state], valid_sets[state]
                )
                end_loc = token.span.end
                line = end_loc.line
                column = end_loc.column
                pos = end_loc.offset
                start_loc = end_loc
            tokens += 1

            # -- drive the LR automaton until the token is consumed -----------
            while True:
                act = action_arr[state * nterms + tidx]
                kind = act & 7
                if kind == 4:  # reduce by a PASS unit production: bare GOTO
                    # Every link of a unit chain is a GOTO from the same
                    # state-below on the same lookahead, so the chain's
                    # final state is a function of (state_below, first
                    # lhs, terminal): memoize it and replay whole chains
                    # as one dict hit.
                    sb_base = state_stack[-2] * nnts
                    key = (sb_base + (act >> 3)) * nterms + tidx
                    fs = unit_memo.get(key)
                    if fs is None:
                        fs = goto_arr[sb_base + (act >> 3)]
                        a = action_arr[fs * nterms + tidx]
                        while a & 7 == 4:
                            fs = goto_arr[sb_base + (a >> 3)]
                            a = action_arr[fs * nterms + tidx]
                        unit_memo[key] = fs
                    state = fs
                    state_stack[-1] = fs
                elif kind == 2:  # reduce
                    n, sem_action, lhs_i = reduce_info[act >> 3]
                    if n:
                        children = value_stack[-n:]
                        del state_stack[-n:]
                        del value_stack[-n:]
                    else:
                        children = []
                    value = sem_action(children)
                    if (
                        isinstance(value, Node)
                        and value.span.start.offset == 0
                        and value.span.end.offset == 0
                    ):
                        span = _infer_span(children)
                        if span is not None:
                            value.span = span
                    state = goto_arr[state_stack[-1] * nnts + lhs_i]
                    if state < 0:  # pragma: no cover - table invariant
                        raise ParseError(
                            "internal parser error: no goto for "
                            f"{ct.nonterms[lhs_i]}",
                            token.span.start,
                        )
                    state_stack.append(state)
                    value_stack.append(value)
                elif kind == 1:  # shift: token consumed, scan the next
                    state = act >> 3
                    state_stack.append(state)
                    value_stack.append(token)
                    break
                elif kind == 3:  # accept
                    return ParseResult(value_stack[-1], tokens).value
                else:  # error
                    valid = valid_sets[state]
                    expected = ", ".join(sorted(valid - {EOF})[:10])
                    raise ParseError(
                        f"syntax error at {token.lexeme!r} ({token.terminal}); "
                        f"expected one of: {expected}",
                        token.span.start,
                    )
