"""The LR parser driver, coupled to the context-aware scanner.

The driver asks the scanner for the next token *relative to the current
LR state's valid-lookahead set* — the defining loop of a Copper-generated
parser.  Reductions run production actions immediately (bottom-up tree
construction); terminal children are :class:`~repro.lexing.scanner.Token`
objects carrying lexemes and source spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.grammar.cfg import Grammar, default_action
from repro.lexing.scanner import EOF, ContextAwareScanner, Token
from repro.parsing.tables import ActionKind, ParseTables, build_tables
from repro.util.diagnostics import SourceLocation


def _is_spanless_node(value: Any) -> bool:
    from repro.ag.tree import Node

    return (
        isinstance(value, Node)
        and value.span.start.offset == 0
        and value.span.end.offset == 0
    )


def _infer_span(children: list[Any]):
    from repro.ag.tree import Node
    from repro.util.diagnostics import SourceSpan

    starts = []
    ends = []
    for c in children:
        span = None
        if isinstance(c, (Node, Token)):
            span = c.span
        if span is not None and not (span.start.offset == span.end.offset == 0):
            starts.append(span.start)
            ends.append(span.end)
    if not starts:
        return None
    return SourceSpan(
        min(starts, key=lambda l: l.offset), max(ends, key=lambda l: l.offset)
    )


class ParseError(Exception):
    def __init__(self, message: str, location: SourceLocation):
        self.location = location
        super().__init__(f"{location}: {message}")


@dataclass
class ParseResult:
    value: Any
    tokens_consumed: int


class Parser:
    """A generated parser for one composed grammar."""

    def __init__(
        self,
        grammar: Grammar,
        *,
        prefer_shift: frozenset[str] | set[str] = frozenset(),
        tables: ParseTables | None = None,
        scanner: ContextAwareScanner | None = None,
    ):
        self.grammar = grammar
        self.tables = tables or build_tables(grammar, prefer_shift=prefer_shift)
        self.scanner = scanner or ContextAwareScanner(grammar.terminal_set)

    def parse(self, text: str, filename: str = "<input>") -> Any:
        """Parse ``text``, returning the start production's action value."""
        state_stack: list[int] = [0]
        value_stack: list[Any] = []
        loc = SourceLocation(filename=filename)
        tokens = 0

        token: Token | None = None
        while True:
            state = state_stack[-1]
            valid = self.tables.valid_terminals(state)
            if token is None:
                token = self.scanner.scan(text, loc, valid)
                tokens += 1
            act = self.tables.action[state].get(token.terminal)
            if act is None:
                expected = ", ".join(sorted(valid - {EOF})[:10])
                raise ParseError(
                    f"syntax error at {token.lexeme!r} ({token.terminal}); "
                    f"expected one of: {expected}",
                    token.span.start,
                )
            if act.kind is ActionKind.SHIFT:
                state_stack.append(act.target)
                value_stack.append(token)
                loc = token.span.end
                token = None
            elif act.kind is ActionKind.REDUCE:
                prod = self.grammar.productions[act.target]
                n = len(prod.rhs)
                children = value_stack[len(value_stack) - n:] if n else []
                if n:
                    del state_stack[len(state_stack) - n:]
                    del value_stack[len(value_stack) - n:]
                action = prod.action or default_action(prod)
                value = action(list(children))
                # Attach source spans to freshly built AST nodes whose
                # actions dropped the tokens (the common case).
                if _is_spanless_node(value):
                    span = _infer_span(children)
                    if span is not None:
                        value.span = span
                goto = self.tables.goto[state_stack[-1]].get(prod.lhs)
                if goto is None:  # pragma: no cover - table construction invariant
                    raise ParseError(
                        f"internal parser error: no goto for {prod.lhs}",
                        token.span.start,
                    )
                state_stack.append(goto)
                value_stack.append(value)
            else:  # ACCEPT
                # Stack holds exactly the start symbol's value.
                return ParseResult(value_stack[-1], tokens).value
