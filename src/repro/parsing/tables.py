"""ACTION/GOTO table construction with conflict detection and reporting.

Composed extended grammars are required to be LALR(1) (paper §VI-A); any
shift/reduce or reduce/reduce conflict is reported with the offending
state's items so an extension author can diagnose it.  The single
deliberate exception is the dangling-``else`` shift preference, declared
per-terminal via ``prefer_shift`` exactly where a Copper/yacc user would
expect it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.grammar.cfg import Grammar
from repro.grammar.sets import GrammarSets
from repro.lexing.scanner import EOF
from repro.parsing.lalr import (
    LR0Automaton,
    build_lr0,
    compute_lalr_lookaheads,
    lr0_closure,
)


class ActionKind(enum.Enum):
    SHIFT = "shift"
    REDUCE = "reduce"
    ACCEPT = "accept"


@dataclass(frozen=True, slots=True)
class ParseAction:
    kind: ActionKind
    target: int = -1  # shift: next state; reduce: production index

    def __repr__(self) -> str:
        return f"{self.kind.value}({self.target})"


@dataclass(frozen=True)
class Conflict:
    state: int
    terminal: str
    kind: str  # "shift/reduce" | "reduce/reduce"
    detail: str


class LALRConflictError(Exception):
    def __init__(self, conflicts: list[Conflict], auto: LR0Automaton):
        self.conflicts = conflicts
        lines = []
        for c in conflicts[:10]:
            lines.append(
                f"{c.kind} conflict in state {c.state} on {c.terminal!r}: {c.detail}\n"
                f"state items:\n{_indent(auto.describe_state(c.state))}"
            )
        if len(conflicts) > 10:
            lines.append(f"... and {len(conflicts) - 10} more")
        super().__init__("grammar is not LALR(1):\n" + "\n".join(lines))


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


@dataclass
class ParseTables:
    grammar: Grammar
    # None for tables restored from a serialized artifact (the automaton is
    # only needed for conflict reporting at construction time).
    automaton: LR0Automaton | None
    action: list[dict[str, ParseAction]] = field(default_factory=list)
    goto: list[dict[str, int]] = field(default_factory=list)
    resolved_conflicts: list[Conflict] = field(default_factory=list)
    # Precomputed per-state valid-lookahead sets (see :meth:`finalize`).
    _valid: list[frozenset[str]] = field(default_factory=list, repr=False)

    def finalize(self) -> "ParseTables":
        """Precompute the per-state valid-terminal sets once; the parser
        queries them per token, and sharing one frozenset per state keeps
        :meth:`Parser.parse` allocation-free and reentrant."""
        self._valid = [frozenset(row.keys()) for row in self.action]
        return self

    def valid_terminals(self, state: int) -> frozenset[str]:
        """The context-aware scanner's valid-lookahead set for a state."""
        if self._valid:
            return self._valid[state]
        return frozenset(self.action[state].keys())

    @property
    def num_states(self) -> int:
        return len(self.action)


def build_tables(
    grammar: Grammar,
    *,
    prefer_shift: frozenset[str] | set[str] = frozenset(),
    allow_conflicts: bool = False,
) -> ParseTables:
    """Construct LALR(1) tables; raise :class:`LALRConflictError` on
    unresolved conflicts unless ``allow_conflicts`` (used by the modular
    determinism analysis, which wants the conflict list, not an error)."""
    sets = GrammarSets(grammar)
    auto = build_lr0(grammar)
    lalr = compute_lalr_lookaheads(grammar, auto, sets)

    tables = ParseTables(grammar, auto)
    conflicts: list[Conflict] = []
    prefer_shift = frozenset(prefer_shift)

    for si in range(len(auto.states)):
        actions: dict[str, ParseAction] = {}
        gotos: dict[str, int] = {}

        for sym in grammar.terminals:
            tgt = auto.goto.get((si, sym))
            if tgt is not None:
                actions[sym] = ParseAction(ActionKind.SHIFT, tgt)
        for sym in grammar.nonterminals:
            tgt = auto.goto.get((si, sym))
            if tgt is not None:
                gotos[sym] = tgt

        closure = lr0_closure(grammar, auto.states[si])
        for item in closure:
            prod_i, dot = item
            prod = grammar.productions[prod_i]
            if dot != len(prod.rhs):
                # Accept: dot before EOF in the augmented production.
                if prod.index == 0 and dot == 1 and prod.rhs[dot] == EOF:
                    actions[EOF] = ParseAction(ActionKind.ACCEPT)
                continue
            if prod.index == 0:
                continue
            for la in lalr.lookaheads.get((si, item), set()):
                existing = actions.get(la)
                new = ParseAction(ActionKind.REDUCE, prod_i)
                if existing is None:
                    actions[la] = new
                    continue
                if existing.kind is ActionKind.SHIFT:
                    if la in prefer_shift:
                        tables.resolved_conflicts.append(
                            Conflict(si, la, "shift/reduce",
                                     f"resolved as shift over reduce {prod}")
                        )
                        continue
                    conflicts.append(
                        Conflict(si, la, "shift/reduce",
                                 f"shift {existing.target} vs reduce {prod}")
                    )
                elif existing.kind is ActionKind.REDUCE and existing.target != prod_i:
                    other = grammar.productions[existing.target]
                    conflicts.append(
                        Conflict(si, la, "reduce/reduce", f"{other} vs {prod}")
                    )
                elif existing.kind is ActionKind.ACCEPT:  # pragma: no cover
                    conflicts.append(
                        Conflict(si, la, "shift/reduce", f"accept vs reduce {prod}")
                    )
        tables.action.append(actions)
        tables.goto.append(gotos)

    if conflicts and not allow_conflicts:
        raise LALRConflictError(conflicts, auto)
    if conflicts:
        tables.resolved_conflicts.extend(conflicts)
    return tables.finalize()


def find_conflicts(
    grammar: Grammar, *, prefer_shift: frozenset[str] | set[str] = frozenset()
) -> list[Conflict]:
    """All unresolved LALR(1) conflicts of ``grammar`` (MDA entry point)."""
    try:
        tables = build_tables(grammar, prefer_shift=prefer_shift)
    except LALRConflictError as e:
        return e.conflicts
    return [c for c in tables.resolved_conflicts if "resolved" not in c.detail]
