"""LALR(1) parser generation and the context-aware LR driver."""

from repro.parsing.lalr import LR0Automaton, build_lr0, compute_lalr_lookaheads
from repro.parsing.parser import ParseError, Parser
from repro.parsing.tables import (
    ActionKind,
    Conflict,
    LALRConflictError,
    ParseTables,
    build_tables,
    find_conflicts,
)

__all__ = [
    "ActionKind",
    "Conflict",
    "LALRConflictError",
    "LR0Automaton",
    "ParseError",
    "ParseTables",
    "Parser",
    "build_lr0",
    "build_tables",
    "compute_lalr_lookaheads",
    "find_conflicts",
]
