"""Dense compiled LALR tables (S24).

:class:`~repro.parsing.tables.ParseTables` keeps ACTION/GOTO as per-state
dicts keyed by symbol name — ideal for construction and conflict
reporting, wasteful in the parse hot loop (a string hash per token per
step).  :class:`CompiledTables` lowers them to the integer form a parser
generator would emit:

* ACTION as one row-major ``array('l')`` of ``state * nterms + terminal``
  entries, each encoding kind and operand in one int
  (``0`` = error, ``target << 3 | 1`` = shift, ``prod << 3 | 2`` =
  reduce, ``3`` = accept);
* GOTO as a row-major ``array('i')`` over an indexed nonterminal
  universe (``-1`` = absent);
* per-state valid-lookahead sets as int bitmasks over the scanner's
  terminal universe (:class:`~repro.lexing.compiled.TerminalUniverse`),
  shared with the compiled scanner so "which terminals may follow" is a
  single ``int`` handed straight into context-aware scanning.

Terminal *indices* flow from the compiled scanner through the ACTION
lookup without ever materializing a name, and per-production reduce
metadata (arity, semantic action, goto row index) is resolved once at
attach time, hoisting everything invariant out of the reduce path.

:meth:`attach` additionally specializes the *runtime* action array
(``run_action`` — the serialized ``action`` stays pristine): a reduce by
a unit production whose semantic action is the shared identity
:func:`~repro.grammar.cfg.PASS` is re-encoded as
``lhs_index << 3 | 4`` — the driver collapses it to a bare GOTO, since
the value (and therefore its span) passes through unchanged.  Unit
chains like ``Expr -> AssignExpr -> ... -> Primary`` dominate reduce
counts in expression-heavy programs, so this removes most of the reduce
path's work without touching observable behavior.

The dense arrays are pure data and round-trip through the artifact cache
(:mod:`repro.service.artifacts`); semantic actions are re-attached from
the freshly composed grammar via :meth:`CompiledTables.attach`.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable

from repro.grammar.cfg import PASS, Grammar, default_action
from repro.lexing.compiled import TerminalUniverse
from repro.parsing.tables import ActionKind, ParseTables

_ERROR, _SHIFT, _REDUCE, _ACCEPT, _UNIT = 0, 1, 2, 3, 4

_KIND_CODE = {
    ActionKind.SHIFT: _SHIFT,
    ActionKind.REDUCE: _REDUCE,
    ActionKind.ACCEPT: _ACCEPT,
}


class CompiledTables:
    """LALR ACTION/GOTO lowered to integer-indexed arrays."""

    __slots__ = (
        "universe",
        "nterms",
        "action",
        "nonterms",
        "nt_index",
        "goto",
        "valid_masks",
        "reduce_info",
        "run_action",
        "nnts",
        "scan_memos",
        "unit_memo",
        "interesting_masks",
        "accepts_by_state",
    )

    def __init__(
        self,
        universe: TerminalUniverse,
        action: array,
        nonterms: tuple[str, ...],
        goto: array,
        valid_masks: tuple[int, ...],
    ):
        self.universe = universe
        self.nterms = len(universe)
        self.action = action
        self.nonterms = nonterms
        self.nt_index = {nt: i for i, nt in enumerate(nonterms)}
        self.goto = goto
        self.nnts = len(nonterms)
        self.valid_masks = valid_masks
        # Filled in by attach():
        self.reduce_info: list[tuple] | None = None
        self.run_action: array | None = None
        # Per-LR-state scan memo: raw best-accept-mask -> resolved scan
        # result ((1, terminal, tidx) for a token, (0,) for layout),
        # populated lazily by the fused parse loop.
        self.scan_memos: list[dict] = []
        # PASS-unit-chain memo: (state_below * nterms + terminal) -> the
        # state after the whole chain of unit reductions has run.  The
        # chain is a pure function of those two (each link is a bare
        # GOTO from the same underlying state), so the driver collapses
        # chains to one dict lookup.
        self.unit_memo: dict[int, int] = {}
        # valid_mask | layout_mask per state, and the matching premasked
        # accept tables — both set by the owning Parser (layout and the
        # accept table live scanner-side).
        self.interesting_masks: tuple[int, ...] = ()
        self.accepts_by_state: list[list[int]] = []

    @property
    def num_states(self) -> int:
        return len(self.valid_masks)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_tables(
        tables: ParseTables, universe: TerminalUniverse
    ) -> "CompiledTables":
        nstates = tables.num_states
        nterms = len(universe)
        term_index = universe.index
        action = array("l", [_ERROR]) * (nstates * nterms)
        valid_masks = []
        for si, row in enumerate(tables.action):
            base = si * nterms
            mask = 0
            for term, act in row.items():
                ti = term_index[term]
                mask |= 1 << ti
                code = _KIND_CODE[act.kind]
                # ACCEPT carries no operand (its ParseAction target is -1).
                action[base + ti] = (
                    code if code == _ACCEPT else (act.target << 3) | code
                )
            valid_masks.append(mask)

        nonterms = tuple(
            sorted({nt for row in tables.goto for nt in row}
                   | {p.lhs for p in tables.grammar.productions})
        )
        nt_index = {nt: i for i, nt in enumerate(nonterms)}
        nnts = len(nonterms)
        goto = array("i", [-1]) * (nstates * nnts)
        for si, row in enumerate(tables.goto):
            base = si * nnts
            for nt, tgt in row.items():
                goto[base + nt_index[nt]] = tgt
        return CompiledTables(
            universe, action, nonterms, goto, tuple(valid_masks)
        )

    # -- runtime attachment ---------------------------------------------------

    def attach(self, grammar: Grammar) -> "CompiledTables":
        """Resolve per-production reduce metadata against ``grammar``
        (arity, semantic action, goto row index) — once, not per reduce —
        and build the specialized runtime action array."""
        nt_index = self.nt_index
        info: list[tuple[int, Callable[[list[Any]], Any], int]] = []
        transparent: dict[int, int] = {}  # prod index -> lhs goto index
        for prod in grammar.productions:
            action = prod.action or default_action(prod)
            lhs_i = nt_index[prod.lhs]
            info.append((len(prod.rhs), action, lhs_i))
            if action is PASS and len(prod.rhs) == 1:
                transparent[prod.index] = lhs_i
        self.reduce_info = info
        run = array("l", self.action)
        if transparent:
            for i, act in enumerate(run):
                if act & 7 == _REDUCE:
                    lhs_i = transparent.get(act >> 3)
                    if lhs_i is not None:
                        run[i] = (lhs_i << 3) | _UNIT
        self.run_action = run
        self.scan_memos = [{} for _ in range(self.num_states)]
        self.unit_memo = {}
        return self

    # -- serialization --------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "names": list(self.universe.names),
            "action": self.action.tobytes(),
            "nonterms": list(self.nonterms),
            "goto": self.goto.tobytes(),
            "valid_masks": list(self.valid_masks),
        }

    @staticmethod
    def from_payload(data: dict, universe: TerminalUniverse) -> "CompiledTables":
        if tuple(data["names"]) != universe.names:
            raise ValueError("compiled tables universe mismatch")
        action = array("l")
        action.frombytes(data["action"])
        valid_masks = tuple(int(m) for m in data["valid_masks"])
        nterms = len(universe)
        if len(action) != len(valid_masks) * nterms:
            raise ValueError("compiled action table shape mismatch")
        nonterms = tuple(data["nonterms"])
        goto = array("i")
        goto.frombytes(data["goto"])
        if len(goto) != len(valid_masks) * len(nonterms):
            raise ValueError("compiled goto table shape mismatch")
        return CompiledTables(universe, action, nonterms, goto, valid_masks)
