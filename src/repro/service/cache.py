"""The in-memory translator cache (LRU) backed by the artifact store.

Translator generation is a per-extension-set event (paper §II): the same
custom translator serves every program written against that extension
set.  :class:`TranslatorCache` makes that true operationally — repeated
``get()`` calls with an equivalent configuration return one shared
:class:`~repro.driver.Translator`, and cold builds restore their LALR
tables and scanner DFA from the persistent :class:`ArtifactStore` when a
matching artifact exists.

Concurrency: lookups are lock-protected; builds happen outside the lock
with per-fingerprint in-flight deduplication, so eight threads asking for
the same cold translator trigger exactly one construction.  The returned
``Translator`` itself is safe for concurrent ``compile()`` calls — parse,
decoration and emission keep all mutable state per call.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace

from repro.cminus.env import Optimizations
from repro.driver import LanguageModule, Translator, resolve_dependencies
from repro.lexing.scanner import ContextAwareScanner
from repro.parsing.parser import Parser
from repro.service.artifacts import ArtifactStore
from repro.service.fingerprint import syntax_fingerprint, translator_fingerprint
from repro.service.stats import Counters


class _InFlight:
    """A build in progress: losers of the lookup race wait on the winner."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.translator: Translator | None = None
        self.error: BaseException | None = None


class TranslatorCache:
    """LRU of generated translators keyed by configuration fingerprint."""

    def __init__(
        self,
        maxsize: int = 32,
        *,
        artifacts: ArtifactStore | None = None,
        counters: Counters | None = None,
    ):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.artifacts = artifacts if artifacts is not None else ArtifactStore.from_env()
        self.counters = counters or Counters()
        self._lock = threading.Lock()
        self._cache: "OrderedDict[str, Translator]" = OrderedDict()
        self._inflight: dict[str, _InFlight] = {}

    # -- public API -----------------------------------------------------------

    def get(
        self,
        extensions: list[str] | None = None,
        *,
        options: Optimizations | None = None,
        nthreads: int = 4,
    ) -> Translator:
        """The shared translator for this configuration (building at most
        once per fingerprint, concurrently-safe)."""
        modules = self._resolve_modules(extensions)
        key = translator_fingerprint(modules, options, nthreads)

        while True:
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.counters.add(translator_hits=1)
                    return cached
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    building = True
                else:
                    building = False

            if building:
                try:
                    translator = self._build(modules, options, nthreads)
                except BaseException as e:
                    flight.error = e
                    with self._lock:
                        self._inflight.pop(key, None)
                    flight.done.set()
                    raise
                with self._lock:
                    self._cache[key] = translator
                    self._cache.move_to_end(key)
                    self.counters.add(translator_misses=1)
                    while len(self._cache) > self.maxsize:
                        self._cache.popitem(last=False)
                        self.counters.add(evictions=1)
                    self._inflight.pop(key, None)
                flight.translator = translator
                flight.done.set()
                return translator

            flight.done.wait()
            if flight.translator is not None:
                with self._lock:
                    self.counters.add(translator_hits=1)
                return flight.translator
            # The winning builder failed; retry (and likely fail the same
            # way, surfacing the real error to this caller too).

    def fingerprint(
        self,
        extensions: list[str] | None = None,
        *,
        options: Optimizations | None = None,
        nthreads: int = 4,
    ) -> str:
        """The configuration fingerprint ``get()`` would key this
        translator under — public so other caches (the service's analysis
        reports, S25) can key derived results by translator identity."""
        return translator_fingerprint(
            self._resolve_modules(extensions), options, nthreads)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    def stats(self):
        return self.counters.snapshot()

    # -- construction ---------------------------------------------------------

    def _resolve_modules(self, extensions: list[str] | None) -> list[LanguageModule]:
        from repro.api import host_only, module_registry

        reg = module_registry()
        modules = host_only()
        for name in extensions or []:
            if name in ("cminus", "tuples"):
                continue
            if name not in reg:
                raise ValueError(f"unknown extension {name!r}; have {sorted(reg)}")
            if reg[name] not in modules:
                modules.append(reg[name])
        return resolve_dependencies(modules)

    def _build(
        self,
        modules: list[LanguageModule],
        options: Optimizations | None,
        nthreads: int,
    ) -> Translator:
        # Copy the options so a caller mutating their Optimizations object
        # afterwards cannot change the behaviour of the shared translator.
        options = replace(options) if options is not None else None
        return Translator(
            modules,
            options=options,
            nthreads=nthreads,
            parser_factory=self._parser_factory(modules),
        )

    def _parser_factory(self, modules: list[LanguageModule]):
        store = self.artifacts

        def factory(spec, prefer_shift: frozenset[str]) -> Parser:
            grammar = spec.build()
            fp = syntax_fingerprint(modules)
            restored = store.load(fp, grammar)
            if restored is not None:
                tables, dfa, cdfa, ct = restored
                self.counters.add(artifact_hits=1)
                scanner = ContextAwareScanner(
                    grammar.terminal_set, dfa=dfa, compiled=cdfa
                )
                return Parser(
                    grammar, tables=tables, scanner=scanner, compiled=ct
                )
            self.counters.add(artifact_misses=1)
            parser = Parser(grammar, prefer_shift=prefer_shift)
            store.save(
                fp,
                parser.tables,
                parser.scanner.dfa,
                parser.scanner.compiled,
                parser.compiled,
            )
            return parser

        return factory


# -- the process-wide default cache ------------------------------------------

_shared: TranslatorCache | None = None
_shared_lock = threading.Lock()


def shared_cache() -> TranslatorCache:
    """The process-wide translator cache used by :mod:`repro.api`."""
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = TranslatorCache()
        return _shared


def reset_shared_cache() -> None:
    """Drop the process-wide cache (tests; env/config changes)."""
    global _shared
    with _shared_lock:
        _shared = None
