"""The compilation service: request/response types and concurrent batches.

:class:`CompileService` is the long-running entry point the ROADMAP's
serving story needs: it owns a :class:`TranslatorCache`, compiles
individual :class:`CompileRequest` objects through the staged pipeline
(parse → decorate → lower → emit, each timed), and fans
:meth:`CompileService.compile_batch` across a thread pool.  Responses
never raise for per-program problems — syntax and semantic errors are
reported in :attr:`CompileResponse.errors` so one bad program cannot
poison a batch.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

from repro.cminus.env import Optimizations
from repro.driver import CompileResult, Translator
from repro.lexing.scanner import ScanError
from repro.parsing.parser import ParseError
from repro.service.cache import TranslatorCache
from repro.service.stats import ServiceStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.report import AnalysisReport


class CancelToken:
    """A cooperative cancellation flag checked between pipeline stages.

    The serve daemon hands every admitted request a token; cancelling it
    (client disconnect, shutdown deadline) makes the service abandon the
    compile at the next stage boundary instead of finishing work nobody
    will read.  Tokens are thread-safe and single-use.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


#: The error-message marker a cancelled response carries.
CANCELLED = "compilation cancelled"


@dataclass(frozen=True)
class CompileRequest:
    """One program to compile against one extension configuration."""

    source: str
    extensions: tuple[str, ...] = ("matrix",)
    filename: str = "<input>"
    options: Optimizations | None = None
    nthreads: int = 4
    check_only: bool = False
    cancel: CancelToken | None = None


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage."""

    parse: float = 0.0
    decorate: float = 0.0
    lower: float = 0.0
    emit: float = 0.0

    @property
    def total(self) -> float:
        return self.parse + self.decorate + self.lower + self.emit


@dataclass
class CompileResponse:
    """Outcome of one request: errors/output plus timings."""

    request: CompileRequest
    errors: list[str] = field(default_factory=list)
    c_source: str | None = None
    result: CompileResult | None = None
    timings: StageTimings = field(default_factory=StageTimings)
    report: "AnalysisReport | None" = None   # set by CompileService.check

    @property
    def ok(self) -> bool:
        return not self.errors


class CompileService:
    """A reusable compilation front-end over the translator cache."""

    def __init__(
        self,
        cache: TranslatorCache | None = None,
        *,
        max_workers: int = 4,
        analysis_cache_size: int = 64,
    ):
        self.cache = cache or TranslatorCache()
        self.max_workers = max_workers
        self._counters = self.cache.counters
        # S25 analysis-report LRU: (translator fingerprint, source digest)
        # -> AnalysisReport.  Reports are frozen, safe to share.
        self._analysis_lock = threading.Lock()
        self._analysis_cache: "OrderedDict[tuple, AnalysisReport]" = \
            OrderedDict()
        self._analysis_cache_size = analysis_cache_size

    # -- single requests ------------------------------------------------------

    def translator_for(self, request: CompileRequest) -> Translator:
        return self.cache.get(
            list(request.extensions),
            options=request.options,
            nthreads=request.nthreads,
        )

    def _abandon(self, request: CompileRequest,
                 timings: StageTimings) -> CompileResponse:
        self._counters.add(serve_cancelled=1)
        return CompileResponse(request, errors=[CANCELLED], timings=timings)

    def compile(self, request: CompileRequest) -> CompileResponse:
        """Compile one request through the staged, timed pipeline.

        A :class:`CancelToken` on the request is honoured at every stage
        boundary (never mid-stage): a cancelled request comes back as an
        error response carrying :data:`CANCELLED`.
        """
        self._counters.add(requests=1)
        cancel = request.cancel
        if cancel is not None and cancel.cancelled:
            return self._abandon(request, StageTimings())
        try:
            translator = self.translator_for(request)
        except ValueError as e:  # unknown extension
            self._counters.add(failures=1)
            return CompileResponse(request, errors=[str(e)])

        t0 = time.perf_counter()
        try:
            root = translator.parse(request.source, request.filename)
        except (ParseError, ScanError) as e:
            dt = time.perf_counter() - t0
            self._counters.add(failures=1, parse_s=dt)
            return CompileResponse(
                request, errors=[str(e)], timings=StageTimings(parse=dt)
            )
        t1 = time.perf_counter()
        if cancel is not None and cancel.cancelled:
            return self._abandon(request, StageTimings(parse=t1 - t0))

        dn, ctx = translator.decorate(root)
        errors = list(dn.att("errors"))
        t2 = time.perf_counter()

        if errors or request.check_only:
            timings = StageTimings(parse=t1 - t0, decorate=t2 - t1)
            self._counters.add(
                failures=1 if errors else 0,
                parse_s=timings.parse,
                decorate_s=timings.decorate,
            )
            result = CompileResult(request.source, root, errors, None, None, ctx)
            return CompileResponse(
                request, errors=errors, result=result, timings=timings
            )

        if cancel is not None and cancel.cancelled:
            return self._abandon(
                request, StageTimings(parse=t1 - t0, decorate=t2 - t1))

        lowered = dn.att("lowered")
        t3 = time.perf_counter()
        c_source = translator.emit_c(lowered, ctx)
        t4 = time.perf_counter()

        timings = StageTimings(
            parse=t1 - t0, decorate=t2 - t1, lower=t3 - t2, emit=t4 - t3
        )
        self._counters.add(
            parse_s=timings.parse,
            decorate_s=timings.decorate,
            lower_s=timings.lower,
            emit_s=timings.emit,
        )
        result = CompileResult(request.source, root, errors, lowered, c_source, ctx)
        return CompileResponse(
            request, errors=errors, c_source=c_source, result=result, timings=timings
        )

    # -- static analysis (S25) ------------------------------------------------

    def check(self, request: CompileRequest) -> CompileResponse:
        """Compile and run the S25 analysis passes over one request.

        The :class:`~repro.analysis.report.AnalysisReport` lands in
        ``response.report``; reports are cached in an LRU keyed by
        (translator fingerprint, source digest, filename, race-check
        state) — the translator-cache identity plus the S30 escape
        hatch, so an edited source, a changed extension set, or a
        toggled ``REPRO_NO_RACE_CHECK`` misses while repeated checks
        hit.
        """
        from repro.analysis.races import race_check_disabled
        from repro.analysis.report import analyze_result

        key = (
            self.cache.fingerprint(
                list(request.extensions),
                options=request.options, nthreads=request.nthreads),
            hashlib.sha256(request.source.encode()).hexdigest(),
            request.filename,
            # REPRO_NO_RACE_CHECK changes the report's race payload, so
            # a daemon serving both settings must not mix the entries.
            race_check_disabled(),
        )
        with self._analysis_lock:
            cached = self._analysis_cache.get(key)
            if cached is not None:
                self._analysis_cache.move_to_end(key)
        if cached is not None:
            self._counters.add(analysis_cache_hits=1)
            return CompileResponse(request, report=cached)

        # Analysis needs the lowered tree + bytecode, so force a full
        # compile even for check_only requests.
        response = self.compile(
            replace(request, check_only=False)
            if request.check_only else request)
        if not response.ok or response.result is None:
            return response
        response.report = analyze_result(
            response.result, filename=request.filename)
        self._counters.add(analyses=1)
        with self._analysis_lock:
            self._analysis_cache[key] = response.report
            self._analysis_cache.move_to_end(key)
            while len(self._analysis_cache) > self._analysis_cache_size:
                self._analysis_cache.popitem(last=False)
        return response

    def check_batch(
        self,
        requests: Sequence[CompileRequest],
        *,
        max_workers: int | None = None,
    ) -> list[CompileResponse]:
        """``check`` across a worker pool; responses keep request order."""
        self._counters.add(batches=1)
        requests = list(requests)
        workers = max_workers if max_workers is not None else self.max_workers
        if workers <= 1 or len(requests) <= 1:
            return [self.check(r) for r in requests]
        with ThreadPoolExecutor(
            max_workers=min(workers, len(requests)),
            thread_name_prefix="repro-check",
        ) as pool:
            return list(pool.map(self.check, requests))

    # -- batches --------------------------------------------------------------

    def compile_batch(
        self,
        requests: Sequence[CompileRequest],
        *,
        max_workers: int | None = None,
    ) -> list[CompileResponse]:
        """Compile ``requests`` concurrently; responses keep request order.

        Per-program failures come back as error responses, never
        exceptions.  ``max_workers=1`` degrades to a plain sequential loop
        (no pool overhead), which the throughput benchmark uses as its
        baseline.
        """
        self._counters.add(batches=1)
        requests = list(requests)
        workers = max_workers if max_workers is not None else self.max_workers
        if workers <= 1 or len(requests) <= 1:
            return [self.compile(r) for r in requests]
        with ThreadPoolExecutor(
            max_workers=min(workers, len(requests)),
            thread_name_prefix="repro-compile",
        ) as pool:
            return list(pool.map(self.compile, requests))

    # -- stats ----------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return self._counters.snapshot()

    def reset_stats(self) -> None:
        self._counters.reset()
