"""Canonical fingerprints for translator configurations.

A translator is fully determined by (a) the *content* of the composed
language-module specifications — terminal declarations with their regexes
and disambiguation metadata, productions, shift preferences — (b) the
selected :class:`~repro.cminus.env.Optimizations`, (c) the thread count
baked into generated code, and (d) the package version (our lowering
rules change between versions even when the grammar does not).

Two fingerprints are derived from that content:

* :func:`translator_fingerprint` — keys the in-memory translator cache;
  covers everything above.
* :func:`syntax_fingerprint` — keys the persistent artifact cache; covers
  only what the LALR tables and scanner DFA depend on (grammar content,
  shift preferences, package version), so translators that differ only in
  optimization flags or thread count share one on-disk artifact.

Fingerprints are hex SHA-256 digests of a canonical, printable encoding;
semantic actions (Python closures) are deliberately excluded — they are
re-attached from the freshly composed grammar when artifacts are restored,
and the package version stands in for their behaviour.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields
from typing import Iterable

import repro
from repro.cminus.env import Optimizations
from repro.driver import LanguageModule
from repro.lexing.regex import Alt, Chars, Concat, Epsilon, Regex, Star
from repro.lexing.terminals import Terminal

# Bump when the artifact serialization layout changes incompatibly.
# 2: S24 — entries additionally carry the dense compiled scanner/parser
#    tables (CompiledDFA / CompiledTables payloads); format-1 entries
#    predate them and are discarded wholesale via the versioned subdir.
ARTIFACT_FORMAT = 2


def encode_regex(rx: Regex) -> str:
    """A canonical printable encoding of a regex AST (structure-complete)."""
    if isinstance(rx, Epsilon):
        return "e"
    if isinstance(rx, Chars):
        return "c" + ",".join(f"{lo}-{hi}" for lo, hi in rx.charset.intervals)
    if isinstance(rx, Concat):
        return f".({encode_regex(rx.left)})({encode_regex(rx.right)})"
    if isinstance(rx, Alt):
        return f"|({encode_regex(rx.left)})({encode_regex(rx.right)})"
    if isinstance(rx, Star):
        return f"*({encode_regex(rx.body)})"
    raise TypeError(f"unknown regex node {type(rx).__name__}")  # pragma: no cover


def _encode_terminal(t: Terminal) -> str:
    return "|".join(
        [
            t.name,
            encode_regex(t.regex),
            ",".join(sorted(t.dominates)),
            f"L{int(t.layout)}M{int(t.marking)}",
            t.origin,
        ]
    )


def _module_lines(m: LanguageModule) -> Iterable[str]:
    yield f"module {m.name} start={m.grammar.start}"
    for t in sorted(m.grammar.terminals, key=lambda t: t.name):
        yield "  T " + _encode_terminal(t)
    for lhs, rhs, _action, name, origin in m.grammar.raw_productions:
        yield f"  P {lhs} ::= {' '.join(rhs)} [{name}|{origin}]"
    if m.prefer_shift:
        yield "  prefer_shift " + ",".join(sorted(m.prefer_shift))
    if m.requires:
        yield "  requires " + ",".join(m.requires)


def _options_line(options: Optimizations) -> str:
    # Enumerate fields generically so adding a flag invalidates fingerprints.
    return "options " + ",".join(
        f"{f.name}={getattr(options, f.name)!r}" for f in fields(options)
    )


def _digest(lines: Iterable[str]) -> str:
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


def syntax_fingerprint(modules: list[LanguageModule]) -> str:
    """Fingerprint of everything the parse tables / scanner DFA depend on.

    ``modules`` must already be dependency-resolved and ordered (as
    :class:`~repro.driver.Translator` stores them).
    """
    lines = [f"repro {repro.__version__} artifact-format {ARTIFACT_FORMAT}"]
    for m in modules:
        lines.extend(_module_lines(m))
    return _digest(lines)


def translator_fingerprint(
    modules: list[LanguageModule],
    options: Optimizations | None,
    nthreads: int,
) -> str:
    """Cache key for a fully configured translator."""
    from repro.cexec.superinstr_table import TABLE_VERSION

    lines = [
        f"repro {repro.__version__}",
        _options_line(options or Optimizations()),
        f"nthreads {nthreads}",
        # Dispatch-specialization selection table (S29): executions
        # through a cached translator must re-specialize when the
        # shipped superinstruction table is regenerated.
        f"spec {TABLE_VERSION}",
    ]
    for m in modules:
        lines.extend(_module_lines(m))
    return _digest(lines)
