"""S21 — the compilation service layer.

Turns the one-shot translator library into a reusable service:

* :class:`TranslatorCache` — an in-memory LRU of generated translators,
  keyed by a canonical fingerprint of (extension set, optimization
  flags, thread count, package version), so translator generation is a
  per-extension-set event exactly as the paper's §II workflow intends;
* :class:`ArtifactStore` — persistent, versioned on-disk storage of the
  expensive generated artifacts (LALR(1) tables, scanner DFA), restored
  on cold start and invalidated by fingerprint whenever any grammar
  specification or the package version changes;
* :class:`CompileService` — per-request staged compilation with timings
  plus :meth:`CompileService.compile_batch` thread-pool fan-out, with
  counters exposed as :class:`ServiceStats`.

>>> from repro.service import CompileService, CompileRequest
>>> svc = CompileService()
>>> responses = svc.compile_batch([CompileRequest(src) for src in sources])
>>> print(svc.stats().pretty())
"""

from repro.service.artifacts import ArtifactStore, default_cache_dir
from repro.service.cache import TranslatorCache, reset_shared_cache, shared_cache
from repro.service.fingerprint import syntax_fingerprint, translator_fingerprint
from repro.service.service import (
    CANCELLED,
    CancelToken,
    CompileRequest,
    CompileResponse,
    CompileService,
    StageTimings,
)
from repro.service.stats import ServiceStats

__all__ = [
    "ArtifactStore",
    "CANCELLED",
    "CancelToken",
    "CompileRequest",
    "CompileResponse",
    "CompileService",
    "ServiceStats",
    "StageTimings",
    "TranslatorCache",
    "default_cache_dir",
    "reset_shared_cache",
    "shared_cache",
    "syntax_fingerprint",
    "translator_fingerprint",
]
