"""Service counters and their immutable snapshots.

A single :class:`Counters` instance is shared by the translator cache and
the compile service; every mutation happens under its lock, and
:meth:`Counters.snapshot` returns a frozen :class:`ServiceStats` that can
be read, compared and printed without synchronization.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the compilation service's counters."""

    # Translator cache.
    translator_hits: int = 0        # in-memory LRU hits
    translator_misses: int = 0      # LRU misses (a build was needed)
    artifact_hits: int = 0          # builds served from the on-disk store
    artifact_misses: int = 0        # builds that regenerated tables/DFA
    evictions: int = 0              # LRU evictions
    # Compile requests.
    requests: int = 0
    failures: int = 0               # requests returning errors
    batches: int = 0
    # Static analysis (S25 `reproc check`).
    analyses: int = 0               # reports computed
    analysis_cache_hits: int = 0    # reports served from the LRU
    # Cumulative per-stage wall time (seconds) across all requests.
    parse_s: float = 0.0
    decorate_s: float = 0.0
    lower_s: float = 0.0
    emit_s: float = 0.0
    # Serve daemon (S26 `reproc serve`).
    serve_compile: int = 0          # /compile requests admitted
    serve_check: int = 0            # /check requests admitted
    serve_run: int = 0              # /run requests admitted
    serve_stats: int = 0            # /stats requests answered
    serve_coalesced: int = 0        # requests served by another's in-flight work
    serve_timeouts: int = 0         # runs killed at the wall-clock deadline
    serve_worker_restarts: int = 0  # workers respawned after crash/kill
    serve_rejections: int = 0       # 429 busy responses (queue full)
    serve_cancelled: int = 0        # compiles abandoned via a cancel token

    @property
    def hit_rate(self) -> float:
        total = self.translator_hits + self.translator_misses
        return self.translator_hits / total if total else 0.0

    def pretty(self) -> str:
        return "\n".join(
            [
                f"translator cache : {self.translator_hits} hits, "
                f"{self.translator_misses} misses "
                f"({self.hit_rate:.0%} hit rate), {self.evictions} evictions",
                f"artifact store   : {self.artifact_hits} hits, "
                f"{self.artifact_misses} rebuilds",
                f"requests         : {self.requests} "
                f"({self.failures} failed, {self.batches} batches)",
                f"analysis reports : {self.analyses} computed, "
                f"{self.analysis_cache_hits} cache hits",
                f"stage time (s)   : parse {self.parse_s:.3f}, "
                f"decorate {self.decorate_s:.3f}, lower {self.lower_s:.3f}, "
                f"emit {self.emit_s:.3f}",
                f"serve requests   : {self.serve_compile} compile, "
                f"{self.serve_check} check, {self.serve_run} run, "
                f"{self.serve_stats} stats ({self.serve_coalesced} coalesced, "
                f"{self.serve_rejections} rejected busy)",
                f"serve workers    : {self.serve_worker_restarts} restarts, "
                f"{self.serve_timeouts} timeouts, "
                f"{self.serve_cancelled} cancelled",
            ]
        )


class Counters:
    """Thread-safe mutable counters behind :class:`ServiceStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, float] = {
            f.name: 0 if f.type == "int" else 0.0 for f in fields(ServiceStats)
        }

    def add(self, **deltas: float) -> None:
        with self._lock:
            for name, delta in deltas.items():
                self._values[name] += delta

    def snapshot(self) -> ServiceStats:
        with self._lock:
            ints = {
                f.name: int(self._values[f.name]) if f.type == "int"
                else float(self._values[f.name])
                for f in fields(ServiceStats)
            }
        return ServiceStats(**ints)

    def reset(self) -> None:
        with self._lock:
            for name in self._values:
                self._values[name] = 0
