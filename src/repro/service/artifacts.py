"""Persistent parse-table / scanner-DFA artifacts.

Generating a custom translator is dominated by LALR(1) table construction
and scanner-DFA subset construction + minimization (§VI-A machinery).
Both results are pure data — state-indexed action/goto maps and
charset-labeled DFA transitions — so they are serialized to a versioned
on-disk cache keyed by :func:`~repro.service.fingerprint.syntax_fingerprint`
and restored into a :class:`~repro.parsing.parser.Parser` without touching
the generators.  Since format 2 (S24) an entry also carries the *dense*
compiled front-end tables — the scanner's equivalence-class map /
transition array / accept bitmasks
(:meth:`~repro.lexing.compiled.CompiledDFA.to_payload`) and the parser's
integer ACTION/GOTO arrays with valid-lookahead masks
(:meth:`~repro.parsing.compiled.CompiledTables.to_payload`) — so a warm
start skips lowering as well as generation.  Semantic actions and
attribute-grammar equations are *not* serialized; they are re-attached
from the freshly composed grammar.

Cache location: ``$REPRO_CACHE_DIR`` if set (the values ``off``, ``0``,
``none`` and ``disabled`` turn persistence off entirely), else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Every load validates
a magic header, format version and fingerprint echo; any mismatch, decode
error or truncation discards the entry and falls back to a full rebuild —
a corrupt cache can cost time, never correctness.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

from repro.grammar.cfg import Grammar
from repro.lexing.charset import CharSet
from repro.lexing.compiled import CompiledDFA
from repro.lexing.dfa import DFA
from repro.parsing.compiled import CompiledTables
from repro.parsing.tables import ActionKind, ParseAction, ParseTables
from repro.service.fingerprint import ARTIFACT_FORMAT

_MAGIC = "repro-artifact"
_OFF_VALUES = {"off", "0", "none", "disabled"}


def default_cache_dir() -> Path | None:
    """Resolve the artifact directory from the environment (None = disabled)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        if env.strip().lower() in _OFF_VALUES:
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


# -- encoding to plain data ---------------------------------------------------


def _encode_tables(tables: ParseTables) -> dict:
    return {
        "action": [
            {term: (act.kind.value, act.target) for term, act in row.items()}
            for row in tables.action
        ],
        "goto": [dict(row) for row in tables.goto],
    }


def _decode_tables(grammar: Grammar, data: dict) -> ParseTables:
    nprods = len(grammar.productions)
    action: list[dict[str, ParseAction]] = []
    for row in data["action"]:
        decoded: dict[str, ParseAction] = {}
        for term, (kind, target) in row.items():
            act = ParseAction(ActionKind(kind), target)
            if act.kind is ActionKind.REDUCE and not (0 <= target < nprods):
                raise ValueError(f"reduce target {target} out of range")
            decoded[term] = act
        action.append(decoded)
    goto = [dict(row) for row in data["goto"]]
    if len(goto) != len(action):
        raise ValueError("action/goto length mismatch")
    return ParseTables(grammar, None, action=action, goto=goto).finalize()


def _encode_dfa(dfa: DFA) -> dict:
    return {
        "transitions": [
            [(cs.intervals, dst) for cs, dst in row] for row in dfa.transitions
        ],
        "accepts": [tuple(sorted(names)) for names in dfa.accepts],
        "start": dfa.start,
    }


def _decode_dfa(data: dict) -> DFA:
    transitions = [
        [(CharSet(tuple(map(tuple, intervals))), int(dst)) for intervals, dst in row]
        for row in data["transitions"]
    ]
    accepts = [frozenset(names) for names in data["accepts"]]
    if len(accepts) != len(transitions):
        raise ValueError("dfa accepts/transitions length mismatch")
    start = int(data["start"])
    if not 0 <= start < len(transitions):
        raise ValueError("dfa start state out of range")
    return DFA(transitions=transitions, accepts=accepts, start=start)


# -- the store ----------------------------------------------------------------


class ArtifactStore:
    """Fingerprint-addressed persistent store for generated parser artifacts.

    ``root=None`` disables persistence: loads miss, saves are no-ops.
    All I/O failures are swallowed — the store is an accelerator, not a
    source of truth.
    """

    def __init__(self, root: Path | str | None = None, *, enabled: bool = True):
        if isinstance(root, str):
            root = Path(root)
        self.root: Path | None = root if enabled else None

    @classmethod
    def from_env(cls) -> "ArtifactStore":
        return cls(default_cache_dir())

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def _path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / f"v{ARTIFACT_FORMAT}" / f"{fingerprint}.pkl"

    def load(
        self, fingerprint: str, grammar: Grammar
    ) -> tuple[ParseTables, DFA, CompiledDFA | None, CompiledTables | None] | None:
        """Restore ``(tables, dfa, compiled_dfa, compiled_tables)`` for
        ``fingerprint``, re-attaching ``grammar``.  The two compiled
        payloads are None when the entry was saved without them.

        Returns None on miss; silently discards corrupt or stale entries.
        """
        if self.root is None:
            return None
        path = self._path(fingerprint)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        try:
            payload = pickle.loads(blob)
            if (
                payload.get("magic") != _MAGIC
                or payload.get("format") != ARTIFACT_FORMAT
                or payload.get("fingerprint") != fingerprint
            ):
                raise ValueError("artifact header mismatch")
            tables = _decode_tables(grammar, payload["tables"])
            dfa = _decode_dfa(payload["dfa"])
            cdfa = ct = None
            if payload.get("compiled_dfa") is not None:
                cdfa = CompiledDFA.from_payload(payload["compiled_dfa"])
                if payload.get("compiled_tables") is not None:
                    ct = CompiledTables.from_payload(
                        payload["compiled_tables"], cdfa.universe
                    )
        except Exception:
            # Corrupt, truncated, or written by an incompatible build:
            # drop it and let the caller rebuild.
            self._discard(path)
            return None
        return tables, dfa, cdfa, ct

    def save(
        self,
        fingerprint: str,
        tables: ParseTables,
        dfa: DFA,
        compiled_dfa: CompiledDFA | None = None,
        compiled_tables: CompiledTables | None = None,
    ) -> bool:
        """Persist artifacts; returns False (silently) on any I/O failure."""
        if self.root is None:
            return False
        path = self._path(fingerprint)
        payload = {
            "magic": _MAGIC,
            "format": ARTIFACT_FORMAT,
            "fingerprint": fingerprint,
            "tables": _encode_tables(tables),
            "dfa": _encode_dfa(dfa),
            "compiled_dfa": (
                compiled_dfa.to_payload() if compiled_dfa is not None else None
            ),
            "compiled_tables": (
                compiled_tables.to_payload()
                if compiled_tables is not None
                else None
            ),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)  # atomic vs. concurrent writers
            except BaseException:
                self._discard(Path(tmp))
                raise
        except OSError:
            return False
        return True

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
