"""Mapping from CMINUS type representations to C type spellings."""

from __future__ import annotations

from repro.cminus.env import CompileContext
from repro.cminus.types import (
    TBool, TChar, TFloat, TInt, TPointer, TString, TTuple, TVoid, Type,
)


class CTypeError(Exception):
    pass


_LETTER = {"int": "i", "float": "f", "char": "c", "void": "v"}


def ctype_of(t: Type, ctx: CompileContext) -> str:
    """The C spelling of ``t``; registers tuple structs on the context."""
    if isinstance(t, TInt) or isinstance(t, TBool):
        return "int"
    if isinstance(t, TFloat):
        return "float"
    if isinstance(t, TChar):
        return "char"
    if isinstance(t, TVoid):
        return "void"
    if isinstance(t, TString):
        return "const char *"
    if isinstance(t, TPointer):
        return ctype_of(t.target, ctx) + " *"
    if isinstance(t, TTuple):
        return tuple_struct(t, ctx)
    for hook in getattr(ctx, "ctype_hooks", []):
        out = hook(t, ctx)
        if out is not None:
            return out
    raise CTypeError(f"no C representation for type {t}")


def _mangle(t: Type, ctx: CompileContext) -> str:
    c = ctype_of(t, ctx)
    out = _LETTER.get(c)
    if out is not None:
        return out
    return "".join(ch if ch.isalnum() else "_" for ch in c)


def tuple_struct(t: TTuple, ctx: CompileContext) -> str:
    """Struct typedef name for a tuple type, registered for emission."""
    if not hasattr(ctx, "tuple_structs"):
        ctx.tuple_structs = {}
    fields = [ctype_of(e, ctx) for e in t.elems]
    name = "tup_" + "_".join(_mangle(e, ctx) for e in t.elems)
    ctx.tuple_structs.setdefault(name, fields)
    return name
