"""The C runtime emitted ahead of translated user code.

Pieces are keyed by feature name; a compilation requests features through
``ctx.need(...)`` and only those pieces are emitted:

* ``matrix``   — the matrix representation (header with rank/dims/refcount
  followed by the element payload) and element accessors, all
  ``static inline`` so gcc -O2 compiles element access to raw loads.
* ``refcount`` — §III-B's reference-counting pointers: 4 extra bytes (we
  use an int field in the header) count live references; hitting zero
  frees the allocation.
* ``io``       — readMatrix/writeMatrix on the RMAT binary format.
* ``pool``     — §III-C's enhanced fork-join model from SAC [14]: worker
  threads are spawned once, spin on a generation counter, execute chunk
  ranges when released, then pass a stop barrier and spin again.
* ``vector``   — §V's 128-bit 4×float vector operations (SSE intrinsics on
  x86, scalar fallback elsewhere).
"""

from __future__ import annotations

HEADER = r"""
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>
"""

COUNTERS = r"""
/* ---- observability counters (RT_STATS) -------------------------------- */
static long rt_alloc_count = 0;
static long rt_free_count  = 0;
static long rt_copy_count  = 0;
static long rt_pool_parallel_regions = 0;
"""

MATRIX = r"""
/* ---- matrix runtime -------------------------------------------------- */
#define RT_MAX_RANK 8

typedef struct {
    int rc;                 /* reference count (see refcount runtime)     */
    int rank;
    long dims[RT_MAX_RANK];
    long size;              /* product of dims                            */
    float *fdata;           /* exactly one of fdata/idata is non-NULL     */
    int   *idata;
} rt_mat;

static inline rt_mat *rt_alloc(int is_float, int rank, const long *dims) {
    rt_mat *m = (rt_mat *)malloc(sizeof(rt_mat));
    long size = 1;
    int d;
    m->rc = 1;
    m->rank = rank;
    for (d = 0; d < rank; d++) {
        if (dims[d] < 0) {
            fprintf(stderr, "runtime error: negative dimension %ld in "
                    "allocation\n", dims[d]);
            exit(2);
        }
        m->dims[d] = dims[d];
        size *= dims[d];
    }
    m->size = size;
    if (is_float) {
        m->fdata = (float *)calloc((size_t)size, sizeof(float));
        m->idata = NULL;
    } else {
        m->idata = (int *)calloc((size_t)size, sizeof(int));
        m->fdata = NULL;
    }
    __sync_fetch_and_add(&rt_alloc_count, 1);  /* workers race otherwise */
    return m;
}

static inline rt_mat *rt_allocf(int rank, long d0, long d1, long d2, long d3) {
    long dims[4] = { d0, d1, d2, d3 };
    return rt_alloc(1, rank, dims);
}
static inline rt_mat *rt_alloci(int rank, long d0, long d1, long d2, long d3) {
    long dims[4] = { d0, d1, d2, d3 };
    return rt_alloc(0, rank, dims);
}

static inline long  rt_dim(const rt_mat *m, int d) { return m->dims[d]; }
static inline long  rt_size(const rt_mat *m)       { return m->size; }
static inline float rt_getf(const rt_mat *m, long i)          { return m->fdata[i]; }
static inline void  rt_setf(rt_mat *m, long i, float v)       { m->fdata[i] = v; }
static inline int   rt_geti(const rt_mat *m, long i)          { return m->idata[i]; }
static inline void  rt_seti(rt_mat *m, long i, int v)         { m->idata[i] = v; }

static inline void rt_require_divisible(long n, long f, const char *what) {
    if (f <= 0 || n % f != 0) {
        fprintf(stderr, "runtime error: %s: trip count %ld not divisible by %ld\n",
                what, n, f);
        exit(2);
    }
}

static inline void rt_bounds_check(long lo, long hi, long dim, const char *what) {
    if (lo < 0 || hi > dim) {
        fprintf(stderr, "runtime error: %s range [%ld,%ld) outside dimension %ld\n",
                what, lo, hi, dim);
        exit(2);
    }
}

static inline void rt_require_dim(const rt_mat *m, int d, long n) {
    if (!m) {
        fprintf(stderr, "runtime error: use of unallocated matrix\n");
        exit(2);
    }
    if (m->dims[d] != n) {
        fprintf(stderr, "runtime error: dimension %d is %ld, expected %ld\n",
                d, m->dims[d], n);
        exit(2);
    }
}

static inline void rt_check_rank(const rt_mat *m, int rank, int is_float) {
    if (m->rank != rank || (is_float ? m->fdata == NULL : m->idata == NULL)) {
        fprintf(stderr, "runtime error: matrix has rank %d/%s, declared rank "
                "%d/%s\n", m->rank, m->fdata ? "float" : "int",
                rank, is_float ? "float" : "int");
        exit(2);
    }
}

static inline void rt_matmul_check(const rt_mat *a, const rt_mat *b) {
    if (a->rank != 2 || b->rank != 2 || a->dims[1] != b->dims[0]) {
        fprintf(stderr, "runtime error: matrix multiply of %ldx%ld by %ldx%ld\n",
                a->dims[0], a->dims[1], b->dims[0], b->dims[1]);
        exit(2);
    }
}

static inline void rt_shape_check(const rt_mat *a, const rt_mat *b, const char *op) {
    int d;
    if (a->rank != b->rank) {
        fprintf(stderr, "runtime error: %s on matrices of rank %d and %d\n",
                op, a->rank, b->rank);
        exit(2);
    }
    for (d = 0; d < a->rank; d++)
        if (a->dims[d] != b->dims[d]) {
            fprintf(stderr, "runtime error: %s dimension %d mismatch (%ld vs %ld)\n",
                    op, d, a->dims[d], b->dims[d]);
            exit(2);
        }
}
"""

REFCOUNT = r"""
/* ---- reference-counting pointers (paper III-B) ------------------------ */
static inline void rc_inc(rt_mat *m) {
    if (m) __sync_fetch_and_add(&m->rc, 1);
}

static inline void rc_dec(rt_mat *m) {
    if (!m) return;
    if (__sync_sub_and_fetch(&m->rc, 1) == 0) {
        if (m->fdata) free(m->fdata);
        if (m->idata) free(m->idata);
        free(m);
        __sync_fetch_and_add(&rt_free_count, 1);
    }
}

/* Library-style assignment — the baseline that assignment fusion beats
   (§III-A.4): copy elementwise into the target's existing storage when
   shapes match (consuming the source reference), else rebind.  Returns
   the variable's new binding; reference counts stay balanced. */
static inline rt_mat *rt_assign_copy(rt_mat *dst, rt_mat *src) {
    long i;
    if (dst && src && dst != src && dst->rank == src->rank) {
        int same = 1, d;
        for (d = 0; d < dst->rank; d++)
            if (dst->dims[d] != src->dims[d]) same = 0;
        if (same && ((dst->fdata && src->fdata) || (dst->idata && src->idata))) {
            if (dst->fdata)
                for (i = 0; i < dst->size; i++) dst->fdata[i] = src->fdata[i];
            else
                for (i = 0; i < dst->size; i++) dst->idata[i] = src->idata[i];
            rt_copy_count++;
            rc_dec(src);
            return dst;
        }
    }
    rc_dec(dst);
    return src;
}
"""

IO = r"""
/* ---- RMAT binary matrix I/O ------------------------------------------- */
/* layout: "RMAT" | int32 elemkind (0=int,1=float) | int32 rank
           | int64 dims[rank] | payload                                    */
static inline rt_mat *readMatrix(const char *path) {
    FILE *f = fopen(path, "rb");
    char magic[4];
    int kind = 0, rank = 0, d;
    long dims[RT_MAX_RANK];
    rt_mat *m;
    if (!f) { fprintf(stderr, "cannot open %s\n", path); exit(2); }
    if (fread(magic, 1, 4, f) != 4 || memcmp(magic, "RMAT", 4) != 0) {
        fprintf(stderr, "%s: not an RMAT file\n", path); exit(2);
    }
    fread(&kind, 4, 1, f);
    fread(&rank, 4, 1, f);
    for (d = 0; d < rank; d++) { long long v; fread(&v, 8, 1, f); dims[d] = (long)v; }
    m = rt_alloc(kind == 1, rank, dims);
    if (kind == 1) fread(m->fdata, sizeof(float), (size_t)m->size, f);
    else           fread(m->idata, sizeof(int),   (size_t)m->size, f);
    fclose(f);
    return m;
}

static inline void writeMatrix(const char *path, const rt_mat *m) {
    FILE *f = fopen(path, "wb");
    int kind = m->fdata ? 1 : 0, d;
    if (!f) { fprintf(stderr, "cannot open %s for writing\n", path); exit(2); }
    fwrite("RMAT", 1, 4, f);
    fwrite(&kind, 4, 1, f);
    fwrite(&m->rank, 4, 1, f);
    for (d = 0; d < m->rank; d++) { long long v = m->dims[d]; fwrite(&v, 8, 1, f); }
    if (kind == 1) fwrite(m->fdata, sizeof(float), (size_t)m->size, f);
    else           fwrite(m->idata, sizeof(int),   (size_t)m->size, f);
    fclose(f);
}
"""

POOL = r"""
/* ---- enhanced fork-join thread pool (SAC model, paper III-C) ----------- */
/* Worker threads are created once at program start (rt_pool_init) and sit
   in a spin lock on a generation counter.  A parallel construct bumps the
   generation, releasing all workers at once; each executes its chunk of
   the iteration space, enters the stop barrier, and returns to spinning. */
#include <pthread.h>

typedef void (*rt_work_fn)(void *env, long lo, long hi);

#define RT_MAX_THREADS 64

static int rt_pool_nthreads = 1;
static pthread_t rt_pool_threads[RT_MAX_THREADS];
static volatile long rt_pool_generation = 0;
static volatile long rt_pool_done_count = 0;
static volatile int rt_pool_shutdown = 0;
static rt_work_fn volatile rt_pool_fn = NULL;
static void * volatile rt_pool_env = NULL;
static volatile long rt_pool_total = 0;

static void *rt_pool_worker(void *arg) {
    long my_id = (long)arg;
    long seen = 0;
    for (;;) {
        while (rt_pool_generation == seen && !rt_pool_shutdown)
            ; /* spin lock: idle workers burn a core awaiting release */
        if (rt_pool_shutdown) return NULL;
        seen = rt_pool_generation;
        {
            long total = rt_pool_total;
            long per = (total + rt_pool_nthreads - 1) / rt_pool_nthreads;
            long lo = my_id * per;
            long hi = lo + per;
            if (lo > total) lo = total;
            if (hi > total) hi = total;
            if (lo < hi) rt_pool_fn(rt_pool_env, lo, hi);
        }
        __sync_fetch_and_add(&rt_pool_done_count, 1); /* stop barrier */
    }
}

static void rt_pool_init(int nthreads) {
    long i;
    if (nthreads < 1) nthreads = 1;
    if (nthreads > RT_MAX_THREADS) nthreads = RT_MAX_THREADS;
    rt_pool_nthreads = nthreads;
    for (i = 1; i < nthreads; i++)
        pthread_create(&rt_pool_threads[i], NULL, rt_pool_worker, (void *)i);
}

static volatile int rt_pool_region_active = 0;

static void rt_pool_run(rt_work_fn fn, void *env, long total) {
    /* Nested parallel constructs (a with-loop inside a function mapped by
       matrixMap) execute sequentially inside the active region — one
       level of fork-join, as in SAC's multithreaded runtime. */
    if (rt_pool_region_active) { fn(env, 0, total); return; }
    rt_pool_parallel_regions++;
    if (rt_pool_nthreads == 1) { fn(env, 0, total); return; }
    rt_pool_region_active = 1;
    rt_pool_fn = fn;
    rt_pool_env = env;
    rt_pool_total = total;
    rt_pool_done_count = 0;
    __sync_synchronize();
    rt_pool_generation++;           /* release the spinning workers */
    {   /* the main thread takes chunk 0 ... */
        long per = (total + rt_pool_nthreads - 1) / rt_pool_nthreads;
        long hi = per > total ? total : per;
        if (hi > 0) fn(env, 0, hi);
    }
    /* ... then waits in the stop barrier for the others. */
    while (rt_pool_done_count < rt_pool_nthreads - 1)
        ;
    rt_pool_region_active = 0;
}

static void rt_pool_shutdown_all(void) {
    long i;
    rt_pool_shutdown = 1;
    __sync_synchronize();
    for (i = 1; i < rt_pool_nthreads; i++)
        pthread_join(rt_pool_threads[i], NULL);
}

/* Naive fork-join baseline (threads created/destroyed per construct) —
   kept for the overhead benchmark in EXPERIMENTS.md. */
typedef struct { rt_work_fn fn; void *env; long lo, hi; } rt_naive_arg;
static void *rt_naive_worker(void *p) {
    rt_naive_arg *a = (rt_naive_arg *)p;
    a->fn(a->env, a->lo, a->hi);
    return NULL;
}
static void rt_naive_run(rt_work_fn fn, void *env, long total, int nthreads) {
    pthread_t ts[RT_MAX_THREADS];
    rt_naive_arg args[RT_MAX_THREADS];
    long per = (total + nthreads - 1) / nthreads;
    int i;
    for (i = 0; i < nthreads; i++) {
        long lo = i * per, hi = lo + per;
        if (lo > total) lo = total;
        if (hi > total) hi = total;
        args[i].fn = fn; args[i].env = env; args[i].lo = lo; args[i].hi = hi;
        pthread_create(&ts[i], NULL, rt_naive_worker, &args[i]);
    }
    for (i = 0; i < nthreads; i++) pthread_join(ts[i], NULL);
}
"""

VECTOR = r"""
/* ---- 4-wide float vectors (paper V, Fig 11) ---------------------------- */
#if defined(__SSE__) || defined(__x86_64__)
#include <xmmintrin.h>
typedef __m128 rt_v4f;
static inline rt_v4f rt_vloadf(const rt_mat *m, long i) { return _mm_loadu_ps(&m->fdata[i]); }
static inline void rt_vstoref(rt_mat *m, long i, rt_v4f v) { _mm_storeu_ps(&m->fdata[i], v); }
static inline rt_v4f rt_vsplatf(float x) { return _mm_set1_ps(x); }
static inline rt_v4f rt_vaddf(rt_v4f a, rt_v4f b) { return _mm_add_ps(a, b); }
static inline rt_v4f rt_vsubf(rt_v4f a, rt_v4f b) { return _mm_sub_ps(a, b); }
static inline rt_v4f rt_vmulf(rt_v4f a, rt_v4f b) { return _mm_mul_ps(a, b); }
static inline rt_v4f rt_vdivf(rt_v4f a, rt_v4f b) { return _mm_div_ps(a, b); }
static inline float rt_vsumf(rt_v4f v) {
    float out[4];
    _mm_storeu_ps(out, v);
    return out[0] + out[1] + out[2] + out[3];
}
static inline rt_v4f rt_viotaf(long base) {
    return _mm_set_ps((float)(base + 3), (float)(base + 2),
                      (float)(base + 1), (float)base);
}
static inline rt_v4f rt_vgatherf(const rt_mat *m, long i, long stride) {
    return _mm_set_ps(m->fdata[i + 3 * stride], m->fdata[i + 2 * stride],
                      m->fdata[i + stride], m->fdata[i]);
}
static inline void rt_vscatterf(rt_mat *m, long i, long stride, rt_v4f v) {
    float out[4];
    _mm_storeu_ps(out, v);
    m->fdata[i] = out[0];
    m->fdata[i + stride] = out[1];
    m->fdata[i + 2 * stride] = out[2];
    m->fdata[i + 3 * stride] = out[3];
}
#else
typedef struct { float lane[4]; } rt_v4f;
static inline rt_v4f rt_vloadf(const rt_mat *m, long i) {
    rt_v4f v; int k; for (k = 0; k < 4; k++) v.lane[k] = m->fdata[i + k]; return v;
}
static inline void rt_vstoref(rt_mat *m, long i, rt_v4f v) {
    int k; for (k = 0; k < 4; k++) m->fdata[i + k] = v.lane[k];
}
static inline rt_v4f rt_vsplatf(float x) {
    rt_v4f v; int k; for (k = 0; k < 4; k++) v.lane[k] = x; return v;
}
#define RT_VOP(name, op) \
    static inline rt_v4f name(rt_v4f a, rt_v4f b) { \
        rt_v4f v; int k; for (k = 0; k < 4; k++) v.lane[k] = a.lane[k] op b.lane[k]; \
        return v; }
RT_VOP(rt_vaddf, +)
RT_VOP(rt_vsubf, -)
RT_VOP(rt_vmulf, *)
RT_VOP(rt_vdivf, /)
static inline float rt_vsumf(rt_v4f v) {
    return v.lane[0] + v.lane[1] + v.lane[2] + v.lane[3];
}
static inline rt_v4f rt_viotaf(long base) {
    rt_v4f v; int k; for (k = 0; k < 4; k++) v.lane[k] = (float)(base + k);
    return v;
}
static inline rt_v4f rt_vgatherf(const rt_mat *m, long i, long stride) {
    rt_v4f v; int k; for (k = 0; k < 4; k++) v.lane[k] = m->fdata[i + k * stride];
    return v;
}
static inline void rt_vscatterf(rt_mat *m, long i, long stride, rt_v4f v) {
    int k; for (k = 0; k < 4; k++) m->fdata[i + k * stride] = v.lane[k];
}
#endif
"""

PRINTING = r"""
/* ---- debug printing builtins ------------------------------------------- */
#include <stdio.h>
static inline void printInt(int x)     { printf("%d\n", x); }
static inline void printFloat(float x) { printf("%g\n", (double)x); }
static inline void printStats(void) {
    printf("allocs=%ld frees=%ld copies=%ld parallel_regions=%ld\n",
           rt_alloc_count, rt_free_count, rt_copy_count,
           rt_pool_parallel_regions);
}
"""

TASKS = r"""
/* ---- Cilk-style task runtime (paper VIII future work) ------------------ */
/* Each thread keeps its own list of the tasks it spawned; rt_sync joins
   exactly those (a frame-scoped sync can never join an ancestor running
   on another thread, so nested spawn/sync cannot deadlock).  Task threads
   perform an implicit sync before exiting, as Cilk functions do.  A
   global live-task cap makes saturated spawns run inline — a valid Cilk
   schedule (the "sequential elision").  Work-stealing deques are
   deliberately simplified away: the point demonstrated is that a task
   runtime is deliverable as a *pluggable extension* (§VIII). */
#include <pthread.h>

typedef void (*rt_task_fn)(void *env);

#define RT_MAX_LIVE_TASKS 64

typedef struct rt_task_node {
    pthread_t tid;
    struct rt_task_node *next;
} rt_task_node;

static __thread rt_task_node *rt_my_tasks = NULL;
static volatile long rt_live_tasks = 0;
static long rt_tasks_spawned = 0;
static long rt_tasks_inlined = 0;

typedef struct { rt_task_fn fn; void *env; } rt_task_arg;

static void rt_sync(void);

static void *rt_task_trampoline(void *p) {
    rt_task_arg a = *(rt_task_arg *)p;
    free(p);
    a.fn(a.env);
    rt_sync();  /* implicit sync at task exit */
    return NULL;
}

static void rt_spawn(rt_task_fn fn, void *env) {
    __sync_fetch_and_add(&rt_tasks_spawned, 1);
    if (__sync_add_and_fetch(&rt_live_tasks, 1) <= RT_MAX_LIVE_TASKS) {
        rt_task_arg *a = (rt_task_arg *)malloc(sizeof(rt_task_arg));
        rt_task_node *node = (rt_task_node *)malloc(sizeof(rt_task_node));
        a->fn = fn;
        a->env = env;
        if (pthread_create(&node->tid, NULL, rt_task_trampoline, a) == 0) {
            node->next = rt_my_tasks;
            rt_my_tasks = node;
            return;
        }
        free(a);
        free(node);
    }
    __sync_fetch_and_sub(&rt_live_tasks, 1);
    __sync_fetch_and_add(&rt_tasks_inlined, 1);
    fn(env);  /* saturation or creation failure: run inline */
}

static void rt_sync(void) {
    while (rt_my_tasks) {
        rt_task_node *node = rt_my_tasks;
        rt_my_tasks = node->next;
        pthread_join(node->tid, NULL);
        __sync_fetch_and_sub(&rt_live_tasks, 1);
        free(node);
    }
}
"""

# Feature -> (code, prerequisite features).  Order of FEATURES fixes the
# emission order so prerequisites always precede dependents.
FEATURES: dict[str, str] = {
    "counters": COUNTERS,
    "matrix": MATRIX,
    "refcount": REFCOUNT,
    "io": IO,
    "pool": POOL,
    "tasks": TASKS,
    "vector": VECTOR,
    "printing": PRINTING,
}

IMPLIES: dict[str, tuple[str, ...]] = {
    "matrix": ("counters",),
    "refcount": ("matrix", "counters"),
    "io": ("matrix", "refcount"),
    "pool": ("counters",),
    "tasks": ("counters",),
    "vector": ("matrix",),
    "printing": ("counters", "pool"),
}


def runtime_source(features: set[str]) -> str:
    """The runtime preamble for the requested feature set."""
    needed = set(features)
    changed = True
    while changed:
        changed = False
        for f in list(needed):
            for dep in IMPLIES.get(f, ()):
                if dep not in needed:
                    needed.add(dep)
                    changed = True
    parts = [HEADER]
    for name, code in FEATURES.items():
        if name in needed:
            parts.append(code)
    return "\n".join(parts)
