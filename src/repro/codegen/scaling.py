"""Thread-scaling cost model for E-S5 (paper §III-C / §V).

The paper reports that with-loop code "scales nearly linearly with the
number of cores on the machine with two 6-core processors".  This
container exposes **one** vCPU, so the scaling *figure* cannot be
re-measured directly; instead (see DESIGN.md, substitutions) we rebuild
it from a work/overhead model whose constants are measured natively on
this machine:

* ``t_iter``   — per-element cost of the actual generated loop body
  (measured by timing the translated Fig 1 binary on one thread);
* ``t_create`` — per-thread cost of the naive fork-join model
  (measured: pthread_create+join of a no-op thread);
* ``t_release``/``t_chunk`` — enhanced fork-join costs per parallel
  region (spin release + stop barrier).  A faithful measurement needs
  p concurrent cores; on this box we use the measured single-thread
  region cost as the base and a documented per-thread barrier increment.

The model::

    T(p) = t_serial + (W * t_iter) / p + overhead(p)
    overhead_enhanced(p) = t_release + t_chunk * p
    overhead_naive(p)    = t_create * p

which yields the paper's shape: near-linear speedup for large W, with
the enhanced fork-join model's crossover (the W where parallelism pays)
orders of magnitude below the naive model's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ForkJoinCosts:
    """Per-construct overheads in microseconds."""

    t_create_us: float = 25.0      # pthread_create+join, per thread (measured)
    t_release_us: float = 2.0      # generation bump + workers noticing
    t_chunk_us: float = 0.5        # per-worker stop-barrier increment
    measured: dict[str, float] = field(default_factory=dict)

    def enhanced_overhead_us(self, p: int) -> float:
        if p <= 1:
            return 0.0
        return self.t_release_us + self.t_chunk_us * p

    def naive_overhead_us(self, p: int) -> float:
        return self.t_create_us * p


@dataclass
class ScalingPoint:
    threads: int
    time_us: float
    speedup: float
    efficiency: float


def predicted_time_us(
    work_items: int,
    t_iter_us: float,
    p: int,
    costs: ForkJoinCosts,
    *,
    model: str = "enhanced",
    t_serial_us: float = 0.0,
) -> float:
    overhead = (
        costs.enhanced_overhead_us(p) if model == "enhanced"
        else costs.naive_overhead_us(p)
    )
    return t_serial_us + (work_items * t_iter_us) / p + overhead


def scaling_curve(
    work_items: int,
    t_iter_us: float,
    costs: ForkJoinCosts,
    *,
    max_threads: int = 12,
    model: str = "enhanced",
) -> list[ScalingPoint]:
    """Speedup curve S(p) = T(1)/T(p) for p in 1..max_threads."""
    t1 = predicted_time_us(work_items, t_iter_us, 1, costs, model=model)
    out = []
    for p in range(1, max_threads + 1):
        tp = predicted_time_us(work_items, t_iter_us, p, costs, model=model)
        s = t1 / tp
        out.append(ScalingPoint(p, tp, s, s / p))
    return out


def crossover_work(t_iter_us: float, costs: ForkJoinCosts, p: int,
                   *, model: str = "enhanced") -> int:
    """Smallest work size W where running on p threads beats 1 thread."""
    overhead = (
        costs.enhanced_overhead_us(p) if model == "enhanced"
        else costs.naive_overhead_us(p)
    )
    # W*t/p + ov < W*t   =>   W > ov / (t * (1 - 1/p))
    if p <= 1:
        return 0
    import math

    return max(1, math.ceil(overhead / (t_iter_us * (1.0 - 1.0 / p))))


def format_curve(points: list[ScalingPoint], label: str) -> str:
    lines = [f"--- {label} ---",
             f"{'p':>3} {'time':>12} {'speedup':>8} {'efficiency':>10}"]
    for pt in points:
        bar = "#" * int(round(pt.speedup * 3))
        lines.append(
            f"{pt.threads:>3} {pt.time_us:>10.0f}us {pt.speedup:>8.2f} "
            f"{pt.efficiency:>9.0%}  {bar}"
        )
    return "\n".join(lines)


# --- native calibration ------------------------------------------------------

MICROBENCH_C = r"""
#include <stdio.h>
#include <stdlib.h>
#include <time.h>
#include <pthread.h>

static double now_us(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return ts.tv_sec * 1e6 + ts.tv_nsec / 1e3;
}

static void *noop(void *arg) { return NULL; }

int main(void) {
    /* naive fork-join: create+join per construct */
    const int R = 200;
    double t0 = now_us();
    for (int r = 0; r < R; r++) {
        pthread_t t;
        pthread_create(&t, NULL, noop, NULL);
        pthread_join(t, NULL);
    }
    double t_create = (now_us() - t0) / R;
    printf("t_create_us=%.3f\n", t_create);
    return 0;
}
"""


def measure_thread_create_us() -> float | None:
    """Measure pthread create+join cost natively; None if gcc missing."""
    import subprocess
    import tempfile
    from pathlib import Path

    from repro.cexec.gcc_backend import gcc_available

    if not gcc_available():
        return None
    with tempfile.TemporaryDirectory() as td:
        c = Path(td) / "bench.c"
        exe = Path(td) / "bench"
        c.write_text(MICROBENCH_C)
        r = subprocess.run(["gcc", "-O2", "-o", str(exe), str(c), "-lpthread"],
                           capture_output=True)
        if r.returncode != 0:
            return None
        out = subprocess.run([str(exe)], capture_output=True, text=True)
        for line in out.stdout.splitlines():
            if line.startswith("t_create_us="):
                return float(line.split("=")[1])
    return None


def calibrated_costs() -> ForkJoinCosts:
    costs = ForkJoinCosts()
    measured = measure_thread_create_us()
    if measured is not None:
        costs.t_create_us = measured
        costs.measured["t_create_us"] = measured
    return costs
