"""Code generation: C program assembly, runtime library, loop utilities."""

from repro.codegen.emit import LiftedFunc, assemble_c_program
from repro.codegen.runtime_c import runtime_source

__all__ = ["LiftedFunc", "assemble_c_program", "runtime_source"]
