"""Modular determinism analysis — ``isComposable`` (paper §VI-A, ref [11]).

The guarantee reproduced here (Schwerdfeger & Van Wyk):

    for each i:  isLALR(H ∪ E_i)  ∧  isComposable(H, E_i)
        ⇒  isLALR(H ∪ {E_1, ..., E_n})

``isComposable`` imposes restrictions on the *extension* grammar so that
independently developed extensions cannot interfere in the composed LR
automaton.  We check the practically decisive conditions:

1. **Marking terminals.**  Every *bridge production* — one whose LHS is a
   host nonterminal — must begin with a marking terminal owned by the
   extension.  (This is exactly why the tuples extension fails: its bridge
   production for tuple expressions begins with the host's ``(``.)

2. **Marking terminal discipline.**  A marking terminal appears only as
   the first symbol of bridge productions, and never in host productions.

3. **Pairwise determinism.**  ``H ∪ E`` is LALR(1) (conflict-free given
   the host's declared shift preferences).

4. **Follow containment.**  New extension nonterminals must not "leak"
   host follow context: each terminal that can follow an extension
   nonterminal in the composed grammar must be an extension-owned terminal
   or already able to follow the bridged host nonterminal in the host
   grammar — the condition preventing two extensions from creating joint
   conflicts in states reachable from different markers.

Extensions may be *layered* (the transform extension extends the matrix
extension); pass those prerequisites as ``base`` and they are treated as
part of the host for the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.cfg import GrammarSpec
from repro.grammar.sets import GrammarSets
from repro.parsing.tables import find_conflicts


@dataclass
class MDAReport:
    host: str
    extension: str
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"isComposable({self.host}, {self.extension}): {status}"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def is_composable(
    host: GrammarSpec,
    extension: GrammarSpec,
    *,
    base: tuple[GrammarSpec, ...] = (),
    prefer_shift: frozenset[str] | set[str] = frozenset(),
) -> MDAReport:
    """Run the modular determinism analysis for one extension."""
    effective_host = host.compose(*base) if base else host
    report = MDAReport(effective_host.name, extension.name)

    host_nts = {lhs for lhs, *_ in effective_host.raw_productions}
    host_terms = {t.name for t in effective_host.terminals}
    ext_terms = {t.name for t in extension.terminals if t.name not in host_terms}
    marking = {
        t.name
        for t in extension.terminals
        if t.marking and t.name not in host_terms
    }

    bridge_lhs: set[str] = set()

    # Conditions 1 & 2: bridge productions and marking-terminal discipline.
    for lhs, rhs, _action, _name, _origin in extension.raw_productions:
        if lhs in host_nts:
            bridge_lhs.add(lhs)
            if not rhs:
                report.violations.append(
                    f"bridge production {lhs} ::= ε has no marking terminal"
                )
            elif rhs[0] not in marking:
                report.violations.append(
                    f"bridge production '{lhs} ::= {' '.join(rhs)}' does not "
                    f"begin with a marking terminal of {extension.name!r} "
                    f"(starts with {rhs[0]!r})"
                )
        for i, sym in enumerate(rhs):
            if sym in marking and (i != 0 or lhs not in host_nts):
                report.violations.append(
                    f"marking terminal {sym!r} used outside bridge-initial "
                    f"position in '{lhs} ::= {' '.join(rhs)}'"
                )
    if not marking and any(lhs in host_nts for lhs, *_ in extension.raw_productions):
        report.violations.append(
            f"extension {extension.name!r} declares no marking terminals but "
            f"adds productions to host nonterminals"
        )

    # Condition 3: pairwise LALR(1).
    try:
        composed = effective_host.compose(extension).build()
    except Exception as e:
        report.violations.append(f"composition fails to build: {e}")
        return report
    conflicts = find_conflicts(composed, prefer_shift=prefer_shift)
    for c in conflicts[:5]:
        report.violations.append(
            f"H ∪ E not LALR(1): {c.kind} conflict on {c.terminal!r} ({c.detail})"
        )
    if len(conflicts) > 5:
        report.violations.append(f"... and {len(conflicts) - 5} more conflicts")

    # Condition 4: follow containment for new nonterminals.
    if not conflicts:
        ext_nts = {
            lhs for lhs, *_ in extension.raw_productions if lhs not in host_nts
        }
        if ext_nts and bridge_lhs:
            composed_sets = GrammarSets(composed)
            try:
                host_built = effective_host.build()
                host_sets = GrammarSets(host_built)
                allowed = set(ext_terms) | set(marking)
                for nt in bridge_lhs:
                    allowed |= host_sets.follow.get(nt, set())
                for nt in sorted(ext_nts):
                    leak = composed_sets.follow.get(nt, set()) - allowed - host_terms
                    # Terminals of the *extension itself* are fine; a leak is
                    # a host terminal following an extension NT that could
                    # not already follow the bridged host nonterminal.
                    host_leak = (
                        composed_sets.follow.get(nt, set()) & host_terms
                    ) - allowed
                    for t in sorted(host_leak):
                        report.violations.append(
                            f"follow spillage: host terminal {t!r} follows "
                            f"extension nonterminal {nt!r} but cannot follow "
                            f"any bridged host nonterminal"
                        )
            except Exception:
                # Host grammar alone may not build (e.g. analysis run on a
                # fragment); skip the refinement rather than fake a result.
                pass

    return report


def verify_composition_theorem(
    host: GrammarSpec,
    extensions: list[GrammarSpec],
    *,
    prefer_shift: frozenset[str] | set[str] = frozenset(),
) -> bool:
    """Empirically check the paper's guarantee: if every extension passed
    ``isComposable`` individually, their joint composition is LALR(1)."""
    composed = host.compose(*extensions).build()
    return not find_conflicts(composed, prefer_shift=prefer_shift)
