"""Modular determinism analysis for composable concrete syntax (§VI-A)."""

from repro.mda.analysis import MDAReport, is_composable, verify_composition_theorem

__all__ = ["MDAReport", "is_composable", "verify_composition_theorem"]
