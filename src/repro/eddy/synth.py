"""Synthetic sea-surface-height data with injected eddy signatures (§IV).

The paper evaluates on AVISO satellite SSH data (721 x 1440 x 954, not
redistributable); we generate the closest synthetic equivalent.  The
scoring algorithm (Fig 7/8) keys on exactly one property of the data: an
eddy passing a point leaves a *deep trough* in that point's time series
(sea surface dips as the eddy core passes, then recovers), while ocean
"restlessness" and satellite noise leave only shallow bumps.  The
generator injects moving Gaussian depressions (eddies) over a noisy
background, returning the cube together with ground truth, so detection
quality (do high scores land on real eddy tracks?) is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class EddyTrack:
    """Ground truth for one injected eddy."""

    lat0: float
    lon0: float
    dlat: float          # drift per time step
    dlon: float
    radius: float        # spatial extent (grid cells)
    depth: float         # SSH depression at the core (positive number)
    t_start: int
    t_end: int

    def center_at(self, t: int) -> tuple[float, float]:
        return (self.lat0 + self.dlat * (t - self.t_start),
                self.lon0 + self.dlon * (t - self.t_start))


@dataclass
class SSHData:
    cube: np.ndarray                      # (lat, lon, time) float32
    tracks: list[EddyTrack] = field(default_factory=list)
    noise_sigma: float = 0.0

    def eddy_mask(self) -> np.ndarray:
        """Boolean (lat, lon) mask of points an eddy core passed near."""
        m, n, p = self.cube.shape
        mask = np.zeros((m, n), dtype=bool)
        ii, jj = np.mgrid[0:m, 0:n]
        for tr in self.tracks:
            for t in range(tr.t_start, tr.t_end):
                ci, cj = tr.center_at(t)
                mask |= (ii - ci) ** 2 + (jj - cj) ** 2 <= (tr.radius * 0.8) ** 2
        return mask


def fig7_series(
    n: int = 120,
    *,
    trough_center: int = 60,
    trough_width: int = 22,
    trough_depth: float = 1.0,
    bump_amplitude: float = 0.08,
    noise_sigma: float = 0.01,
    seed: int = 0,
) -> np.ndarray:
    """A single SSH time series with the Fig 7 shape: small restless bumps,
    one deep trough where an eddy passed, more bumps after."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    series = bump_amplitude * np.sin(2 * np.pi * t / 17.0)
    series += bump_amplitude * 0.6 * np.sin(2 * np.pi * t / 7.3 + 1.0)
    trough = -trough_depth * np.exp(-0.5 * ((t - trough_center) / (trough_width / 2.355)) ** 2)
    series += trough
    series += rng.normal(0.0, noise_sigma, n)
    return series.astype(np.float32)


def synthetic_ssh(
    shape: tuple[int, int, int] = (24, 36, 64),
    *,
    n_eddies: int = 3,
    eddy_depth: float = 1.0,
    eddy_radius: float = 3.0,
    restlessness: float = 0.06,
    noise_sigma: float = 0.02,
    seed: int = 0,
) -> SSHData:
    """An SSH cube with ``n_eddies`` moving depressions plus background."""
    m, n, p = shape
    rng = np.random.default_rng(seed)
    cube = np.zeros(shape, dtype=np.float64)

    # ocean restlessness: a few slow sinusoidal modes over space and time
    ii, jj = np.mgrid[0:m, 0:n]
    for _ in range(4):
        ki, kj = rng.uniform(0.05, 0.3, 2)
        w = rng.uniform(0.05, 0.25)
        phase = rng.uniform(0, 2 * np.pi)
        amp = restlessness * rng.uniform(0.4, 1.0)
        spatial = np.sin(ki * ii + kj * jj + phase)
        for t in range(p):
            cube[:, :, t] += amp * spatial * np.sin(w * t + phase)

    tracks: list[EddyTrack] = []
    for e in range(n_eddies):
        duration = int(rng.integers(p // 3, (2 * p) // 3))
        t_start = int(rng.integers(0, p - duration))
        margin_i = min(eddy_radius * 2, m / 3)
        margin_j = min(eddy_radius * 2, n / 3)
        track = EddyTrack(
            lat0=float(rng.uniform(margin_i, m - margin_i)),
            lon0=float(rng.uniform(margin_j, n - margin_j)),
            dlat=float(rng.uniform(-0.08, 0.08)),
            dlon=float(rng.uniform(-0.15, 0.15)),
            radius=eddy_radius * float(rng.uniform(0.8, 1.3)),
            depth=eddy_depth * float(rng.uniform(0.8, 1.2)),
            t_start=t_start,
            t_end=t_start + duration,
        )
        tracks.append(track)
        for t in range(track.t_start, track.t_end):
            ci, cj = track.center_at(t)
            # smooth ramp-up/down of the depression over the eddy lifetime
            life = (t - track.t_start) / max(1, duration - 1)
            envelope = np.sin(np.pi * life)
            r2 = (ii - ci) ** 2 + (jj - cj) ** 2
            cube[:, :, t] -= (
                track.depth * envelope * np.exp(-0.5 * r2 / track.radius ** 2)
            )

    cube += rng.normal(0.0, noise_sigma, shape)
    return SSHData(cube.astype(np.float32), tracks, noise_sigma)
