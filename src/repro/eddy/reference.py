"""Numpy reference implementations of the paper's algorithms.

These are executable oracles: integration tests require that the
*translated* extended-C programs (Figs 1, 4, 8) produce exactly these
results.  ``score_time_series`` mirrors Fig 8's control flow statement
for statement (trim, getTrough, computeArea); ``conn_comp`` mirrors the
min-label propagation of our Fig 4 body and is itself cross-checked
against scipy.ndimage and networkx in the tests.
"""

from __future__ import annotations

import numpy as np


def temporal_mean(cube: np.ndarray) -> np.ndarray:
    """Fig 1: the average sea height over time per surface point."""
    return cube.astype(np.float64).mean(axis=2).astype(np.float32)


def get_trough(ts: np.ndarray, i: int) -> tuple[np.ndarray, int, int]:
    """Fig 8 getTrough: walk down then up from a local maximum at ``i``;
    the trough is ts[beginning..i] inclusive."""
    beginning = i
    n = len(ts)
    while i + 1 < n and ts[i] >= ts[i + 1]:
        i += 1
    while i + 1 < n and ts[i] < ts[i + 1]:
        i += 1
    return ts[beginning:i + 1].copy(), beginning, i


def compute_area(area_of_interest: np.ndarray) -> np.ndarray:
    """Fig 8 computeArea: area between the trough and the peak-to-peak
    line, assigned to every point of the trough.

    Matches the translated program bit-for-bit-ish: float32 line values,
    float32 accumulation order.
    """
    a = area_of_interest.astype(np.float32)
    y1 = np.float32(a[0])
    y2 = np.float32(a[-1])
    x1, x2 = 0, len(a) - 1
    if x2 == x1:
        return np.zeros(1, dtype=np.float32)
    m = np.float32((y1 - y2) / np.float32(x1 - x2))
    b = np.float32(y1 - m * np.float32(x1))
    line = (np.arange(x1, x2 + 1, dtype=np.float32) * m + b).astype(np.float32)
    area = np.float32(0.0)
    for k in range(len(line)):
        area = np.float32(area + np.float32(line[k] - a[k]))
    return np.full(len(line), area, dtype=np.float32)


def score_time_series(ts: np.ndarray) -> np.ndarray:
    """Fig 8 scoreTS: per-point trough-area scores for one time series."""
    ts = ts.astype(np.float32)
    n = len(ts)
    scores = np.zeros(n, dtype=np.float32)
    i = 0
    while i + 1 < n and ts[i] < ts[i + 1]:  # trimming
        i += 1
    while i < n - 1:
        trough, beginning, i = get_trough(ts, i)
        scores[beginning:i + 1] = compute_area(trough)
    return scores


def temporal_scores(cube: np.ndarray) -> np.ndarray:
    """Fig 8 main: map scoreTS over the time dimension."""
    m, n, p = cube.shape
    out = np.zeros_like(cube, dtype=np.float32)
    for a in range(m):
        for b in range(n):
            out[a, b, :] = score_time_series(cube[a, b, :])
    return out


def conn_comp(frame: np.ndarray, threshold: float = 0.0) -> np.ndarray:
    """Fig 4 connComp: min-label propagation over the 4-neighborhood of
    below-threshold cells.  Label values match the translated program
    (seed label = i*n + j + 1, minimum label wins)."""
    m, n = frame.shape
    binary = frame < threshold
    labels = np.zeros((m, n), dtype=np.int32)
    idx = np.arange(m * n, dtype=np.int32).reshape(m, n) + 1
    labels[binary] = idx[binary]
    changed = True
    while changed:
        changed = False
        for i in range(m):
            for j in range(n):
                lab = labels[i, j]
                if lab > 0:
                    best = lab
                    for di, dj in ((-1, 0), (0, -1), (1, 0), (0, 1)):
                        a, b = i + di, j + dj
                        if 0 <= a < m and 0 <= b < n and 0 < labels[a, b] < best:
                            best = labels[a, b]
                    if best < lab:
                        labels[i, j] = best
                        changed = True
    return labels


def conn_comp_networkx(frame: np.ndarray, threshold: float = 0.0) -> int:
    """Connected-component *count* via networkx (independent oracle)."""
    import networkx as nx

    m, n = frame.shape
    g = nx.Graph()
    fg = frame < threshold
    for i in range(m):
        for j in range(n):
            if fg[i, j]:
                g.add_node((i, j))
                if i > 0 and fg[i - 1, j]:
                    g.add_edge((i, j), (i - 1, j))
                if j > 0 and fg[i, j - 1]:
                    g.add_edge((i, j), (i, j - 1))
    return nx.number_connected_components(g)


def detection_quality(
    scores: np.ndarray, eddy_mask: np.ndarray, *, top_fraction: float = None
) -> dict[str, float]:
    """How well do high trough-area scores identify real eddy locations?

    Ranks surface points by their maximum score over time (the paper:
    "ranking locations on the map by how likely it is that what is being
    detected is actually an eddy") and measures precision/recall of the
    top-|eddy| ranked set against the ground-truth mask.
    """
    point_score = scores.max(axis=2)
    k = int(eddy_mask.sum()) if top_fraction is None else int(
        top_fraction * eddy_mask.size
    )
    k = max(k, 1)
    flat = point_score.ravel()
    top_idx = np.argpartition(flat, -k)[-k:]
    predicted = np.zeros(flat.size, dtype=bool)
    predicted[top_idx] = True
    predicted = predicted.reshape(eddy_mask.shape)
    tp = float((predicted & eddy_mask).sum())
    precision = tp / max(predicted.sum(), 1)
    recall = tp / max(eddy_mask.sum(), 1)
    return {"precision": precision, "recall": recall, "k": float(k)}
