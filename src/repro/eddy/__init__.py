"""The ocean-eddy application substrate (paper §IV).

Synthetic SSH data with injected eddy signatures (:mod:`synth`) and
numpy reference implementations of the paper's algorithms
(:mod:`reference`) used as oracles for the translated programs.
"""

from repro.eddy.reference import (
    compute_area,
    conn_comp,
    conn_comp_networkx,
    detection_quality,
    get_trough,
    score_time_series,
    temporal_mean,
    temporal_scores,
)
from repro.eddy.synth import EddyTrack, SSHData, fig7_series, synthetic_ssh

__all__ = [
    "EddyTrack",
    "SSHData",
    "compute_area",
    "conn_comp",
    "conn_comp_networkx",
    "detection_quality",
    "fig7_series",
    "get_trough",
    "score_time_series",
    "synthetic_ssh",
    "temporal_mean",
    "temporal_scores",
]
