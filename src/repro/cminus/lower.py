"""Host lowering: the ``lowered`` / ``hoisted`` attributes.

Lowering maps the decorated extended tree to a *plain C* host tree:

* Expressions define ``lowpair = (hoisted_stmts, lowered_expr)``.  Most
  host expressions rebuild themselves and concatenate children's hoisted
  statements; extension constructs override ``lowpair`` to hoist loop
  nests (a with-loop in expression position becomes loops + a temp var).
* Statements define ``lowered``; when their expressions hoisted anything,
  the result is a ``seqStmt`` so no C scope is introduced.
* Extension *type* and *operator* lowerings dispatch through
  ``ctx.overloads`` — the same table used by type checking.

The refcount extension contributes the ownership bookkeeping via the
hooks ``ctx.rc`` (see repro.exts.refcount); when disabled those hooks are
no-ops and the generated C simply leaks (the ablation baseline).
"""

from __future__ import annotations

from typing import Any

from repro.ag.eval import DecoratedNode
from repro.ag.tree import Node
from repro.cminus.grammar import HOST_AG, mk
from repro.cminus.types import is_error

ag = HOST_AG

EXPR_NTS = {"Expr", "ExprList", "Index", "IndexList"}


class LoweringError(Exception):
    pass


def _expr_list_children(dn: DecoratedNode) -> list[DecoratedNode]:
    out = []
    while len(dn.node.children) == 2:
        out.append(dn.child(0))
        dn = dn.child(1)
    return out


def _is_expr_child(dn: Any) -> bool:
    return (
        isinstance(dn, DecoratedNode)
        and dn.prod in dn.spec.productions
        and dn.spec.productions[dn.prod].lhs in EXPR_NTS
    )


def lowpair_default(n: DecoratedNode) -> tuple[list[Node], Node]:
    """Rebuild this expression from lowered children, concatenating their
    hoisted statements left-to-right (C evaluation order)."""
    hoisted: list[Node] = []
    kids: list[Any] = []
    for i in range(len(n.node.children)):
        c = n.child(i)
        if _is_expr_child(c):
            hs, low = c.att("lowpair")
            hoisted.extend(hs)
            kids.append(low)
        elif isinstance(c, DecoratedNode):
            kids.append(c.att("lowered"))
        else:
            kids.append(c)
    return hoisted, Node(n.prod, kids, n.span)


def lowered_expr(n: DecoratedNode) -> Node:
    return n.att("lowpair")[1]


def hoisted_expr(n: DecoratedNode) -> list[Node]:
    return n.att("lowpair")[0]


def wrap_hoisted(stmt: Node, hoisted: list[Node]) -> Node:
    if not hoisted:
        return stmt
    return mk.seqStmt(mk.stmt_list(list(hoisted) + [stmt]))


def finish_stmt(n: DecoratedNode, stmt: Node, hoisted: list[Node]) -> Node:
    """Attach hoisted statements and drain per-statement owned temporaries
    (refcount hook) around a lowered statement."""
    rc = getattr(n.inh("ctx"), "rc", None)
    trailing = rc.drain_stmt_temps() if rc is not None else []
    if trailing:
        return mk.seqStmt(mk.stmt_list(list(hoisted) + [stmt] + trailing))
    return wrap_hoisted(stmt, hoisted)


def rebuild_stmt_default(n: DecoratedNode) -> Node:
    """Default statement lowering: rebuild, hoisting expression statements."""
    hoisted: list[Node] = []
    kids: list[Any] = []
    for i in range(len(n.node.children)):
        c = n.child(i)
        if _is_expr_child(c):
            hs, low = c.att("lowpair")
            hoisted.extend(hs)
            kids.append(low)
        elif isinstance(c, DecoratedNode):
            kids.append(c.att("lowered"))
        else:
            kids.append(c)
    return finish_stmt(n, Node(n.prod, kids, n.span), hoisted)


def rebuild_generic(n: DecoratedNode) -> Node:
    """Default for non-expression nonterminals: rebuild from lowered kids."""
    kids: list[Any] = []
    for i in range(len(n.node.children)):
        c = n.child(i)
        kids.append(c.att("lowered") if isinstance(c, DecoratedNode) else c)
    return Node(n.prod, kids, n.span)


def install() -> None:
    ag.synthesized("lowered", on=[
        "Root", "TU", "ExtDecl", "Params", "Param", "StmtList", "Stmt",
        "ForInit", "Expr", "ExprList", "IndexList", "Index", "TypeExpr",
        "TypeList",
    ])
    ag.synthesized("lowpair", on=["Expr", "ExprList", "IndexList", "Index"])
    def lowered_default(n: DecoratedNode) -> Node:
        # Expression nonterminals project their lowpair (so hoisting works
        # for extension productions composed in later); everything else
        # rebuilds from lowered children.
        decl = n.spec.productions.get(n.prod)
        if decl is not None and decl.lhs in EXPR_NTS:
            return n.att("lowpair")[1]
        return rebuild_generic(n)

    ag.default("lowered", lowered_default)
    ag.default("lowpair", lowpair_default)

    eq = ag.equation

    # -- operator lowerings dispatch through overloads when non-scalar ----------
    def binop_lowpair(n: DecoratedNode):
        ctx = n.inh("ctx")
        if not is_error(n.att("typerep")):
            special = ctx.overloads.resolve_lowering("binop", n)
            if special is not None:
                return special
        return lowpair_default(n)

    eq("binop", "lowpair", binop_lowpair)

    def generic_overload_lowpair(kind: str):
        def fn(n: DecoratedNode):
            ctx = n.inh("ctx")
            special = ctx.overloads.resolve_lowering(kind, n)
            if special is not None:
                return special
            return lowpair_default(n)
        return fn

    eq("unop", "lowpair", generic_overload_lowpair("unop"))
    eq("index", "lowpair", generic_overload_lowpair("index"))
    eq("rangeE", "lowpair", generic_overload_lowpair("range"))
    eq("assign", "lowpair", generic_overload_lowpair("assign"))
    eq("call", "lowpair", generic_overload_lowpair("call"))
    eq("castE", "lowpair", generic_overload_lowpair("cast"))

    # -- tuples (host-packaged, §VI-A) -------------------------------------------
    def tuple_lowpair(n: DecoratedNode):
        from repro.codegen.ctypemap import tuple_struct

        ctx = n.inh("ctx")
        struct = tuple_struct(n.att("typerep"), ctx)
        hoisted: list[Node] = []
        args: list[Node] = []
        rc = getattr(ctx, "rc", None)
        for e in _expr_list_children(n.child(0)):
            hs, low = e.att("lowpair")
            hoisted.extend(hs)
            # The tuple owns its managed components: an owned temporary's
            # reference moves into the tuple; a bare (borrowed) variable
            # gains a reference.
            if rc is not None and rc.is_managed(e.att("typerep")) and low.prod == "var":
                name = low.children[0]
                if name in rc.stmt_temps:
                    rc.forget_temp(name)
                else:
                    hoisted.append(rc.inc_stmt(low))
            args.append(low)
        return hoisted, mk.call(f"__tuple_{struct}", mk.expr_list(args))

    eq("tupleE", "lowpair", tuple_lowpair)

    def ttuple_lowered(n: DecoratedNode):
        from repro.codegen.ctypemap import tuple_struct

        return mk.tRaw(tuple_struct(n.att("typerep"), n.inh("ctx")))

    eq("tTuple", "lowered", ttuple_lowered)

    def end_lowpair(n: DecoratedNode):
        # `end` must have been substituted by the indexing lowering; if one
        # survives, the program used it somewhere unsupported.
        raise LoweringError(
            f"{n.span.start}: 'end' survived to lowering — used outside a "
            f"matrix index"
        )

    eq("endE", "lowpair", end_lowpair)

    # -- statements ------------------------------------------------------------
    def decl_lowered(n: DecoratedNode):
        t = n.child(0).att("typerep")
        if getattr(t, "managed", False):
            # Managed locals start as NULL so scope-exit decrements are
            # safe even on paths that never assigned them.
            return Node(
                "declInit",
                [n.child(0).att("lowered"), n.node.children[1], mk.rawExpr("NULL")],
                n.span,
            )
        return rebuild_stmt_default(n)

    eq("decl", "lowered", decl_lowered)

    def declinit_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        special = ctx.overloads.resolve_lowering("declInit", n)
        if special is not None:
            return special
        return rebuild_stmt_default(n)

    eq("declInit", "lowered", declinit_lowered)

    def exprstmt_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        inner = n.child(0)
        if inner.prod == "assign" and inner.node.children[0].prod == "tupleE":
            return lower_destructuring(n, inner)
        special = ctx.overloads.resolve_lowering("exprStmt", n)
        if special is not None:
            return special
        return rebuild_stmt_default(n)

    eq("exprStmt", "lowered", exprstmt_lowered)

    def lower_destructuring(n: DecoratedNode, asg: DecoratedNode) -> Node:
        """(a, b, c) = f(...)  →  T __t = f(...); a = __t.f0; ... """
        from repro.codegen.ctypemap import tuple_struct

        ctx = n.inh("ctx")
        rc = getattr(ctx, "rc", None)
        rhs = asg.child(1)
        hs, rhs_low = rhs.att("lowpair")
        struct = tuple_struct(rhs.att("typerep"), ctx)
        tmp = ctx.gensym("tup")
        stmts: list[Node] = list(hs)
        stmts.append(mk.declInit(mk.tRaw(struct), tmp, rhs_low))
        targets = _expr_list_children(asg.child(0).child(0))
        for i, tgt in enumerate(targets):
            ths, tgt_low = tgt.att("lowpair")
            stmts.extend(ths)
            get = mk.call(f"__tget_{i}", mk.expr_list([mk.var(tmp)]))
            if rc is not None and rc.is_managed(tgt.att("typerep")):
                # The old referent loses a reference; the component's
                # reference moves out of the temp into the target.
                stmts.append(rc.dec_stmt(tgt_low))
            stmts.append(mk.exprStmt(mk.assign(tgt_low, get)))
        return finish_stmt(n, mk.seqStmt(mk.stmt_list(stmts)), [])

    def returnstmt_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        rc = getattr(ctx, "rc", None)
        if rc is not None:
            return rc.lower_return(n)
        return rebuild_stmt_default(n)

    eq("returnStmt", "lowered", returnstmt_lowered)

    def returnvoid_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        rc = getattr(ctx, "rc", None)
        if rc is not None:
            return rc.lower_return_void(n)
        return Node("returnVoid", [], n.span)

    eq("returnVoid", "lowered", returnvoid_lowered)

    def if_lowered(n: DecoratedNode):
        hs, cond = n.child(0).att("lowpair")
        kids = [cond] + [n.child(i).att("lowered") for i in range(1, len(n.node.children))]
        return finish_stmt(n, Node(n.prod, kids, n.span), hs)

    eq("ifStmt", "lowered", if_lowered)
    eq("ifElse", "lowered", if_lowered)

    def while_lowered(n: DecoratedNode):
        hs, cond = n.child(0).att("lowpair")
        if hs:
            raise LoweringError(
                f"{n.span.start}: loop condition hoists statements "
                f"(a with-loop in a while/for condition is not supported)"
            )
        return Node("whileStmt", [cond, n.child(1).att("lowered")], n.span)

    eq("whileStmt", "lowered", while_lowered)

    def dowhile_lowered(n: DecoratedNode):
        hs, cond = n.child(1).att("lowpair")
        if hs:
            raise LoweringError(
                f"{n.span.start}: loop condition hoists statements "
                f"(a with-loop in a do-while condition is not supported)"
            )
        return Node("doWhile", [n.child(0).att("lowered"), cond], n.span)

    eq("doWhile", "lowered", dowhile_lowered)

    def for_lowered(n: DecoratedNode):
        init = n.child(0)
        init_hoisted: list[Node] = []
        if init.prod == "forDecl":
            hs, low = init.child(2).att("lowpair")
            init_hoisted = hs
            init_low = Node("forDecl", [init.child(0).att("lowered"),
                                        init.node.children[1], low])
        else:
            hs, low = init.child(0).att("lowpair")
            init_hoisted = hs
            init_low = Node("forExpr", [low])
        chs, cond = n.child(1).att("lowpair")
        shs, step = n.child(2).att("lowpair")
        if chs or shs:
            raise LoweringError(
                f"{n.span.start}: loop condition hoists statements "
                f"(a with-loop in a while/for condition is not supported)"
            )
        stmt = Node("forStmt", [init_low, cond, step, n.child(3).att("lowered")], n.span)
        return finish_stmt(n, stmt, init_hoisted)

    eq("forStmt", "lowered", for_lowered)

    def block_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        rc = getattr(ctx, "rc", None)
        if rc is None:
            return rebuild_generic(n)
        return rc.lower_block(n)

    eq("block", "lowered", block_lowered)

    def funcdef_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        rc = getattr(ctx, "rc", None)
        if rc is not None:
            return rc.lower_funcdef(n)
        return rebuild_generic(n)

    eq("funcDef", "lowered", funcdef_lowered)

    def breakish_lowered(n: DecoratedNode):
        ctx = n.inh("ctx")
        rc = getattr(ctx, "rc", None)
        if rc is not None:
            return rc.lower_breakish(n)
        return Node(n.prod, [], n.span)

    eq("breakStmt", "lowered", breakish_lowered)
    eq("continueStmt", "lowered", breakish_lowered)
